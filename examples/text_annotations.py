"""Text annotations: categorical and tuple-level uncertainty.

The paper's introduction motivates the model with text annotation
("annotations are rarely perfect").  Each extracted token carries a
categorical distribution over entity labels; tokens that may not be
entities at all get *partial* pdfs — tuple uncertainty via attribute
uncertainty, with no separate mechanism.

Run: ``python examples/text_annotations.py``
"""

from repro import Database
from repro.workloads import generate_annotations


def main() -> None:
    db = Database()
    db.execute(
        "CREATE TABLE annotations (token_id INT, doc_id INT, label TEXT UNCERTAIN)"
    )

    tokens = generate_annotations(300, seed=17)
    table = db.table("annotations")
    for tok in tokens:
        table.insert(
            certain={"token_id": tok.token_id, "doc_id": tok.doc_id},
            uncertain={"label": tok.pdf},
        )
    print(f"Loaded {len(tokens)} annotated tokens\n")

    print("A sample of the data:")
    print(db.execute("SELECT * FROM annotations LIMIT 5").pretty())
    print()

    # Equality selection over a categorical attribute: the pdf is floored to
    # the 'person' outcome; the tuple survives with that outcome's mass.
    people = db.execute("SELECT token_id FROM annotations WHERE label = 'person'")
    print(f"{people.rowcount} tokens have positive probability of being a person")

    confident = db.execute(
        "SELECT token_id FROM annotations WHERE PROB(label = 'person') >= 0.8"
    )
    print(f"{confident.rowcount} of them with >= 80% confidence\n")

    # COUNT(*) after an uncertain selection is a distribution, not a number:
    count_pdf = db.execute(
        "SELECT COUNT(*) FROM annotations WHERE label = 'person'"
    ).scalar()
    print("How many persons are there? A pdf, as it should be:")
    mean = count_pdf.mean()
    sd = count_pdf.variance() ** 0.5
    print(f"  E[count] = {mean:.2f}, sd = {sd:.2f}")
    peak = max(count_pdf.items(), key=lambda kv: kv[1])
    print(f"  most likely count: {int(peak[0])} (probability {peak[1]:.3f})\n")

    # Partial pdfs encode "might not be an entity at all":
    maybe_missing = db.execute(
        "SELECT token_id FROM annotations WHERE PROB(*) < 0.99"
    )
    print(
        f"{maybe_missing.rowcount} tokens might not be entities at all "
        "(partial pdfs: the missing mass is the probability the tuple "
        "does not exist)"
    )


if __name__ == "__main__":
    main()
