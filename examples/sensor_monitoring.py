"""Sensor monitoring at scale: the paper's Section IV workload.

Loads a few thousand synthetic sensor readings (Gaussian value pdfs with
the paper's parameter distributions), compares the three storage
representations, runs a monitoring query mix, and reports accuracy and I/O.

Run: ``python examples/sensor_monitoring.py``
"""

from repro import Database
from repro.engine.storage.serialize import pdf_size
from repro.pdf import IntervalSet, discretize, to_histogram
from repro.workloads import generate_range_queries, generate_readings

N_READINGS = 2000
N_QUERIES = 8


def load(db: Database, readings, representation: str, size: int) -> None:
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    table = db.table("readings")
    for r in readings:
        if representation == "symbolic":
            pdf = r.pdf
        elif representation == "histogram":
            pdf = to_histogram(r.pdf, size)
        else:
            pdf = discretize(r.pdf, size)
        table.insert(certain={"rid": r.rid}, uncertain={"value": pdf})
    db.catalog.pool.flush_all()


def main() -> None:
    readings = generate_readings(N_READINGS, seed=2026)
    queries = generate_range_queries(N_QUERIES, seed=7)

    print(f"{N_READINGS} sensor readings, {N_QUERIES} range queries\n")
    print(f"{'repr':<12} {'bytes/pdf':>9} {'pages':>6} {'page reads':>10} "
          f"{'rows':>6} {'mean |err|':>10}")

    exact_answers = {}
    for representation, size in (("symbolic", 0), ("histogram", 5), ("discrete", 25)):
        db = Database(buffer_capacity=64)
        load(db, readings, representation, size)
        db.catalog.pool.clear()
        db.reset_io_stats()

        rows = 0
        total_error = 0.0
        comparisons = 0
        for qi, q in enumerate(queries):
            result = db.execute(
                f"SELECT rid FROM readings WHERE value > {q.lo} AND value < {q.hi}"
            )
            rows += len(result)
            # Accuracy vs the exact symbolic answer, per qualifying tuple.
            window = IntervalSet.between(q.lo, q.hi)
            if representation == "symbolic":
                exact_answers[qi] = {
                    r.rid: r.pdf.prob_interval(window) for r in readings
                }
            else:
                for r in readings:
                    if representation == "histogram":
                        approx_pdf = to_histogram(r.pdf, size)
                    else:
                        approx_pdf = discretize(r.pdf, size)
                    total_error += abs(
                        approx_pdf.prob_interval(window) - exact_answers[qi][r.rid]
                    )
                    comparisons += 1

        sample = readings[0].pdf
        if representation == "histogram":
            sample = to_histogram(sample, size)
        elif representation == "discrete":
            sample = discretize(sample, size)
        mean_err = total_error / comparisons if comparisons else 0.0
        table = db.table("readings")
        print(
            f"{representation:<12} {pdf_size(sample):>9} {table.heap.num_pages:>6} "
            f"{db.io_counters.reads:>10} {rows:>6} {mean_err:>10.5f}"
        )

    print(
        "\nThe symbolic representation is exact and smallest; the 25-point\n"
        "discrete sampling needs ~5x the bytes of the 5-bucket histogram for\n"
        "comparable accuracy — the trade-off behind the paper's Figures 4-5."
    )


if __name__ == "__main__":
    main()
