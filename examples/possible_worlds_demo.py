"""Possible worlds, made visible: the paper's Tables II & III and Figure 3.

Expands the paper's example database into its possible worlds, evaluates
the σ_{a<b} selection both ways (brute force vs the model's operators), and
replays the Figure 3 history example — including the *wrong* answer you get
when histories are ignored.

Run: ``python examples/possible_worlds_demo.py``
"""

from repro.core import (
    Column,
    Comparison,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    TruePredicate,
    col,
    enumerate_worlds,
    expected_multiplicities,
    join,
    model_multiplicities,
    project,
    select,
    world_join,
    world_project,
    world_select,
)
from repro.pdf import DiscretePdf, JointDiscretePdf


def table_ii() -> ProbabilisticRelation:
    schema = ProbabilisticSchema(
        [Column("a", DataType.INT), Column("b", DataType.INT)], [{"a"}, {"b"}]
    )
    rel = ProbabilisticRelation(schema, name="T")
    rel.insert(
        uncertain={
            "a": DiscretePdf({0: 0.1, 1: 0.9}),
            "b": DiscretePdf({1: 0.6, 2: 0.4}),
        }
    )
    rel.insert(uncertain={"a": DiscretePdf({7: 1.0}), "b": DiscretePdf({3: 1.0})})
    return rel


def show_multiplicities(title, mult):
    print(title)
    for key in sorted(mult, key=lambda k: tuple(sorted(k))):
        row = dict(key)
        print(f"  {row} -> {mult[key]:.4f}")
    print()


def main() -> None:
    rel = table_ii()
    print("Paper Table II as a probabilistic relation:")
    print(rel.pretty())
    print()

    print("Its possible worlds (paper Table III):")
    for world in enumerate_worlds({"T": rel}):
        rows = [(int(r["a"]), int(r["b"])) for r in world.relations["T"]]
        print(f"  P = {world.probability:.3f}   {rows}")
    print()

    pred = Comparison("a", "<", col("b"))
    pws = expected_multiplicities({"T": rel}, lambda w: world_select(w["T"], pred))
    show_multiplicities("σ_{a<b} by brute-force world enumeration:", pws)

    selected = select(rel, pred)
    got = model_multiplicities(selected)
    show_multiplicities("σ_{a<b} by the model's operators (no enumeration):", got)
    print("The resulting joint pdf (paper Section III-C):")
    print(" ", selected.tuples[0].pdfs[frozenset({"a", "b"})])
    print()

    # --- Figure 3 ---
    schema = ProbabilisticSchema(
        [Column("a", DataType.INT), Column("b", DataType.INT)], [{"a", "b"}]
    )
    t = ProbabilisticRelation(schema, name="T")
    t.insert(uncertain={("a", "b"): JointDiscretePdf(("a", "b"), {(4, 5): 0.9, (2, 3): 0.1})})
    t.insert(uncertain={("a", "b"): JointDiscretePdf(("a", "b"), {(7, 3): 0.7})})

    ta = project(t, ["a"])
    tb = project(select(t, Comparison("b", ">", 4)), ["b"])

    correct = model_multiplicities(join(ta, tb, TruePredicate()))
    show_multiplicities("Figure 3 join WITH histories (correct):", correct)

    cfg = ModelConfig(use_history=False)
    wrong = model_multiplicities(join(ta, tb, TruePredicate(), cfg), cfg)
    show_multiplicities(
        "Figure 3 join WITHOUT histories (the paper's 'Incorrect!' table):", wrong
    )
    print(
        "Without histories the tuple (2, 5) appears with probability 0.09 —\n"
        "a value combination that exists in no possible world."
    )


if __name__ == "__main__":
    main()
