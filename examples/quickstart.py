"""Quickstart: the paper's Table I sensor database, in SQL.

Creates the sensor relation from the paper's running example, runs range
queries (selection floors Gaussians symbolically), probabilistic threshold
queries, and aggregates.

Run: ``python examples/quickstart.py``
"""

from repro import Database


def main() -> None:
    db = Database()

    # Table I: Sensor(id, location) with Gaussian location readings.
    db.execute("CREATE TABLE sensors (id INT, location REAL UNCERTAIN)")
    db.execute(
        "INSERT INTO sensors VALUES "
        "(1, GAUS(20, 5)), "  # Gaus(mean, variance), as in the paper
        "(2, GAUS(25, 4)), "
        "(3, GAUS(13, 1))"
    )

    print("The sensor table (paper Table I):")
    print(db.execute("SELECT * FROM sensors").pretty())
    print()

    # A range query: which sensors read between 18 and 22?
    # Selection floors each Gaussian symbolically; tuples keep partial mass.
    result = db.execute("SELECT * FROM sensors WHERE location > 18 AND location < 22")
    print("Sensors with location in (18, 22)  —  note the symbolic floors:")
    print(result.pretty())
    print()
    for t in result.rows:
        pdf = t.pdf_of_attr("location")
        print(
            f"  sensor {t.certain['id']}: qualifies with probability "
            f"{pdf.mass():.4f}"
        )
    print()

    # Threshold query (Section III-E): demand at least 50% confidence.
    confident = db.execute(
        "SELECT id FROM sensors WHERE PROB(location > 18 AND location < 22) >= 0.5"
    )
    print("With >= 50% confidence, only:", [r["id"] for r in confident.to_dicts()])
    print()

    # Aggregates over uncertain attributes return *distributions*.
    total = db.execute("SELECT SUM(location) FROM sensors").scalar()
    print(f"SUM(location) is itself a pdf: {total!r}")
    expected = db.execute("SELECT EXPECTED(location) FROM sensors").scalar()
    print(f"EXPECTED(location) = {expected}")
    print()

    # EXPLAIN shows the executor plan; add an index and watch it change.
    db.execute("CREATE PROB INDEX ON sensors (location)")
    plan = db.execute(
        "EXPLAIN SELECT id FROM sensors WHERE location > 18 AND location < 22"
    ).plan_text
    print("Plan with a probability-threshold index:")
    print(plan)


if __name__ == "__main__":
    main()
