"""Data cleansing: multiple alternatives for an incorrect value.

The paper's introduction lists data cleansing among the motivating
applications: when a value fails validation, the cleansing process often
produces *several candidate corrections* with confidences.  Instead of
picking one (and being wrong some of the time), the probabilistic database
stores the **mixture** of candidates — and every later query accounts for
the remaining uncertainty automatically.

Run: ``python examples/data_cleansing.py``
"""

from repro import Database
from repro.pdf import DiscretePdf, GaussianPdf, mixture


def main() -> None:
    db = Database()
    db.execute("CREATE TABLE salaries (emp_id INT, name TEXT, salary REAL UNCERTAIN)")

    # Clean rows are point masses (a certain value, stored uniformly).
    db.execute("INSERT INTO salaries VALUES (1, 'ada', 84000), (2, 'grace', 91000)")

    # Row 3 failed validation: the form said 7200, which violates the
    # plausible range.  The cleansing model proposes three candidate fixes.
    candidates = [
        DiscretePdf({72000: 1.0}),   # missing a zero
        DiscretePdf({7200.0: 1.0}),  # actually a part-time salary, keep it
        GaussianPdf(65000, 9e6),     # imputed from peers (sd 3000)
    ]
    confidences = [0.6, 0.1, 0.3]
    repaired = mixture(candidates, confidences, bins=256)
    db.table("salaries").insert(
        certain={"emp_id": 3, "name": "mallory"}, uncertain={"salary": repaired}
    )
    print("The cleansed table keeps all three hypotheses:")
    print(db.execute("SELECT * FROM salaries").pretty())
    print()

    # Who earns more than 70k? Mallory qualifies only with the mass of the
    # hypotheses that put her above the bar.
    result = db.execute("SELECT name FROM salaries WHERE salary > 70000")
    print("P(salary > 70000):")
    for t in result.rows:
        print(f"  {t.certain['name']:<8} {db.existence_probability(t):.4f}")
    print()

    confident = db.execute(
        "SELECT name FROM salaries WHERE PROB(salary > 70000) >= 0.9"
    ).to_dicts()
    print("With >= 90% confidence, only:", [r["name"] for r in confident])
    print()

    # Payroll total is a distribution reflecting the unresolved cleansing.
    total = db.execute("SELECT SUM(salary) FROM salaries").scalar()
    print(f"Total payroll: mean {total.mean():,.0f}, sd {total.variance() ** 0.5:,.0f}")
    print()

    # Later, HR confirms the part-time hypothesis: UPDATE replaces the
    # mixture with fresh evidence (a new base pdf, old history released).
    db.execute("UPDATE salaries SET salary = 7200 WHERE emp_id = 3")
    total = db.execute("SELECT SUM(salary) FROM salaries").scalar()
    print(f"After confirmation: total payroll mean {total.mean():,.0f}, "
          f"sd {total.variance() ** 0.5:,.1f}")


if __name__ == "__main__":
    main()
