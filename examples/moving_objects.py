"""Moving objects: joint 2-D location uncertainty (paper Section II-A).

Tracks objects whose (x, y) positions are correlated bivariate Gaussians —
the paper's motivating case for *joint dependency sets*.  Shows window
queries over the joint pdf, marginalisation, nearest-region confidence, and
the model API used directly (no SQL).

Run: ``python examples/moving_objects.py``
"""

import numpy as np

from repro.core import (
    And,
    Comparison,
    existence_probability,
    project,
    select,
    threshold_select,
)
from repro.pdf import BoxRegion, IntervalSet
from repro.workloads import generate_moving_objects, load_objects_relation


def main() -> None:
    objects = generate_moving_objects(50, seed=9, area=100.0)
    relation = load_objects_relation(objects)
    print(f"Tracking {len(relation)} objects with correlated 2-D Gaussian positions\n")

    # Who is inside the surveillance window [40,60] x [40,60]?
    window = And(
        [
            Comparison("x", ">", 40), Comparison("x", "<", 60),
            Comparison("y", ">", 40), Comparison("y", "<", 60),
        ]
    )
    inside = select(relation, window)
    print(f"{len(inside)} objects have positive probability of being in the window:")
    ranked = sorted(
        ((existence_probability(inside, t), t.certain["oid"]) for t in inside),
        reverse=True,
    )
    for prob, oid in ranked[:8]:
        print(f"  object {oid:>3}: P(in window) = {prob:.4f}")
    print()

    # Keep only confident detections (threshold query on Pr).
    confident = threshold_select(inside, None, ">=", 0.5, )
    print(f"{len(confident)} objects are in the window with >= 50% confidence\n")

    # Projection to x keeps the (floored) joint alive through phantoms when
    # mass is partial — correlation information is never silently dropped.
    xs = project(inside, ["oid", "x"])
    print("After projecting to (oid, x), the schema still remembers y:")
    print(f"  dependency sets: {[sorted(s) for s in xs.schema.dependency][:3]} ...")
    print(f"  phantom attributes: {sorted(xs.schema.phantom_attrs)}\n")

    # Direct pdf work: correlation matters. Compare the joint probability of
    # a diagonal strip with what independent marginals would claim.
    obj = objects[0]
    joint = obj.pdf
    strip = BoxRegion(
        {
            "x": IntervalSet.between(obj.mean_x - 1, obj.mean_x + 1),
            "y": IntervalSet.between(obj.mean_y - 1, obj.mean_y + 1),
        }
    )
    p_joint = joint.prob(strip)
    p_indep = joint.marginalize(["x"]).prob(
        BoxRegion({"x": strip.interval_set("x")})
    ) * joint.marginalize(["y"]).prob(BoxRegion({"y": strip.interval_set("y")}))
    print(
        f"Object {obj.oid} (correlation {obj.correlation:+.2f}): "
        f"P(joint box) = {p_joint:.4f} vs independent-marginals {p_indep:.4f}"
    )
    print("Correlated uncertainty cannot be faithfully stored as two 1-D pdfs —")
    print("which is exactly why the model supports joint dependency sets.\n")

    # Probabilistic nearest neighbor: who is closest to the incident site?
    from repro.core import nearest_neighbor_probabilities

    site = [50.0, 50.0]
    ranked = sorted(
        (
            (p, t.certain["oid"])
            for t, p in nearest_neighbor_probabilities(relation, ["x", "y"], site)
        ),
        reverse=True,
    )
    print(f"P(object is the nearest neighbor of {site}):")
    for p, oid in ranked[:5]:
        print(f"  object {oid:>3}: {p:.4f}")
    print(f"  (probabilities over all {len(relation)} objects sum to "
          f"{sum(p for p, _ in ranked):.4f})")


if __name__ == "__main__":
    main()
