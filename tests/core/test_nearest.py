"""Probabilistic nearest-neighbor query tests (validated vs Monte Carlo)."""

import numpy as np
import pytest

from repro.core import (
    Column,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
    distance_distribution,
    nearest_neighbor_probabilities,
)
from repro.errors import QueryError, UnsupportedOperationError
from repro.pdf import DiscretePdf, GaussianPdf, JointGaussianPdf, UniformPdf


def _locations_1d(pdfs):
    schema = ProbabilisticSchema(
        [Column("oid", DataType.INT), Column("x", DataType.REAL)], [{"x"}]
    )
    rel = ProbabilisticRelation(schema)
    for i, pdf in enumerate(pdfs):
        rel.insert(certain={"oid": i}, uncertain={"x": pdf})
    return rel


class TestDistanceDistribution:
    def test_uniform_distance_exact(self):
        # X ~ U(0, 10), q = 0: D = X ~ U(0, 10).
        d = distance_distribution(UniformPdf(0, 10), [0.0])
        assert d.mass() == pytest.approx(1.0, abs=1e-9)
        assert d.mean() == pytest.approx(5.0, abs=0.05)

    def test_centered_gaussian_folded(self):
        # |N(0,1)| has mean sqrt(2/pi).
        d = distance_distribution(GaussianPdf(0, 1), [0.0])
        assert d.mean() == pytest.approx(np.sqrt(2 / np.pi), abs=0.02)

    def test_partial_mass_preserved(self):
        from repro.pdf import BoxRegion, IntervalSet

        partial = GaussianPdf(0, 1).restrict(
            BoxRegion({"x": IntervalSet.less_than(0)})
        )
        d = distance_distribution(partial, [0.0])
        assert d.mass() == pytest.approx(0.5, abs=1e-6)

    def test_2d_distance_monte_carlo(self, rng):
        jg = JointGaussianPdf(("x", "y"), [3, 4], [[1, 0.3], [0.3, 2]])
        d = distance_distribution(jg, [0.0, 0.0], bins=512)
        draws = rng.multivariate_normal([3, 4], [[1, 0.3], [0.3, 2]], 100_000)
        mc = np.sqrt((draws**2).sum(axis=1)).mean()
        assert d.mean() == pytest.approx(mc, abs=0.05)

    def test_dimension_mismatch(self):
        with pytest.raises(QueryError):
            distance_distribution(GaussianPdf(0, 1), [0.0, 1.0])


class TestNearestNeighbor:
    def test_two_uniforms_symmetric(self):
        rel = _locations_1d([UniformPdf(0, 10), UniformPdf(0, 10)])
        probs = [p for _, p in nearest_neighbor_probabilities(rel, ["x"], [0.0])]
        assert probs[0] == pytest.approx(0.5, abs=0.01)
        assert sum(probs) == pytest.approx(1.0, abs=0.01)

    def test_obvious_winner(self):
        rel = _locations_1d([GaussianPdf(1, 0.25), GaussianPdf(100, 0.25)])
        probs = dict(
            (t.certain["oid"], p)
            for t, p in nearest_neighbor_probabilities(rel, ["x"], [0.0])
        )
        assert probs[0] == pytest.approx(1.0, abs=1e-6)
        assert probs[1] == pytest.approx(0.0, abs=1e-6)

    def test_monte_carlo_1d(self, rng):
        pdfs = [GaussianPdf(2, 1), GaussianPdf(3, 4), UniformPdf(0, 6)]
        rel = _locations_1d(pdfs)
        got = [p for _, p in nearest_neighbor_probabilities(rel, ["x"], [2.5], bins=1024)]
        samples = np.stack(
            [
                rng.normal(2, 1, 100_000),
                rng.normal(3, 2, 100_000),
                rng.uniform(0, 6, 100_000),
            ]
        )
        dist = np.abs(samples - 2.5)
        winners = np.argmin(dist, axis=0)
        mc = [np.mean(winners == i) for i in range(3)]
        for g, m in zip(got, mc):
            assert g == pytest.approx(m, abs=0.02)

    def test_partial_tuples_reduce_total(self):
        rel = _locations_1d([DiscretePdf({1.0: 0.5}), DiscretePdf({2.0: 0.5})])
        result = nearest_neighbor_probabilities(rel, ["x"], [0.0])
        total = sum(p for _, p in result)
        # P(at least one exists) = 1 - 0.25.
        assert total == pytest.approx(0.75, abs=0.01)
        # The closer one wins whenever it exists.
        assert result[0][1] == pytest.approx(0.5, abs=0.01)
        assert result[1][1] == pytest.approx(0.25, abs=0.01)

    def test_2d_joint_locations(self, rng):
        schema = ProbabilisticSchema(
            [Column("oid", DataType.INT), Column("x"), Column("y")], [{"x", "y"}]
        )
        rel = ProbabilisticRelation(schema)
        params = [([0, 0], [[1, 0], [0, 1]]), ([2, 2], [[1, 0.5], [0.5, 1]])]
        for i, (mean, cov) in enumerate(params):
            rel.insert(
                certain={"oid": i},
                uncertain={("x", "y"): JointGaussianPdf(("x", "y"), mean, cov)},
            )
        got = [
            p
            for _, p in nearest_neighbor_probabilities(rel, ["x", "y"], [1.0, 1.0], bins=512)
        ]
        draws = [
            rng.multivariate_normal(mean, cov, 100_000) for mean, cov in params
        ]
        dists = [np.sqrt(((d - [1.0, 1.0]) ** 2).sum(axis=1)) for d in draws]
        mc0 = np.mean(dists[0] < dists[1])
        assert got[0] == pytest.approx(mc0, abs=0.02)

    def test_certain_attr_rejected(self):
        rel = _locations_1d([UniformPdf(0, 1)])
        with pytest.raises(QueryError):
            nearest_neighbor_probabilities(rel, ["oid"], [0.0])

    def test_dependent_tuples_rejected(self, figure3_relation):
        from repro.core import cross_product, prefix_attrs, project

        ta = project(figure3_relation, ["a"])
        tb = project(figure3_relation, ["b"])
        crossed = cross_product(ta, tb)
        with pytest.raises(UnsupportedOperationError):
            nearest_neighbor_probabilities(crossed, ["a"], [0.0])

    def test_empty_relation(self):
        rel = _locations_1d([])
        assert nearest_neighbor_probabilities(rel, ["x"], [0.0]) == []
