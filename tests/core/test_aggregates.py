"""Aggregate tests: COUNT / SUM / EXPECTED / MIN / MAX over uncertain data."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Column,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
    assert_tuples_independent,
    count_distribution,
    cross_product,
    expected_value,
    max_distribution,
    min_distribution,
    project,
    sum_distribution,
)
from repro.errors import QueryError, UnsupportedOperationError
from repro.pdf import DiscretePdf, GaussianPdf, IntervalSet, JointDiscretePdf, UniformPdf


def _value_relation(pdfs):
    schema = ProbabilisticSchema(
        [Column("id", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
    )
    rel = ProbabilisticRelation(schema)
    for i, pdf in enumerate(pdfs):
        rel.insert(certain={"id": i}, uncertain={"v": pdf})
    return rel


class TestCount:
    def test_certain_tuples(self):
        rel = _value_relation([DiscretePdf({1: 1.0}), DiscretePdf({2: 1.0})])
        dist = count_distribution(rel)
        assert float(dist.pdf_at(2)) == pytest.approx(1.0)

    def test_partial_tuples_poisson_binomial(self):
        rel = _value_relation([DiscretePdf({1: 0.5}), DiscretePdf({2: 0.5})])
        dist = count_distribution(rel)
        assert float(dist.pdf_at(0)) == pytest.approx(0.25)
        assert float(dist.pdf_at(1)) == pytest.approx(0.5)
        assert float(dist.pdf_at(2)) == pytest.approx(0.25)

    def test_empty_relation(self):
        rel = _value_relation([])
        dist = count_distribution(rel)
        assert float(dist.pdf_at(0)) == pytest.approx(1.0)

    def test_count_mean_is_sum_of_probs(self):
        probs = [0.3, 0.5, 0.9]
        rel = _value_relation([DiscretePdf({1: p}) for p in probs])
        dist = count_distribution(rel)
        assert dist.mean() == pytest.approx(sum(probs))

    def test_dependent_tuples_rejected(self, figure3_relation):
        ta = project(figure3_relation, ["a"])
        tb = project(figure3_relation, ["b"])
        crossed = cross_product(ta, tb)
        with pytest.raises(UnsupportedOperationError):
            count_distribution(crossed)


class TestSum:
    def test_exact_discrete(self):
        rel = _value_relation(
            [DiscretePdf({0: 0.5, 1: 0.5}), DiscretePdf({0: 0.5, 1: 0.5})]
        )
        dist = sum_distribution(rel, "v", method="exact")
        assert float(dist.pdf_at(1)) == pytest.approx(0.5)

    def test_absent_tuple_contributes_zero(self):
        rel = _value_relation([DiscretePdf({10: 0.5})])
        dist = sum_distribution(rel, "v", method="exact")
        assert float(dist.pdf_at(0)) == pytest.approx(0.5)
        assert float(dist.pdf_at(10)) == pytest.approx(0.5)

    def test_gaussian_closed_form(self):
        rel = _value_relation([GaussianPdf(1, 2), GaussianPdf(3, 4)])
        dist = sum_distribution(rel, "v", method="gaussian")
        assert dist.mean() == pytest.approx(4.0)
        assert dist.variance() == pytest.approx(6.0)

    def test_gaussian_approx_of_partial_continuous(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        from repro.pdf import BoxRegion

        partial = GaussianPdf(10, 1).restrict(
            BoxRegion({"x": IntervalSet.less_than(10)})
        )
        rel.insert(uncertain={"v": partial})
        dist = sum_distribution(rel, "v", method="gaussian")
        # E[contribution] = mass * conditional mean.
        expected_mean = partial.mass() * partial.mean()
        assert dist.mean() == pytest.approx(expected_mean, abs=0.05)

    def test_certain_attr_rejected(self):
        rel = _value_relation([DiscretePdf({1: 1.0})])
        with pytest.raises(QueryError):
            sum_distribution(rel, "id")

    def test_empty_relation_sum_is_zero(self):
        rel = _value_relation([])
        dist = sum_distribution(rel, "v")
        assert float(dist.pdf_at(0)) == pytest.approx(1.0)


class TestExpectedValue:
    def test_weighted_by_existence(self):
        rel = _value_relation([DiscretePdf({10: 0.5}), DiscretePdf({4: 1.0})])
        assert expected_value(rel, "v") == pytest.approx(0.5 * 10 + 4)

    def test_matches_exact_sum_mean(self):
        rel = _value_relation(
            [DiscretePdf({1: 0.3, 5: 0.4}), DiscretePdf({2: 0.9, 3: 0.1})]
        )
        exact = sum_distribution(rel, "v", method="exact")
        assert expected_value(rel, "v") == pytest.approx(exact.mean())


class TestMinMax:
    def test_max_of_uniforms(self):
        rel = _value_relation([UniformPdf(0, 1), UniformPdf(0, 1)])
        dist = max_distribution(rel, "v", bins=512)
        # P(max <= x) = x^2 -> mean 2/3.
        assert dist.mean() == pytest.approx(2 / 3, abs=0.01)

    def test_min_of_uniforms(self):
        rel = _value_relation([UniformPdf(0, 1), UniformPdf(0, 1)])
        dist = min_distribution(rel, "v", bins=512)
        assert dist.mean() == pytest.approx(1 / 3, abs=0.01)

    def test_max_dominates_min(self):
        rel = _value_relation([GaussianPdf(0, 1), GaussianPdf(1, 1)])
        mx = max_distribution(rel, "v")
        mn = min_distribution(rel, "v")
        assert mx.mean() > mn.mean()

    def test_partial_tuples_rejected(self):
        rel = _value_relation([DiscretePdf({1: 0.5})])
        with pytest.raises(UnsupportedOperationError):
            max_distribution(rel, "v")

    def test_empty_relation_rejected(self):
        rel = _value_relation([])
        with pytest.raises(QueryError):
            min_distribution(rel, "v")


class TestIndependenceCheck:
    def test_independent_passes(self):
        rel = _value_relation([DiscretePdf({1: 1.0}), DiscretePdf({2: 1.0})])
        assert_tuples_independent(rel)  # no raise

    def test_shared_ancestors_rejected(self, figure3_relation):
        ta = project(figure3_relation, ["a"])
        tb = project(figure3_relation, ["b"])
        crossed = cross_product(ta, tb)
        with pytest.raises(UnsupportedOperationError):
            assert_tuples_independent(crossed)


@settings(max_examples=30, deadline=None)
@given(
    probs=st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=6)
)
def test_count_distribution_is_valid_pmf(probs):
    rel = _value_relation([DiscretePdf({1: p}) for p in probs])
    dist = count_distribution(rel)
    assert dist.mass() == pytest.approx(1.0, abs=1e-9)
    assert dist.values.min() >= 0 and dist.values.max() <= len(probs)


@settings(max_examples=25, deadline=None)
@given(
    tables=st.lists(
        st.dictionaries(
            st.integers(min_value=0, max_value=5).map(float),
            st.floats(min_value=0.05, max_value=1.0),
            min_size=1,
            max_size=3,
        ),
        min_size=1,
        max_size=4,
    )
)
def test_exact_sum_matches_monte_carlo_mean(tables):
    normalized = []
    for t in tables:
        total = sum(t.values())
        normalized.append({k: v / total for k, v in t.items()})
    rel = _value_relation([DiscretePdf(t) for t in normalized])
    dist = sum_distribution(rel, "v", method="exact")
    expected = sum(
        sum(k * p for k, p in t.items()) for t in normalized
    )
    assert dist.mean() == pytest.approx(expected, abs=1e-9)
