"""Duplicate-elimination tests (the restricted future-work operator)."""

import pytest

from repro.core import (
    Column,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
    cross_product,
    enumerate_worlds,
    existence_probability,
    expected_multiplicities,
    project,
    select,
)
from repro.core.distinct import EXISTS_ATTR, distinct
from repro.core.predicates import Comparison
from repro.errors import UnsupportedOperationError
from repro.pdf import DiscretePdf, JointDiscretePdf


def _tagged_relation():
    """Tuples with a certain tag and a partial pdf deciding existence."""
    schema = ProbabilisticSchema(
        [Column("tag", DataType.TEXT), Column("v", DataType.INT)], [{"v"}]
    )
    rel = ProbabilisticRelation(schema, name="T")
    rel.insert(certain={"tag": "a"}, uncertain={"v": DiscretePdf({1: 0.5})})
    rel.insert(certain={"tag": "a"}, uncertain={"v": DiscretePdf({2: 0.5})})
    rel.insert(certain={"tag": "b"}, uncertain={"v": DiscretePdf({3: 1.0})})
    return rel


class TestDistinct:
    def test_group_probabilities(self):
        rel = _tagged_relation()
        projected = project(rel, ["tag"])
        out = distinct(projected)
        assert len(out) == 2
        by_tag = {t.certain["tag"]: t for t in out}
        # P(some 'a' row exists) = 1 - 0.5 * 0.5 = 0.75
        assert existence_probability(out, by_tag["a"]) == pytest.approx(0.75)
        assert existence_probability(out, by_tag["b"]) == pytest.approx(1.0)

    def test_matches_possible_worlds(self):
        rel = _tagged_relation()
        projected = project(rel, ["tag"])
        out = distinct(projected)

        # Brute force: P(tag present in the distinct result)
        presence = {}
        for world in enumerate_worlds({"T": rel}):
            tags = {r["tag"] for r in world.relations["T"]}
            for tag in tags:
                presence[tag] = presence.get(tag, 0.0) + world.probability
        by_tag = {t.certain["tag"]: t for t in out}
        for tag, prob in presence.items():
            assert existence_probability(out, by_tag[tag]) == pytest.approx(prob)

    def test_schema_uses_exists_phantom(self):
        out = distinct(project(_tagged_relation(), ["tag"]))
        assert out.schema.visible_attrs == ("tag",)
        assert out.schema.phantom_attrs == {EXISTS_ATTR}

    def test_order_of_first_appearance(self):
        out = distinct(project(_tagged_relation(), ["tag"]))
        assert [t.certain["tag"] for t in out] == ["a", "b"]

    def test_uncertain_visible_attr_rejected(self):
        rel = _tagged_relation()
        with pytest.raises(UnsupportedOperationError):
            distinct(rel)  # 'v' is visible and uncertain

    def test_historically_dependent_duplicates_rejected(self):
        schema = ProbabilisticSchema(
            [Column("a", DataType.INT), Column("b", DataType.INT)], [{"a", "b"}]
        )
        rel = ProbabilisticRelation(schema, name="T")
        rel.insert(
            uncertain={("a", "b"): JointDiscretePdf(("a", "b"), {(1, 1): 0.5, (2, 2): 0.3})}
        )
        left = project(rel, [])  # no visible columns; partial set kept as phantoms
        # Build a relation where the same ancestor appears in two tuples with
        # equal certain values: cross the projection with itself.
        from repro.core import prefix_attrs

        crossed = cross_product(prefix_attrs(left, "l"), prefix_attrs(left, "r"))
        # Two identical (empty) keys, sharing ancestors -> refused.
        doubled = ProbabilisticRelation(crossed.schema, crossed.store)
        for t in crossed.tuples:
            doubled.add_tuple(t, acquire=False)
            doubled.add_tuple(t, acquire=False)
        with pytest.raises(UnsupportedOperationError):
            distinct(doubled)

    def test_all_certain_relation(self):
        schema = ProbabilisticSchema([Column("x", DataType.INT)])
        rel = ProbabilisticRelation(schema)
        for v in (1, 2, 2, 1, 3):
            rel.insert(certain={"x": v})
        out = distinct(rel)
        assert [t.certain["x"] for t in out] == [1, 2, 3]
        for t in out:
            assert existence_probability(out, t) == pytest.approx(1.0)

    def test_null_values_group_together(self):
        schema = ProbabilisticSchema([Column("x", DataType.INT)])
        rel = ProbabilisticRelation(schema)
        rel.insert(certain={"x": None})
        rel.insert(certain={"x": None})
        out = distinct(rel)
        assert len(out) == 1
