"""Predicate AST tests: three-valued evaluation and region denotation."""

import pytest

from repro.core.predicates import And, Comparison, Not, Or, TruePredicate, col
from repro.errors import QueryError
from repro.pdf.regions import (
    BoxRegion,
    ComplementRegion,
    IntersectionRegion,
    IntervalSet,
    PredicateRegion,
    UnionRegion,
)


class TestEvaluation:
    def test_comparisons(self):
        row = {"a": 5, "b": 3}
        assert Comparison("a", ">", 4).evaluate(row) is True
        assert Comparison("a", "<", 4).evaluate(row) is False
        assert Comparison("a", "=", 5).evaluate(row) is True
        assert Comparison("a", "!=", 5).evaluate(row) is False
        assert Comparison("a", ">=", 5).evaluate(row) is True
        assert Comparison("a", "<=", 4).evaluate(row) is False

    def test_column_comparison(self):
        assert Comparison("a", ">", col("b")).evaluate({"a": 5, "b": 3}) is True
        assert Comparison("a", "=", col("b")).evaluate({"a": 5, "b": 5}) is True

    def test_string_comparison(self):
        assert Comparison("s", "=", "cat").evaluate({"s": "cat"}) is True
        assert Comparison("s", "!=", "cat").evaluate({"s": "dog"}) is True

    def test_null_is_unknown(self):
        assert Comparison("a", ">", 4).evaluate({"a": None}) is None
        assert Comparison("a", ">", col("b")).evaluate({"a": 1, "b": None}) is None
        assert Comparison("a", ">", 4).evaluate({}) is None

    def test_and_three_valued(self):
        t = Comparison("a", ">", 0)
        f = Comparison("a", "<", 0)
        u = Comparison("missing", ">", 0)
        row = {"a": 1}
        assert And([t, t]).evaluate(row) is True
        assert And([t, f]).evaluate(row) is False
        assert And([t, u]).evaluate(row) is None
        assert And([f, u]).evaluate(row) is False  # False dominates unknown

    def test_or_three_valued(self):
        t = Comparison("a", ">", 0)
        f = Comparison("a", "<", 0)
        u = Comparison("missing", ">", 0)
        row = {"a": 1}
        assert Or([f, t]).evaluate(row) is True
        assert Or([f, f]).evaluate(row) is False
        assert Or([f, u]).evaluate(row) is None
        assert Or([t, u]).evaluate(row) is True  # True dominates unknown

    def test_not_three_valued(self):
        row = {"a": 1}
        assert Not(Comparison("a", ">", 0)).evaluate(row) is False
        assert Not(Comparison("missing", ">", 0)).evaluate(row) is None

    def test_true_predicate(self):
        assert TruePredicate().evaluate({}) is True

    def test_operator_sugar(self):
        p = Comparison("a", ">", 0) & Comparison("a", "<", 10) | ~Comparison("a", "=", 5)
        assert p.evaluate({"a": 3}) is True

    def test_attrs(self):
        p = And([Comparison("a", ">", 0), Comparison("b", "<", col("c"))])
        assert p.attrs() == {"a", "b", "c"}

    def test_unknown_operator_rejected(self):
        with pytest.raises(QueryError):
            Comparison("a", "~", 3)

    def test_empty_and_rejected(self):
        with pytest.raises(QueryError):
            And([])


class TestRegions:
    def test_const_comparison_is_box(self):
        region = Comparison("a", "<", 5).to_region()
        assert isinstance(region, BoxRegion)
        assert region.contains_point({"a": 4.9})
        assert not region.contains_point({"a": 5.0})

    def test_equality_is_point(self):
        region = Comparison("a", "=", 5).to_region()
        assert region.contains_point({"a": 5.0})
        assert not region.contains_point({"a": 5.1})

    def test_inequality_excludes_point(self):
        region = Comparison("a", "!=", 5).to_region()
        assert not region.contains_point({"a": 5.0})
        assert region.contains_point({"a": 5.1})

    def test_column_comparison_is_predicate_region(self):
        region = Comparison("a", "<", col("b")).to_region()
        assert isinstance(region, PredicateRegion)
        assert region.contains_point({"a": 1, "b": 2})

    def test_and_of_boxes_stays_box(self):
        p = And([Comparison("a", ">", 0), Comparison("a", "<", 10), Comparison("b", "=", 1)])
        region = p.to_region()
        assert isinstance(region, BoxRegion)
        assert region.interval_set("a") == IntervalSet.between(
            0, 10, closed_lo=False, closed_hi=False
        )

    def test_or_of_same_attr_boxes_stays_box(self):
        p = Or([Comparison("a", "<", 0), Comparison("a", ">", 10)])
        region = p.to_region()
        assert isinstance(region, BoxRegion)
        assert region.contains_point({"a": -1}) and region.contains_point({"a": 11})
        assert not region.contains_point({"a": 5})

    def test_or_of_different_attrs_is_union(self):
        p = Or([Comparison("a", "<", 0), Comparison("b", ">", 10)])
        assert isinstance(p.to_region(), UnionRegion)

    def test_not_of_single_attr_box_stays_box(self):
        p = Not(Comparison("a", "<", 5))
        region = p.to_region()
        assert isinstance(region, BoxRegion)
        assert region.contains_point({"a": 5.0})
        assert not region.contains_point({"a": 4.9})

    def test_mixed_and_falls_back_to_intersection(self):
        p = And([Comparison("a", "<", col("b")), Comparison("a", ">", 0)])
        region = p.to_region()
        assert isinstance(region, IntersectionRegion)
        assert region.contains_point({"a": 1, "b": 2})
        assert not region.contains_point({"a": -1, "b": 2})

    def test_label_resolution(self):
        resolver = lambda attr, label: 42.0
        region = Comparison("tag", "=", "cat").to_region(resolver)
        assert region.contains_point({"tag": 42.0})

    def test_label_without_resolver_rejected(self):
        with pytest.raises(QueryError):
            Comparison("tag", "=", "cat").to_region()

    def test_label_range_rejected(self):
        with pytest.raises(QueryError):
            Comparison("tag", "<", "cat").to_region(lambda a, l: 1.0)

    def test_true_predicate_region_is_everything(self):
        region = TruePredicate().to_region()
        assert region.contains_point({})

    def test_repr_readable(self):
        p = And([Comparison("a", ">", 0), Not(Comparison("b", "=", col("c")))])
        text = repr(p)
        assert "AND" in text and "NOT" in text
