"""Tests for the pdf primitives: marginalize, floor, product, support_region."""

import numpy as np
import pytest

from repro.core import HistoryStore, ModelConfig
from repro.core.history import AncestorRef, fresh_lineage, rename_lineage
from repro.core.operations import floor, marginalize, product, support_region
from repro.errors import HistoryError
from repro.pdf import (
    BoxRegion,
    DiscretePdf,
    FlooredPdf,
    GaussianPdf,
    HistogramPdf,
    IntervalSet,
    JointDiscretePdf,
    JointGridPdf,
    PredicateRegion,
    ProductPdf,
)


class TestPrimitiveWrappers:
    def test_marginalize(self):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.5, (1, 1): 0.5})
        assert marginalize(j, ["a"]).attrs == ("a",)

    def test_floor_removes_region(self):
        g = GaussianPdf(0, 1)
        out = floor(g, BoxRegion({"x": IntervalSet.greater_than(0)}))
        assert out.mass() == pytest.approx(0.5)
        assert float(out.pdf_at(1.0)) == 0.0


class TestSupportRegion:
    def test_full_support_continuous(self):
        assert support_region(GaussianPdf(0, 1)) is None

    def test_floored_gives_box(self):
        g = GaussianPdf(0, 1).restrict(BoxRegion({"x": IntervalSet.less_than(0)}))
        region = support_region(g)
        assert isinstance(region, BoxRegion)
        assert not region.contains_point({"x": 1.0})
        assert region.contains_point({"x": -1.0})

    def test_discrete_points(self):
        d = DiscretePdf({1: 0.5, 3: 0.5}, attr="v")
        region = support_region(d)
        assert region.contains_point({"v": 1.0})
        assert not region.contains_point({"v": 2.0})

    def test_discrete_zero_prob_value_excluded(self):
        d = DiscretePdf({1: 0.0, 3: 1.0}, attr="v")
        region = support_region(d)
        assert not region.contains_point({"v": 1.0})

    def test_histogram_gaps(self):
        h = HistogramPdf([0, 1, 2, 3], [0.5, 0.0, 0.5], attr="v")
        region = support_region(h)
        assert region.contains_point({"v": 0.5})
        assert not region.contains_point({"v": 1.5})

    def test_histogram_all_positive_is_none(self):
        h = HistogramPdf([0, 1, 2], [0.5, 0.5], attr="v")
        assert support_region(h) is None

    def test_joint_discrete_membership(self):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.5, (1, 2): 0.5})
        region = support_region(j)
        assert region.contains_point({"a": 0, "b": 1})
        assert not region.contains_point({"a": 0, "b": 2})

    def test_product_combines_factors(self):
        p = ProductPdf(
            [
                DiscretePdf({1: 1.0}, attr="a"),
                GaussianPdf(0, 1, attr="x"),
            ]
        )
        region = support_region(p)
        assert isinstance(region, BoxRegion)
        assert region.contains_point({"a": 1.0, "x": 5.0})
        assert not region.contains_point({"a": 2.0, "x": 5.0})


def _store_with(*pdfs):
    """Register each pdf as a separate base tuple; return store + lineages."""
    store = HistoryStore()
    lineages = []
    for pdf in pdfs:
        tid = store.new_tuple_id()
        ref = store.register_base(tid, pdf)
        lin = fresh_lineage(ref)
        store.acquire(lin)
        lineages.append(lin)
    return store, lineages


class TestIndependentProduct:
    def test_two_discrete(self):
        a = DiscretePdf({0: 0.1, 1: 0.9}, attr="a")
        b = DiscretePdf({1: 0.6, 2: 0.4}, attr="b")
        store, (la, lb) = _store_with(a, b)
        joint, lineage = product([(a, la), (b, lb)], store)
        assert isinstance(joint, JointDiscretePdf)
        assert float(joint.density({"a": 1, "b": 2})) == pytest.approx(0.36)
        assert lineage == la | lb

    def test_single_input_passthrough(self):
        a = DiscretePdf({0: 1.0}, attr="a")
        store, (la,) = _store_with(a)
        joint, lineage = product([(a, la)], store)
        assert joint is a

    def test_attr_collision_rejected(self):
        a = DiscretePdf({0: 1.0}, attr="a")
        store, (la,) = _store_with(a)
        with pytest.raises(HistoryError):
            product([(a, la), (a, la)], store)

    def test_empty_rejected(self):
        with pytest.raises(HistoryError):
            product([], HistoryStore())


class TestDependentProduct:
    def _figure3_setup(self):
        """One joint base pdf (a, b); derive floored marginals of a and b."""
        base = JointDiscretePdf(("a", "b"), {(4, 5): 0.9, (2, 3): 0.1})
        store = HistoryStore()
        tid = store.new_tuple_id()
        ref = store.register_base(tid, base)
        lin = fresh_lineage(ref)
        store.acquire(lin)
        fa = base.marginalize(["a"])  # Discrete(2:0.1, 4:0.9)
        fb = base.marginalize(["b"]).restrict(
            BoxRegion({"b": IntervalSet.greater_than(4)})
        )  # Discrete(5:0.9)
        return store, fa, fb, lin

    def test_reconstructs_joint_from_ancestor(self):
        store, fa, fb, lin = self._figure3_setup()
        joint, lineage = product([(fa, lin), (fb, lin)], store)
        assert float(joint.density({"a": 4, "b": 5})) == pytest.approx(0.9)
        # (2, 3) was floored away via fb's zero set.
        assert float(joint.density({"a": 2, "b": 3})) == 0.0
        assert joint.mass() == pytest.approx(0.9)

    def test_without_history_config_multiplies_marginals(self):
        store, fa, fb, lin = self._figure3_setup()
        config = ModelConfig(use_history=False)
        joint, _ = product([(fa, lin), (fb, lin)], store, config)
        # Wrong by design: 0.9 * 0.9 = 0.81.
        assert float(joint.density({"a": 4, "b": 5})) == pytest.approx(0.81)

    def test_partially_shared_ancestors(self):
        """One shared ancestor plus one private: D_i and C_j both non-empty."""
        shared = JointDiscretePdf(("a", "b"), {(0, 0): 0.5, (1, 1): 0.5})
        private = DiscretePdf({7: 1.0}, attr="c")
        store = HistoryStore()
        t1 = store.new_tuple_id()
        ref = store.register_base(t1, shared)
        lin_shared = fresh_lineage(ref)
        store.acquire(lin_shared)
        t2 = store.new_tuple_id()
        ref2 = store.register_base(t2, private)
        lin_c = fresh_lineage(ref2)
        store.acquire(lin_c)

        fa = shared.marginalize(["a"])
        # Input 1: joint over (a, c) built independently.
        joint_ac, lin_ac = product([(fa, lin_shared), (private, lin_c)], store)
        fb = shared.marginalize(["b"])
        # Input 2 shares the (a, b) ancestor with input 1 through a.
        final, lineage = product([(joint_ac, lin_ac), (fb, lin_shared)], store)
        # a and b must be perfectly correlated (from the ancestor).
        assert float(final.density({"a": 0, "b": 0, "c": 7})) == pytest.approx(0.5)
        assert float(final.density({"a": 0, "b": 1, "c": 7})) == 0.0
        assert lineage == lin_shared | lin_c

    def test_floors_propagate_from_both_inputs(self):
        base = JointDiscretePdf(("a", "b"), {(i, j): 0.25 for i in (0, 1) for j in (0, 1)})
        store = HistoryStore()
        ref = store.register_base(store.new_tuple_id(), base)
        lin = fresh_lineage(ref)
        store.acquire(lin)
        fa = base.marginalize(["a"]).restrict(BoxRegion({"a": IntervalSet.point(0)}))
        fb = base.marginalize(["b"]).restrict(BoxRegion({"b": IntervalSet.point(1)}))
        joint, _ = product([(fa, lin), (fb, lin)], store)
        assert joint.mass() == pytest.approx(0.25)
        assert float(joint.density({"a": 0, "b": 1})) == pytest.approx(0.25)

    def test_diagonal_aliasing(self):
        """Same base attr under two names: exact diagonal for discrete."""
        base = DiscretePdf({1: 0.5, 2: 0.5}, attr="v")
        store = HistoryStore()
        ref = store.register_base(store.new_tuple_id(), base)
        lin = fresh_lineage(ref)
        store.acquire(lin)
        left = base.with_attrs(["l.v"])
        right = base.with_attrs(["r.v"])
        lin_l = rename_lineage(lin, {"v": "l.v"})
        lin_r = rename_lineage(lin, {"v": "r.v"})
        joint, _ = product([(left, lin_l), (right, lin_r)], store)
        assert float(joint.density({"l.v": 1, "r.v": 1})) == pytest.approx(0.5)
        assert float(joint.density({"l.v": 1, "r.v": 2})) == 0.0

    def test_continuous_dependent_product_keeps_floors(self):
        base = GaussianPdf(0, 1, attr="v")
        store = HistoryStore()
        ref = store.register_base(store.new_tuple_id(), base)
        lin = fresh_lineage(ref)
        store.acquire(lin)
        # Two floored versions of the same Gaussian, joined with a fresh attr.
        floored = base.restrict(BoxRegion({"v": IntervalSet.less_than(0)}))
        other = DiscretePdf({3: 1.0}, attr="k")
        ref2 = store.register_base(store.new_tuple_id(), other)
        lin2 = fresh_lineage(ref2)
        store.acquire(lin2)
        joint, _ = product([(floored, lin), (other, lin2)], store)
        assert joint.mass() == pytest.approx(0.5)
