"""Schema, tuple, and relation tests (Section II structures)."""

import pytest

from repro.core import (
    Column,
    DataType,
    HistoryStore,
    ProbabilisticRelation,
    ProbabilisticSchema,
)
from repro.errors import SchemaError
from repro.pdf import DiscretePdf, GaussianPdf, JointDiscretePdf, JointGaussianPdf


class TestSchema:
    def test_attribute_classification(self):
        schema = ProbabilisticSchema(
            [Column("id", DataType.INT), Column("x", DataType.REAL), Column("y", DataType.REAL)],
            [{"x", "y"}],
        )
        assert schema.certain_attrs == ("id",)
        assert schema.uncertain_attrs == {"x", "y"}
        assert schema.phantom_attrs == frozenset()

    def test_phantom_attrs(self):
        schema = ProbabilisticSchema(
            [Column("a", DataType.INT)], [{"a", "b_hidden"}]
        )
        assert schema.phantom_attrs == {"b_hidden"}
        assert schema.visible_attrs == ("a",)

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            ProbabilisticSchema([Column("a"), Column("a")])

    def test_overlapping_dependency_sets_rejected(self):
        with pytest.raises(SchemaError):
            ProbabilisticSchema([Column("a"), Column("b")], [{"a"}, {"a", "b"}])

    def test_empty_dependency_set_rejected(self):
        with pytest.raises(SchemaError):
            ProbabilisticSchema([Column("a")], [set()])

    def test_dependency_set_of(self):
        schema = ProbabilisticSchema(
            [Column("a"), Column("b"), Column("c")], [{"a", "b"}]
        )
        assert schema.dependency_set_of("a") == frozenset({"a", "b"})
        assert schema.dependency_set_of("c") is None
        assert schema.is_uncertain("b") and not schema.is_uncertain("c")

    def test_unknown_column_raises(self):
        schema = ProbabilisticSchema([Column("a")])
        with pytest.raises(SchemaError):
            schema.column("zzz")

    def test_renamed(self):
        schema = ProbabilisticSchema([Column("a"), Column("b")], [{"a"}])
        renamed = schema.renamed({"a": "x"})
        assert renamed.visible_attrs == ("x", "b")
        assert renamed.is_uncertain("x")

    def test_equality(self):
        s1 = ProbabilisticSchema([Column("a")], [{"a"}])
        s2 = ProbabilisticSchema([Column("a")], [{"a"}])
        assert s1 == s2


class TestInsert:
    def test_paper_table_i(self, sensor_relation):
        assert len(sensor_relation) == 3
        t = sensor_relation.tuples[0]
        assert t.certain["id"] == 1
        pdf = t.pdf_of_attr("location")
        assert pdf.params == {"mean": 20.0, "variance": 5.0}
        assert pdf.attrs == ("location",)

    def test_pdf_renamed_positionally(self):
        schema = ProbabilisticSchema([Column("v", DataType.REAL)], [{"v"}])
        rel = ProbabilisticRelation(schema)
        t = rel.insert(uncertain={"v": GaussianPdf(0, 1, attr="whatever")})
        assert t.pdf_of_attr("v").attrs == ("v",)

    def test_joint_insert(self):
        schema = ProbabilisticSchema(
            [Column("oid", DataType.INT), Column("x"), Column("y")], [{"x", "y"}]
        )
        rel = ProbabilisticRelation(schema)
        jg = JointGaussianPdf(("a", "b"), [0, 0], [[1, 0.5], [0.5, 1]])
        t = rel.insert(certain={"oid": 1}, uncertain={("x", "y"): jg})
        pdf = t.pdfs[frozenset({"x", "y"})]
        assert set(pdf.attrs) == {"x", "y"}

    def test_missing_uncertain_defaults_to_null(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        t = rel.insert()
        assert t.pdf_of_attr("v") is None

    def test_missing_certain_defaults_to_null(self):
        schema = ProbabilisticSchema([Column("id", DataType.INT)])
        rel = ProbabilisticRelation(schema)
        t = rel.insert()
        assert t.certain["id"] is None

    def test_wrong_dependency_set_rejected(self):
        schema = ProbabilisticSchema([Column("x"), Column("y")], [{"x", "y"}])
        rel = ProbabilisticRelation(schema)
        with pytest.raises(SchemaError):
            rel.insert(uncertain={"x": GaussianPdf(0, 1)})

    def test_certain_value_for_uncertain_attr_rejected(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        with pytest.raises(SchemaError):
            rel.insert(certain={"v": 5})

    def test_arity_mismatch_rejected(self):
        schema = ProbabilisticSchema([Column("x"), Column("y")], [{"x", "y"}])
        rel = ProbabilisticRelation(schema)
        with pytest.raises(SchemaError):
            rel.insert(uncertain={("x", "y"): GaussianPdf(0, 1)})

    def test_ancestors_registered(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        store = HistoryStore()
        rel = ProbabilisticRelation(schema, store)
        t = rel.insert(uncertain={"v": GaussianPdf(0, 1)})
        (link,) = t.lineage[frozenset({"v"})]
        assert link.ref in store
        assert store.pdf(link.ref).attrs == ("v",)

    def test_tuple_ids_unique(self, sensor_relation):
        ids = [t.tuple_id for t in sensor_relation]
        assert len(set(ids)) == 3


class TestDelete:
    def test_delete_removes_tuple(self, sensor_relation):
        t = sensor_relation.tuples[0]
        sensor_relation.delete(t)
        assert len(sensor_relation) == 2

    def test_delete_unreferenced_drops_ancestor(self, sensor_relation):
        store = sensor_relation.store
        before = len(store)
        sensor_relation.delete(sensor_relation.tuples[0])
        assert len(store) == before - 1


class TestDisplay:
    def test_pretty_contains_values(self, sensor_relation):
        text = sensor_relation.pretty()
        assert "GAUSSIAN(20, 5)" in text
        assert "id" in text and "location" in text

    def test_pretty_null(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        rel.insert()
        assert "NULL" in rel.pretty()

    def test_repr(self, sensor_relation):
        assert "3 tuples" in repr(sensor_relation)
