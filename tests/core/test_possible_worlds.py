"""Possible-worlds reference engine tests and randomized PWS equivalence.

The randomized suite is the executable form of Theorems 1 and 2: for every
generated discrete database and every generated select/project/join
pipeline, the model's result multiplicities must equal the brute-force
possible-worlds multiplicities exactly.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    cross_product,
    enumerate_worlds,
    expected_multiplicities,
    model_multiplicities,
    multiplicities_match,
    project,
    select,
    world_join,
    world_project,
    world_select,
)
from repro.core.predicates import And, Comparison, Or, TruePredicate, col
from repro.errors import UnsupportedOperationError
from repro.pdf import DiscretePdf, GaussianPdf, JointDiscretePdf


class TestEnumeration:
    def test_paper_table_iii(self, table2_relation):
        """Table II expands into exactly the paper's Table III worlds."""
        worlds = list(enumerate_worlds({"T": table2_relation}))
        assert len(worlds) == 4
        assert sum(w.probability for w in worlds) == pytest.approx(1.0)
        by_rows = {
            tuple(sorted((r["a"], r["b"]) for r in w.relations["T"])): w.probability
            for w in worlds
        }
        assert by_rows[((0, 1), (7, 3))] == pytest.approx(0.06)
        assert by_rows[((0, 2), (7, 3))] == pytest.approx(0.04)
        assert by_rows[((1, 1), (7, 3))] == pytest.approx(0.54)
        assert by_rows[((1, 2), (7, 3))] == pytest.approx(0.36)

    def test_partial_pdf_creates_absent_worlds(self, figure3_relation):
        worlds = list(enumerate_worlds({"T": figure3_relation}))
        sizes = sorted(len(w.relations["T"]) for w in worlds)
        # Tuple 2 exists with probability 0.7; tuple 1 always exists.
        assert sizes == [1, 1, 2, 2]
        missing = sum(
            w.probability for w in worlds if len(w.relations["T"]) == 1
        )
        assert missing == pytest.approx(0.3)

    def test_continuous_rejected(self, sensor_relation):
        with pytest.raises(UnsupportedOperationError):
            list(enumerate_worlds({"S": sensor_relation}))

    def test_derived_relation_rejected(self, table2_relation):
        derived = select(table2_relation, Comparison("a", "<", col("b")))
        with pytest.raises(UnsupportedOperationError):
            list(enumerate_worlds({"R": derived}))

    def test_world_probabilities_sum_to_one(self, figure3_relation):
        total = sum(w.probability for w in enumerate_worlds({"T": figure3_relation}))
        assert total == pytest.approx(1.0)


class TestWorldAlgebra:
    def test_world_select(self):
        rows = [{"a": 1}, {"a": 5}]
        assert world_select(rows, Comparison("a", ">", 2)) == [{"a": 5}]

    def test_world_project_bag_semantics(self):
        rows = [{"a": 1, "b": 1}, {"a": 1, "b": 2}]
        assert world_project(rows, ["a"]) == [{"a": 1}, {"a": 1}]

    def test_world_join(self):
        left = [{"a": 1}, {"a": 3}]
        right = [{"b": 2}]
        out = world_join(left, right, Comparison("a", "<", col("b")))
        assert out == [{"a": 1, "b": 2}]


# ---------------------------------------------------------------------------
# Randomized PWS equivalence
# ---------------------------------------------------------------------------


@st.composite
def discrete_relations(draw, attrs, max_tuples=3, partial_allowed=True):
    """A small random base relation with independent discrete attributes."""
    schema = ProbabilisticSchema(
        [Column(a, DataType.INT) for a in attrs], [{a} for a in attrs]
    )
    rel = ProbabilisticRelation(schema, name="".join(attrs))
    n = draw(st.integers(min_value=1, max_value=max_tuples))
    for _ in range(n):
        uncertain = {}
        for a in attrs:
            k = draw(st.integers(min_value=1, max_value=3))
            values = draw(
                st.lists(
                    st.integers(min_value=0, max_value=4),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            )
            weights = draw(
                st.lists(
                    st.floats(min_value=0.05, max_value=1.0), min_size=k, max_size=k
                )
            )
            total = sum(weights)
            scale = draw(st.floats(min_value=0.5, max_value=1.0)) if partial_allowed else 1.0
            uncertain[a] = DiscretePdf(
                {float(v): w / total * scale for v, w in zip(values, weights)}
            )
        rel.insert(uncertain=uncertain)
    return rel


@st.composite
def joint_relations(draw, max_tuples=2):
    """Random base relations with a joint (a, b) dependency set."""
    schema = ProbabilisticSchema(
        [Column("a", DataType.INT), Column("b", DataType.INT)], [{"a", "b"}]
    )
    rel = ProbabilisticRelation(schema, name="J")
    n = draw(st.integers(min_value=1, max_value=max_tuples))
    for _ in range(n):
        k = draw(st.integers(min_value=1, max_value=4))
        keys = draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=3),
                    st.integers(min_value=0, max_value=3),
                ),
                min_size=k,
                max_size=k,
                unique=True,
            )
        )
        weights = draw(
            st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=k, max_size=k)
        )
        total = sum(weights)
        scale = draw(st.floats(min_value=0.5, max_value=1.0))
        table = {
            key: w / total * scale for key, w in zip(keys, weights)
        }
        rel.insert(uncertain={("a", "b"): JointDiscretePdf(("a", "b"), table)})
    return rel


comparisons_ab = st.sampled_from(
    [
        Comparison("a", "<", col("b")),
        Comparison("a", "<=", col("b")),
        Comparison("a", "=", col("b")),
        Comparison("a", ">", 1),
        Comparison("b", "<=", 2),
        And([Comparison("a", ">=", 1), Comparison("b", "<", 3)]),
        Or([Comparison("a", "=", 0), Comparison("b", "=", 0)]),
    ]
)


@settings(max_examples=40, deadline=None)
@given(rel=discrete_relations(("a", "b")), pred=comparisons_ab)
def test_select_is_pws_consistent(rel, pred):
    out = select(rel, pred)
    pws = expected_multiplicities({"T": rel}, lambda w: world_select(w["T"], pred))
    assert multiplicities_match(model_multiplicities(out), pws)


@settings(max_examples=40, deadline=None)
@given(rel=joint_relations(), pred=comparisons_ab)
def test_select_on_joint_sets_is_pws_consistent(rel, pred):
    out = select(rel, pred)
    pws = expected_multiplicities({"T": rel}, lambda w: world_select(w["T"], pred))
    assert multiplicities_match(model_multiplicities(out), pws)


@settings(max_examples=30, deadline=None)
@given(rel=joint_relations(), pred=comparisons_ab, keep=st.sampled_from(["a", "b"]))
def test_select_project_pipeline_is_pws_consistent(rel, pred, keep):
    out = project(select(rel, pred), [keep])
    pws = expected_multiplicities(
        {"T": rel}, lambda w: world_project(world_select(w["T"], pred), [keep])
    )
    assert multiplicities_match(model_multiplicities(out), pws)


@settings(max_examples=25, deadline=None)
@given(
    data=st.data(),
    pred=st.sampled_from(
        [
            Comparison("a", "<", col("b")),
            Comparison("a", "=", col("b")),
            TruePredicate(),
        ]
    ),
)
def test_join_is_pws_consistent_shared_store(data, pred):
    left = data.draw(discrete_relations(("a",), max_tuples=2))
    # Build the right relation on the same history store.
    schema = ProbabilisticSchema([Column("b", DataType.INT)], [{"b"}])
    right = ProbabilisticRelation(schema, left.store, name="R")
    n = data.draw(st.integers(min_value=1, max_value=2))
    for _ in range(n):
        k = data.draw(st.integers(min_value=1, max_value=3))
        values = data.draw(
            st.lists(
                st.integers(min_value=0, max_value=4), min_size=k, max_size=k, unique=True
            )
        )
        weights = data.draw(
            st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=k, max_size=k)
        )
        total = sum(weights)
        scale = data.draw(st.floats(min_value=0.5, max_value=1.0))
        right.insert(
            uncertain={
                "b": DiscretePdf(
                    {float(v): w / total * scale for v, w in zip(values, weights)}
                )
            }
        )

    out = select(cross_product(left, right), pred)
    pws = expected_multiplicities(
        {"L": left, "R": right}, lambda w: world_join(w["L"], w["R"], pred)
    )
    assert multiplicities_match(model_multiplicities(out), pws)


@settings(max_examples=20, deadline=None)
@given(rel=joint_relations(max_tuples=2))
def test_self_cross_after_projections_is_pws_consistent(rel):
    """The Figure 3 pattern over random data: the hardest history case."""
    from repro.core import join, prefix_attrs

    ta = project(rel, ["a"])
    tb = project(select(rel, Comparison("b", ">", 1)), ["b"])
    joined = join(ta, tb, TruePredicate())

    def query(world):
        left = world_project(world["T"], ["a"])
        right = world_project(world_select(world["T"], Comparison("b", ">", 1)), ["b"])
        return world_join(left, right, TruePredicate())

    pws = expected_multiplicities({"T": rel}, query)
    assert multiplicities_match(model_multiplicities(joined), pws)
