"""Probability-value operations (Section III-E): Pr(A) and threshold selects."""

import pytest

from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    existence_probability,
    select,
    threshold_select,
    tuple_probability,
)
from repro.core.predicates import And, Comparison
from repro.errors import QueryError
from repro.pdf import DiscretePdf, GaussianPdf, JointDiscretePdf


@pytest.fixture
def partial_relation():
    schema = ProbabilisticSchema(
        [Column("id", DataType.INT), Column("u", DataType.INT), Column("v", DataType.INT)],
        [{"u"}, {"v"}],
    )
    rel = ProbabilisticRelation(schema)
    rel.insert(
        certain={"id": 1},
        uncertain={"u": DiscretePdf({1: 0.8}), "v": DiscretePdf({2: 0.5})},
    )
    rel.insert(
        certain={"id": 2},
        uncertain={"u": DiscretePdf({1: 1.0}), "v": DiscretePdf({2: 1.0})},
    )
    return rel


class TestTupleProbability:
    def test_existence_multiplies_independent_sets(self, partial_relation):
        t = partial_relation.tuples[0]
        assert existence_probability(partial_relation, t) == pytest.approx(0.4)

    def test_full_mass_tuple(self, partial_relation):
        t = partial_relation.tuples[1]
        assert existence_probability(partial_relation, t) == pytest.approx(1.0)

    def test_subset_of_attrs(self, partial_relation):
        t = partial_relation.tuples[0]
        assert tuple_probability(partial_relation, t, ["u"]) == pytest.approx(0.8)
        assert tuple_probability(partial_relation, t, ["v"]) == pytest.approx(0.5)

    def test_certain_attrs_probability_one(self, partial_relation):
        t = partial_relation.tuples[0]
        assert tuple_probability(partial_relation, t, ["id"]) == pytest.approx(1.0)

    def test_unknown_attr_rejected(self, partial_relation):
        with pytest.raises(QueryError):
            tuple_probability(partial_relation, partial_relation.tuples[0], ["zzz"])

    def test_null_pdf_counts_as_existing(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        t = rel.insert(uncertain={"v": None})
        assert existence_probability(rel, t) == pytest.approx(1.0)

    def test_history_aware_probability(self, figure3_relation):
        """Pr over historically dependent marginals must not double count."""
        from repro.core import cross_product, project

        ta = project(figure3_relation, ["a"])
        tb = project(
            select(figure3_relation, Comparison("b", ">", 4)), ["b"]
        )
        crossed = cross_product(ta, tb)
        # The first pair combines tuple 1's projection with tuple 1's own
        # range-selected projection: both derive from the same ancestor, so
        # Pr must come from the joint — 0.9 — not a product of marginals.
        t = crossed.tuples[0]
        p = existence_probability(crossed, t)
        assert p == pytest.approx(0.9)
        # Without histories the same computation multiplies marginals.
        p_naive = existence_probability(crossed, t, ModelConfig(use_history=False))
        assert p_naive == pytest.approx(0.9)  # masses multiply: 1.0 * 0.9


class TestThresholdSelect:
    def test_threshold_filters(self, partial_relation):
        out = threshold_select(partial_relation, None, ">", 0.5)
        assert len(out) == 1
        assert out.tuples[0].certain["id"] == 2

    def test_threshold_on_attr_subset(self, partial_relation):
        out = threshold_select(partial_relation, ["u"], ">=", 0.8)
        assert len(out) == 2
        out = threshold_select(partial_relation, ["v"], ">", 0.6)
        assert len(out) == 1

    def test_less_than_threshold(self, partial_relation):
        out = threshold_select(partial_relation, None, "<", 0.5)
        assert len(out) == 1
        assert out.tuples[0].certain["id"] == 1

    def test_unknown_operator_rejected(self, partial_relation):
        with pytest.raises(QueryError):
            threshold_select(partial_relation, None, "~", 0.5)

    def test_histories_copied(self, partial_relation):
        out = threshold_select(partial_relation, None, ">", 0.0)
        for t_in, t_out in zip(partial_relation.tuples, out.tuples):
            assert t_in.lineage == t_out.lineage

    def test_after_selection(self, sensor_relation):
        """The paper's canonical use: range query then confidence threshold."""
        ranged = select(
            sensor_relation,
            And([Comparison("location", ">", 18), Comparison("location", "<", 22)]),
        )
        confident = threshold_select(ranged, None, ">", 0.5)
        ids = [t.certain["id"] for t in confident]
        assert ids == [1]  # only Gaus(20,5) has >0.5 mass in [18,22]
