"""History tests: ancestor tracking, refcounts, phantoms, Figure 3."""

import pytest

from repro.core import (
    Column,
    DataType,
    HistoryStore,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    expected_multiplicities,
    historically_dependent,
    join,
    model_multiplicities,
    multiplicities_match,
    prefix_attrs,
    project,
    rename,
    select,
    world_join,
    world_project,
    world_select,
)
from repro.core.history import AncestorLink, AncestorRef, fresh_lineage, rename_lineage
from repro.core.predicates import Comparison, TruePredicate, col
from repro.errors import HistoryError
from repro.pdf import DiscretePdf, GaussianPdf, JointDiscretePdf


class TestHistoryStore:
    def test_register_and_fetch(self):
        store = HistoryStore()
        pdf = GaussianPdf(0, 1, attr="v")
        ref = store.register_base(1, pdf)
        assert store.pdf(ref) is pdf
        assert ref.attrs == frozenset({"v"})

    def test_double_register_rejected(self):
        store = HistoryStore()
        store.register_base(1, GaussianPdf(0, 1, attr="v"))
        with pytest.raises(HistoryError):
            store.register_base(1, GaussianPdf(0, 2, attr="v"))

    def test_unknown_ref_raises(self):
        store = HistoryStore()
        with pytest.raises(HistoryError):
            store.pdf(AncestorRef(99, frozenset({"v"})))

    def test_refcounting_and_phantoms(self):
        store = HistoryStore()
        ref = store.register_base(1, DiscretePdf({1: 1.0}, attr="v"))
        lineage = fresh_lineage(ref)
        store.acquire(lineage)  # base tuple's own reference
        store.acquire(lineage)  # a derived tuple
        store.release(lineage)  # base tuple deleted...
        store.delete_base_tuple(1)
        # still referenced by the derived tuple -> phantom node
        assert ref in store
        assert store.is_phantom(ref)
        store.release(lineage)
        assert ref not in store

    def test_delete_unreferenced_base(self):
        store = HistoryStore()
        ref = store.register_base(1, DiscretePdf({1: 1.0}, attr="v"))
        store.delete_base_tuple(1)
        assert ref not in store

    def test_release_underflow(self):
        store = HistoryStore()
        ref = store.register_base(1, DiscretePdf({1: 1.0}, attr="v"))
        with pytest.raises(HistoryError):
            store.release(fresh_lineage(ref))

    def test_stats(self):
        store = HistoryStore()
        ref = store.register_base(1, DiscretePdf({1: 1.0}, attr="v"))
        lin = fresh_lineage(ref)
        store.acquire(lin)
        store.delete_base_tuple(1)
        assert store.stats() == {"total": 1, "phantom": 1}


class TestLineage:
    def test_identity_link(self):
        ref = AncestorRef(3, frozenset({"a", "b"}))
        link = AncestorLink.identity(ref)
        assert link.mapping_dict() == {"a": "a", "b": "b"}

    def test_rename_composition(self):
        ref = AncestorRef(3, frozenset({"a"}))
        link = AncestorLink.identity(ref).renamed({"a": "x"}).renamed({"x": "left.x"})
        assert link.mapping_dict() == {"a": "left.x"}

    def test_rename_lineage(self):
        ref = AncestorRef(3, frozenset({"a"}))
        lineage = fresh_lineage(ref)
        renamed = rename_lineage(lineage, {"a": "z"})
        (link,) = renamed
        assert link.mapping_dict() == {"a": "z"}
        assert link.ref == ref

    def test_historical_dependence_ignores_mapping(self):
        ref = AncestorRef(1, frozenset({"a"}))
        l1 = fresh_lineage(ref)
        l2 = rename_lineage(l1, {"a": "b"})
        assert historically_dependent(l1, l2)

    def test_independent_lineages(self):
        l1 = fresh_lineage(AncestorRef(1, frozenset({"a"})))
        l2 = fresh_lineage(AncestorRef(2, frozenset({"a"})))
        assert not historically_dependent(l1, l2)


class TestFigure3:
    """The paper's Figure 3, end to end."""

    def _join(self, figure3_relation, config):
        ta = project(figure3_relation, ["a"], config)
        tb = project(
            select(figure3_relation, Comparison("b", ">", 4), config), ["b"], config
        )
        return join(ta, tb, TruePredicate(), config)

    def test_correct_with_histories(self, figure3_relation):
        joined = self._join(figure3_relation, ModelConfig())
        got = model_multiplicities(joined)
        expected = {
            frozenset({("a", 4.0), ("b", 5.0)}): 0.9,
            frozenset({("a", 7.0), ("b", 5.0)}): 0.63,
        }
        assert multiplicities_match(got, expected)

    def test_incorrect_without_histories(self, figure3_relation):
        config = ModelConfig(use_history=False)
        joined = self._join(figure3_relation, config)
        got = model_multiplicities(joined, config)
        # Exactly the paper's "Incorrect!" table T1.
        wrong = {
            frozenset({("a", 2.0), ("b", 5.0)}): 0.09,
            frozenset({("a", 4.0), ("b", 5.0)}): 0.81,
            frozenset({("a", 7.0), ("b", 5.0)}): 0.63,
        }
        assert multiplicities_match(got, wrong)

    def test_matches_possible_worlds(self, figure3_relation):
        joined = self._join(figure3_relation, ModelConfig())

        def query(world):
            ta = world_project(world["T"], ["a"])
            tb = world_project(world_select(world["T"], Comparison("b", ">", 4)), ["b"])
            return world_join(ta, tb, TruePredicate())

        pws = expected_multiplicities({"T": figure3_relation}, query)
        assert multiplicities_match(model_multiplicities(joined), pws)


class TestSelfJoinAliasing:
    def test_diagonal_self_join_discrete(self):
        """Joining a table with itself correlates the two copies perfectly."""
        schema = ProbabilisticSchema([Column("v", DataType.INT)], [{"v"}])
        rel = ProbabilisticRelation(schema, name="T")
        rel.insert(uncertain={"v": DiscretePdf({1: 0.5, 2: 0.5})})

        left = prefix_attrs(rel, "l")
        right = prefix_attrs(rel, "r")
        joined = join(left, right, Comparison("l.v", "=", col("r.v")))
        got = model_multiplicities(joined)
        # The same base variable on both sides: always equal, never mixed.
        expected = {
            frozenset({("l.v", 1.0), ("r.v", 1.0)}): 0.5,
            frozenset({("l.v", 2.0), ("r.v", 2.0)}): 0.5,
        }
        assert multiplicities_match(got, expected)

    def test_self_join_continuous_raises(self):
        from repro.errors import UnsupportedOperationError

        schema = ProbabilisticSchema([Column("v", DataType.REAL)], [{"v"}])
        rel = ProbabilisticRelation(schema, name="T")
        rel.insert(uncertain={"v": GaussianPdf(0, 1)})
        left = prefix_attrs(rel, "l")
        right = prefix_attrs(rel, "r")
        with pytest.raises(UnsupportedOperationError):
            join(left, right, Comparison("l.v", "<", col("r.v")))


class TestRenameRelation:
    def test_rename_preserves_history(self, figure3_relation):
        renamed = rename(figure3_relation, {"a": "x", "b": "y"})
        t = renamed.tuples[0]
        (link,) = t.lineage[frozenset({"x", "y"})]
        assert link.mapping_dict() == {"a": "x", "b": "y"}

    def test_rename_unknown_attr_rejected(self, figure3_relation):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            rename(figure3_relation, {"zzz": "y"})
