"""Projection operator tests (Section III-B): phantoms and marginalisation."""

import pytest

from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    expected_multiplicities,
    model_multiplicities,
    multiplicities_match,
    project,
    select,
    world_project,
    world_select,
)
from repro.core.predicates import Comparison, col
from repro.core.project import ProjectionPlan
from repro.errors import QueryError
from repro.pdf import DiscretePdf, GaussianPdf, JointDiscretePdf


@pytest.fixture
def joint_relation():
    schema = ProbabilisticSchema(
        [Column("id", DataType.INT), Column("a", DataType.INT), Column("b", DataType.INT)],
        [{"a", "b"}],
    )
    rel = ProbabilisticRelation(schema)
    rel.insert(
        certain={"id": 1},
        uncertain={("a", "b"): JointDiscretePdf(("a", "b"), {(1, 2): 0.5, (3, 4): 0.5})},
    )
    return rel


class TestBasics:
    def test_certain_projection(self, sensor_relation):
        out = project(sensor_relation, ["id"])
        assert out.schema.visible_attrs == ("id",)
        assert [t.certain["id"] for t in out] == [1, 2, 3]
        # The full-mass location set is dropped entirely.
        assert out.schema.dependency == ()

    def test_column_order_preserved(self, sensor_relation):
        out = project(sensor_relation, ["location", "id"])
        assert out.schema.visible_attrs == ("location", "id")

    def test_duplicate_attr_rejected(self, sensor_relation):
        with pytest.raises(QueryError):
            project(sensor_relation, ["id", "id"])

    def test_unknown_attr_rejected(self, sensor_relation):
        with pytest.raises(QueryError):
            project(sensor_relation, ["nope"])

    def test_no_tuples_lost(self, sensor_relation):
        out = project(sensor_relation, ["id"])
        assert len(out) == len(sensor_relation)


class TestMarginalisationPolicy:
    def test_full_mass_joint_is_marginalised(self, joint_relation):
        out = project(joint_relation, ["id", "a"])
        assert set(out.schema.dependency) == {frozenset({"a"})}
        pdf = out.tuples[0].pdfs[frozenset({"a"})]
        assert isinstance(pdf, DiscretePdf)
        assert float(pdf.pdf_at(1)) == pytest.approx(0.5)

    def test_partial_mass_keeps_phantoms(self, joint_relation):
        selected = select(joint_relation, Comparison("b", ">", 2))
        out = project(selected, ["id", "a"])
        # The (a, b) joint carries mass 0.5 < 1: kept whole, b is phantom.
        assert frozenset({"a", "b"}) in out.schema.dependency
        assert out.schema.phantom_attrs == {"b"}
        joint = out.tuples[0].pdfs[frozenset({"a", "b"})]
        assert joint.mass() == pytest.approx(0.5)

    def test_lineage_preserved(self, joint_relation):
        out = project(joint_relation, ["id", "a"])
        t_in = joint_relation.tuples[0]
        t_out = out.tuples[0]
        assert t_out.lineage[frozenset({"a"})] == t_in.lineage[frozenset({"a", "b"})]

    def test_disjoint_partial_set_kept_as_phantoms(self):
        schema = ProbabilisticSchema(
            [Column("id", DataType.INT), Column("v")], [{"v"}]
        )
        rel = ProbabilisticRelation(schema)
        rel.insert(certain={"id": 1}, uncertain={"v": DiscretePdf({1: 0.5})})
        out = project(rel, ["id"])
        # v is partial -> the tuple's existence information must survive.
        assert frozenset({"v"}) in out.schema.dependency
        assert out.schema.phantom_attrs == {"v"}

    def test_null_pdfs_pass_through(self):
        schema = ProbabilisticSchema([Column("id", DataType.INT), Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(certain={"id": 1}, uncertain={"v": None})
        out = project(rel, ["id", "v"])
        assert out.tuples[0].pdfs[frozenset({"v"})] is None

    def test_aggressive_marginalises_partial(self, joint_relation):
        selected = select(joint_relation, Comparison("b", ">", 2))
        out = project(selected, ["id", "a"], aggressive=True)
        assert set(out.schema.dependency) == {frozenset({"a"})}
        pdf = out.tuples[0].pdfs[frozenset({"a"})]
        # Mass (existence) is still preserved by marginalisation.
        assert pdf.mass() == pytest.approx(0.5)


class TestStreamingPlan:
    def test_conservative_plan_keeps_everything(self, joint_relation):
        plan = ProjectionPlan(joint_relation.schema, ["id", "a"], partial_sets=None)
        # Without relation-wide knowledge the plan must not marginalise.
        assert frozenset({"a", "b"}) in plan.output_schema.dependency

    def test_informed_plan_marginalises(self, joint_relation):
        plan = ProjectionPlan(
            joint_relation.schema, ["id", "a"], partial_sets=frozenset()
        )
        assert set(plan.output_schema.dependency) == {frozenset({"a"})}


class TestProjectionVsPossibleWorlds:
    def test_project_after_select_matches_pws(self, figure3_relation):
        pred = Comparison("b", ">", 4)
        out = project(select(figure3_relation, pred), ["b"])
        pws = expected_multiplicities(
            {"T": figure3_relation},
            lambda w: world_project(world_select(w["T"], pred), ["b"]),
        )
        assert multiplicities_match(model_multiplicities(out), pws)

    def test_plain_projection_matches_pws(self, figure3_relation):
        out = project(figure3_relation, ["a"])
        pws = expected_multiplicities(
            {"T": figure3_relation}, lambda w: world_project(w["T"], ["a"])
        )
        assert multiplicities_match(model_multiplicities(out), pws)
