"""Join / cross-product / collapse tests (Section III-D)."""

import pytest

from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    collapse_history,
    cross_product,
    expected_multiplicities,
    join,
    model_multiplicities,
    multiplicities_match,
    prefix_attrs,
    project,
    rename,
    select,
    world_join,
    world_project,
    world_select,
)
from repro.core.predicates import And, Comparison, TruePredicate, col
from repro.errors import SchemaError
from repro.pdf import DiscretePdf, GaussianPdf, JointDiscretePdf


def _relation(name, attr, pairs, store=None):
    schema = ProbabilisticSchema([Column(attr, DataType.INT)], [{attr}])
    rel = ProbabilisticRelation(schema, store, name=name)
    for p in pairs:
        rel.insert(uncertain={attr: DiscretePdf(p)})
    return rel


class TestCrossProduct:
    def test_sizes_multiply(self):
        r1 = _relation("r1", "a", [{1: 1.0}, {2: 1.0}])
        r2 = _relation("r2", "b", [{5: 1.0}], store=r1.store)
        out = cross_product(r1, r2)
        assert len(out) == 2
        assert set(out.schema.visible_attrs) == {"a", "b"}

    def test_pdfs_and_histories_copied(self):
        r1 = _relation("r1", "a", [{1: 0.5}])
        r2 = _relation("r2", "b", [{5: 1.0}], store=r1.store)
        out = cross_product(r1, r2)
        t = out.tuples[0]
        assert t.pdfs[frozenset({"a"})].mass() == pytest.approx(0.5)
        assert len(t.lineage[frozenset({"a"})]) == 1

    def test_visible_collision_rejected(self):
        r1 = _relation("r1", "a", [{1: 1.0}])
        r2 = _relation("r2", "a", [{2: 1.0}], store=r1.store)
        with pytest.raises(SchemaError):
            cross_product(r1, r2)

    def test_different_stores_rejected(self):
        r1 = _relation("r1", "a", [{1: 1.0}])
        r2 = _relation("r2", "b", [{2: 1.0}])
        with pytest.raises(SchemaError):
            cross_product(r1, r2)

    def test_phantom_collision_renamed(self, figure3_relation):
        ta = project(figure3_relation, ["a"])  # may carry phantom b
        tb = project(
            select(figure3_relation, Comparison("b", ">", 4)), ["b"]
        )  # carries phantom a
        out = cross_product(ta, tb)
        assert set(out.schema.visible_attrs) == {"a", "b"}


class TestJoin:
    def test_join_equals_select_of_cross(self):
        r1 = _relation("r1", "a", [{1: 0.5, 2: 0.5}])
        r2 = _relation("r2", "b", [{1: 0.5, 3: 0.5}], store=r1.store)
        pred = Comparison("a", "<", col("b"))
        j1 = join(r1, r2, pred)
        j2 = select(cross_product(r1, r2), pred)
        assert multiplicities_match(
            model_multiplicities(j1), model_multiplicities(j2)
        )

    def test_join_matches_pws(self):
        r1 = _relation("T1", "a", [{1: 0.5, 2: 0.5}, {4: 0.7}])
        r2 = _relation("T2", "b", [{1: 0.4, 3: 0.6}], store=r1.store)
        pred = Comparison("a", "<", col("b"))
        j = join(r1, r2, pred)
        pws = expected_multiplicities(
            {"T1": r1, "T2": r2},
            lambda w: world_join(w["T1"], w["T2"], pred),
        )
        assert multiplicities_match(model_multiplicities(j), pws)

    def test_prefix_attrs(self):
        r1 = _relation("r1", "a", [{1: 1.0}])
        out = prefix_attrs(r1, "left")
        assert out.schema.visible_attrs == ("left.a",)
        (link,) = out.tuples[0].lineage[frozenset({"left.a"})]
        assert link.mapping_dict() == {"a": "left.a"}

    def test_continuous_join(self):
        schema = ProbabilisticSchema(
            [Column("rid", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
        )
        r1 = ProbabilisticRelation(schema, name="r1")
        r1.insert(certain={"rid": 1}, uncertain={"v": GaussianPdf(0, 1)})
        r2 = ProbabilisticRelation(
            ProbabilisticSchema(
                [Column("sid", DataType.INT), Column("w", DataType.REAL)], [{"w"}]
            ),
            r1.store,
            name="r2",
        )
        r2.insert(certain={"sid": 9}, uncertain={"w": GaussianPdf(10, 1)})
        out = join(r1, r2, Comparison("v", "<", col("w")))
        assert len(out) == 1
        joint = out.tuples[0].pdfs[frozenset({"v", "w"})]
        # P(V < W) for independent N(0,1), N(10,1) is essentially 1.
        assert joint.mass() == pytest.approx(1.0, abs=1e-3)


class TestCollapseHistory:
    def _correlated_relation(self):
        """Two dependency sets in each tuple that share one base ancestor."""
        base_schema = ProbabilisticSchema(
            [Column("a", DataType.INT), Column("b", DataType.INT)], [{"a", "b"}]
        )
        base = ProbabilisticRelation(base_schema, name="base")
        base.insert(
            uncertain={("a", "b"): JointDiscretePdf(("a", "b"), {(1, 2): 0.5, (3, 4): 0.5})}
        )
        ta = project(base, ["a"])
        tb = project(base, ["b"])
        return cross_product(ta, tb), base

    def test_collapse_merges_dependent_sets(self):
        crossed, base = self._correlated_relation()
        assert len(crossed.schema.dependency) == 2
        collapsed = collapse_history(crossed)
        assert len(collapsed.schema.dependency) == 1
        joint = collapsed.tuples[0].pdfs[frozenset({"a", "b"})]
        # Perfectly correlated: only (1,2) and (3,4) survive.
        assert float(joint.density({"a": 1, "b": 2})) == pytest.approx(0.5)
        assert float(joint.density({"a": 1, "b": 4})) == 0.0

    def test_collapse_noop_when_independent(self):
        r1 = _relation("r1", "a", [{1: 1.0}])
        r2 = _relation("r2", "b", [{2: 1.0}], store=r1.store)
        crossed = cross_product(r1, r2)
        assert collapse_history(crossed) is crossed

    def test_eager_merge_config(self):
        crossed, base = self._correlated_relation()
        # Rebuild with the eager config: cross_product collapses on the way out.
        ta = project(base, ["a"])
        tb = project(base, ["b"])
        eager = cross_product(ta, tb, ModelConfig(eager_merge=True))
        assert len(eager.schema.dependency) == 1

    def test_collapse_and_lazy_agree(self):
        crossed, base = self._correlated_relation()
        collapsed = collapse_history(crossed)
        assert multiplicities_match(
            model_multiplicities(crossed), model_multiplicities(collapsed)
        )


class TestThreeWayJoin:
    def test_three_relations_match_pws(self):
        r1 = _relation("T1", "a", [{1: 0.6, 2: 0.4}])
        r2 = _relation("T2", "b", [{1: 0.5, 2: 0.5}], store=r1.store)
        r3 = _relation("T3", "c", [{2: 0.8}], store=r1.store)
        pred = And([Comparison("a", "<=", col("b")), Comparison("b", "<=", col("c"))])
        out = select(cross_product(cross_product(r1, r2), r3), pred)
        pws = expected_multiplicities(
            {"T1": r1, "T2": r2, "T3": r3},
            lambda w: world_join(world_join(w["T1"], w["T2"], TruePredicate()), w["T3"], pred),
        )
        assert multiplicities_match(model_multiplicities(out), pws)
