"""Pdf fingerprints and the LRU pdf-op cache."""

import pytest

from repro.core.operations import (
    PDF_OP_CACHE,
    PdfOpCache,
    cached_interval_masses,
    cached_marginalize,
    cached_mass,
    cached_masses,
)
from repro.pdf import (
    DiscretePdf,
    FlooredPdf,
    GaussianPdf,
    HistogramPdf,
    Interval,
    IntervalSet,
    UniformPdf,
)


@pytest.fixture(autouse=True)
def _clean_cache():
    PDF_OP_CACHE.reset()
    yield
    PDF_OP_CACHE.reset()


class TestFingerprint:
    def test_equal_pdfs_share_fingerprint(self):
        assert GaussianPdf(3, 2).fingerprint() == GaussianPdf(3, 2).fingerprint()
        assert (
            DiscretePdf({0.0: 0.5, 1.0: 0.5}).fingerprint()
            == DiscretePdf({0.0: 0.5, 1.0: 0.5}).fingerprint()
        )
        assert (
            HistogramPdf([0, 1, 2], [0.4, 0.6]).fingerprint()
            == HistogramPdf([0, 1, 2], [0.4, 0.6]).fingerprint()
        )

    def test_different_params_differ(self):
        assert GaussianPdf(3, 2).fingerprint() != GaussianPdf(3, 2.5).fingerprint()
        assert GaussianPdf(3, 2).fingerprint() != UniformPdf(1, 5).fingerprint()
        assert (
            GaussianPdf(3, 2, attr="x").fingerprint()
            != GaussianPdf(3, 2, attr="y").fingerprint()
        )

    def test_floored_fingerprint_composes_base_and_allowed(self):
        g = GaussianPdf(0, 1)
        a1 = IntervalSet([Interval(0, 1)])
        a2 = IntervalSet([Interval(0, 2)])
        assert FlooredPdf(g, a1).fingerprint() == FlooredPdf(GaussianPdf(0, 1), a1).fingerprint()
        assert FlooredPdf(g, a1).fingerprint() != FlooredPdf(g, a2).fingerprint()

    def test_fingerprint_memoised_on_instance(self):
        g = GaussianPdf(1, 1)
        assert g.fingerprint() is g.fingerprint()


class TestPdfOpCache:
    def test_hit_miss_counting(self):
        g = GaussianPdf(0, 1)
        f = FlooredPdf(g, IntervalSet([Interval(0, 1)]))
        m1 = cached_mass(f)
        assert PDF_OP_CACHE.misses == 1 and PDF_OP_CACHE.hits == 0
        m2 = cached_mass(FlooredPdf(GaussianPdf(0, 1), IntervalSet([Interval(0, 1)])))
        assert PDF_OP_CACHE.hits == 1
        assert m1 == m2 == f.mass()

    def test_interval_masses_share_keys_with_floored_mass(self):
        g = GaussianPdf(0, 1)
        allowed = IntervalSet([Interval(-1, 1)])
        vec = cached_interval_masses([g], [allowed])
        assert PDF_OP_CACHE.misses == 1
        m = cached_mass(FlooredPdf(g, allowed))
        assert PDF_OP_CACHE.hits == 1  # same key, no recompute
        assert vec[0] == m

    def test_cached_masses_batch(self):
        pdfs = [FlooredPdf(GaussianPdf(i, 1), IntervalSet([Interval(0, 1)])) for i in range(5)]
        first = cached_masses(pdfs)
        assert PDF_OP_CACHE.misses == 5
        second = cached_masses(pdfs)
        assert PDF_OP_CACHE.hits == 5
        assert first == second == [p.mass() for p in pdfs]

    def test_cached_marginalize_returns_same_object_on_hit(self):
        g = GaussianPdf(0, 1, attr="x")
        a = cached_marginalize(g, ["x"])
        b = cached_marginalize(GaussianPdf(0, 1, attr="x"), ["x"])
        assert a is b

    def test_lru_eviction(self):
        cache = PdfOpCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh a; b becomes LRU
        cache.put("c", 3)
        assert len(cache) == 2
        before = cache.misses
        cache.get("b")
        assert cache.misses == before + 1  # b was the LRU entry and got evicted
        assert cache.get("a") == 1
        assert cache.get("c") == 3

    def test_reset_zeroes_counters_and_entries(self):
        cached_mass(FlooredPdf(GaussianPdf(0, 1), IntervalSet([Interval(0, 1)])))
        PDF_OP_CACHE.reset()
        assert PDF_OP_CACHE.hits == 0
        assert PDF_OP_CACHE.misses == 0
        assert len(PDF_OP_CACHE) == 0

    def test_configure_shrinks(self):
        cache = PdfOpCache(maxsize=10)
        for i in range(10):
            cache.put(i, i)
        cache.configure(3)
        assert len(cache) == 3
        assert cache.maxsize == 3

    def test_stats_hit_rate(self):
        cache = PdfOpCache()
        assert cache.stats()["hit_rate"] == 0.0
        cache.put("k", 1)
        cache.get("k")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5


class TestThreadSafety:
    def test_concurrent_put_get_respects_bound(self):
        """Hammering one small cache from many threads must neither corrupt
        the LRU order dict nor let it grow past maxsize (the parallel
        executor shares PDF_OP_CACHE across all workers)."""
        import threading

        cache = PdfOpCache(maxsize=32)
        errors = []

        def worker(seed):
            try:
                for i in range(2000):
                    key = ("k", (seed * 7 + i) % 100)
                    cache.get(key)
                    cache.put(key, i)
                    assert len(cache) <= 32
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats["hits"] + stats["misses"] == 8 * 2000

    def test_concurrent_eviction_keeps_counters_consistent(self):
        import threading

        cache = PdfOpCache(maxsize=4)
        barrier = threading.Barrier(4)

        def worker(seed):
            barrier.wait()
            for i in range(500):
                cache.put((seed, i), i)
                cache.get((seed, i))
                cache.get((seed, i - 1))

        threads = [threading.Thread(target=worker, args=(s,)) for s in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 4
        # Every get incremented exactly one counter.
        assert cache.hits + cache.misses == 4 * 500 * 2

    def test_pickles_without_lock(self):
        """Fork-backend workers may carry cache references inside closures;
        the lock must not travel through pickling."""
        import pickle

        cache = PdfOpCache(maxsize=8)
        cache.put("k", 1)
        clone = pickle.loads(pickle.dumps(cache))
        assert clone.get("k") == 1
        clone.put("j", 2)  # lock was re-created, not shared
        assert len(clone) == 2
