"""Table IV: missing attribute values vs missing tuples (Section II-B).

The paper distinguishes two readings of "missing data":

* NULL — the attribute values are unknown but the tuple certainly exists,
* a *partial pdf* — under the closed-world assumption, the deficit
  ``1 - mass`` is the probability the tuple does not exist at all.

These tests pin down both semantics and how each interacts with the
operators.
"""

import pytest

from repro.core import (
    Column,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
    count_distribution,
    existence_probability,
    project,
    select,
    threshold_select,
)
from repro.core.predicates import Comparison
from repro.pdf import JointDiscretePdf


@pytest.fixture
def table_iv():
    """The paper's Table IV, both blocks in one relation.

    Tuple 1: (1, {b,c} jointly distributed with full mass 0.8 + NULL 0.2?) —
    the paper's *first* reading stores (1, 2, 3) with prob 0.8 and
    (1, NULL, NULL) with 0.2: values unknown 20% of the time, tuple certain.
    We model that reading with a NULL pdf tuple plus a full one is not
    expressible row-wise; instead the reading maps to: tuple exists
    certainly, pdf over (b, c) may be NULL.  The *second* reading (rows 3-4
    of Table IV) is a partial pdf: mass 0.8 means the tuple exists with 0.8.
    """
    schema = ProbabilisticSchema(
        [Column("a", DataType.INT), Column("b", DataType.REAL), Column("c", DataType.REAL)],
        [{"b", "c"}],
    )
    rel = ProbabilisticRelation(schema, name="T")
    # Reading 1: NULL pdf — values unknown, existence certain.
    rel.insert(certain={"a": 1}, uncertain={("b", "c"): None})
    # Reading 2: partial pdf — Pr(b,c) sums to 0.8, so Pr(exists) = 0.8.
    rel.insert(
        certain={"a": 2},
        uncertain={
            ("b", "c"): JointDiscretePdf(("b", "c"), {(4, 7): 0.2, (4.1, 3.7): 0.6})
        },
    )
    return rel


class TestExistenceSemantics:
    def test_null_tuple_exists_certainly(self, table_iv):
        t = table_iv.tuples[0]
        assert existence_probability(table_iv, t) == pytest.approx(1.0)

    def test_partial_tuple_exists_with_mass(self, table_iv):
        t = table_iv.tuples[1]
        assert existence_probability(table_iv, t) == pytest.approx(0.8)

    def test_count_sees_the_difference(self, table_iv):
        dist = count_distribution(table_iv)
        # 1 certain tuple + 1 with p=0.8: count is 1 w.p. 0.2, 2 w.p. 0.8.
        assert float(dist.pdf_at(1)) == pytest.approx(0.2)
        assert float(dist.pdf_at(2)) == pytest.approx(0.8)

    def test_threshold_distinguishes(self, table_iv):
        certain_only = threshold_select(table_iv, None, ">=", 0.99)
        assert [t.certain["a"] for t in certain_only] == [1]


class TestOperatorInteraction:
    def test_selection_on_null_pdf_drops_tuple(self, table_iv):
        out = select(table_iv, Comparison("b", ">", 0))
        # Tuple 1's b is unknown -> predicate unknown -> excluded (SQL-like).
        assert [t.certain["a"] for t in out] == [2]

    def test_selection_on_certain_attr_keeps_null(self, table_iv):
        out = select(table_iv, Comparison("a", "<", 10))
        assert len(out) == 2
        assert out.tuples[0].pdfs[frozenset({"b", "c"})] is None

    def test_projection_keeps_partial_existence(self, table_iv):
        out = project(table_iv, ["a"])
        # The partial (b, c) set must survive as phantoms for tuple 2.
        assert frozenset({"b", "c"}) in out.schema.dependency
        assert existence_probability(out, out.tuples[1]) == pytest.approx(0.8)
        assert existence_probability(out, out.tuples[0]) == pytest.approx(1.0)

    def test_partial_masses_after_further_selection(self, table_iv):
        out = select(table_iv, Comparison("b", ">=", 4.05))
        (t,) = out.tuples
        # Only the (4.1, 3.7): 0.6 outcome survives.
        assert existence_probability(out, t) == pytest.approx(0.6)
