"""Selection operator tests (Section III-C): all three cases plus closure."""

import pytest

from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    closure,
    expected_multiplicities,
    model_multiplicities,
    multiplicities_match,
    select,
    world_select,
)
from repro.core.predicates import And, Comparison, Or, TruePredicate, col
from repro.errors import QueryError
from repro.pdf import (
    CategoricalPdf,
    DiscretePdf,
    FlooredPdf,
    GaussianPdf,
    JointDiscretePdf,
    JointGaussianPdf,
)


class TestClosure:
    def test_paper_example(self):
        """Ω({{a,b},{c,d},{e,f}} ∪ {b,c,g}) = {{a,b,c,d,g},{e,f}}."""
        sets = [frozenset("ab"), frozenset("cd"), frozenset("ef")]
        untouched, merged = closure(sets, frozenset("bcg"))
        assert merged == frozenset("abcdg")
        assert untouched == (frozenset("ef"),)

    def test_disjoint_new_set(self):
        untouched, merged = closure([frozenset("ab")], frozenset("xy"))
        assert merged == frozenset("xy")
        assert untouched == (frozenset("ab"),)


class TestCase1CertainOnly:
    def test_filters_on_certain(self, sensor_relation):
        out = select(sensor_relation, Comparison("id", "=", 1))
        assert len(out) == 1
        assert out.tuples[0].certain["id"] == 1
        # pdfs copied over untouched
        assert out.tuples[0].pdf_of_attr("location").params["mean"] == 20.0

    def test_schema_unchanged(self, sensor_relation):
        out = select(sensor_relation, Comparison("id", ">", 1))
        assert out.schema == sensor_relation.schema

    def test_null_dropped(self):
        schema = ProbabilisticSchema([Column("id", DataType.INT)])
        rel = ProbabilisticRelation(schema)
        rel.insert(certain={"id": None})
        rel.insert(certain={"id": 5})
        out = select(rel, Comparison("id", ">", 0))
        assert len(out) == 1

    def test_history_copied(self, sensor_relation):
        out = select(sensor_relation, Comparison("id", "=", 1))
        t_in = sensor_relation.tuples[0]
        t_out = out.tuples[0]
        assert t_out.lineage == t_in.lineage


class TestCase2Uncertain:
    def test_paper_section_3c_example(self, table2_relation):
        """σ_{a<b} over Table II gives the exact joint of the paper."""
        out = select(table2_relation, Comparison("a", "<", col("b")))
        assert len(out) == 1
        joint = out.tuples[0].pdfs[frozenset({"a", "b"})]
        assert isinstance(joint, JointDiscretePdf)
        expected = {(0.0, 1.0): 0.06, (0.0, 2.0): 0.04, (1.0, 2.0): 0.36}
        got = {k: pytest.approx(v) for k, v in joint.table.items() if v > 0}
        assert {k: v for k, v in joint.table.items() if v > 0} == pytest.approx(expected)

    def test_schema_merges_dependency_sets(self, table2_relation):
        out = select(table2_relation, Comparison("a", "<", col("b")))
        assert set(out.schema.dependency) == {frozenset({"a", "b"})}

    def test_history_is_union(self, table2_relation):
        out = select(table2_relation, Comparison("a", "<", col("b")))
        t_in = table2_relation.tuples[0]
        t_out = out.tuples[0]
        expected = t_in.lineage[frozenset({"a"})] | t_in.lineage[frozenset({"b"})]
        assert t_out.lineage[frozenset({"a", "b"})] == expected

    def test_case_2a_untouched_sets_copied(self):
        schema = ProbabilisticSchema(
            [Column("u"), Column("v")], [{"u"}, {"v"}]
        )
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"u": DiscretePdf({1: 1.0}), "v": DiscretePdf({2: 1.0})})
        out = select(rel, Comparison("u", "=", 1))
        t = out.tuples[0]
        assert t.pdfs[frozenset({"v"})] == DiscretePdf({2: 1.0}, attr="v")

    def test_symbolic_floor_for_range(self, sensor_relation):
        out = select(
            sensor_relation,
            And([Comparison("location", ">", 18), Comparison("location", "<", 22)]),
        )
        pdf = out.tuples[0].pdfs[frozenset({"location"})]
        assert isinstance(pdf, FlooredPdf)
        g = GaussianPdf(20, 5)
        expected = float(g.cdf(22) - g.cdf(18))
        assert pdf.mass() == pytest.approx(expected)

    def test_fully_floored_tuple_dropped(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"v": DiscretePdf({1: 1.0})})
        out = select(rel, Comparison("v", ">", 100))
        assert len(out) == 0

    def test_null_pdf_dropped(self):
        schema = ProbabilisticSchema([Column("v")], [{"v"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"v": None})
        rel.insert(uncertain={"v": DiscretePdf({5: 1.0})})
        out = select(rel, Comparison("v", ">", 0))
        assert len(out) == 1

    def test_certain_attr_absorbed_into_joint(self):
        """Case 2(b): certain attrs in the predicate become uncertain."""
        schema = ProbabilisticSchema(
            [Column("k", DataType.INT), Column("v")], [{"v"}]
        )
        rel = ProbabilisticRelation(schema)
        rel.insert(certain={"k": 3}, uncertain={"v": DiscretePdf({1: 0.5, 5: 0.5})})
        out = select(rel, Comparison("v", ">", col("k")))
        assert out.schema.is_uncertain("k")
        t = out.tuples[0]
        joint = t.pdfs[frozenset({"k", "v"})]
        assert joint.mass() == pytest.approx(0.5)
        assert "k" not in t.certain

    def test_certain_null_in_uncertain_predicate_drops(self):
        schema = ProbabilisticSchema(
            [Column("k", DataType.INT), Column("v")], [{"v"}]
        )
        rel = ProbabilisticRelation(schema)
        rel.insert(certain={"k": None}, uncertain={"v": DiscretePdf({1: 1.0})})
        out = select(rel, Comparison("v", ">", col("k")))
        assert len(out) == 0

    def test_categorical_selection(self):
        schema = ProbabilisticSchema([Column("tag", DataType.TEXT)], [{"tag"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"tag": CategoricalPdf({"cat": 0.7, "dog": 0.3})})
        out = select(rel, Comparison("tag", "=", "cat"))
        assert len(out) == 1
        assert out.tuples[0].pdfs[frozenset({"tag"})].mass() == pytest.approx(0.7)

    def test_categorical_unseen_label_drops_all(self):
        schema = ProbabilisticSchema([Column("tag", DataType.TEXT)], [{"tag"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"tag": CategoricalPdf({"cat": 1.0})})
        out = select(rel, Comparison("tag", "=", "zebra"))
        assert len(out) == 0

    def test_joint_gaussian_box_selection(self):
        schema = ProbabilisticSchema(
            [Column("x"), Column("y")], [{"x", "y"}]
        )
        rel = ProbabilisticRelation(schema)
        rel.insert(
            uncertain={("x", "y"): JointGaussianPdf(("x", "y"), [0, 0], [[1, 0], [0, 1]])}
        )
        out = select(rel, And([Comparison("x", "<", 0), Comparison("y", "<", 0)]))
        pdf = out.tuples[0].pdfs[frozenset({"x", "y"})]
        assert pdf.mass() == pytest.approx(0.25, abs=1e-6)

    def test_or_predicate(self, table2_relation):
        out = select(
            table2_relation, Or([Comparison("a", "=", 0), Comparison("a", "=", 7)])
        )
        masses = sorted(
            t.pdfs[frozenset({"a"})].mass() for t in out.tuples
        )
        assert masses == [pytest.approx(0.1), pytest.approx(1.0)]

    def test_unknown_attr_rejected(self, table2_relation):
        with pytest.raises(QueryError):
            select(table2_relation, Comparison("zzz", ">", 1))


class TestSelectionVsPossibleWorlds:
    def test_matches_pws(self, table2_relation):
        pred = Comparison("a", "<", col("b"))
        out = select(table2_relation, pred)
        pws = expected_multiplicities(
            {"T": table2_relation}, lambda w: world_select(w["T"], pred)
        )
        assert multiplicities_match(model_multiplicities(out), pws)

    def test_successive_selections_match_pws(self, table2_relation):
        p1 = Comparison("a", "<", col("b"))
        p2 = Comparison("b", "=", 2)
        out = select(select(table2_relation, p1), p2)
        pws = expected_multiplicities(
            {"T": table2_relation},
            lambda w: world_select(world_select(w["T"], p1), p2),
        )
        assert multiplicities_match(model_multiplicities(out), pws)

    def test_selection_order_irrelevant(self, table2_relation):
        """Theorem 1 corollary: floors commute."""
        p1 = Comparison("a", "<", col("b"))
        p2 = Comparison("b", "=", 2)
        ab = select(select(table2_relation, p1), p2)
        ba = select(select(table2_relation, p2), p1)
        assert multiplicities_match(
            model_multiplicities(ab), model_multiplicities(ba)
        )
