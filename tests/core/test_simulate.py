"""World-sampling tests: the Monte Carlo counterpart of enumeration."""

import numpy as np
import pytest

from repro.core import (
    Column,
    Comparison,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
    col,
    estimate_expected_rows,
    existence_probability,
    expected_multiplicities,
    sample_worlds,
    select,
    world_join,
    world_select,
)
from repro.errors import UnsupportedOperationError
from repro.pdf import DiscretePdf, GaussianPdf, JointGaussianPdf

N = 40_000
TOL = 5 / np.sqrt(N) + 0.01


def _relation(pdfs, attr="v"):
    schema = ProbabilisticSchema([Column(attr, DataType.REAL)], [{attr}])
    rel = ProbabilisticRelation(schema, name="T")
    for pdf in pdfs:
        rel.insert(uncertain={attr: pdf})
    return rel


class TestSampleWorlds:
    def test_world_shapes(self, rng):
        rel = _relation([GaussianPdf(0, 1), DiscretePdf({5: 0.5})])
        for world in sample_worlds({"T": rel}, rng, 20):
            assert set(world) == {"T"}
            assert 1 <= len(world["T"]) <= 2  # first tuple always exists
            for row in world["T"]:
                assert "v" in row

    def test_partial_tuple_frequency(self, rng):
        rel = _relation([DiscretePdf({5: 0.3})])
        count = sum(len(w["T"]) for w in sample_worlds({"T": rel}, rng, N))
        assert count / N == pytest.approx(0.3, abs=TOL)

    def test_joint_sets_sampled_jointly(self, rng):
        schema = ProbabilisticSchema(
            [Column("x", DataType.REAL), Column("y", DataType.REAL)], [{"x", "y"}]
        )
        rel = ProbabilisticRelation(schema, name="T")
        rel.insert(
            uncertain={("x", "y"): JointGaussianPdf(("x", "y"), [0, 0], [[1, 0.9], [0.9, 1]])}
        )
        xs, ys = [], []
        for world in sample_worlds({"T": rel}, rng, 5000):
            (row,) = world["T"]
            xs.append(row["x"])
            ys.append(row["y"])
        assert np.corrcoef(xs, ys)[0, 1] == pytest.approx(0.9, abs=0.03)

    def test_null_pdf_rejected(self, rng):
        schema = ProbabilisticSchema([Column("v", DataType.REAL)], [{"v"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"v": None})
        with pytest.raises(UnsupportedOperationError):
            next(iter(sample_worlds({"T": rel}, rng, 1)))

    def test_derived_relation_rejected(self, rng):
        rel = _relation([DiscretePdf({1: 0.5, 2: 0.5}), DiscretePdf({1: 1.0})])
        derived = select(rel, Comparison("v", ">", 0))
        # Selection merges lineages only when sets merge; force a derived
        # relation with multi-ancestor lineage via a join-style product.
        from repro.core import cross_product, prefix_attrs, project

        crossed = select(
            cross_product(prefix_attrs(rel, "l"), prefix_attrs(rel, "r")),
            Comparison("l.v", "<", col("r.v")),
        )
        with pytest.raises(UnsupportedOperationError):
            next(iter(sample_worlds({"T": crossed}, rng, 1)))


class TestEstimates:
    def test_matches_exact_enumeration(self, rng):
        rel = _relation([DiscretePdf({1: 0.5, 2: 0.5}), DiscretePdf({2: 0.7})])
        pred = Comparison("v", ">=", 2)
        exact = sum(
            expected_multiplicities(
                {"T": rel}, lambda w: world_select(w["T"], pred)
            ).values()
        )
        est = estimate_expected_rows(
            {"T": rel}, lambda w: world_select(w["T"], pred), rng, N
        )
        assert est == pytest.approx(exact, abs=TOL)

    def test_matches_continuous_selection(self, rng):
        rel = _relation([GaussianPdf(10, 4), GaussianPdf(20, 4)])
        pred = Comparison("v", "<", 12)
        sel = select(rel, pred)
        exact = sum(existence_probability(sel, t) for t in sel)
        est = estimate_expected_rows(
            {"T": rel}, lambda w: world_select(w["T"], pred), rng, N
        )
        assert est == pytest.approx(exact, abs=TOL)

    def test_matches_continuous_join(self, rng):
        left = _relation([GaussianPdf(0, 1)], attr="a")
        schema = ProbabilisticSchema([Column("b", DataType.REAL)], [{"b"}])
        right = ProbabilisticRelation(schema, left.store, name="R")
        right.insert(uncertain={"b": GaussianPdf(0.5, 1)})
        pred = Comparison("a", "<", col("b"))

        from repro.core import join

        joined = join(left, right, pred)
        exact = sum(existence_probability(joined, t) for t in joined)
        est = estimate_expected_rows(
            {"L": left, "R": right},
            lambda w: world_join(w["L"], w["R"], pred),
            rng,
            N,
        )
        assert est == pytest.approx(exact, abs=TOL + 0.02)
