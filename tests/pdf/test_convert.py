"""Conversion tests: discretize / to_histogram (the Figure 4 competitors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PdfError, UnsupportedOperationError
from repro.pdf import (
    DiscretePdf,
    GaussianPdf,
    HistogramPdf,
    IntervalSet,
    UniformPdf,
    discretize,
    fit_gaussian,
    pdfs_allclose,
    to_histogram,
)


class TestDiscretize:
    def test_mass_preserved(self):
        d = discretize(GaussianPdf(10, 4), 7)
        assert d.mass() == pytest.approx(1.0, abs=1e-9)

    def test_point_count(self):
        d = discretize(GaussianPdf(10, 4), 7)
        assert len(d.values) == 7

    def test_points_equally_spaced(self):
        d = discretize(UniformPdf(0, 10), 5)
        assert np.allclose(np.diff(d.values), 2.0)

    def test_uniform_exact_masses(self):
        d = discretize(UniformPdf(0, 10), 5)
        assert np.allclose(d.probs, 0.2)

    def test_explicit_bounds(self):
        d = discretize(GaussianPdf(0, 1), 3, lo=-1, hi=1)
        # Tail mass is folded into the boundary points; total is preserved.
        assert d.mass() == pytest.approx(1.0, abs=1e-9)
        assert d.values.min() >= -1 and d.values.max() <= 1

    def test_invalid_count(self):
        with pytest.raises(PdfError):
            discretize(GaussianPdf(0, 1), 0)


class TestToHistogram:
    def test_mass_preserved(self):
        h = to_histogram(GaussianPdf(10, 4), 5)
        assert h.mass() == pytest.approx(1.0, abs=1e-9)

    def test_bucket_count(self):
        assert to_histogram(GaussianPdf(10, 4), 5).num_buckets == 5

    def test_uniform_roundtrip_exact(self):
        u = UniformPdf(0, 10)
        h = to_histogram(u, 4)
        xs = np.linspace(0, 10, 21)
        assert np.allclose(h.cdf(xs), u.cdf(xs), atol=1e-12)

    def test_bucket_masses_match_cdf(self):
        g = GaussianPdf(0, 1)
        h = to_histogram(g, 8, lo=-4, hi=4)
        for i in range(8):
            lo, hi = h.edges[i], h.edges[i + 1]
            expected = float(g.cdf(hi) - g.cdf(lo))
            if i == 0:
                expected += float(g.cdf(lo))
            if i == 7:
                expected += float(1 - g.cdf(hi))
            assert h.masses[i] == pytest.approx(expected, abs=1e-12)

    def test_invalid_count(self):
        with pytest.raises(PdfError):
            to_histogram(GaussianPdf(0, 1), 0)

    def test_unknown_method(self):
        with pytest.raises(PdfError):
            to_histogram(GaussianPdf(0, 1), 5, method="nope")


class TestEquidepth:
    def test_equal_bucket_masses(self):
        h = to_histogram(GaussianPdf(50, 4), 8, method="equidepth")
        assert np.allclose(h.masses, 1 / 8, atol=1e-6)

    def test_mass_preserved(self):
        h = to_histogram(GaussianPdf(0, 1), 5, method="equidepth")
        assert h.mass() == pytest.approx(1.0, abs=1e-9)

    def test_partial_pdf(self):
        from repro.pdf import BoxRegion, FlooredPdf

        partial = GaussianPdf(0, 1).restrict(
            BoxRegion({"x": IntervalSet.less_than(0)})
        )
        h = to_histogram(partial, 4, method="equidepth")
        assert h.mass() == pytest.approx(0.5, abs=1e-6)
        assert np.allclose(h.masses, 0.125, atol=1e-6)

    def test_middle_buckets_narrower_for_gaussian(self):
        h = to_histogram(GaussianPdf(0, 1), 8, method="equidepth")
        widths = np.diff(h.edges)
        # Dense center -> narrow buckets; tails -> wide buckets.
        assert widths[3] < widths[0]
        assert widths[4] < widths[-1]

    def test_uniform_equidepth_equals_equiwidth(self):
        u = UniformPdf(0, 10)
        ew = to_histogram(u, 5)
        ed = to_histogram(u, 5, method="equidepth")
        assert np.allclose(ew.edges, ed.edges, atol=1e-6)


class TestAccuracyOrdering:
    """The substance of Figure 4: histograms beat discrete at equal size."""

    def test_histogram_beats_discrete_at_equal_size(self):
        g = GaussianPdf(50, 4)
        rng = np.random.default_rng(3)
        hist = to_histogram(g, 5)
        disc = discretize(g, 5)
        hist_err, disc_err = [], []
        for _ in range(200):
            mid = rng.uniform(40, 60)
            length = max(rng.normal(10, 3), 0.5)
            window = IntervalSet.between(mid - length / 2, mid + length / 2)
            exact = g.prob_interval(window)
            hist_err.append(abs(hist.prob_interval(window) - exact))
            disc_err.append(abs(disc.prob_interval(window) - exact))
        assert np.mean(hist_err) < np.mean(disc_err)

    def test_error_decreases_with_size(self):
        g = GaussianPdf(50, 4)
        window = IntervalSet.between(47.3, 53.9)
        exact = g.prob_interval(window)
        errors = [
            abs(to_histogram(g, size).prob_interval(window) - exact)
            for size in (2, 8, 32)
        ]
        assert errors[0] >= errors[1] >= errors[2]

    def test_discrete_boundary_miss(self):
        """The paper's pathological case: the query barely misses a point."""
        g = GaussianPdf(0, 1)
        disc = discretize(g, 5)  # points at cell centers
        points = disc.values
        gap_lo = (points[1] + points[2]) / 2 + 1e-6
        gap_hi = points[2] - 1e-6
        window = IntervalSet.between(gap_lo, gap_hi)
        assert disc.prob_interval(window) == 0.0
        assert g.prob_interval(window) > 0.05


class TestFitGaussian:
    def test_moment_match(self):
        u = UniformPdf(0, 12)
        g = fit_gaussian(u)
        assert g.mean() == pytest.approx(6.0)
        assert g.variance() == pytest.approx(12.0)

    def test_rejects_degenerate(self):
        d = DiscretePdf({5: 1.0})
        with pytest.raises(UnsupportedOperationError):
            fit_gaussian(d)


class TestPdfsAllclose:
    def test_same_pdf(self):
        assert pdfs_allclose(GaussianPdf(0, 1), GaussianPdf(0, 1))

    def test_different_pdf(self):
        assert not pdfs_allclose(GaussianPdf(0, 1), GaussianPdf(1, 1), atol=1e-3)

    def test_fine_histogram_close_to_base(self):
        g = GaussianPdf(0, 1)
        assert pdfs_allclose(g, to_histogram(g, 512), atol=5e-3)


@settings(max_examples=40, deadline=None)
@given(
    mean=st.floats(min_value=-50, max_value=50),
    var=st.floats(min_value=0.1, max_value=100),
    size=st.integers(min_value=1, max_value=40),
)
def test_conversions_preserve_mass(mean, var, size):
    g = GaussianPdf(mean, var)
    assert to_histogram(g, size).mass() == pytest.approx(1.0, abs=1e-9)
    assert discretize(g, size).mass() == pytest.approx(1.0, abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(size=st.integers(min_value=2, max_value=64))
def test_histogram_cdf_dominates_discrete_on_bucket_edges(size):
    """On cell edges both representations agree with the exact cdf."""
    g = GaussianPdf(0, 1)
    h = to_histogram(g, size)
    edges = h.edges[1:-1]
    assert np.allclose(h.cdf(edges), g.cdf(edges), atol=1e-12)
