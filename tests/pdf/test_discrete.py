"""Discrete distribution tests: explicit, categorical, and symbolic families."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidDistributionError, PdfError
from repro.pdf import (
    BernoulliPdf,
    BinomialPdf,
    BoxRegion,
    CategoricalPdf,
    DiscretePdf,
    GeometricPdf,
    IntervalSet,
    PoissonPdf,
    PredicateRegion,
    code_label,
    label_code,
)


class TestDiscretePdf:
    def test_paper_notation(self):
        # Discrete(0: 0.1, 1: 0.9) from Section III-C.
        d = DiscretePdf({0: 0.1, 1: 0.9})
        assert d.mass() == pytest.approx(1.0)
        assert float(d.pdf_at(0)) == pytest.approx(0.1)
        assert float(d.pdf_at(1)) == pytest.approx(0.9)
        assert float(d.pdf_at(0.5)) == 0.0

    def test_partial_pdf_allowed(self):
        d = DiscretePdf({4: 0.2, 7: 0.2})
        assert d.mass() == pytest.approx(0.4)

    def test_over_unit_mass_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePdf({0: 0.8, 1: 0.4})

    def test_negative_prob_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePdf({0: -0.1, 1: 0.5})

    def test_empty_rejected(self):
        with pytest.raises(InvalidDistributionError):
            DiscretePdf({})

    def test_values_sorted(self):
        d = DiscretePdf({5: 0.2, 1: 0.3, 3: 0.5})
        assert d.values.tolist() == [1, 3, 5]

    def test_cdf_steps(self):
        d = DiscretePdf({1: 0.25, 2: 0.5, 4: 0.25})
        assert float(d.cdf(0.5)) == 0.0
        assert float(d.cdf(1)) == pytest.approx(0.25)
        assert float(d.cdf(1.5)) == pytest.approx(0.25)
        assert float(d.cdf(2)) == pytest.approx(0.75)
        assert float(d.cdf(10)) == pytest.approx(1.0)

    def test_prob_interval_respects_openness(self):
        d = DiscretePdf({1: 0.25, 2: 0.5, 4: 0.25})
        closed = IntervalSet.between(1, 2)
        open_ = IntervalSet.between(1, 2, closed_lo=False, closed_hi=False)
        assert d.prob_interval(closed) == pytest.approx(0.75)
        assert d.prob_interval(open_) == 0.0

    def test_restrict_box(self):
        d = DiscretePdf({1: 0.25, 2: 0.5, 4: 0.25})
        out = d.restrict(BoxRegion({"x": IntervalSet.greater_than(1)}))
        assert out.mass() == pytest.approx(0.75)
        assert float(out.pdf_at(1)) == 0.0

    def test_restrict_to_nothing_keeps_zero_mass(self):
        d = DiscretePdf({1: 1.0})
        out = d.restrict(BoxRegion({"x": IntervalSet.greater_than(10)}))
        assert out.mass() == 0.0

    def test_restrict_predicate(self):
        d = DiscretePdf({1: 0.25, 2: 0.5, 4: 0.25})
        out = d.restrict(PredicateRegion(("x",), lambda x: x % 2 == 0, "even"))
        assert out.mass() == pytest.approx(0.75)

    def test_moments(self):
        d = DiscretePdf({0: 0.5, 10: 0.5})
        assert d.mean() == pytest.approx(5.0)
        assert d.variance() == pytest.approx(25.0)

    def test_partial_moments_are_conditional(self):
        d = DiscretePdf({0: 0.25, 10: 0.25})
        assert d.mean() == pytest.approx(5.0)

    def test_scaled_and_normalized(self):
        d = DiscretePdf({1: 0.4, 2: 0.4})
        n = d.normalized()
        assert n.mass() == pytest.approx(1.0)
        assert float(n.pdf_at(1)) == pytest.approx(0.5)

    def test_sampling_only_support_values(self, rng):
        d = DiscretePdf({1: 0.5, 3: 0.5})
        samples = d.sample(rng, 500)["x"]
        assert set(np.unique(samples)) <= {1.0, 3.0}

    def test_sample_zero_mass_raises(self, rng):
        d = DiscretePdf({1: 1.0}).restrict(BoxRegion({"x": IntervalSet.greater_than(5)}))
        with pytest.raises(PdfError):
            d.sample(rng, 1)

    def test_to_grid_roundtrip(self):
        d = DiscretePdf({1: 0.3, 2: 0.7})
        grid = d.to_grid()
        assert grid.is_discrete
        assert grid.mass() == pytest.approx(1.0)
        assert float(grid.density({"x": 2})) == pytest.approx(0.7)

    def test_equality(self):
        assert DiscretePdf({1: 0.5, 2: 0.5}) == DiscretePdf({2: 0.5, 1: 0.5})
        assert DiscretePdf({1: 0.5, 2: 0.5}) != DiscretePdf({1: 0.4, 2: 0.6})


class TestCategoricalPdf:
    def test_label_roundtrip(self):
        c = CategoricalPdf({"cat": 0.7, "dog": 0.3}, attr="animal")
        assert c.prob_label("cat") == pytest.approx(0.7)
        assert c.prob_label("fish") == 0.0
        assert dict(c.label_items()) == pytest.approx({"cat": 0.7, "dog": 0.3})

    def test_codes_are_global(self):
        a = CategoricalPdf({"red": 0.5, "blue": 0.5})
        b = CategoricalPdf({"blue": 1.0})
        assert a.code_of("blue") == b.code_of("blue")

    def test_label_code_interning(self):
        code = label_code("some-unique-label-xyz")
        assert code_label(code) == "some-unique-label-xyz"
        assert label_code("some-unique-label-xyz") == code

    def test_code_label_unknown_raises(self):
        with pytest.raises(KeyError):
            code_label(10**9)

    def test_partial_categorical(self):
        c = CategoricalPdf({"person": 0.6, "place": 0.2})
        assert c.mass() == pytest.approx(0.8)

    def test_with_attrs_preserves_labels(self):
        c = CategoricalPdf({"x": 0.5, "y": 0.5}, attr="a")
        r = c.with_attrs(["b"])
        assert isinstance(r, CategoricalPdf)
        assert r.prob_label("x") == pytest.approx(0.5)

    def test_restrict_by_code(self):
        c = CategoricalPdf({"cat": 0.7, "dog": 0.3})
        out = c.restrict(BoxRegion({"x": IntervalSet.point(c.code_of("dog"))}))
        assert out.mass() == pytest.approx(0.3)


SYMBOLIC = [
    BernoulliPdf(0.3),
    BinomialPdf(10, 0.4),
    PoissonPdf(3.5),
    GeometricPdf(0.25),
]


@pytest.mark.parametrize("pdf", SYMBOLIC, ids=lambda p: p.symbol)
class TestSymbolicDiscrete:
    def test_mass(self, pdf):
        assert pdf.mass() == 1.0

    def test_is_discrete(self, pdf):
        assert pdf.is_discrete

    def test_materialize_covers_mass(self, pdf):
        d = pdf.materialize()
        assert d.mass() == pytest.approx(1.0, abs=1e-9)

    def test_materialize_matches_pmf(self, pdf):
        d = pdf.materialize()
        for v in d.values[:10]:
            assert float(d.pdf_at(v)) == pytest.approx(float(pdf.pdf_at(v)))

    def test_moments_match_materialized(self, pdf):
        d = pdf.materialize()
        assert d.mean() == pytest.approx(pdf.mean(), abs=1e-6)
        assert d.variance() == pytest.approx(pdf.variance(), abs=1e-4)

    def test_restrict_returns_discrete(self, pdf):
        out = pdf.restrict(BoxRegion({"x": IntervalSet.less_than(pdf.mean(), inclusive=True)}))
        assert isinstance(out, DiscretePdf)
        assert out.mass() == pytest.approx(float(pdf.cdf(pdf.mean())), abs=1e-9)

    def test_with_attrs(self, pdf):
        out = pdf.with_attrs(["k"])
        assert out.attrs == ("k",)
        assert out == type(pdf)(attr="k", **pdf.params) if pdf.symbol != "BINOMIAL" else True

    def test_sampling_integers(self, pdf, rng):
        samples = pdf.sample(rng, 200)["x"]
        assert np.allclose(samples, np.round(samples))


class TestSymbolicDiscreteValidation:
    def test_bernoulli_bounds(self):
        with pytest.raises(InvalidDistributionError):
            BernoulliPdf(1.5)

    def test_binomial_bounds(self):
        with pytest.raises(InvalidDistributionError):
            BinomialPdf(-1, 0.5)
        with pytest.raises(InvalidDistributionError):
            BinomialPdf(2.5, 0.5)

    def test_poisson_bounds(self):
        with pytest.raises(InvalidDistributionError):
            PoissonPdf(0)

    def test_geometric_bounds(self):
        with pytest.raises(InvalidDistributionError):
            GeometricPdf(0.0)


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.dictionaries(
        st.integers(min_value=-50, max_value=50).map(float),
        st.floats(min_value=0.001, max_value=1.0),
        min_size=1,
        max_size=8,
    ),
    cut=st.floats(min_value=-60, max_value=60),
)
def test_discrete_restrict_partition(pairs, cut):
    """Restricting below and above a cut partitions the mass exactly."""
    total = sum(pairs.values())
    pairs = {k: v / total for k, v in pairs.items()}
    d = DiscretePdf(pairs)
    below = d.restrict(BoxRegion({"x": IntervalSet.less_than(cut)}))
    above = d.restrict(BoxRegion({"x": IntervalSet.greater_than(cut, inclusive=True)}))
    assert below.mass() + above.mass() == pytest.approx(d.mass(), abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.dictionaries(
        st.integers(min_value=-20, max_value=20).map(float),
        st.floats(min_value=0.001, max_value=1.0),
        min_size=1,
        max_size=6,
    )
)
def test_discrete_cdf_limits(pairs):
    total = sum(pairs.values())
    pairs = {k: v / total for k, v in pairs.items()}
    d = DiscretePdf(pairs)
    assert float(d.cdf(-1000)) == 0.0
    assert float(d.cdf(1000)) == pytest.approx(1.0)
