"""The Pdf contract, enforced uniformly across every concrete representation.

One parametrized matrix: each invariant below must hold for every pdf kind
the model can ever hold — symbolic, generic, floored, joint, lazy product.
These are the invariants the relational operators silently rely on.
"""

import numpy as np
import pytest

from repro.pdf import (
    BernoulliPdf,
    BetaPdf,
    BinomialPdf,
    BoxRegion,
    CategoricalPdf,
    DiscretePdf,
    ExponentialPdf,
    FlooredPdf,
    GammaPdf,
    GaussianPdf,
    GeometricPdf,
    HistogramPdf,
    IntervalSet,
    JointDiscretePdf,
    JointGaussianPdf,
    LognormalPdf,
    PoissonPdf,
    ProductPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)


def _floored_gaussian():
    return FlooredPdf(GaussianPdf(5, 2, attr="x"), IntervalSet.between(3, 6))


ALL_PDFS = [
    pytest.param(GaussianPdf(10, 4, attr="x"), id="gaussian"),
    pytest.param(UniformPdf(0, 10, attr="x"), id="uniform"),
    pytest.param(ExponentialPdf(0.7, attr="x"), id="exponential"),
    pytest.param(TriangularPdf(0, 2, 9, attr="x"), id="triangular"),
    pytest.param(GammaPdf(2, 1, attr="x"), id="gamma"),
    pytest.param(LognormalPdf(0, 0.8, attr="x"), id="lognormal"),
    pytest.param(BetaPdf(2, 3, attr="x"), id="beta"),
    pytest.param(WeibullPdf(1.5, 4, attr="x"), id="weibull"),
    pytest.param(BernoulliPdf(0.4, attr="x"), id="bernoulli"),
    pytest.param(BinomialPdf(8, 0.3, attr="x"), id="binomial"),
    pytest.param(PoissonPdf(2.5, attr="x"), id="poisson"),
    pytest.param(GeometricPdf(0.4, attr="x"), id="geometric"),
    pytest.param(DiscretePdf({1: 0.2, 3: 0.5, 7: 0.3}, attr="x"), id="discrete"),
    pytest.param(DiscretePdf({1: 0.3, 2: 0.3}, attr="x"), id="discrete-partial"),
    pytest.param(CategoricalPdf({"u": 0.5, "v": 0.5}, attr="x"), id="categorical"),
    pytest.param(HistogramPdf([0, 2, 5, 9], [0.25, 0.5, 0.25], attr="x"), id="histogram"),
    pytest.param(HistogramPdf([0, 4], [0.7], attr="x"), id="histogram-partial"),
    pytest.param(_floored_gaussian(), id="floored"),
    pytest.param(GaussianPdf(0, 1, attr="x").to_grid(), id="grid-1d"),
    pytest.param(
        JointDiscretePdf(("x", "y"), {(0, 1): 0.4, (1, 0): 0.3, (1, 1): 0.3}),
        id="joint-discrete",
    ),
    pytest.param(
        JointGaussianPdf(("x", "y"), [1, 2], [[1, 0.4], [0.4, 2]]), id="joint-gaussian"
    ),
    pytest.param(
        ProductPdf([GaussianPdf(0, 1, attr="x"), DiscretePdf({1: 0.5, 2: 0.5}, attr="y")]),
        id="product",
    ),
    pytest.param(
        JointGaussianPdf(("x", "y"), [0, 0], [[1, 0.5], [0.5, 1]]).to_grid(),
        id="grid-2d",
    ),
]


@pytest.mark.parametrize("pdf", ALL_PDFS)
class TestPdfContract:
    def test_mass_in_unit_interval(self, pdf):
        assert 0.0 <= pdf.mass() <= 1.0 + 1e-9

    def test_arity_matches_attrs(self, pdf):
        assert pdf.arity == len(pdf.attrs)
        assert len(set(pdf.attrs)) == pdf.arity

    def test_density_nonnegative(self, pdf):
        support = pdf.support()
        points = {a: np.linspace(lo, hi, 9) for a, (lo, hi) in support.items()}
        assert np.all(np.asarray(pdf.density(points)) >= -1e-12)

    def test_prob_of_full_box_is_mass(self, pdf):
        region = BoxRegion({a: IntervalSet.full() for a in pdf.attrs})
        assert pdf.prob(region) == pytest.approx(pdf.mass(), abs=1e-6)

    def test_prob_of_empty_box_is_zero(self, pdf):
        region = BoxRegion({pdf.attrs[0]: IntervalSet.empty()})
        assert pdf.prob(region) == pytest.approx(0.0, abs=1e-12)

    def test_restrict_never_increases_mass(self, pdf):
        attr = pdf.attrs[0]
        lo, hi = pdf.support()[attr]
        cut = (lo + hi) / 2
        restricted = pdf.restrict(BoxRegion({attr: IntervalSet.less_than(cut, inclusive=True)}))
        assert restricted.mass() <= pdf.mass() + 1e-9

    def test_restrict_split_partitions_mass(self, pdf):
        attr = pdf.attrs[0]
        lo, hi = pdf.support()[attr]
        cut = (lo + hi) / 2
        below = pdf.restrict(BoxRegion({attr: IntervalSet.less_than(cut, inclusive=True)}))
        above = pdf.restrict(BoxRegion({attr: IntervalSet.greater_than(cut)}))
        assert below.mass() + above.mass() == pytest.approx(pdf.mass(), abs=1e-6)

    def test_floor_composition_is_intersection(self, pdf):
        """Theorem 1's microfoundation: floors compose in any order."""
        attr = pdf.attrs[0]
        lo, hi = pdf.support()[attr]
        a = IntervalSet.between(lo, lo + 0.7 * (hi - lo))
        b = IntervalSet.between(lo + 0.3 * (hi - lo), hi)
        seq = pdf.restrict(BoxRegion({attr: a})).restrict(BoxRegion({attr: b}))
        swapped = pdf.restrict(BoxRegion({attr: b})).restrict(BoxRegion({attr: a}))
        direct = pdf.restrict(BoxRegion({attr: a.intersect(b)}))
        assert seq.mass() == pytest.approx(direct.mass(), abs=1e-6)
        assert swapped.mass() == pytest.approx(direct.mass(), abs=1e-6)

    def test_marginalize_each_attr_preserves_mass(self, pdf):
        for attr in pdf.attrs:
            marg = pdf.marginalize([attr])
            assert marg.mass() == pytest.approx(pdf.mass(), abs=1e-6)
            assert marg.attrs == (attr,)

    def test_with_attrs_roundtrip(self, pdf):
        fresh = [f"n{i}" for i in range(pdf.arity)]
        renamed = pdf.with_attrs(fresh)
        assert renamed.attrs == tuple(fresh)
        back = renamed.with_attrs(list(pdf.attrs))
        assert back.attrs == pdf.attrs
        assert back.mass() == pytest.approx(pdf.mass(), abs=1e-12)

    def test_to_grid_preserves_mass(self, pdf):
        assert pdf.to_grid().mass() == pytest.approx(pdf.mass(), abs=1e-5)

    def test_grid_marginal_mean_consistent(self, pdf):
        grid = pdf.to_grid()
        for attr in pdf.attrs:
            direct = grid.mean(attr)
            via_marginal = grid.marginalize([attr]).mean(attr)
            assert direct == pytest.approx(via_marginal, abs=1e-9)

    def test_sampling_within_support(self, pdf, rng):
        if pdf.mass() < 1e-6:
            pytest.skip("zero-mass pdf")
        samples = pdf.sample(rng, 200)
        support = pdf.support()
        for attr in pdf.attrs:
            lo, hi = support[attr]
            span = max(hi - lo, 1.0)
            assert samples[attr].min() >= lo - 0.01 * span
            assert samples[attr].max() <= hi + 0.01 * span

    def test_support_hull_contains_nearly_all_mass(self, pdf):
        region = BoxRegion(
            {a: IntervalSet.between(lo, hi) for a, (lo, hi) in pdf.support().items()}
        )
        assert pdf.prob(region) >= pdf.mass() - 1e-4
