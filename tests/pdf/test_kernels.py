"""Vectorized kernel tests: batched probabilities must equal scalar ones exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdf import (
    DiscretePdf,
    ExponentialPdf,
    FlooredPdf,
    GaussianPdf,
    HistogramPdf,
    Interval,
    IntervalSet,
    UniformPdf,
)
from repro.pdf import kernels

INF = float("inf")


def _interval_sets():
    return [
        IntervalSet([Interval(-1.0, 1.0)]),
        IntervalSet([Interval(-INF, 0.3)]),
        IntervalSet([Interval(0.7, INF)]),
        IntervalSet([Interval(-2.0, -0.5), Interval(0.5, 2.0)]),
        IntervalSet([Interval(-INF, -1.0), Interval(0.0, 0.25), Interval(3.0, INF)]),
        IntervalSet([Interval(-INF, INF)]),
        IntervalSet([]),  # empty: probability 0
    ]


def _family_zoo():
    rng = np.random.default_rng(7)
    pdfs = []
    for _ in range(8):
        pdfs.append(GaussianPdf(float(rng.normal()), float(0.3 + rng.random())))
        pdfs.append(UniformPdf(float(-2 + rng.random()), float(1 + rng.random())))
        pdfs.append(ExponentialPdf(float(0.2 + rng.random())))
    return pdfs


class TestBatchIntervalProbs:
    def test_matches_scalar_bitwise_across_families(self):
        sets = _interval_sets()
        bases, alloweds = [], []
        for i, pdf in enumerate(_family_zoo()):
            bases.append(pdf)
            alloweds.append(sets[i % len(sets)])
        vec = kernels.batch_interval_probs(bases, alloweds)
        for i, (b, a) in enumerate(zip(bases, alloweds)):
            assert vec[i] == b.prob_interval(a), (type(b).__name__, a)

    def test_scalar_fallback_for_unregistered_types(self):
        bases = [
            DiscretePdf({0.0: 0.5, 1.0: 0.5}),
            HistogramPdf([0.0, 1.0, 2.0], [0.4, 0.6]),
            GaussianPdf(0, 1),
        ]
        alloweds = [IntervalSet([Interval(-0.5, 0.5)])] * 3
        vec = kernels.batch_interval_probs(bases, alloweds)
        for i, (b, a) in enumerate(zip(bases, alloweds)):
            assert vec[i] == b.prob_interval(a)

    def test_empty_interval_set_is_zero(self):
        vec = kernels.batch_interval_probs([GaussianPdf(0, 1)], [IntervalSet([])])
        assert vec[0] == 0.0

    def test_empty_batch(self):
        assert len(kernels.batch_interval_probs([], [])) == 0

    def test_infinite_endpoints(self):
        g = GaussianPdf(0, 1)
        full = IntervalSet([Interval(-INF, INF)])
        vec = kernels.batch_interval_probs([g], [full])
        assert vec[0] == g.prob_interval(full) == 1.0

    def test_clamped_to_unit_interval(self):
        # Adjacent intervals can accumulate tiny fp excess; the kernel must
        # clamp exactly like the scalar min/max.
        g = GaussianPdf(0, 1)
        tight = IntervalSet([Interval(-9.0, 0.0), Interval(0.0, 9.0)])
        vec = kernels.batch_interval_probs([g], [tight])
        assert 0.0 <= vec[0] <= 1.0
        assert vec[0] == g.prob_interval(tight)


class TestBatchMass:
    def test_matches_scalar_for_floored_and_raw(self):
        sets = _interval_sets()
        pdfs = []
        for i, base in enumerate(_family_zoo()):
            pdfs.append(FlooredPdf(base, sets[i % len(sets)]))
        pdfs += _family_zoo()  # raw families: mass exactly 1
        pdfs.append(DiscretePdf({0.0: 0.3, 2.0: 0.5}))
        vec = kernels.batch_mass(pdfs)
        for i, p in enumerate(pdfs):
            assert vec[i] == p.mass(), repr(p)

    def test_supports_batch_mass(self):
        assert kernels.supports_batch_mass(GaussianPdf(0, 1))
        assert kernels.supports_batch_mass(
            FlooredPdf(UniformPdf(0, 1), IntervalSet([Interval(0.2, 0.8)]))
        )
        assert not kernels.supports_batch_mass(DiscretePdf({0.0: 1.0}))


@settings(max_examples=60, deadline=None)
@given(
    mu=st.floats(-50, 50),
    sd=st.floats(0.01, 20),
    lo=st.floats(-100, 100),
    width=st.floats(0, 100),
)
def test_gaussian_kernel_property(mu, sd, lo, width):
    g = GaussianPdf(mu, sd)
    allowed = IntervalSet([Interval(lo, lo + width)])
    vec = kernels.batch_interval_probs([g, g], [allowed, allowed])
    expected = g.prob_interval(allowed)
    assert vec[0] == expected
    assert vec[1] == expected


def _discrete_zoo():
    from repro.pdf import BernoulliPdf, BinomialPdf, PoissonPdf

    rng = np.random.default_rng(11)
    pdfs = []
    for _ in range(6):
        pdfs.append(BernoulliPdf(float(0.05 + 0.9 * rng.random())))
        pdfs.append(BinomialPdf(int(1 + rng.integers(20)), float(0.05 + 0.9 * rng.random())))
        pdfs.append(PoissonPdf(float(0.2 + 10 * rng.random())))
    return pdfs


class TestBatchMaterialize:
    def test_matches_scalar_materialize_bitwise(self):
        pdfs = _discrete_zoo()
        mats = kernels.batch_materialize(pdfs)
        for pdf, mat in zip(pdfs, mats):
            ref = pdf.materialize()
            assert type(mat) is type(ref)
            assert mat.attrs == ref.attrs
            np.testing.assert_array_equal(mat.values, ref.values)
            np.testing.assert_array_equal(mat.probs, ref.probs)

    def test_mixed_batch_falls_back_per_element(self):
        from repro.pdf import BinomialPdf, GeometricPdf

        pdfs = [BinomialPdf(5, 0.4), GeometricPdf(0.3), BinomialPdf(3, 0.9)]
        mats = kernels.batch_materialize(pdfs)
        for pdf, mat in zip(pdfs, mats):
            ref = pdf.materialize()
            np.testing.assert_array_equal(mat.values, ref.values)
            np.testing.assert_array_equal(mat.probs, ref.probs)

    def test_empty_batch(self):
        assert kernels.batch_materialize([]) == []

    def test_interval_probs_route_discrete_families(self):
        sets = _interval_sets()
        pdfs = _discrete_zoo()
        alloweds = [sets[i % len(sets)] for i in range(len(pdfs))]
        vec = kernels.batch_interval_probs(pdfs, alloweds)
        for i, (p, a) in enumerate(zip(pdfs, alloweds)):
            assert vec[i] == p.prob_interval(a), (repr(p), a)

    def test_batch_mass_discrete_families_is_one(self):
        pdfs = _discrete_zoo()
        vec = kernels.batch_mass(pdfs)
        for i, p in enumerate(pdfs):
            assert vec[i] == p.mass() == 1.0


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 60), p=st.floats(0.01, 0.99))
def test_binomial_batch_materialize_property(n, p):
    from repro.pdf import BinomialPdf

    pdf = BinomialPdf(n, p)
    (mat,) = kernels.batch_materialize([pdf])
    ref = pdf.materialize()
    np.testing.assert_array_equal(mat.values, ref.values)
    np.testing.assert_array_equal(mat.probs, ref.probs)


@settings(max_examples=40, deadline=None)
@given(rate=st.floats(0.01, 80))
def test_poisson_batch_materialize_property(rate):
    from repro.pdf import PoissonPdf

    pdf = PoissonPdf(rate)
    (mat,) = kernels.batch_materialize([pdf])
    ref = pdf.materialize()
    np.testing.assert_array_equal(mat.values, ref.values)
    np.testing.assert_array_equal(mat.probs, ref.probs)
