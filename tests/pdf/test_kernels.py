"""Vectorized kernel tests: batched probabilities must equal scalar ones exactly."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdf import (
    BetaPdf,
    DiscretePdf,
    ExponentialPdf,
    FlooredPdf,
    GammaPdf,
    GaussianPdf,
    GeometricPdf,
    HistogramPdf,
    Interval,
    IntervalSet,
    LognormalPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)
from repro.pdf import kernels

INF = float("inf")


def _interval_sets():
    return [
        IntervalSet([Interval(-1.0, 1.0)]),
        IntervalSet([Interval(-INF, 0.3)]),
        IntervalSet([Interval(0.7, INF)]),
        IntervalSet([Interval(-2.0, -0.5), Interval(0.5, 2.0)]),
        IntervalSet([Interval(-INF, -1.0), Interval(0.0, 0.25), Interval(3.0, INF)]),
        IntervalSet([Interval(-INF, INF)]),
        IntervalSet([]),  # empty: probability 0
    ]


def _family_zoo():
    rng = np.random.default_rng(7)
    pdfs = []
    for _ in range(8):
        pdfs.append(GaussianPdf(float(rng.normal()), float(0.3 + rng.random())))
        pdfs.append(UniformPdf(float(-2 + rng.random()), float(1 + rng.random())))
        pdfs.append(ExponentialPdf(float(0.2 + rng.random())))
        lo = float(-2 + rng.random())
        pdfs.append(TriangularPdf(lo, lo + 0.5 + rng.random(), lo + 2 + rng.random()))
        pdfs.append(GammaPdf(float(0.5 + 3 * rng.random()), float(0.3 + rng.random())))
        pdfs.append(LognormalPdf(float(rng.normal()), float(0.2 + rng.random())))
        pdfs.append(BetaPdf(float(0.5 + 3 * rng.random()), float(0.5 + 3 * rng.random())))
        pdfs.append(WeibullPdf(float(0.5 + 2 * rng.random()), float(0.3 + 2 * rng.random())))
    return pdfs


class TestBatchIntervalProbs:
    def test_matches_scalar_bitwise_across_families(self):
        sets = _interval_sets()
        bases, alloweds = [], []
        for i, pdf in enumerate(_family_zoo()):
            bases.append(pdf)
            alloweds.append(sets[i % len(sets)])
        vec = kernels.batch_interval_probs(bases, alloweds)
        for i, (b, a) in enumerate(zip(bases, alloweds)):
            assert vec[i] == b.prob_interval(a), (type(b).__name__, a)

    def test_scalar_fallback_for_unregistered_types(self):
        bases = [
            DiscretePdf({0.0: 0.5, 1.0: 0.5}),
            HistogramPdf([0.0, 1.0, 2.0], [0.4, 0.6]),
            GaussianPdf(0, 1),
        ]
        alloweds = [IntervalSet([Interval(-0.5, 0.5)])] * 3
        vec = kernels.batch_interval_probs(bases, alloweds)
        for i, (b, a) in enumerate(zip(bases, alloweds)):
            assert vec[i] == b.prob_interval(a)

    def test_empty_interval_set_is_zero(self):
        vec = kernels.batch_interval_probs([GaussianPdf(0, 1)], [IntervalSet([])])
        assert vec[0] == 0.0

    def test_empty_batch(self):
        assert len(kernels.batch_interval_probs([], [])) == 0

    def test_infinite_endpoints(self):
        g = GaussianPdf(0, 1)
        full = IntervalSet([Interval(-INF, INF)])
        vec = kernels.batch_interval_probs([g], [full])
        assert vec[0] == g.prob_interval(full) == 1.0

    def test_clamped_to_unit_interval(self):
        # Adjacent intervals can accumulate tiny fp excess; the kernel must
        # clamp exactly like the scalar min/max.
        g = GaussianPdf(0, 1)
        tight = IntervalSet([Interval(-9.0, 0.0), Interval(0.0, 9.0)])
        vec = kernels.batch_interval_probs([g], [tight])
        assert 0.0 <= vec[0] <= 1.0
        assert vec[0] == g.prob_interval(tight)


class TestBatchMass:
    def test_matches_scalar_for_floored_and_raw(self):
        sets = _interval_sets()
        pdfs = []
        for i, base in enumerate(_family_zoo()):
            pdfs.append(FlooredPdf(base, sets[i % len(sets)]))
        pdfs += _family_zoo()  # raw families: mass exactly 1
        pdfs.append(DiscretePdf({0.0: 0.3, 2.0: 0.5}))
        vec = kernels.batch_mass(pdfs)
        for i, p in enumerate(pdfs):
            assert vec[i] == p.mass(), repr(p)

    def test_supports_batch_mass(self):
        assert kernels.supports_batch_mass(GaussianPdf(0, 1))
        assert kernels.supports_batch_mass(
            FlooredPdf(UniformPdf(0, 1), IntervalSet([Interval(0.2, 0.8)]))
        )
        assert not kernels.supports_batch_mass(DiscretePdf({0.0: 1.0}))


@settings(max_examples=60, deadline=None)
@given(
    mu=st.floats(-50, 50),
    sd=st.floats(0.01, 20),
    lo=st.floats(-100, 100),
    width=st.floats(0, 100),
)
def test_gaussian_kernel_property(mu, sd, lo, width):
    g = GaussianPdf(mu, sd)
    allowed = IntervalSet([Interval(lo, lo + width)])
    vec = kernels.batch_interval_probs([g, g], [allowed, allowed])
    expected = g.prob_interval(allowed)
    assert vec[0] == expected
    assert vec[1] == expected


def _discrete_zoo():
    from repro.pdf import BernoulliPdf, BinomialPdf, PoissonPdf

    rng = np.random.default_rng(11)
    pdfs = []
    for _ in range(6):
        pdfs.append(BernoulliPdf(float(0.05 + 0.9 * rng.random())))
        pdfs.append(BinomialPdf(int(1 + rng.integers(20)), float(0.05 + 0.9 * rng.random())))
        pdfs.append(PoissonPdf(float(0.2 + 10 * rng.random())))
    return pdfs


class TestBatchMaterialize:
    def test_matches_scalar_materialize_bitwise(self):
        pdfs = _discrete_zoo()
        mats = kernels.batch_materialize(pdfs)
        for pdf, mat in zip(pdfs, mats):
            ref = pdf.materialize()
            assert type(mat) is type(ref)
            assert mat.attrs == ref.attrs
            np.testing.assert_array_equal(mat.values, ref.values)
            np.testing.assert_array_equal(mat.probs, ref.probs)

    def test_mixed_batch_falls_back_per_element(self):
        from repro.pdf import BinomialPdf, GeometricPdf

        pdfs = [BinomialPdf(5, 0.4), GeometricPdf(0.3), BinomialPdf(3, 0.9)]
        mats = kernels.batch_materialize(pdfs)
        for pdf, mat in zip(pdfs, mats):
            ref = pdf.materialize()
            np.testing.assert_array_equal(mat.values, ref.values)
            np.testing.assert_array_equal(mat.probs, ref.probs)

    def test_empty_batch(self):
        assert kernels.batch_materialize([]) == []

    def test_interval_probs_route_discrete_families(self):
        sets = _interval_sets()
        pdfs = _discrete_zoo()
        alloweds = [sets[i % len(sets)] for i in range(len(pdfs))]
        vec = kernels.batch_interval_probs(pdfs, alloweds)
        for i, (p, a) in enumerate(zip(pdfs, alloweds)):
            assert vec[i] == p.prob_interval(a), (repr(p), a)

    def test_batch_mass_discrete_families_is_one(self):
        pdfs = _discrete_zoo()
        vec = kernels.batch_mass(pdfs)
        for i, p in enumerate(pdfs):
            assert vec[i] == p.mass() == 1.0


@settings(max_examples=40, deadline=None)
@given(n=st.integers(1, 60), p=st.floats(0.01, 0.99))
def test_binomial_batch_materialize_property(n, p):
    from repro.pdf import BinomialPdf

    pdf = BinomialPdf(n, p)
    (mat,) = kernels.batch_materialize([pdf])
    ref = pdf.materialize()
    np.testing.assert_array_equal(mat.values, ref.values)
    np.testing.assert_array_equal(mat.probs, ref.probs)


@settings(max_examples=40, deadline=None)
@given(rate=st.floats(0.01, 80))
def test_poisson_batch_materialize_property(rate):
    from repro.pdf import PoissonPdf

    pdf = PoissonPdf(rate)
    (mat,) = kernels.batch_materialize([pdf])
    ref = pdf.materialize()
    np.testing.assert_array_equal(mat.values, ref.values)
    np.testing.assert_array_equal(mat.probs, ref.probs)


# ---------------------------------------------------------------------------
# Newly-kernelized continuous families: hypothesis equivalence vs scalar
# ---------------------------------------------------------------------------


def _assert_kernel_matches_scalar(pdf, lo, width):
    """batch_interval_probs and interval_probs_params vs scalar, bitwise."""
    allowed = IntervalSet([Interval(lo, lo + width)])
    expected = float(pdf.prob_interval(allowed))
    vec = kernels.batch_interval_probs([pdf, pdf], [allowed, allowed])
    assert vec[0] == expected
    assert vec[1] == expected
    fam = type(pdf)
    params = kernels.FAMILY_PARAMS[fam]([pdf])
    direct = kernels.interval_probs_params(fam, params, allowed)
    assert direct[0] == expected


@settings(max_examples=50, deadline=None)
@given(
    lo=st.floats(-50, 50),
    mode_off=st.floats(0.01, 20),
    hi_off=st.floats(0.01, 20),
    qlo=st.floats(-80, 80),
    width=st.floats(0, 100),
)
def test_triangular_kernel_property(lo, mode_off, hi_off, qlo, width):
    pdf = TriangularPdf(lo, lo + mode_off, lo + mode_off + hi_off)
    _assert_kernel_matches_scalar(pdf, qlo, width)


@settings(max_examples=50, deadline=None)
@given(
    shape=st.floats(0.05, 20),
    rate=st.floats(0.05, 20),
    qlo=st.floats(-5, 50),
    width=st.floats(0, 60),
)
def test_gamma_kernel_property(shape, rate, qlo, width):
    _assert_kernel_matches_scalar(GammaPdf(shape, rate), qlo, width)


@settings(max_examples=50, deadline=None)
@given(
    mu=st.floats(-3, 3),
    sigma=st.floats(0.05, 3),
    qlo=st.floats(-2, 40),
    width=st.floats(0, 60),
)
def test_lognormal_kernel_property(mu, sigma, qlo, width):
    _assert_kernel_matches_scalar(LognormalPdf(mu, sigma), qlo, width)


@settings(max_examples=50, deadline=None)
@given(
    alpha=st.floats(0.1, 20),
    beta=st.floats(0.1, 20),
    qlo=st.floats(-0.5, 1.5),
    width=st.floats(0, 2),
)
def test_beta_kernel_property(alpha, beta, qlo, width):
    _assert_kernel_matches_scalar(BetaPdf(alpha, beta), qlo, width)


@settings(max_examples=50, deadline=None)
@given(
    shape=st.floats(0.2, 10),
    scale=st.floats(0.05, 20),
    qlo=st.floats(-5, 50),
    width=st.floats(0, 60),
)
def test_weibull_kernel_property(shape, scale, qlo, width):
    _assert_kernel_matches_scalar(WeibullPdf(shape, scale), qlo, width)


@settings(max_examples=50, deadline=None)
@given(p=st.floats(0.01, 0.99), qlo=st.floats(-2, 40), width=st.floats(0, 50))
def test_geometric_kernel_property(p, qlo, width):
    pdf = GeometricPdf(p)
    allowed = IntervalSet([Interval(qlo, qlo + width)])
    vec = kernels.batch_interval_probs([pdf, pdf], [allowed, allowed])
    expected = float(pdf.prob_interval(allowed))
    assert vec[0] == expected
    assert vec[1] == expected


@settings(max_examples=40, deadline=None)
@given(p=st.floats(0.01, 0.99))
def test_geometric_batch_materialize_property(p):
    pdf = GeometricPdf(p)
    (mat,) = kernels.batch_materialize([pdf])
    ref = pdf.materialize()
    np.testing.assert_array_equal(mat.values, ref.values)
    np.testing.assert_array_equal(mat.probs, ref.probs)


def test_geometric_degenerate_p_one_raises_identically():
    """GeometricPdf(1.0) has a degenerate scipy support (ppf underflows to
    an empty value range); the scalar and batch paths must fail the same
    way rather than the kernel silently diverging."""
    import warnings

    from repro.errors import InvalidDistributionError

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", RuntimeWarning)
        with pytest.raises(InvalidDistributionError):
            GeometricPdf(1.0).materialize()
        with pytest.raises(InvalidDistributionError):
            kernels.batch_materialize([GeometricPdf(1.0)])


def test_new_families_in_vector_registry():
    for fam in (TriangularPdf, GammaPdf, LognormalPdf, BetaPdf, WeibullPdf):
        assert fam in kernels.VECTOR_FAMILIES
        assert fam in kernels.FAMILY_PARAMS
    assert GeometricPdf in kernels.DISCRETE_VECTOR_FAMILIES


# ---------------------------------------------------------------------------
# Histogram vector path
# ---------------------------------------------------------------------------


def _histogram_zoo():
    rng = np.random.default_rng(23)
    pdfs = []
    for buckets in (1, 2, 5, 5, 8):  # repeated counts exercise the grouping
        edges = np.sort(rng.uniform(-5, 5, buckets + 1))
        while np.any(np.diff(edges) <= 0):
            edges = np.sort(rng.uniform(-5, 5, buckets + 1))
        masses = rng.random(buckets)
        masses = masses / masses.sum()
        pdfs.append(HistogramPdf(edges.tolist(), masses.tolist()))
    return pdfs


class TestHistogramKernel:
    def test_matches_scalar_bitwise(self):
        sets = _interval_sets()
        pdfs = _histogram_zoo() * 2
        alloweds = [sets[i % len(sets)] for i in range(len(pdfs))]
        vec = kernels.batch_interval_probs(pdfs, alloweds)
        for i, (p, a) in enumerate(zip(pdfs, alloweds)):
            assert vec[i] == p.prob_interval(a), (repr(p), a)

    def test_histogram_interval_probs_direct(self):
        pdfs = _histogram_zoo()
        alloweds = [IntervalSet([Interval(-1.0, 2.0)])] * len(pdfs)
        vec = kernels.histogram_interval_probs(pdfs, alloweds)
        for i, (p, a) in enumerate(zip(pdfs, alloweds)):
            assert vec[i] == p.prob_interval(a)

    def test_mixed_with_symbolic_families(self):
        sets = _interval_sets()
        pdfs = _histogram_zoo() + _family_zoo()[:10] + _discrete_zoo()[:6]
        alloweds = [sets[i % len(sets)] for i in range(len(pdfs))]
        vec = kernels.batch_interval_probs(pdfs, alloweds)
        for i, (p, a) in enumerate(zip(pdfs, alloweds)):
            assert vec[i] == p.prob_interval(a), (repr(p), a)

    def test_batch_mass_histograms(self):
        pdfs = _histogram_zoo()
        floors = [
            FlooredPdf(p, IntervalSet([Interval(-1.0, 1.5)])) for p in pdfs
        ]
        vec = kernels.batch_mass(pdfs + floors)
        for i, p in enumerate(pdfs + floors):
            assert vec[i] == p.mass(), repr(p)


@settings(max_examples=40, deadline=None)
@given(
    data=st.data(),
    buckets=st.integers(1, 10),
    qlo=st.floats(-10, 10),
    width=st.floats(0, 15),
)
def test_histogram_kernel_property(data, buckets, qlo, width):
    cuts = data.draw(
        st.lists(
            st.floats(-8, 8, allow_nan=False),
            min_size=buckets + 1,
            max_size=buckets + 1,
            unique=True,
        )
    )
    edges = sorted(cuts)
    masses = data.draw(
        st.lists(
            st.floats(0.01, 1.0), min_size=buckets, max_size=buckets
        )
    )
    total = sum(masses)
    masses = [m / total for m in masses]
    pdf = HistogramPdf(edges, masses)
    allowed = IntervalSet([Interval(qlo, qlo + width)])
    vec = kernels.batch_interval_probs([pdf, pdf], [allowed, allowed])
    expected = float(pdf.prob_interval(allowed))
    assert vec[0] == expected
    assert vec[1] == expected
