"""Symbolic floor tests — the paper's [Gaus(5,1), Floor{[5, inf]}] machinery."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.pdf import (
    BoxRegion,
    DiscretePdf,
    FlooredPdf,
    GaussianPdf,
    IntervalSet,
    PredicateRegion,
    UniformPdf,
)


@pytest.fixture
def paper_floor():
    """The paper's Section III-A example: Gaus(5,1) under x < 5."""
    g = GaussianPdf(5, 1)
    return g.restrict(BoxRegion({"x": IntervalSet.less_than(5)}))


class TestFlooredBasics:
    def test_paper_example_mass(self, paper_floor):
        assert paper_floor.mass() == pytest.approx(0.5)

    def test_repr_shows_floor(self, paper_floor):
        assert "Floor" in repr(paper_floor)
        assert "GAUSSIAN" in repr(paper_floor)

    def test_density_zeroed_in_floor(self, paper_floor):
        assert float(paper_floor.pdf_at(6.0)) == 0.0
        assert float(paper_floor.pdf_at(4.0)) > 0.0

    def test_density_equals_base_inside(self, paper_floor):
        g = GaussianPdf(5, 1)
        xs = np.linspace(0, 4.99, 10)
        assert np.allclose(paper_floor.pdf_at(xs), g.pdf_at(xs))

    def test_cdf(self, paper_floor):
        assert float(paper_floor.cdf(5)) == pytest.approx(0.5)
        assert float(paper_floor.cdf(100)) == pytest.approx(0.5)
        assert float(paper_floor.cdf(5 - 1)) == pytest.approx(
            float(GaussianPdf(5, 1).cdf(4))
        )

    def test_is_not_discrete(self, paper_floor):
        assert not paper_floor.is_discrete

    def test_with_attrs(self, paper_floor):
        renamed = paper_floor.with_attrs(["v"])
        assert renamed.attrs == ("v",)
        assert renamed.mass() == pytest.approx(0.5)


class TestFloorComposition:
    def test_floors_flatten(self):
        g = GaussianPdf(0, 1)
        once = g.restrict(BoxRegion({"x": IntervalSet.less_than(1)}))
        twice = once.restrict(BoxRegion({"x": IntervalSet.greater_than(-1)}))
        assert isinstance(twice, FlooredPdf)
        assert not isinstance(twice.base, FlooredPdf)
        assert twice.allowed == IntervalSet.between(-1, 1, closed_lo=False, closed_hi=False)

    def test_floor_order_irrelevant(self):
        """The paper: multiple floors yield floor(f, F1 ∪ ... ∪ Fk) in any order."""
        g = GaussianPdf(10, 4)
        r1 = BoxRegion({"x": IntervalSet.between(8, 14)})
        r2 = BoxRegion({"x": IntervalSet.between(9, 20)})
        ab = g.restrict(r1).restrict(r2)
        ba = g.restrict(r2).restrict(r1)
        assert ab == ba
        assert ab.mass() == pytest.approx(ba.mass())

    def test_fully_floored(self):
        g = GaussianPdf(0, 1)
        out = g.restrict(BoxRegion({"x": IntervalSet.empty()}))
        assert out.mass() == 0.0

    def test_floor_out_is_complement(self):
        g = GaussianPdf(0, 1)
        kept = g.restrict(BoxRegion({"x": IntervalSet.less_than(0.5)}))
        floored = g.floor_out(BoxRegion({"x": IntervalSet.greater_than(0.5, inclusive=True)}))
        assert kept.mass() == pytest.approx(floored.mass())


class TestFlooredQueries:
    def test_prob_interval_intersects(self, paper_floor):
        g = GaussianPdf(5, 1)
        # Query [4, 6] intersected with allowed (-inf, 5) = [4, 5).
        expected = float(g.cdf(5) - g.cdf(4))
        assert paper_floor.prob_interval(IntervalSet.between(4, 6)) == pytest.approx(expected)

    def test_prob_box(self, paper_floor):
        assert paper_floor.prob(
            BoxRegion({"x": IntervalSet.greater_than(5)})
        ) == pytest.approx(0.0)

    def test_predicate_region_goes_through_grid(self, paper_floor):
        region = PredicateRegion(("x",), lambda x: x < 4, "x<4")
        p = paper_floor.prob(region)
        assert p == pytest.approx(float(GaussianPdf(5, 1).cdf(4)), abs=0.01)

    def test_support_clipped(self, paper_floor):
        lo, hi = paper_floor.support()["x"]
        assert hi == pytest.approx(5.0)

    def test_to_grid_mass(self, paper_floor):
        grid = paper_floor.to_grid()
        assert grid.mass() == pytest.approx(0.5, abs=1e-9)

    def test_to_grid_exact_at_floor_boundaries(self):
        u = UniformPdf(0, 10)
        f = u.restrict(BoxRegion({"x": IntervalSet.between(2.5, 7.25)}))
        grid = f.to_grid()
        assert grid.mass() == pytest.approx(0.475, abs=1e-12)

    def test_moments_of_symmetric_floor(self):
        g = GaussianPdf(0, 1)
        f = g.restrict(BoxRegion({"x": IntervalSet.between(-1, 1)}))
        assert f.mean() == pytest.approx(0.0, abs=1e-6)
        assert 0 < f.variance() < 1.0

    def test_discrete_base_delegates(self):
        d = DiscretePdf({1: 0.5, 2: 0.5})
        f = FlooredPdf(d, IntervalSet.point(2))
        assert f.is_discrete
        assert f.mass() == pytest.approx(0.5)
        assert f.mean() == pytest.approx(2.0)

    def test_sampling_respects_floor(self, paper_floor, rng):
        samples = paper_floor.sample(rng, 500)["x"]
        assert np.all(samples < 5)

    def test_equality(self):
        g = GaussianPdf(0, 1)
        box = BoxRegion({"x": IntervalSet.less_than(0)})
        assert g.restrict(box) == g.restrict(box)
        assert g.restrict(box) != g.restrict(BoxRegion({"x": IntervalSet.less_than(1)}))


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=-20, max_value=20),
    var=st.floats(min_value=0.1, max_value=25),
    a=st.floats(min_value=-40, max_value=40),
    b=st.floats(min_value=-40, max_value=40),
)
def test_two_floors_intersect_mass(mean, var, a, b):
    """Mass after two floors equals base probability of the intersection."""
    g = GaussianPdf(mean, var)
    s1 = IntervalSet.less_than(max(a, b))
    s2 = IntervalSet.greater_than(min(a, b))
    f = g.restrict(BoxRegion({"x": s1})).restrict(BoxRegion({"x": s2}))
    assert f.mass() == pytest.approx(g.prob_interval(s1.intersect(s2)), abs=1e-9)


@settings(max_examples=40, deadline=None)
@given(
    cut=st.floats(min_value=-3, max_value=3),
    query=st.floats(min_value=-5, max_value=5),
)
def test_floored_cdf_never_exceeds_mass(cut, query):
    g = GaussianPdf(0, 1)
    f = g.restrict(BoxRegion({"x": IntervalSet.less_than(cut)}))
    assert 0.0 <= float(f.cdf(query)) <= f.mass() + 1e-12
