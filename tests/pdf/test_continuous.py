"""Symbolic continuous distribution tests."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, InvalidDistributionError, PdfError
from repro.pdf import (
    BoxRegion,
    ExponentialPdf,
    GammaPdf,
    GaussianPdf,
    IntervalSet,
    LognormalPdf,
    PredicateRegion,
    TriangularPdf,
    UniformPdf,
)
from repro.pdf.floors import FlooredPdf

ALL_FAMILIES = [
    GaussianPdf(10, 4),
    UniformPdf(0, 10),
    ExponentialPdf(0.5),
    TriangularPdf(0, 3, 10),
    GammaPdf(2.0, 1.0),
    LognormalPdf(0.0, 0.5),
]


class TestGaussian:
    def test_paper_parameterization_is_variance(self):
        g = GaussianPdf(20, 5)
        assert g.mean() == 20
        assert g.variance() == pytest.approx(5)

    def test_cdf_at_mean(self):
        assert float(GaussianPdf(20, 5).cdf(20)) == pytest.approx(0.5)

    def test_cdf_matches_scipy(self):
        from scipy import stats

        g = GaussianPdf(3, 2)
        xs = np.linspace(-3, 9, 20)
        assert np.allclose(g.cdf(xs), stats.norm(3, math.sqrt(2)).cdf(xs))

    def test_density_matches_scipy(self):
        from scipy import stats

        g = GaussianPdf(3, 2)
        xs = np.linspace(-3, 9, 20)
        assert np.allclose(g.pdf_at(xs), stats.norm(3, math.sqrt(2)).pdf(xs))

    def test_quantile_inverts_cdf(self):
        g = GaussianPdf(0, 1)
        for q in (0.01, 0.25, 0.5, 0.9, 0.999):
            assert float(g.cdf(g.quantile(q))) == pytest.approx(q, abs=1e-9)

    def test_invalid_variance(self):
        with pytest.raises(InvalidDistributionError):
            GaussianPdf(0, 0)
        with pytest.raises(InvalidDistributionError):
            GaussianPdf(0, -1)

    def test_three_sigma_prob(self):
        g = GaussianPdf(0, 1)
        p = g.prob_interval(IntervalSet.between(-3, 3))
        assert p == pytest.approx(0.9973, abs=1e-4)


class TestUniform:
    def test_basic(self):
        u = UniformPdf(2, 6)
        assert u.mean() == 4
        assert u.variance() == pytest.approx(16 / 12)
        assert float(u.cdf(4)) == pytest.approx(0.5)
        assert float(u.pdf_at(3)) == pytest.approx(0.25)
        assert float(u.pdf_at(7)) == 0.0

    def test_invalid(self):
        with pytest.raises(InvalidDistributionError):
            UniformPdf(5, 5)


class TestExponential:
    def test_basic(self):
        e = ExponentialPdf(2.0)
        assert e.mean() == pytest.approx(0.5)
        assert float(e.cdf(0)) == 0.0
        assert float(e.cdf(1)) == pytest.approx(1 - math.exp(-2))
        assert float(e.pdf_at(-1)) == 0.0

    def test_invalid(self):
        with pytest.raises(InvalidDistributionError):
            ExponentialPdf(0)


class TestTriangularGammaLognormal:
    def test_triangular_support(self):
        t = TriangularPdf(0, 3, 10)
        assert float(t.cdf(0)) == 0.0
        assert float(t.cdf(10)) == pytest.approx(1.0)
        assert t.support()["x"] == (0, 10)

    def test_triangular_invalid(self):
        with pytest.raises(InvalidDistributionError):
            TriangularPdf(0, 11, 10)

    def test_gamma_moments(self):
        g = GammaPdf(3.0, 2.0)
        assert g.mean() == pytest.approx(1.5)
        assert g.variance() == pytest.approx(0.75)

    def test_gamma_invalid(self):
        with pytest.raises(InvalidDistributionError):
            GammaPdf(-1, 1)

    def test_lognormal_invalid(self):
        with pytest.raises(InvalidDistributionError):
            LognormalPdf(0, 0)


@pytest.mark.parametrize("pdf", ALL_FAMILIES, ids=lambda p: p.symbol)
class TestContinuousContract:
    """The shared Pdf contract, over every symbolic family."""

    def test_mass_is_one(self, pdf):
        assert pdf.mass() == 1.0

    def test_not_discrete(self, pdf):
        assert not pdf.is_discrete

    def test_cdf_monotone(self, pdf):
        lo, hi = pdf.support()[pdf.attr]
        xs = np.linspace(lo, hi, 50)
        cdf = pdf.cdf(xs)
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_grid_preserves_mass(self, pdf):
        grid = pdf.to_grid()
        assert grid.mass() == pytest.approx(1.0, abs=1e-6)

    def test_grid_mean_close(self, pdf):
        grid = pdf.to_grid()
        assert grid.mean(pdf.attr) == pytest.approx(pdf.mean(), abs=0.05 * (1 + abs(pdf.mean())))

    def test_restrict_box_returns_floored(self, pdf):
        lo, hi = pdf.support()[pdf.attr]
        mid = (lo + hi) / 2
        out = pdf.restrict(BoxRegion({pdf.attr: IntervalSet.less_than(mid)}))
        assert isinstance(out, FlooredPdf)
        assert 0.0 < out.mass() < 1.0

    def test_restrict_predicate_collapses_to_grid(self, pdf):
        region = PredicateRegion((pdf.attr,), lambda x: x > pdf.mean(), "x>mean")
        out = pdf.restrict(region)
        # Predicate regions are resolved at grid-cell centers, so the error
        # can be up to one cell's mass (largest for heavy-tailed supports).
        lo, hi = pdf.support()[pdf.attr]
        cell_width = (hi - lo) / 64
        tolerance = float(pdf.pdf_at(pdf.mean())) * cell_width + 1e-6
        assert out.mass() == pytest.approx(
            1.0 - float(pdf.cdf(pdf.mean())), abs=tolerance
        )

    def test_prob_full_line(self, pdf):
        assert pdf.prob(BoxRegion({pdf.attr: IntervalSet.full()})) == pytest.approx(1.0)

    def test_prob_interval_additive(self, pdf):
        lo, hi = pdf.support()[pdf.attr]
        mid = (lo + hi) / 2
        left = pdf.prob_interval(IntervalSet.between(lo, mid))
        right = pdf.prob_interval(IntervalSet.between(mid, hi))
        total = pdf.prob_interval(IntervalSet.between(lo, hi))
        assert left + right == pytest.approx(total, abs=1e-9)

    def test_with_attrs(self, pdf):
        renamed = pdf.with_attrs(["temperature"])
        assert renamed.attrs == ("temperature",)
        assert type(renamed) is type(pdf)
        assert renamed.params == pdf.params

    def test_rename(self, pdf):
        renamed = pdf.rename({pdf.attr: "z"})
        assert renamed.attrs == ("z",)

    def test_marginalize_identity(self, pdf):
        assert pdf.marginalize([pdf.attr]) is pdf

    def test_marginalize_wrong_attr_raises(self, pdf):
        with pytest.raises(DimensionMismatchError):
            pdf.marginalize(["nope"])

    def test_density_wrong_attr_raises(self, pdf):
        with pytest.raises(DimensionMismatchError):
            pdf.density({"nope": 1.0})

    def test_sampling_matches_moments(self, pdf, rng):
        samples = pdf.sample(rng, 20_000)[pdf.attr]
        assert samples.mean() == pytest.approx(
            pdf.mean(), abs=0.1 * (1 + abs(pdf.mean())) + 5 * math.sqrt(pdf.variance() / 20_000)
        )

    def test_equality_and_hash(self, pdf):
        clone = pdf.with_attrs([pdf.attr])
        assert clone == pdf
        assert hash(clone) == hash(pdf)

    def test_inequality_on_params(self, pdf):
        other = pdf.with_attrs(["other"])
        assert other != pdf


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=-100, max_value=100),
    var=st.floats(min_value=0.01, max_value=100),
    lo=st.floats(min_value=-200, max_value=200),
    width=st.floats(min_value=0.0, max_value=100),
)
def test_gaussian_interval_prob_bounds(mean, var, lo, width):
    g = GaussianPdf(mean, var)
    p = g.prob_interval(IntervalSet.between(lo, lo + width))
    assert 0.0 <= p <= 1.0


@settings(max_examples=50, deadline=None)
@given(
    mean=st.floats(min_value=-50, max_value=50),
    var=st.floats(min_value=0.01, max_value=50),
    cut=st.floats(min_value=-100, max_value=100),
)
def test_gaussian_split_is_exhaustive(mean, var, cut):
    g = GaussianPdf(mean, var)
    below = g.prob_interval(IntervalSet.less_than(cut))
    above = g.prob_interval(IntervalSet.greater_than(cut))
    assert below + above == pytest.approx(1.0, abs=1e-9)
