"""Joint distribution tests: grids, joint discrete, joint Gaussian, products."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DimensionMismatchError, InvalidDistributionError, PdfError
from repro.pdf import (
    BoxRegion,
    ContinuousAxis,
    DiscreteAxis,
    DiscretePdf,
    GaussianPdf,
    IntervalSet,
    JointDiscretePdf,
    JointGaussianPdf,
    JointGridPdf,
    PredicateRegion,
    ProductPdf,
    UniformPdf,
    as_joint_discrete,
    independent_product,
)


class TestAxes:
    def test_continuous_axis_locate(self):
        ax = ContinuousAxis("x", [0, 1, 2, 3])
        idx, inside = ax.locate(np.array([0.5, 1.0, 3.0, -1.0, 3.5]))
        assert idx[:3].tolist() == [0, 1, 2]
        assert inside.tolist() == [True, True, True, False, False]

    def test_continuous_axis_refine(self):
        ax = ContinuousAxis("x", [0, 2])
        new, parent, frac = ax.refine([0.5, 1.0])
        assert new.edges.tolist() == [0, 0.5, 1.0, 2.0]
        assert parent.tolist() == [0, 0, 0]
        assert frac.tolist() == [0.25, 0.25, 0.5]

    def test_discrete_axis_locate(self):
        ax = DiscreteAxis("k", [1, 3, 5])
        idx, inside = ax.locate(np.array([1.0, 2.0, 5.0]))
        assert inside.tolist() == [True, False, True]

    def test_invalid_axes(self):
        with pytest.raises(InvalidDistributionError):
            ContinuousAxis("x", [1])
        with pytest.raises(InvalidDistributionError):
            DiscreteAxis("x", [2, 1])


class TestJointGrid:
    def make_2d(self):
        return JointGridPdf(
            (ContinuousAxis("x", [0, 1, 2]), DiscreteAxis("k", [0, 1])),
            np.array([[0.1, 0.2], [0.3, 0.4]]),
        )

    def test_shape_validation(self):
        with pytest.raises(DimensionMismatchError):
            JointGridPdf((ContinuousAxis("x", [0, 1, 2]),), np.array([1.0]))

    def test_duplicate_attrs_rejected(self):
        with pytest.raises(DimensionMismatchError):
            JointGridPdf(
                (ContinuousAxis("x", [0, 1]), DiscreteAxis("x", [0])),
                np.array([[1.0]]),
            )

    def test_mass(self):
        assert self.make_2d().mass() == pytest.approx(1.0)

    def test_marginalize_orders_attrs(self):
        g = self.make_2d()
        marg = g.marginalize(["k"])
        assert marg.attrs == ("k",)
        assert marg.masses.tolist() == pytest.approx([0.4, 0.6])

    def test_marginalize_reorder(self):
        g = self.make_2d()
        swapped = g.marginalize(["k", "x"])
        assert swapped.attrs == ("k", "x")
        assert swapped.mass() == pytest.approx(1.0)
        assert float(swapped.density({"k": 0, "x": 0.5})) == pytest.approx(
            float(g.density({"x": 0.5, "k": 0}))
        )

    def test_density_mixed(self):
        g = self.make_2d()
        # continuous dim divides by width 1, discrete contributes mass.
        assert float(g.density({"x": 0.5, "k": 1})) == pytest.approx(0.2)

    def test_prob_box_exact_via_refinement(self):
        g = JointGridPdf((ContinuousAxis("x", [0, 2]),), np.array([1.0]))
        p = g.prob(BoxRegion({"x": IntervalSet.between(0.25, 0.75)}))
        assert p == pytest.approx(0.25, abs=1e-12)

    def test_restrict_box_exact(self):
        g = JointGridPdf((ContinuousAxis("x", [0, 2]),), np.array([1.0]))
        out = g.restrict(BoxRegion({"x": IntervalSet.between(0.5, 1.0)}))
        assert out.mass() == pytest.approx(0.25, abs=1e-12)

    def test_restrict_predicate(self):
        g = self.make_2d()
        out = g.restrict(PredicateRegion(("x", "k"), lambda x, k: x < k, "x<k"))
        # cells with center x=0.5 and k=1 pass: mass 0.2
        assert out.mass() == pytest.approx(0.2)

    def test_region_unknown_attr_raises(self):
        g = self.make_2d()
        with pytest.raises(DimensionMismatchError):
            g.prob(BoxRegion({"zzz": IntervalSet.full()}))

    def test_mean_variance(self):
        g = JointGridPdf((ContinuousAxis("x", [0, 2]),), np.array([1.0]))
        assert g.mean("x") == pytest.approx(1.0)
        assert g.variance("x") == pytest.approx(4 / 12)

    def test_sampling(self, rng):
        g = self.make_2d()
        samples = g.sample(rng, 400)
        assert set(samples) == {"x", "k"}
        assert samples["x"].min() >= 0 and samples["x"].max() <= 2
        assert set(np.unique(samples["k"])) <= {0.0, 1.0}

    def test_with_attrs(self):
        g = self.make_2d().with_attrs(["a", "b"])
        assert g.attrs == ("a", "b")


class TestJointDiscrete:
    def test_paper_example_table(self):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.06, (0, 2): 0.04, (1, 2): 0.36})
        assert j.mass() == pytest.approx(0.46)
        assert float(j.density({"a": 0, "b": 1})) == pytest.approx(0.06)
        assert float(j.density({"a": 1, "b": 1})) == 0.0

    def test_arity_checked(self):
        with pytest.raises(DimensionMismatchError):
            JointDiscretePdf(("a", "b"), {(1,): 0.5})

    def test_marginalize_to_univariate(self):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.5, (1, 1): 0.3, (1, 2): 0.2})
        marg = j.marginalize(["a"])
        assert isinstance(marg, DiscretePdf)
        assert float(marg.pdf_at(1)) == pytest.approx(0.5)

    def test_marginalize_multi(self):
        j = JointDiscretePdf(
            ("a", "b", "c"), {(0, 1, 2): 0.5, (0, 1, 3): 0.25, (1, 1, 2): 0.25}
        )
        marg = j.marginalize(["c", "a"])
        assert marg.attrs == ("c", "a")
        assert float(marg.density({"c": 2, "a": 0})) == pytest.approx(0.5)

    def test_restrict_box(self):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.5, (1, 2): 0.5})
        out = j.restrict(BoxRegion({"b": IntervalSet.point(2)}))
        assert out.mass() == pytest.approx(0.5)

    def test_restrict_predicate(self):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.5, (3, 2): 0.5})
        out = j.restrict(PredicateRegion(("a", "b"), lambda a, b: a < b, "a<b"))
        assert out.mass() == pytest.approx(0.5)

    def test_restrict_everything_keeps_zero_entry(self):
        j = JointDiscretePdf(("a",), {(0,): 1.0})
        out = j.restrict(BoxRegion({"a": IntervalSet.point(5)}))
        assert out.mass() == 0.0

    def test_to_grid_roundtrip(self):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.5, (1, 2): 0.3})
        grid = j.to_grid()
        assert grid.is_discrete
        back = as_joint_discrete(grid)
        assert back == j.with_attrs(back.attrs)

    def test_merging_duplicate_keys(self):
        j = JointDiscretePdf(("a",), {(1.0,): 0.25})
        k = JointDiscretePdf(("a",), {(1,): 0.25})
        assert j == k

    def test_sampling(self, rng):
        j = JointDiscretePdf(("a", "b"), {(0, 1): 0.5, (1, 2): 0.5})
        s = j.sample(rng, 100)
        assert np.all((s["a"] == 0) | (s["a"] == 1))
        # b is deterministic given a in this table
        assert np.all(s["b"] == s["a"] + 1)


class TestJointGaussian:
    def test_validation(self):
        with pytest.raises(DimensionMismatchError):
            JointGaussianPdf(("x", "y"), [0], [[1, 0], [0, 1]])
        with pytest.raises(InvalidDistributionError):
            JointGaussianPdf(("x", "y"), [0, 0], [[1, 2], [2, 1]])  # not PD

    def test_marginalize_exact(self):
        jg = JointGaussianPdf(("x", "y"), [1, 2], [[4, 1], [1, 9]])
        mx = jg.marginalize(["x"])
        assert isinstance(mx, GaussianPdf)
        assert mx.mean() == pytest.approx(1.0)
        assert mx.variance() == pytest.approx(4.0)

    def test_marginalize_joint_subset(self):
        jg = JointGaussianPdf(
            ("x", "y", "z"),
            [0, 0, 0],
            [[1, 0.5, 0], [0.5, 1, 0], [0, 0, 1]],
        )
        sub = jg.marginalize(["y", "x"])
        assert isinstance(sub, JointGaussianPdf)
        assert sub.attrs == ("y", "x")
        assert sub.cov[0, 1] == pytest.approx(0.5)

    def test_quadrant_probability(self):
        # P(X<0, Y<0) for standard bivariate normal with rho:
        # 1/4 + arcsin(rho) / (2 pi)
        rho = 0.5
        jg = JointGaussianPdf(("x", "y"), [0, 0], [[1, rho], [rho, 1]])
        p = jg.prob(
            BoxRegion({"x": IntervalSet.less_than(0), "y": IntervalSet.less_than(0)})
        )
        assert p == pytest.approx(0.25 + np.arcsin(rho) / (2 * np.pi), abs=1e-6)

    def test_grid_mass_normalised(self):
        jg = JointGaussianPdf(("x", "y"), [0, 0], [[1, 0.9], [0.9, 1]])
        assert jg.to_grid().mass() == pytest.approx(1.0, abs=1e-9)

    def test_restrict_returns_grid(self):
        jg = JointGaussianPdf(("x", "y"), [0, 0], [[1, 0], [0, 1]])
        out = jg.restrict(PredicateRegion(("x", "y"), lambda x, y: x < y, "x<y"))
        assert isinstance(out, JointGridPdf)
        # Predicate regions are resolved at cell centers; the diagonal band
        # (one cell wide) is the worst case for x < y on an aligned grid.
        assert out.mass() == pytest.approx(0.5, abs=0.03)

    def test_sampling_covariance(self, rng):
        jg = JointGaussianPdf(("x", "y"), [0, 0], [[1, 0.8], [0.8, 1]])
        s = jg.sample(rng, 20_000)
        assert np.corrcoef(s["x"], s["y"])[0, 1] == pytest.approx(0.8, abs=0.03)


class TestProductPdf:
    def test_disjoint_attrs_enforced(self):
        with pytest.raises(DimensionMismatchError):
            ProductPdf([GaussianPdf(0, 1, attr="x"), UniformPdf(0, 1, attr="x")])

    def test_mass_multiplies(self):
        p = ProductPdf(
            [DiscretePdf({1: 0.5}, attr="a"), DiscretePdf({2: 0.8}, attr="b")]
        )
        assert p.mass() == pytest.approx(0.4)

    def test_flattens_nested(self):
        inner = ProductPdf([GaussianPdf(0, 1, attr="x")], weight=0.5)
        outer = ProductPdf([inner, UniformPdf(0, 1, attr="y")], weight=0.8)
        assert len(outer.factors) == 2
        assert outer.weight == pytest.approx(0.4)

    def test_box_prob_factorizes(self):
        p = ProductPdf([GaussianPdf(0, 1, attr="x"), UniformPdf(0, 10, attr="y")])
        box = BoxRegion(
            {"x": IntervalSet.less_than(0), "y": IntervalSet.between(0, 5)}
        )
        assert p.prob(box) == pytest.approx(0.25)

    def test_restrict_box_pushes_down(self):
        p = ProductPdf([GaussianPdf(0, 1, attr="x"), UniformPdf(0, 10, attr="y")])
        out = p.restrict(BoxRegion({"x": IntervalSet.less_than(0)}))
        assert isinstance(out, ProductPdf)
        assert out.mass() == pytest.approx(0.5)

    def test_marginalize_drops_factor_into_weight(self):
        p = ProductPdf(
            [DiscretePdf({1: 0.5}, attr="a"), GaussianPdf(0, 1, attr="x")]
        )
        out = p.marginalize(["x"])
        assert out.mass() == pytest.approx(0.5)
        assert set(out.attrs) == {"x"}

    def test_density_product(self):
        p = ProductPdf([UniformPdf(0, 2, attr="x"), UniformPdf(0, 4, attr="y")])
        assert float(p.density({"x": 1, "y": 1})) == pytest.approx(0.5 * 0.25)

    def test_to_grid_outer_product(self):
        p = ProductPdf(
            [DiscretePdf({0: 0.5, 1: 0.5}, attr="a"), DiscretePdf({0: 1.0}, attr="b")]
        )
        grid = p.to_grid()
        assert grid.mass() == pytest.approx(1.0)
        assert grid.attrs == ("a", "b")

    def test_sampling_merges_factors(self, rng):
        p = ProductPdf([GaussianPdf(0, 1, attr="x"), UniformPdf(5, 6, attr="y")])
        s = p.sample(rng, 100)
        assert set(s) == {"x", "y"}
        assert np.all((s["y"] >= 5) & (s["y"] <= 6))


class TestIndependentProduct:
    def test_discrete_inputs_give_exact_joint(self):
        a = DiscretePdf({0: 0.1, 1: 0.9}, attr="a")
        b = DiscretePdf({1: 0.6, 2: 0.4}, attr="b")
        j = independent_product(a, b)
        assert isinstance(j, JointDiscretePdf)
        assert float(j.density({"a": 1, "b": 2})) == pytest.approx(0.36)

    def test_mixed_inputs_stay_lazy(self):
        j = independent_product(
            GaussianPdf(0, 1, attr="x"), DiscretePdf({1: 1.0}, attr="k")
        )
        assert isinstance(j, ProductPdf)

    def test_single_input_passthrough(self):
        g = GaussianPdf(0, 1)
        assert independent_product(g) is g

    def test_zero_inputs_rejected(self):
        with pytest.raises(PdfError):
            independent_product()


class TestAsJointDiscrete:
    def test_univariate(self):
        d = DiscretePdf({1: 0.5, 2: 0.5}, attr="a")
        j = as_joint_discrete(d)
        assert j.attrs == ("a",)

    def test_symbolic_discrete(self):
        from repro.pdf import BernoulliPdf

        j = as_joint_discrete(BernoulliPdf(0.3, attr="flag"))
        assert float(j.density({"flag": 1})) == pytest.approx(0.3)

    def test_continuous_returns_none(self):
        assert as_joint_discrete(GaussianPdf(0, 1)) is None

    def test_product_of_discretes(self):
        p = ProductPdf(
            [DiscretePdf({0: 0.5, 1: 0.5}, attr="a"), DiscretePdf({7: 0.5}, attr="b")],
        )
        j = as_joint_discrete(p)
        assert j is not None
        assert j.mass() == pytest.approx(0.5)


@settings(max_examples=40, deadline=None)
@given(
    table=st.dictionaries(
        st.tuples(
            st.integers(min_value=0, max_value=3), st.integers(min_value=0, max_value=3)
        ),
        st.floats(min_value=0.01, max_value=1.0),
        min_size=1,
        max_size=8,
    )
)
def test_joint_discrete_marginal_consistency(table):
    total = sum(table.values())
    table = {k: v / total for k, v in table.items()}
    j = JointDiscretePdf(("a", "b"), table)
    ma = j.marginalize(["a"])
    mb = j.marginalize(["b"])
    assert ma.mass() == pytest.approx(j.mass(), abs=1e-9)
    assert mb.mass() == pytest.approx(j.mass(), abs=1e-9)
    # Marginal of a equals direct sum over b.
    for a_val in {k[0] for k in table}:
        direct = sum(p for (x, _), p in table.items() if x == a_val)
        assert float(ma.pdf_at(a_val)) == pytest.approx(direct, abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    lo=st.floats(min_value=-5, max_value=5),
    width=st.floats(min_value=0.1, max_value=5),
)
def test_grid_refinement_preserves_mass(lo, width):
    g = GaussianPdf(0, 4).to_grid()
    window = BoxRegion({"x": IntervalSet.between(lo, lo + width)})
    inside = g.restrict(window).mass()
    outside = g.restrict(window.complement()).mass()
    assert inside + outside == pytest.approx(g.mass(), abs=1e-9)
