"""Distance metric and mixture tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PdfError
from repro.pdf import (
    BernoulliPdf,
    DiscretePdf,
    GaussianPdf,
    HistogramPdf,
    UniformPdf,
    cdf_distance,
    kl_divergence,
    mixture,
    to_histogram,
    total_variation,
)


class TestTotalVariation:
    def test_identical_is_zero(self):
        g = GaussianPdf(0, 1)
        # Tail clipping leaves ~1e-6 of unaccounted mass per side.
        assert total_variation(g, g) == pytest.approx(0.0, abs=1e-5)

    def test_disjoint_discrete_is_one(self):
        a = DiscretePdf({0: 1.0})
        b = DiscretePdf({5: 1.0})
        assert total_variation(a, b) == pytest.approx(1.0)

    def test_discrete_exact(self):
        a = DiscretePdf({0: 0.5, 1: 0.5})
        b = DiscretePdf({0: 0.25, 1: 0.75})
        assert total_variation(a, b) == pytest.approx(0.25)

    def test_symmetry(self):
        a, b = GaussianPdf(0, 1), GaussianPdf(1, 2)
        assert total_variation(a, b) == pytest.approx(total_variation(b, a), abs=1e-9)

    def test_distant_gaussians_near_one(self):
        assert total_variation(GaussianPdf(0, 1), GaussianPdf(100, 1)) == pytest.approx(
            1.0, abs=0.01
        )

    def test_bounds(self):
        a, b = GaussianPdf(0, 1), GaussianPdf(0.5, 2)
        tv = total_variation(a, b)
        assert 0.0 <= tv <= 1.0


class TestKl:
    def test_identical_is_zero(self):
        g = GaussianPdf(3, 2)
        assert kl_divergence(g, g) == pytest.approx(0.0, abs=1e-9)

    def test_asymmetric(self):
        a = DiscretePdf({0: 0.9, 1: 0.1})
        b = DiscretePdf({0: 0.5, 1: 0.5})
        assert kl_divergence(a, b) != pytest.approx(kl_divergence(b, a))

    def test_infinite_when_support_escapes(self):
        a = DiscretePdf({0: 0.5, 5: 0.5})
        b = DiscretePdf({0: 1.0})
        assert kl_divergence(a, b) == float("inf")

    def test_nonnegative(self):
        a, b = GaussianPdf(0, 1), GaussianPdf(1, 3)
        assert kl_divergence(a, b) >= 0


class TestCdfDistance:
    def test_identical_is_zero(self):
        u = UniformPdf(0, 1)
        assert cdf_distance(u, u) == pytest.approx(0.0)

    def test_shifted_uniforms(self):
        a, b = UniformPdf(0, 1), UniformPdf(0.5, 1.5)
        assert cdf_distance(a, b) == pytest.approx(0.5, abs=0.01)

    def test_bounds_range_query_error(self):
        """|P(X in [l, u]) - Q(X in [l, u])| <= 2 * Kolmogorov distance."""
        from repro.pdf import IntervalSet

        g = GaussianPdf(50, 4)
        h = to_histogram(g, 5)
        bound = 2 * cdf_distance(g, h)
        rng = np.random.default_rng(1)
        for _ in range(50):
            lo = rng.uniform(40, 60)
            window = IntervalSet.between(lo, lo + rng.uniform(1, 10))
            err = abs(g.prob_interval(window) - h.prob_interval(window))
            assert err <= bound + 1e-9


class TestMixture:
    def test_discrete_exact(self):
        a = DiscretePdf({0: 1.0})
        b = DiscretePdf({1: 1.0})
        m = mixture([a, b], [0.3, 0.7])
        assert float(m.pdf_at(0)) == pytest.approx(0.3)
        assert float(m.pdf_at(1)) == pytest.approx(0.7)

    def test_partial_weights_give_partial_pdf(self):
        m = mixture([DiscretePdf({0: 1.0})], [0.6])
        assert m.mass() == pytest.approx(0.6)

    def test_continuous_mixture_moments(self):
        m = mixture([GaussianPdf(0, 1), GaussianPdf(10, 1)], [0.5, 0.5], bins=256)
        assert isinstance(m, HistogramPdf)
        assert m.mass() == pytest.approx(1.0, abs=1e-6)
        assert m.mean() == pytest.approx(5.0, abs=0.1)

    def test_mixture_is_bimodal(self):
        m = mixture([GaussianPdf(0, 1), GaussianPdf(10, 1)], [0.5, 0.5], bins=256)
        assert float(m.pdf_at(0)) > float(m.pdf_at(5))
        assert float(m.pdf_at(10)) > float(m.pdf_at(5))

    def test_symbolic_discrete_inputs(self):
        m = mixture([BernoulliPdf(0.5), DiscretePdf({5: 1.0})], [0.5, 0.5])
        assert float(m.pdf_at(5)) == pytest.approx(0.5)
        assert float(m.pdf_at(1)) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(PdfError):
            mixture([], [])
        with pytest.raises(PdfError):
            mixture([DiscretePdf({0: 1.0})], [0.5, 0.5])
        with pytest.raises(PdfError):
            mixture([DiscretePdf({0: 1.0})], [-0.5])
        with pytest.raises(PdfError):
            mixture([DiscretePdf({0: 1.0}), DiscretePdf({1: 1.0})], [0.8, 0.8])


@settings(max_examples=40, deadline=None)
@given(
    w=st.floats(min_value=0.0, max_value=1.0),
    m1=st.floats(min_value=-10, max_value=10),
    m2=st.floats(min_value=-10, max_value=10),
)
def test_mixture_mean_is_convex_combination(w, m1, m2):
    mix = mixture([GaussianPdf(m1, 1), GaussianPdf(m2, 1)], [w, 1 - w], bins=512)
    expected = w * m1 + (1 - w) * m2
    if mix.mass() > 1e-9:
        assert mix.mean() == pytest.approx(expected, abs=0.2)


@settings(max_examples=40, deadline=None)
@given(
    pairs_a=st.dictionaries(
        st.integers(min_value=0, max_value=5).map(float),
        st.floats(min_value=0.01, max_value=1.0),
        min_size=1,
        max_size=5,
    ),
    pairs_b=st.dictionaries(
        st.integers(min_value=0, max_value=5).map(float),
        st.floats(min_value=0.01, max_value=1.0),
        min_size=1,
        max_size=5,
    ),
)
def test_tv_triangle_inequality_with_mixture(pairs_a, pairs_b):
    a = DiscretePdf({k: v / sum(pairs_a.values()) for k, v in pairs_a.items()})
    b = DiscretePdf({k: v / sum(pairs_b.values()) for k, v in pairs_b.items()})
    mid = mixture([a, b], [0.5, 0.5])
    assert total_variation(a, mid) + total_variation(mid, b) >= (
        total_variation(a, b) - 1e-9
    )
