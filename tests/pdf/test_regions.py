"""Interval and region algebra tests, including algebraic property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PdfError
from repro.pdf.regions import (
    BoxRegion,
    ComplementRegion,
    Interval,
    IntersectionRegion,
    IntervalSet,
    PredicateRegion,
    UnionRegion,
)


class TestInterval:
    def test_closed_contains_endpoints(self):
        iv = Interval(2, 5)
        assert iv.contains(2) and iv.contains(5) and iv.contains(3.5)
        assert not iv.contains(1.999) and not iv.contains(5.001)

    def test_open_excludes_endpoints(self):
        iv = Interval(2, 5, closed_lo=False, closed_hi=False)
        assert not iv.contains(2) and not iv.contains(5)
        assert iv.contains(2.000001)

    def test_half_open(self):
        iv = Interval(2, 5, closed_lo=True, closed_hi=False)
        assert iv.contains(2) and not iv.contains(5)

    def test_empty_when_reversed(self):
        assert Interval(5, 2).is_empty()

    def test_point_interval(self):
        iv = Interval(3, 3)
        assert iv.is_point() and iv.contains(3) and not iv.is_empty()

    def test_open_point_is_empty(self):
        assert Interval(3, 3, closed_hi=False).is_empty()

    def test_infinite_endpoints_forced_open(self):
        iv = Interval(float("-inf"), float("inf"))
        assert not iv.closed_lo and not iv.closed_hi
        assert iv.contains(1e300) and not iv.contains(float("inf"))

    def test_nan_rejected(self):
        with pytest.raises(PdfError):
            Interval(float("nan"), 1)

    def test_measure(self):
        assert Interval(2, 5).measure == 3
        assert Interval(5, 2).measure == 0
        assert Interval(0, float("inf")).measure == float("inf")

    def test_intersect(self):
        a, b = Interval(0, 10), Interval(5, 15)
        assert a.intersect(b) == Interval(5, 10)

    def test_intersect_disjoint_is_empty(self):
        assert Interval(0, 1).intersect(Interval(2, 3)).is_empty()

    def test_intersect_open_boundary(self):
        a = Interval(0, 5, closed_hi=False)
        b = Interval(5, 10)
        assert a.intersect(b).is_empty()

    def test_contains_array(self):
        iv = Interval(2, 5, closed_hi=False)
        out = iv.contains_array(np.array([1.0, 2.0, 4.9, 5.0]))
        assert out.tolist() == [False, True, True, False]


class TestIntervalSet:
    def test_canonicalization_merges_touching(self):
        s = IntervalSet([(0, 2), (2, 5), (7, 9)])
        assert len(s.intervals) == 2
        assert s.intervals[0] == Interval(0, 5)

    def test_open_gap_not_merged(self):
        s = IntervalSet([Interval(0, 2, closed_hi=False), Interval(2, 5, closed_lo=False)])
        assert len(s.intervals) == 2
        assert not s.contains(2)

    def test_half_open_adjacent_merged(self):
        s = IntervalSet([Interval(0, 2, closed_hi=False), Interval(2, 5)])
        assert len(s.intervals) == 1

    def test_union(self):
        a = IntervalSet.between(0, 3)
        b = IntervalSet.between(5, 8)
        u = a.union(b)
        assert u.contains(1) and u.contains(6) and not u.contains(4)

    def test_intersect(self):
        a = IntervalSet([(0, 5), (10, 15)])
        b = IntervalSet.between(3, 12)
        out = a.intersect(b)
        assert out == IntervalSet([(3, 5), (10, 12)])

    def test_complement_of_empty_is_full(self):
        assert IntervalSet.empty().complement().is_full()

    def test_complement_of_full_is_empty(self):
        assert IntervalSet.full().complement().is_empty()

    def test_complement_boundary_openness(self):
        s = IntervalSet.between(0, 1)  # closed
        c = s.complement()
        assert not c.contains(0) and not c.contains(1)
        assert c.contains(-0.001) and c.contains(1.001)

    def test_difference(self):
        s = IntervalSet.between(0, 10).difference(IntervalSet.between(3, 5))
        assert s.contains(2) and not s.contains(4) and s.contains(6)

    def test_point_set(self):
        s = IntervalSet.point(3.5)
        assert s.contains(3.5) and not s.contains(3.4999)
        assert s.measure == 0

    def test_less_greater_constructors(self):
        assert IntervalSet.less_than(5).contains(4.999)
        assert not IntervalSet.less_than(5).contains(5)
        assert IntervalSet.less_than(5, inclusive=True).contains(5)
        assert IntervalSet.greater_than(5).contains(5.001)
        assert IntervalSet.greater_than(5, inclusive=True).contains(5)

    def test_bounds(self):
        s = IntervalSet([(2, 3), (7, 9)])
        assert s.bounds() == (2, 9)

    def test_equality_is_structural(self):
        assert IntervalSet([(0, 2), (2, 4)]) == IntervalSet([(0, 4)])

    def test_contains_array(self):
        s = IntervalSet([(0, 1), (3, 4)])
        out = s.contains_array(np.array([0.5, 2.0, 3.5]))
        assert out.tolist() == [True, False, True]

    def test_empty_intervals_dropped(self):
        s = IntervalSet([Interval(5, 2), Interval(1, 1, closed_hi=False)])
        assert s.is_empty()


finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@st.composite
def interval_sets(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    intervals = []
    for _ in range(n):
        a = draw(finite)
        b = draw(finite)
        intervals.append(
            Interval(min(a, b), max(a, b), draw(st.booleans()), draw(st.booleans()))
        )
    return IntervalSet(intervals)


@settings(max_examples=80, deadline=None)
@given(interval_sets(), interval_sets(), st.lists(finite, min_size=1, max_size=10))
def test_union_semantics(a, b, points):
    u = a.union(b)
    for x in points:
        assert u.contains(x) == (a.contains(x) or b.contains(x))


@settings(max_examples=80, deadline=None)
@given(interval_sets(), interval_sets(), st.lists(finite, min_size=1, max_size=10))
def test_intersection_semantics(a, b, points):
    i = a.intersect(b)
    for x in points:
        assert i.contains(x) == (a.contains(x) and b.contains(x))


@settings(max_examples=80, deadline=None)
@given(interval_sets(), st.lists(finite, min_size=1, max_size=10))
def test_complement_semantics(a, points):
    c = a.complement()
    for x in points:
        assert c.contains(x) == (not a.contains(x))


@settings(max_examples=60, deadline=None)
@given(interval_sets())
def test_double_complement_is_identity(a):
    assert a.complement().complement() == a


@settings(max_examples=60, deadline=None)
@given(interval_sets(), interval_sets())
def test_de_morgan(a, b):
    lhs = a.union(b).complement()
    rhs = a.complement().intersect(b.complement())
    assert lhs == rhs


class TestRegions:
    def test_box_region_contains(self):
        box = BoxRegion({"x": IntervalSet.between(0, 1), "y": IntervalSet.greater_than(5)})
        assert box.contains_point({"x": 0.5, "y": 6})
        assert not box.contains_point({"x": 0.5, "y": 4})
        assert not box.contains_point({"x": 2, "y": 6})

    def test_box_region_unconstrained_attr(self):
        box = BoxRegion({"x": IntervalSet.between(0, 1)})
        assert box.interval_set("other").is_full()

    def test_box_missing_attr_raises(self):
        box = BoxRegion({"x": IntervalSet.between(0, 1)})
        from repro.errors import DimensionMismatchError

        with pytest.raises(DimensionMismatchError):
            box.contains({"y": 1.0})

    def test_box_intersect_box(self):
        a = BoxRegion({"x": IntervalSet.between(0, 10)})
        b = BoxRegion({"x": IntervalSet.between(5, 15), "y": IntervalSet.point(1)})
        c = a.intersect_box(b)
        assert c.interval_set("x") == IntervalSet.between(5, 10)
        assert c.interval_set("y") == IntervalSet.point(1)

    def test_box_project_and_rename(self):
        box = BoxRegion({"x": IntervalSet.between(0, 1), "y": IntervalSet.point(2)})
        assert box.project(["x"]).attrs == ("x",)
        renamed = box.rename({"x": "z"})
        assert set(renamed.attrs) == {"y", "z"}

    def test_predicate_region(self):
        region = PredicateRegion(("a", "b"), lambda a, b: a < b, "a<b")
        assert region.contains_point({"a": 1, "b": 2})
        assert not region.contains_point({"a": 2, "b": 1})

    def test_predicate_region_vectorized(self):
        region = PredicateRegion(("a", "b"), lambda a, b: a < b, "a<b")
        out = region.contains({"a": np.array([1, 3]), "b": np.array([2, 2])})
        assert out.tolist() == [True, False]

    def test_combinators(self):
        a = BoxRegion({"x": IntervalSet.less_than(0)})
        b = BoxRegion({"x": IntervalSet.greater_than(10)})
        union = UnionRegion((a, b))
        assert union.contains_point({"x": -1}) and union.contains_point({"x": 11})
        assert not union.contains_point({"x": 5})
        inter = IntersectionRegion((a, b))
        assert not inter.contains_point({"x": -1})
        comp = ComplementRegion(a)
        assert comp.contains_point({"x": 5})

    def test_region_methods_compose(self):
        a = BoxRegion({"x": IntervalSet.less_than(0)})
        b = BoxRegion({"x": IntervalSet.greater_than(10)})
        assert a.union(b).contains_point({"x": 11})
        assert a.complement().contains_point({"x": 1})
        assert not a.intersect(b).contains_point({"x": -1})
