"""Histogram pdf tests: exact interval arithmetic and floor splitting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import InvalidDistributionError, PdfError
from repro.pdf import (
    BoxRegion,
    GaussianPdf,
    HistogramPdf,
    IntervalSet,
    PredicateRegion,
    to_histogram,
)


class TestConstruction:
    def test_from_masses(self):
        h = HistogramPdf([0, 1, 2], [0.4, 0.6])
        assert h.mass() == pytest.approx(1.0)
        assert h.num_buckets == 2

    def test_from_densities(self):
        h = HistogramPdf.from_densities([0, 2, 4], [0.25, 0.25])
        assert h.mass() == pytest.approx(1.0)
        assert np.allclose(h.densities, [0.25, 0.25])

    def test_partial_histogram(self):
        h = HistogramPdf([0, 1], [0.5])
        assert h.mass() == pytest.approx(0.5)

    def test_invalid_edges(self):
        with pytest.raises(InvalidDistributionError):
            HistogramPdf([0], [])
        with pytest.raises(InvalidDistributionError):
            HistogramPdf([0, 0], [0.5])
        with pytest.raises(InvalidDistributionError):
            HistogramPdf([2, 1], [0.5])

    def test_mismatched_masses(self):
        with pytest.raises(InvalidDistributionError):
            HistogramPdf([0, 1, 2], [1.0])

    def test_over_unit_mass(self):
        with pytest.raises(InvalidDistributionError):
            HistogramPdf([0, 1], [1.5])


class TestEvaluation:
    def test_density_inside_and_outside(self):
        h = HistogramPdf([0, 1, 3], [0.5, 0.5])
        assert float(h.pdf_at(0.5)) == pytest.approx(0.5)
        assert float(h.pdf_at(2.0)) == pytest.approx(0.25)
        assert float(h.pdf_at(-1)) == 0.0
        assert float(h.pdf_at(4)) == 0.0

    def test_density_at_last_edge(self):
        h = HistogramPdf([0, 1, 3], [0.5, 0.5])
        assert float(h.pdf_at(3.0)) == pytest.approx(0.25)

    def test_cdf_piecewise_linear(self):
        h = HistogramPdf([0, 2], [1.0])
        assert float(h.cdf(0)) == 0.0
        assert float(h.cdf(1)) == pytest.approx(0.5)
        assert float(h.cdf(2)) == pytest.approx(1.0)
        assert float(h.cdf(5)) == pytest.approx(1.0)

    def test_prob_interval_exact(self):
        h = HistogramPdf([0, 1, 2, 3], [0.2, 0.3, 0.5])
        assert h.prob_interval(IntervalSet.between(0.5, 2.5)) == pytest.approx(
            0.1 + 0.3 + 0.25
        )

    def test_moments(self):
        h = HistogramPdf([0, 2], [1.0])  # Uniform(0, 2)
        assert h.mean() == pytest.approx(1.0)
        assert h.variance() == pytest.approx(4 / 12)

    def test_support(self):
        h = HistogramPdf([3, 7], [1.0])
        assert h.support() == {"x": (3.0, 7.0)}


class TestRestrict:
    def test_restrict_aligned(self):
        h = HistogramPdf([0, 1, 2, 3], [0.2, 0.3, 0.5])
        out = h.restrict(BoxRegion({"x": IntervalSet.between(1, 3)}))
        assert out.mass() == pytest.approx(0.8)

    def test_restrict_splits_buckets(self):
        h = HistogramPdf([0, 2], [1.0])
        out = h.restrict(BoxRegion({"x": IntervalSet.between(0.5, 1.5)}))
        assert out.mass() == pytest.approx(0.5)
        # The restricted pdf is still exact: cdf is linear within the window.
        assert float(out.cdf(1.0)) == pytest.approx(0.25)

    def test_restrict_multi_interval(self):
        h = HistogramPdf([0, 4], [1.0])
        allowed = IntervalSet.between(0, 1).union(IntervalSet.between(3, 4))
        out = h.restrict(BoxRegion({"x": allowed}))
        assert out.mass() == pytest.approx(0.5)
        assert float(out.pdf_at(2.0)) == 0.0

    def test_restrict_everything_away(self):
        h = HistogramPdf([0, 1], [1.0])
        out = h.restrict(BoxRegion({"x": IntervalSet.between(5, 6)}))
        assert out.mass() == 0.0

    def test_restrict_preserves_mass_against_prob(self):
        g = GaussianPdf(50, 25)
        h = to_histogram(g, 7)
        window = IntervalSet.between(43.3, 57.9)
        restricted = h.restrict(BoxRegion({"x": window}))
        assert restricted.mass() == pytest.approx(h.prob_interval(window), abs=1e-12)

    def test_restrict_predicate_region(self):
        h = HistogramPdf([0, 1, 2, 3, 4], [0.25] * 4)
        out = h.restrict(PredicateRegion(("x",), lambda x: x > 2, "x>2"))
        # Cell centers 2.5, 3.5 pass.
        assert out.mass() == pytest.approx(0.5)

    def test_composition_matches_intersection(self):
        h = to_histogram(GaussianPdf(10, 9), 11)
        a = IntervalSet.between(5, 12)
        b = IntervalSet.between(8, 20)
        seq = h.restrict(BoxRegion({"x": a})).restrict(BoxRegion({"x": b}))
        direct = h.restrict(BoxRegion({"x": a.intersect(b)}))
        assert seq.mass() == pytest.approx(direct.mass(), abs=1e-12)


class TestConversions:
    def test_to_grid(self):
        h = HistogramPdf([0, 1, 2], [0.3, 0.7])
        grid = h.to_grid()
        assert grid.mass() == pytest.approx(1.0)
        assert not grid.is_discrete

    def test_scaled(self):
        h = HistogramPdf([0, 1], [0.8])
        n = h.normalized()
        assert n.mass() == pytest.approx(1.0)

    def test_sampling_within_support(self, rng):
        h = HistogramPdf([2, 3, 5], [0.5, 0.5])
        samples = h.sample(rng, 1000)["x"]
        assert samples.min() >= 2 and samples.max() <= 5

    def test_zero_mass_errors(self, rng):
        h = HistogramPdf([0, 1], [1.0]).restrict(BoxRegion({"x": IntervalSet.between(5, 6)}))
        with pytest.raises(PdfError):
            h.mean()
        with pytest.raises(PdfError):
            h.sample(rng, 1)


@st.composite
def histograms(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    start = draw(st.floats(min_value=-100, max_value=100))
    widths = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=50), min_size=n, max_size=n
        )
    )
    edges = np.concatenate([[start], start + np.cumsum(widths)])
    raw = draw(st.lists(st.floats(min_value=0, max_value=1), min_size=n, max_size=n))
    total = sum(raw) or 1.0
    masses = np.array(raw) / total
    return HistogramPdf(edges, masses)


@settings(max_examples=60, deadline=None)
@given(
    histograms(),
    st.floats(min_value=-200, max_value=200),
    st.floats(min_value=0, max_value=100),
)
def test_restrict_mass_equals_prob(h, lo, width):
    window = IntervalSet.between(lo, lo + width)
    restricted = h.restrict(BoxRegion({"x": window}))
    assert restricted.mass() == pytest.approx(h.prob_interval(window), abs=1e-9)


@settings(max_examples=60, deadline=None)
@given(histograms(), st.floats(min_value=-200, max_value=200))
def test_cdf_split_partition(h, cut):
    below = h.prob_interval(IntervalSet.less_than(cut))
    above = h.prob_interval(IntervalSet.greater_than(cut))
    assert below + above == pytest.approx(h.mass(), abs=1e-9)
