"""Zero- and near-zero-mass partial pdfs through floors, products, and
PROB thresholds.

A partial pdf with (almost) no remaining mass is the boundary case of the
paper's partial-pdf semantics: the tuple almost certainly does not exist.
These tests pin down that floors, the history-aware product, the PROB
threshold operator, and the vectorized kernels all agree — no NaNs, no
negative masses, no spurious survivors — on BOTH the scalar and the batch
(kernel) evaluation paths.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.history import HistoryStore
from repro.core.model import DEFAULT_CONFIG
from repro.core.operations import product
from repro.core.threshold import batch_probability_of, probability_of
from repro.engine.database import Database
from repro.pdf import (
    BetaPdf,
    BoxRegion,
    DiscretePdf,
    GammaPdf,
    GaussianPdf,
    HistogramPdf,
    IntervalSet,
    LognormalPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)
from repro.pdf.kernels import batch_interval_probs, batch_mass

ZERO_FLOORS = [
    # (base pdf, allowed set that removes every last bit of mass)
    (UniformPdf(0, 10), IntervalSet.greater_than(20)),
    (UniformPdf(0, 10), IntervalSet.less_than(-5)),
    (GaussianPdf(0, 1), IntervalSet.less_than(-600)),  # cdf underflows to 0.0
    (DiscretePdf({1: 0.5, 2: 0.5}), IntervalSet.between(3, 4)),
    # Newly-kernelized families floored entirely outside their supports.
    (TriangularPdf(0, 1, 2), IntervalSet.greater_than(5)),
    (TriangularPdf(0, 1, 2), IntervalSet.less_than(-1)),
    (GammaPdf(2, 1), IntervalSet.less_than(-0.5)),
    (LognormalPdf(0, 1), IntervalSet.less_than(0)),
    (BetaPdf(2, 3), IntervalSet.greater_than(2)),
    (WeibullPdf(1.5, 1), IntervalSet.less_than(-3)),
    (HistogramPdf([0.0, 1.0, 2.0], [0.5, 0.5]), IntervalSet.between(10, 20)),
]

NEAR_ZERO_FLOORS = [
    (GaussianPdf(0, 1), IntervalSet.less_than(-30)),
    (GaussianPdf(100, 0.1), IntervalSet.greater_than(104)),
    (UniformPdf(0, 1), IntervalSet.between(0, 1e-300)),
    (DiscretePdf({1: 1e-12, 2: 1.0 - 1e-12}), IntervalSet.point(1)),
    (GammaPdf(2, 1), IntervalSet.greater_than(60)),
    (WeibullPdf(1.5, 1), IntervalSet.greater_than(30)),
    (LognormalPdf(0, 0.5), IntervalSet.greater_than(1e6)),
    (BetaPdf(2, 2), IntervalSet.between(0, 1e-8)),
]


def _floor(base, allowed):
    return base.restrict(BoxRegion({base.attr: allowed}))


class TestZeroMassFloors:
    @pytest.mark.parametrize("base,allowed", ZERO_FLOORS)
    def test_mass_is_exactly_zero(self, base, allowed):
        assert _floor(base, allowed).mass() == 0.0

    @pytest.mark.parametrize("base,allowed", ZERO_FLOORS)
    def test_density_zero_everywhere_probed(self, base, allowed):
        f = _floor(base, allowed)
        xs = np.linspace(-50, 50, 41)
        assert np.all(f.density({f.attr: xs}) == 0.0)

    @pytest.mark.parametrize("base,allowed", ZERO_FLOORS)
    def test_further_restriction_stays_zero(self, base, allowed):
        f = _floor(base, allowed)
        again = f.restrict(BoxRegion({f.attr: IntervalSet.less_than(1000)}))
        assert again.mass() == 0.0

    @pytest.mark.parametrize("base,allowed", ZERO_FLOORS)
    def test_cdf_is_zero_and_finite(self, base, allowed):
        f = _floor(base, allowed)
        vals = np.atleast_1d(f.cdf(np.array([-1e9, 0.0, 1e9])))
        assert np.all(vals == 0.0)
        assert np.all(np.isfinite(vals))


class TestNearZeroMassFloors:
    @pytest.mark.parametrize("base,allowed", NEAR_ZERO_FLOORS)
    def test_mass_tiny_but_legal(self, base, allowed):
        m = _floor(base, allowed).mass()
        assert 0.0 <= m < 1e-6
        assert math.isfinite(m)

    @pytest.mark.parametrize("base,allowed", NEAR_ZERO_FLOORS)
    def test_prob_interval_never_exceeds_mass(self, base, allowed):
        f = _floor(base, allowed)
        m = f.mass()
        for probe in (IntervalSet.full(), IntervalSet.less_than(0), IntervalSet.greater_than(0)):
            p = f.prob_interval(probe)
            assert 0.0 <= p <= m + 1e-18


class TestKernelScalarIdentity:
    """The batch kernels must be bit-identical to the scalar paths, down
    into the zero-mass corner."""

    def test_batch_mass_matches_scalar(self):
        floors = [_floor(b, a) for b, a in ZERO_FLOORS + NEAR_ZERO_FLOORS]
        scalar = np.array([f.mass() for f in floors])
        batch = batch_mass(floors)
        assert np.array_equal(batch, scalar)  # bitwise, incl. signed zeros

    def test_batch_interval_probs_matches_scalar(self):
        cases = ZERO_FLOORS + NEAR_ZERO_FLOORS
        bases = [b for b, _ in cases]
        alloweds = [a for _, a in cases]
        scalar = np.array(
            [float(b.prob_interval(a)) for b, a in zip(bases, alloweds)]
        )
        batch = batch_interval_probs(bases, alloweds)
        assert np.array_equal(batch, scalar)

    def test_empty_interval_set_is_zero(self):
        bases = [GaussianPdf(0, 1), UniformPdf(0, 1)]
        alloweds = [IntervalSet.empty(), IntervalSet.empty()]
        batch = batch_interval_probs(bases, alloweds)
        assert np.array_equal(batch, np.zeros(2))
        assert all(float(b.prob_interval(IntervalSet.empty())) == 0.0 for b in bases)


class TestProductsWithZeroMass:
    def test_product_with_zero_factor_is_zero(self):
        store = HistoryStore()
        zero = _floor(GaussianPdf(0, 1), IntervalSet.less_than(-600)).with_attrs(["a"])
        live = GaussianPdf(5, 1).with_attrs(["b"])
        joint, _ = product(
            [(zero, frozenset()), (live, frozenset())], store, DEFAULT_CONFIG
        )
        assert joint.mass() == pytest.approx(0.0, abs=1e-300)

    def test_product_of_near_zeros_underflows_gracefully(self):
        store = HistoryStore()
        a = _floor(GaussianPdf(0, 1), IntervalSet.less_than(-30)).with_attrs(["a"])
        b = _floor(GaussianPdf(0, 1), IntervalSet.greater_than(30)).with_attrs(["b"])
        joint, _ = product(
            [(a, frozenset()), (b, frozenset())], store, DEFAULT_CONFIG
        )
        m = joint.mass()
        assert 0.0 <= m < 1e-100
        assert math.isfinite(m)


class TestProbThresholds:
    """PROB(...) thresholds over zero/near-zero tuples — SQL surface,
    exercising both the scalar executor and the batched kernel pipeline."""

    @pytest.fixture
    def db(self):
        d = Database()
        d.execute("CREATE TABLE t (rid INT, v REAL UNCERTAIN)")
        d.execute("INSERT INTO t VALUES (1, GAUSSIAN(0, 1))")
        d.execute("INSERT INTO t VALUES (2, GAUSSIAN(100, 1))")
        d.execute("INSERT INTO t VALUES (3, UNIFORM(0, 10))")
        d.execute("INSERT INTO t VALUES (4, DISCRETE(1:0.000000000001, 2:0.999999999999))")
        return d

    def test_selection_prunes_zero_mass_tuples(self, db):
        # v > 500 floors every pdf to (near-)zero mass; all four fall
        # below ``mass_epsilon`` and are pruned by the selection itself.
        db.execute("CREATE TABLE dead AS SELECT rid, v FROM t WHERE v > 500")
        assert db.execute("SELECT rid FROM dead").rowcount == 0

    def test_near_zero_above_epsilon_survives_selection(self, db):
        # Only GAUSSIAN(100, 1) keeps representable mass above 103
        # (~1.35e-3, above the 1e-6 epsilon); everything else is pruned.
        db.execute("CREATE TABLE thin AS SELECT rid, v FROM t WHERE v > 103")
        rows = db.execute("SELECT rid FROM thin").rows
        assert {t.certain["rid"] for t in rows} == {2}

    def test_threshold_filters_near_zero_mass(self, db):
        db.execute("CREATE TABLE thin AS SELECT rid, v FROM t WHERE v > 103")
        alive = db.execute("SELECT rid FROM thin WHERE PROB(*) > 0").rows
        assert {t.certain["rid"] for t in alive} == {2}
        assert db.execute("SELECT rid FROM thin WHERE PROB(*) >= 0.01").rowcount == 0
        assert db.execute("SELECT rid FROM thin WHERE PROB(*) >= 0.001").rowcount == 1
        assert db.execute("SELECT rid FROM thin WHERE PROB(*) <= 0.01").rowcount == 1

    def test_selection_never_emits_zero_mass_even_at_epsilon_zero(self):
        """``mass <= epsilon`` pruning is strict: with epsilon 0, exact
        zero-mass tuples are still dropped, only positive mass survives."""
        from dataclasses import replace

        # Synopsis page pruning and lazy-decode support tests are both
        # calibrated against the *default* epsilon (grid tail mass), so
        # they go off together with it.
        d = Database(
            config=replace(
                DEFAULT_CONFIG,
                mass_epsilon=0.0,
                scan_pruning=False,
                lazy_decode=False,
            )
        )
        d.execute("CREATE TABLE t (rid INT, v REAL UNCERTAIN)")
        d.execute("INSERT INTO t VALUES (1, UNIFORM(0, 10))")
        d.execute("INSERT INTO t VALUES (2, GAUSSIAN(100, 1))")
        d.execute("CREATE TABLE dead AS SELECT rid, v FROM t WHERE v > 500")
        assert d.execute("SELECT rid FROM dead").rowcount == 0
        # Epsilon 0 admits masses the default epsilon would prune.
        d.execute("CREATE TABLE faint AS SELECT rid, v FROM t WHERE v > 105")
        rows = d.execute("SELECT rid FROM faint").rows
        assert {t.certain["rid"] for t in rows} == {2}

    def test_threshold_operator_classifies_exact_zero_mass(self):
        """A hand-built zero-mass partial pdf (below the SQL surface, so
        no selection pruning) through ``threshold_select``."""
        from repro.core.model import Column, DataType, ProbabilisticSchema
        from repro.core.threshold import threshold_select

        schema = ProbabilisticSchema(
            [Column("rid", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
        )
        from repro.core.model import ProbabilisticRelation

        rel = ProbabilisticRelation(schema)
        zero = _floor(UniformPdf(0, 10), IntervalSet.greater_than(20))
        live = GaussianPdf(5, 1)
        rel.insert({"rid": 1}, {"v": zero})
        rel.insert({"rid": 2}, {"v": live})
        kept = threshold_select(rel, None, ">", 0.0)
        assert [t.certain["rid"] for t in kept.tuples] == [2]
        dead = threshold_select(rel, None, "<=", 0.0)
        assert [t.certain["rid"] for t in dead.tuples] == [1]
        everyone = threshold_select(rel, None, ">=", 0.0)
        assert len(everyone.tuples) == 2

    def test_batch_probability_matches_scalar(self):
        """Tuples spanning zero, near-zero, and full mass: the batched
        existence-probability kernel equals the scalar path exactly."""
        from repro.core.model import (
            Column,
            DataType,
            ProbabilisticRelation,
            ProbabilisticSchema,
        )

        schema = ProbabilisticSchema(
            [Column("rid", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
        )
        rel = ProbabilisticRelation(schema)
        rel.insert({"rid": 1}, {"v": _floor(UniformPdf(0, 10), IntervalSet.greater_than(20))})
        rel.insert({"rid": 2}, {"v": _floor(GaussianPdf(0, 1), IntervalSet.less_than(-30))})
        rel.insert({"rid": 3}, {"v": GaussianPdf(5, 1)})
        rel.insert({"rid": 4}, {"v": None})
        scalar = [probability_of(t, rel.store, None, DEFAULT_CONFIG) for t in rel.tuples]
        batch = batch_probability_of(rel.tuples, rel.store, None, DEFAULT_CONFIG)
        assert batch == scalar  # exact, element-wise
        assert batch[0] == 0.0 and 0.0 < batch[1] < 1e-6
        assert batch[2] == 1.0 and batch[3] == 1.0
