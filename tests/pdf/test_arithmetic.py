"""Arithmetic tests: affine transforms, convolutions, aggregate sums."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import PdfError, UnsupportedOperationError
from repro.pdf import (
    BernoulliPdf,
    DiscretePdf,
    GaussianPdf,
    HistogramPdf,
    UniformPdf,
    affine,
    convolve_discrete,
    convolve_histograms,
    sum_independent,
)


class TestAffine:
    def test_gaussian(self):
        g = affine(GaussianPdf(2, 4), scale=3, shift=1)
        assert g.mean() == pytest.approx(7.0)
        assert g.variance() == pytest.approx(36.0)

    def test_uniform_negative_scale(self):
        u = affine(UniformPdf(0, 2), scale=-1, shift=0)
        assert u.support()["x"] == (-2, 0)

    def test_discrete(self):
        d = affine(DiscretePdf({1: 0.5, 2: 0.5}), scale=10, shift=5)
        assert float(d.pdf_at(15)) == pytest.approx(0.5)
        assert float(d.pdf_at(25)) == pytest.approx(0.5)

    def test_histogram_flip(self):
        h = affine(HistogramPdf([0, 1, 3], [0.25, 0.75]), scale=-1)
        assert h.support()["x"] == (-3, 0)
        assert h.mass() == pytest.approx(1.0)
        assert h.prob_interval(
            __import__("repro.pdf", fromlist=["IntervalSet"]).IntervalSet.between(-3, -1)
        ) == pytest.approx(0.75)

    def test_zero_scale_rejected(self):
        with pytest.raises(PdfError):
            affine(GaussianPdf(0, 1), scale=0)

    def test_unsupported_type(self):
        with pytest.raises(UnsupportedOperationError):
            affine(BernoulliPdf(0.5), scale=2)


class TestConvolveDiscrete:
    def test_two_dice(self):
        die = DiscretePdf({v: 1 / 6 for v in range(1, 7)})
        total = convolve_discrete([die, die])
        assert float(total.pdf_at(2)) == pytest.approx(1 / 36)
        assert float(total.pdf_at(7)) == pytest.approx(6 / 36)
        assert total.mass() == pytest.approx(1.0)

    def test_support_blowup(self):
        """The exponential growth the paper warns about (Section I)."""
        parts = [DiscretePdf({0: 0.5, 10**i: 0.5}) for i in range(4)]
        total = convolve_discrete(parts)
        assert len(total.values) == 2**4

    def test_partial_mass_multiplies(self):
        a = DiscretePdf({0: 0.5})
        b = DiscretePdf({1: 0.5})
        assert convolve_discrete([a, b]).mass() == pytest.approx(0.25)

    def test_empty_rejected(self):
        with pytest.raises(PdfError):
            convolve_discrete([])


class TestConvolveHistograms:
    def test_uniform_sum_is_triangular(self):
        u = UniformPdf(0, 1)
        total = convolve_histograms([u, u], bins=64)
        assert total.mass() == pytest.approx(1.0, abs=1e-6)
        assert total.mean() == pytest.approx(1.0, abs=0.02)
        # Triangular peak at 1.
        assert float(total.pdf_at(1.0)) > float(total.pdf_at(0.2))

    def test_gaussian_sum_matches_closed_form(self):
        a, b = GaussianPdf(1, 1), GaussianPdf(2, 3)
        total = convolve_histograms([a, b], bins=128)
        # Grid convolution carries half-cell bias from tail clipping.
        assert total.mean() == pytest.approx(3.0, abs=0.15)
        assert total.variance() == pytest.approx(4.0, rel=0.1)


class TestSumIndependent:
    def test_gaussians_closed_form(self):
        out = sum_independent([GaussianPdf(1, 2), GaussianPdf(3, 4)])
        assert isinstance(out, GaussianPdf)
        assert out.mean() == pytest.approx(4.0)
        assert out.variance() == pytest.approx(6.0)

    def test_exact_discrete(self):
        out = sum_independent(
            [DiscretePdf({0: 0.5, 1: 0.5}), DiscretePdf({0: 0.5, 1: 0.5})],
            method="exact",
        )
        assert float(out.pdf_at(1)) == pytest.approx(0.5)

    def test_auto_falls_back_to_gaussian_on_blowup(self):
        # 2^18 distinct sums exceed the auto method's exact-support budget.
        parts = [DiscretePdf({0: 0.5, 3.0**i: 0.5}) for i in range(18)]
        out = sum_independent(parts, method="auto")
        assert isinstance(out, GaussianPdf)

    def test_auto_exact_when_small(self):
        parts = [BernoulliPdf(0.5), BernoulliPdf(0.5)]
        out = sum_independent(parts, method="auto")
        assert isinstance(out, DiscretePdf)
        assert float(out.pdf_at(1)) == pytest.approx(0.5)

    def test_histogram_method(self):
        out = sum_independent(
            [UniformPdf(0, 1), UniformPdf(0, 1)], method="histogram"
        )
        assert isinstance(out, HistogramPdf)

    def test_exact_rejects_continuous(self):
        with pytest.raises(UnsupportedOperationError):
            sum_independent([GaussianPdf(0, 1)], method="exact") if False else (
                sum_independent([GaussianPdf(0, 1), GaussianPdf(0, 1)], method="exact")
            )

    def test_single_input_renamed(self):
        out = sum_independent([GaussianPdf(0, 1, attr="v")])
        assert out.attrs == ("sum",)

    def test_unknown_method(self):
        with pytest.raises(PdfError):
            sum_independent([GaussianPdf(0, 1), GaussianPdf(0, 1)], method="nope")

    def test_empty_rejected(self):
        with pytest.raises(PdfError):
            sum_independent([])


@settings(max_examples=40, deadline=None)
@given(
    probs=st.lists(st.floats(min_value=0.05, max_value=0.95), min_size=2, max_size=6)
)
def test_bernoulli_sum_mean_matches(probs):
    """Sum of Bernoullis: exact convolution mean == sum of p."""
    parts = [BernoulliPdf(p) for p in probs]
    out = sum_independent(parts, method="exact")
    assert out.mean() == pytest.approx(sum(probs), abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    means=st.lists(st.floats(min_value=-20, max_value=20), min_size=2, max_size=5),
    variances=st.lists(st.floats(min_value=0.1, max_value=10), min_size=2, max_size=5),
)
def test_gaussian_sum_moments(means, variances):
    n = min(len(means), len(variances))
    parts = [GaussianPdf(m, v) for m, v in zip(means[:n], variances[:n])]
    out = sum_independent(parts)
    assert out.mean() == pytest.approx(sum(m for m, _ in zip(means, range(n))))
    assert out.variance() == pytest.approx(sum(v for v, _ in zip(variances, range(n))))
