"""Workload generator tests: determinism and paper-specified distributions."""

import numpy as np
import pytest

from repro.pdf import CategoricalPdf, GaussianPdf, HistogramPdf, DiscretePdf
from repro.workloads import (
    annotations_schema,
    generate_annotations,
    generate_moving_objects,
    generate_range_queries,
    generate_readings,
    load_annotations_relation,
    load_objects_relation,
    load_readings_relation,
    make_readings,
    readings_schema,
)


class TestSensorWorkload:
    def test_deterministic(self):
        assert generate_readings(10, seed=1) == generate_readings(10, seed=1)
        assert generate_readings(10, seed=1) != generate_readings(10, seed=2)

    def test_paper_parameter_distributions(self):
        readings = generate_readings(5000, seed=0)
        means = np.array([r.mean for r in readings])
        sigmas = np.array([r.sigma for r in readings])
        # means ~ U(0, 100); sigmas ~ N(2, 0.5) clipped
        assert 45 < means.mean() < 55
        assert means.min() >= 0 and means.max() <= 100
        assert 1.9 < sigmas.mean() < 2.1
        assert sigmas.min() > 0

    def test_range_query_distributions(self):
        queries = generate_range_queries(5000, seed=0)
        lengths = np.array([q.length for q in queries])
        mids = np.array([q.midpoint for q in queries])
        assert 9.5 < lengths.mean() < 10.5
        assert 45 < mids.mean() < 55

    def test_representations(self):
        readings = generate_readings(3, seed=0)
        symbolic = dict(make_readings(readings, "symbolic"))
        hist = dict(make_readings(readings, "histogram", size=5))
        disc = dict(make_readings(readings, "discrete", size=25))
        assert isinstance(symbolic[1], GaussianPdf)
        assert isinstance(hist[1], HistogramPdf) and hist[1].num_buckets == 5
        assert isinstance(disc[1], DiscretePdf) and len(disc[1].values) == 25

    def test_unknown_representation(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            list(make_readings(generate_readings(1), "nope"))

    def test_load_relation(self):
        rel = load_readings_relation(generate_readings(4, seed=0))
        assert len(rel) == 4
        assert rel.schema == readings_schema()


class TestMovingObjects:
    def test_generation(self):
        objects = generate_moving_objects(20, seed=3)
        assert len(objects) == 20
        for obj in objects:
            assert -1 < obj.correlation < 1
            # The pdf construction validates positive-definiteness.
            obj.pdf

    def test_load_relation(self):
        rel = load_objects_relation(generate_moving_objects(5, seed=1))
        assert len(rel) == 5
        t = rel.tuples[0]
        assert set(t.pdfs[frozenset({"x", "y"})].attrs) == {"x", "y"}


class TestAnnotations:
    def test_generation_and_masses(self):
        tokens = generate_annotations(200, seed=9)
        assert len(tokens) == 200
        masses = [t.exists_prob for t in tokens]
        assert all(0 < m <= 1.0 + 1e-9 for m in masses)
        assert any(m < 0.99 for m in masses)  # some partial tokens

    def test_load_relation(self):
        rel = load_annotations_relation(generate_annotations(10, seed=2))
        assert len(rel) == 10
        pdf = rel.tuples[0].pdf_of_attr("label")
        assert isinstance(pdf, CategoricalPdf)
