"""Statistical contract of the uncertain-TPC-H generator.

The generator *declares* its distributions (family weights, parameter
ranges, exact violator counts) so tests can hold it to them:

* chi-square: the realised pdf-family mix of ``l_extendedprice`` and
  ``l_shipdate`` matches the declared weights at scale factor 0.01,
* Kolmogorov–Smirnov: the uniform-family support starts are U(lo-range),
* denial constraints: each constraint's violation predicate selects
  **exactly** the declared number of rows — non-violators carry zero
  violation probability by construction, violators strictly positive,
* repair by conditioning empties the violation predicate on the cleaned
  table,
* same seed ⇒ bitwise-identical ``Database.dump_state()``, and every
  other workload generator accepts one explicit shared RNG stream.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.core.threshold import probability_of
from repro.engine.database import Database
from repro.pdf.continuous import TriangularPdf, UniformPdf
from repro.pdf.discrete import DiscretePdf
from repro.pdf.histogram import HistogramPdf
from repro.workloads import (
    PRICE_FAMILY_WEIGHTS,
    PRICE_LO_RANGE,
    QUANTITY_BOUND,
    SHIPDATE_FAMILY_WEIGHTS,
    TpchConfig,
    default_constraints,
    generate_annotations,
    generate_moving_objects,
    generate_range_queries,
    generate_readings,
    generate_tpch,
    synthesize,
    table_row_counts,
)

#: Loose-alpha acceptance for the distribution tests: at a fixed seed the
#: draws are deterministic, so this never flakes; it fails only if the
#: generator's realised distributions drift from the declared contract.
ALPHA = 0.001

_SF001 = TpchConfig(scale_factor=0.01, seed=3)

_SMALL = TpchConfig(
    lineitem_rows=1500, orders_rows=400, part_rows=80, seed=11,
    violations_per_constraint=7,
)

_FAMILY_OF = {UniformPdf: "uniform", TriangularPdf: "triangular", HistogramPdf: "histogram"}


def _pdf(row, column):
    return row[1][column]


class TestStatisticalContract:
    @classmethod
    def setup_class(cls):
        cls.data = synthesize(_SF001)
        cls.price_violators = set(cls.data.violators["price_cap"].tolist())
        cls.ship_violators = set(cls.data.violators["shipdate_horizon"].tolist())
        cls.quantity_violators = set(cls.data.violators["quantity_cap"].tolist())

    def test_row_counts_follow_scale_factor(self):
        counts = table_row_counts(_SF001)
        assert counts == {"lineitem": 60_000, "orders": 15_000, "part": 2_000}
        assert len(self.data.lineitem) == 60_000

    def test_price_family_mix_chi_square(self):
        observed = {name: 0 for name, _ in PRICE_FAMILY_WEIGHTS}
        for i, row in enumerate(self.data.lineitem):
            if i in self.price_violators:
                continue
            observed[_FAMILY_OF[type(_pdf(row, "l_extendedprice"))]] += 1
        n = sum(observed.values())
        obs = [observed[name] for name, _ in PRICE_FAMILY_WEIGHTS]
        exp = [n * w for _, w in PRICE_FAMILY_WEIGHTS]
        _, p = stats.chisquare(obs, exp)
        assert p > ALPHA, f"price family mix {observed} drifted from declared weights"

    def test_shipdate_family_mix_chi_square(self):
        observed = {name: 0 for name, _ in SHIPDATE_FAMILY_WEIGHTS}
        for i, row in enumerate(self.data.lineitem):
            if i in self.ship_violators:
                continue
            observed[_FAMILY_OF[type(_pdf(row, "l_shipdate"))]] += 1
        n = sum(observed.values())
        obs = [observed[name] for name, _ in SHIPDATE_FAMILY_WEIGHTS]
        exp = [n * w for _, w in SHIPDATE_FAMILY_WEIGHTS]
        _, p = stats.chisquare(obs, exp)
        assert p > ALPHA, f"shipdate family mix {observed} drifted from declared weights"

    def test_uniform_price_support_start_ks(self):
        los = [
            _pdf(row, "l_extendedprice").params["lo"]
            for i, row in enumerate(self.data.lineitem)
            if i not in self.price_violators
            and type(_pdf(row, "l_extendedprice")) is UniformPdf
        ]
        assert len(los) > 1000
        lo, hi = PRICE_LO_RANGE
        _, p = stats.kstest(np.array(los), "uniform", args=(lo, hi - lo))
        assert p > ALPHA, "uniform price support starts drifted from U(lo-range)"

    def test_quantity_supports_respect_the_bound(self):
        for i, row in enumerate(self.data.lineitem):
            pdf = _pdf(row, "l_quantity")
            assert isinstance(pdf, DiscretePdf)
            top = max(v for v, _ in pdf.items())
            if i in self.quantity_violators:
                assert top > QUANTITY_BOUND
                mass_above = sum(m for v, m in pdf.items() if v > QUANTITY_BOUND)
                # Injected violation probability stays well above the pdf
                # mass floor, so SQL selections never drop a violator.
                assert mass_above >= 0.02
            else:
                assert top < QUANTITY_BOUND

    def test_partial_fraction_realised(self):
        partial = sum(
            1
            for row in self.data.lineitem
            if _pdf(row, "l_quantity").mass() < 1.0 - 1e-9
        )
        # partial_fraction=0.05 of 60k rows; binomial 3-sigma band.
        assert 2600 <= partial <= 3400


class TestDenialConstraints:
    @classmethod
    def setup_class(cls):
        cls.db = Database()
        cls.constraints = generate_tpch(cls.db, _SMALL)

    def test_violation_predicates_select_exactly_the_injected_rows(self):
        for c in self.constraints:
            res = self.db.execute(
                f"SELECT l_linenumber FROM {c.table} WHERE {c.violation_predicate}"
            )
            assert len(res) == c.count, c.name

    def test_ranking_orders_by_violation_probability(self):
        c = self.constraints[0]
        res = self.db.execute(c.ranking_sql(columns="l_linenumber"))
        assert len(res) == c.count
        probs = [
            probability_of(t, self.db.catalog.store, None, self.db.config)
            for t in res
        ]
        assert probs == sorted(probs, reverse=True)
        assert all(p > 0 for p in probs)

    def test_repair_by_conditioning_empties_the_violation(self):
        c = self.constraints[1]
        self.db.execute(c.repair_sql("lineitem_clean"))
        res = self.db.execute(
            f"SELECT l_linenumber FROM lineitem_clean WHERE {c.violation_predicate}"
        )
        assert len(res) == 0
        kept = self.db.execute("SELECT l_linenumber FROM lineitem_clean")
        assert len(kept) == _SMALL.n_lineitem


class TestDeterminism:
    def test_same_seed_bitwise_identical_database(self):
        db1, db2 = Database(), Database()
        generate_tpch(db1, _SMALL)
        generate_tpch(db2, _SMALL)
        assert db1.dump_state() == db2.dump_state()

    def test_different_seed_differs(self):
        other = TpchConfig(
            lineitem_rows=1500, orders_rows=400, part_rows=80, seed=12,
            violations_per_constraint=7,
        )
        db1, db2 = Database(), Database()
        generate_tpch(db1, _SMALL)
        generate_tpch(db2, other)
        assert db1.dump_state() != db2.dump_state()

    def test_generators_thread_one_explicit_rng(self):
        """Every workload generator accepts a caller-owned Generator.

        Passing ``rng=default_rng(seed)`` must reproduce the seed path
        bitwise, and one shared stream across calls must be deterministic.
        """
        assert generate_readings(50, seed=9) == generate_readings(
            50, rng=np.random.default_rng(9)
        )
        assert generate_range_queries(50, seed=9) == generate_range_queries(
            50, rng=np.random.default_rng(9)
        )
        assert generate_moving_objects(50, seed=9) == generate_moving_objects(
            50, rng=np.random.default_rng(9)
        )
        assert generate_annotations(50, seed=9) == generate_annotations(
            50, rng=np.random.default_rng(9)
        )
        # One shared stream: the second call continues where the first left
        # off, and the whole sequence is reproducible.
        rng_a = np.random.default_rng(77)
        rng_b = np.random.default_rng(77)
        seq_a = (generate_readings(20, rng=rng_a), generate_moving_objects(20, rng=rng_a))
        seq_b = (generate_readings(20, rng=rng_b), generate_moving_objects(20, rng=rng_b))
        assert seq_a == seq_b

    def test_constraint_metadata_deterministic(self):
        assert default_constraints(_SMALL) == default_constraints(_SMALL)
