"""Slow-suite TPC-H runs: scale-factor >= 0.05 under a memory budget.

Loads ~390k tuples once, runs the benchmark query suite fully in memory
and again under a ``work_mem`` budget that forces the hash join to
partition to disk and ORDER BY to external-sort, and asserts the two
result streams are bitwise identical — ids, order, certain values, and
pdf reprs.  Excluded from tier-1 by the ``slow`` marker; the dedicated
CI job runs ``pytest -m slow``.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.core.operations import PDF_OP_CACHE
from repro.engine.database import Database
from repro.engine.executor.spill import SPILL_STATS
from repro.workloads import TpchConfig, generate_tpch, query_suite

pytestmark = pytest.mark.slow

#: 4 MiB: far below the ~17 MB build side of the lineitem x orders join at
#: SF 0.05, so the join must spill; every ORDER BY input exceeds it too.
WORK_MEM = 4 << 20

CFG = TpchConfig(scale_factor=0.05, seed=2)


def _signature(rows):
    return [
        (t.tuple_id, tuple(sorted(t.certain.items())), repr(sorted(map(repr, t.pdfs.values()))))
        for t in rows
    ]


def test_sf005_suite_spilled_identical_to_in_memory():
    db = Database()
    generate_tpch(db, CFG)
    store = db.catalog.store
    base_config = db.catalog.config
    suite = query_suite(CFG)

    id0 = store._next_tuple_id
    in_memory = {}
    for name, sql in suite:
        store._next_tuple_id = id0
        PDF_OP_CACHE.reset()
        in_memory[name] = _signature(db.execute(sql).rows)

    db.catalog.config = replace(base_config, work_mem=WORK_MEM)
    SPILL_STATS.reset()
    spilled = {}
    for name, sql in suite:
        store._next_tuple_id = id0
        PDF_OP_CACHE.reset()
        spilled[name] = _signature(db.execute(sql).rows)

    snap = SPILL_STATS.snapshot()
    assert snap["join_spills"] >= 1, snap
    assert snap["sort_spills"] >= 1, snap
    for name, _ in suite:
        assert spilled[name] == in_memory[name], f"{name} diverged under work_mem"
