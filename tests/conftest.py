"""Shared fixtures: the paper's running examples and common builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    Column,
    DataType,
    HistoryStore,
    ProbabilisticRelation,
    ProbabilisticSchema,
)
from repro.pdf import DiscretePdf, GaussianPdf, JointDiscretePdf


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def sensor_relation():
    """The paper's Table I: Sensor(id, location) with Gaussian locations."""
    schema = ProbabilisticSchema(
        [Column("id", DataType.INT), Column("location", DataType.REAL)],
        [{"location"}],
    )
    rel = ProbabilisticRelation(schema, name="sensors")
    rel.insert(certain={"id": 1}, uncertain={"location": GaussianPdf(20, 5)})
    rel.insert(certain={"id": 2}, uncertain={"location": GaussianPdf(25, 4)})
    rel.insert(certain={"id": 3}, uncertain={"location": GaussianPdf(13, 1)})
    return rel


@pytest.fixture
def table2_relation():
    """The paper's Table II: two tuples over discrete attributes a and b."""
    schema = ProbabilisticSchema(
        [Column("a", DataType.INT), Column("b", DataType.INT)],
        [{"a"}, {"b"}],
    )
    rel = ProbabilisticRelation(schema, name="T")
    rel.insert(
        uncertain={
            "a": DiscretePdf({0: 0.1, 1: 0.9}),
            "b": DiscretePdf({1: 0.6, 2: 0.4}),
        }
    )
    rel.insert(
        uncertain={"a": DiscretePdf({7: 1.0}), "b": DiscretePdf({3: 1.0})}
    )
    return rel


@pytest.fixture
def figure3_relation():
    """The paper's Figure 3 base table: joint (a, b) with a partial tuple."""
    schema = ProbabilisticSchema(
        [Column("a", DataType.INT), Column("b", DataType.INT)],
        [{"a", "b"}],
    )
    rel = ProbabilisticRelation(schema, name="T")
    rel.insert(
        uncertain={("a", "b"): JointDiscretePdf(("a", "b"), {(4, 5): 0.9, (2, 3): 0.1})}
    )
    rel.insert(uncertain={("a", "b"): JointDiscretePdf(("a", "b"), {(7, 3): 0.7})})
    return rel
