"""Shape tests for the paper's figures (tiny parameters, assertions on trends)."""

import pytest

from repro.bench.figures import (
    fig4_accuracy,
    fig5_discretized_performance,
    fig6_history_overhead,
)


class TestFigure4:
    @pytest.fixture(scope="class")
    def data(self):
        headers, rows = fig4_accuracy(
            sample_sizes=(2, 5, 10, 25), n_pdfs=30, n_queries=30, seed=7
        )
        return headers, {int(r[0]): r[1:] for r in rows}

    def test_histogram_beats_discrete_at_every_size(self, data):
        headers, by_size = data
        for size, (hist_err, _, disc_err, _) in by_size.items():
            if size >= 5:
                assert hist_err < disc_err, size

    def test_errors_shrink_with_size(self, data):
        headers, by_size = data
        sizes = sorted(by_size)
        hist_errors = [by_size[s][0] for s in sizes]
        disc_errors = [by_size[s][2] for s in sizes]
        assert hist_errors[0] > hist_errors[-1]
        assert disc_errors[0] > disc_errors[-1]

    def test_paper_hist5_accuracy_band(self, data):
        """The paper: ~5 buckets give accuracy around ±0.01 probability mass."""
        headers, by_size = data
        assert by_size[5][0] < 0.02

    def test_paper_disc25_comparable_to_hist5(self, data):
        """The paper: discrete needs >25 points to reach hist-5 accuracy."""
        headers, by_size = data
        assert by_size[25][2] < 2 * by_size[5][0]

    def test_discrete_error_variance_higher(self, data):
        headers, by_size = data
        for size in (5, 10, 25):
            hist_std = by_size[size][1]
            disc_std = by_size[size][3]
            assert disc_std > hist_std, size


class TestFigure5:
    @pytest.fixture(scope="class")
    def data(self):
        headers, rows = fig5_discretized_performance(
            tuple_counts=(200, 800), n_queries=4, buffer_pages=64, seed=11
        )
        return headers, rows

    def test_discrete_has_most_io(self, data):
        headers, rows = data
        idx = {h: i for i, h in enumerate(headers)}
        for row in rows:
            assert row[idx["disc25_io"]] > row[idx["hist5_io"]]
            assert row[idx["hist5_io"]] > row[idx["symbolic_io"]]

    def test_discrete_cost_rises_steepest(self, data):
        headers, rows = data
        idx = {h: i for i, h in enumerate(headers)}
        small, large = rows[0], rows[-1]
        disc_growth = large[idx["disc25_cost"]] / small[idx["disc25_cost"]]
        hist_growth = large[idx["hist5_cost"]] / small[idx["hist5_cost"]]
        assert disc_growth > hist_growth

    def test_symbolic_cheapest_at_scale(self, data):
        headers, rows = data
        idx = {h: i for i, h in enumerate(headers)}
        large = rows[-1]
        assert large[idx["symbolic_cost"]] < large[idx["disc25_cost"]]


class TestFigure6:
    @pytest.fixture(scope="class")
    def data(self):
        headers, rows = fig6_history_overhead(tuple_counts=(100, 200), seed=23)
        return headers, rows

    def test_history_join_is_slower(self, data):
        headers, rows = data
        idx = {h: i for i, h in enumerate(headers)}
        for row in rows:
            assert row[idx["join_hist_s"]] > row[idx["join_nohist_s"]] * 0.9

    def test_overhead_is_bounded(self, data):
        """Correctness costs something, but not an order of magnitude."""
        headers, rows = data
        idx = {h: i for i, h in enumerate(headers)}
        for row in rows:
            assert -10.0 < row[idx["overhead_pct"]] < 150.0
