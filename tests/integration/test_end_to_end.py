"""Integration tests: engine vs model vs possible worlds, across layers."""

import pytest

from repro import Database
from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    expected_multiplicities,
    model_multiplicities,
    multiplicities_match,
    select,
    world_select,
)
from repro.core.predicates import And, Comparison, col
from repro.engine.executor import Filter, SeqScan
from repro.pdf import DiscretePdf, GaussianPdf
from repro.workloads import generate_range_queries, generate_readings, load_readings_relation


class TestEngineMatchesModel:
    """The streamed engine operators and the in-memory model must agree."""

    def test_range_selection_agrees(self):
        readings = generate_readings(50, seed=4)
        rel = load_readings_relation(readings)

        db = Database()
        db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
        for r in readings:
            db.table("readings").insert(
                certain={"rid": r.rid}, uncertain={"value": r.pdf}
            )

        for q in generate_range_queries(10, seed=5):
            pred = And(
                [Comparison("value", ">", q.lo), Comparison("value", "<", q.hi)]
            )
            model_out = select(rel, pred)
            sql_out = db.execute(
                f"SELECT rid FROM readings WHERE value > {q.lo} AND value < {q.hi}"
            )
            model_ids = sorted(t.certain["rid"] for t in model_out)
            sql_ids = sorted(r["rid"] for r in sql_out.to_dicts())
            assert model_ids == sql_ids

    def test_masses_agree_per_tuple(self):
        readings = generate_readings(20, seed=8)
        rel = load_readings_relation(readings)
        db = Database()
        db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
        for r in readings:
            db.table("readings").insert(
                certain={"rid": r.rid}, uncertain={"value": r.pdf}
            )
        pred = And([Comparison("value", ">", 30), Comparison("value", "<", 70)])
        model_out = {
            t.certain["rid"]: t.pdfs[frozenset({"value"})].mass()
            for t in select(rel, pred)
        }
        engine_out = {
            t.certain["rid"]: t.pdfs[frozenset({"value"})].mass()
            for t in Filter(SeqScan(db.table("readings")), pred, db.catalog.store)
        }
        assert model_out == pytest.approx(engine_out)


class TestEngineMatchesPossibleWorlds:
    def test_sql_selection_is_pws_consistent(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT UNCERTAIN, b INT UNCERTAIN)")
        db.execute(
            "INSERT INTO t VALUES (DISCRETE(0: 0.1, 1: 0.9), DISCRETE(1: 0.6, 2: 0.4)),"
            " (DISCRETE(7: 1.0), DISCRETE(3: 1.0))"
        )
        result = db.execute("SELECT * FROM t WHERE a < b")

        # Rebuild the same base data as a model relation for PWS expansion.
        schema = ProbabilisticSchema(
            [Column("a", DataType.INT), Column("b", DataType.INT)], [{"a"}, {"b"}]
        )
        rel = ProbabilisticRelation(schema, name="T")
        rel.insert(
            uncertain={
                "a": DiscretePdf({0: 0.1, 1: 0.9}),
                "b": DiscretePdf({1: 0.6, 2: 0.4}),
            }
        )
        rel.insert(uncertain={"a": DiscretePdf({7: 1.0}), "b": DiscretePdf({3: 1.0})})
        pred = Comparison("a", "<", col("b"))
        pws = expected_multiplicities({"T": rel}, lambda w: world_select(w["T"], pred))

        # Compare via the result relation built on the engine's store.
        out_rel = ProbabilisticRelation(result.schema, db.catalog.store)
        for t in result.rows:
            out_rel.add_tuple(t, acquire=False)
        assert multiplicities_match(model_multiplicities(out_rel), pws)


class TestSensorScenario:
    """The paper's running example, end to end through SQL."""

    def test_full_flow(self):
        db = Database()
        db.execute("CREATE TABLE sensors (id INT, location REAL UNCERTAIN)")
        db.execute(
            "INSERT INTO sensors VALUES (1, GAUS(20, 5)), (2, GAUS(25, 4)), (3, GAUS(13, 1))"
        )
        # Which sensors are in [18, 22] with confidence at least 50%?
        confident = db.execute(
            "SELECT id FROM sensors WHERE PROB(location > 18 AND location < 22) >= 0.5"
        ).to_dicts()
        assert [r["id"] for r in confident] == [1]
        # Expected location over all sensors.
        assert db.execute("SELECT EXPECTED(location) FROM sensors").scalar() == (
            pytest.approx(58.0)
        )

    def test_history_correctness_through_engine(self):
        """Disabling histories changes (corrupts) probabilities, engine-side."""
        for use_history, expected in ((True, 0.9), (False, 0.81)):
            db = Database(config=ModelConfig(use_history=use_history))
            db.execute(
                "CREATE TABLE t (a INT, b INT, DEPENDENCY (a, b))"
            )
            db.execute(
                "INSERT INTO t VALUES (JOINT_DISCRETE((4, 5): 0.9, (2, 3): 0.1))"
            )
            # Select on a and then on b: the second selection must use the
            # joint (with histories) or wrongly multiply (without).
            out = db.execute("SELECT * FROM t WHERE a = 4 AND b = 5")
            mass = out.rows[0].pdfs[frozenset({"a", "b"})].mass()
            assert mass == pytest.approx(0.9)  # single selection is exact

            # Now the two-step flow where histories matter: project marginals
            # through the model API and re-join.
            from repro.core import join, prefix_attrs, project

            rel = ProbabilisticRelation(
                db.table("t").schema, db.catalog.store
            )
            for _, t in db.table("t").scan():
                rel.add_tuple(t, acquire=False)
            config = ModelConfig(use_history=use_history)
            ta = project(rel, ["a"], config)
            tb = project(
                select(rel, Comparison("b", ">", 4), config), ["b"], config
            )
            joined = join(prefix_attrs(ta, "l"), prefix_attrs(tb, "r"),
                          Comparison("l.a", "=", 4), config)
            got = model_multiplicities(joined, config)
            key = frozenset({("l.a", 4.0), ("r.b", 5.0)})
            assert got[key] == pytest.approx(expected)
