"""Randomized equivalence: the SQL engine vs the in-memory model API.

For random tables and random queries, running through the full stack
(parse → plan → scan pages → decode → execute) must give the same rows and
the same qualification masses as the model operators applied directly.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import Database
from repro.core import (
    And,
    Column,
    Comparison,
    DataType,
    Or,
    ProbabilisticRelation,
    ProbabilisticSchema,
    select,
    threshold_select,
)
from repro.pdf import DiscretePdf, GaussianPdf


@st.composite
def random_tables(draw):
    """(rows, model relation, populated database) triples with mixed pdfs."""
    n = draw(st.integers(min_value=1, max_value=8))
    rows = []
    for i in range(n):
        kind = draw(st.sampled_from(["gaussian", "discrete", "point"]))
        if kind == "gaussian":
            pdf = GaussianPdf(
                draw(st.floats(min_value=0, max_value=100)),
                draw(st.floats(min_value=0.5, max_value=50)),
            )
        elif kind == "discrete":
            k = draw(st.integers(min_value=1, max_value=4))
            values = draw(
                st.lists(
                    st.integers(min_value=0, max_value=100),
                    min_size=k,
                    max_size=k,
                    unique=True,
                )
            )
            weights = draw(
                st.lists(st.floats(min_value=0.05, max_value=1.0), min_size=k, max_size=k)
            )
            scale = draw(st.floats(min_value=0.5, max_value=1.0))
            total = sum(weights)
            pdf = DiscretePdf(
                {float(v): w / total * scale for v, w in zip(values, weights)}
            )
        else:
            pdf = DiscretePdf({float(draw(st.integers(min_value=0, max_value=100))): 1.0})
        rows.append((i + 1, pdf))
    return rows


@st.composite
def range_predicates(draw):
    lo = draw(st.floats(min_value=-10, max_value=100))
    width = draw(st.floats(min_value=0.5, max_value=60))
    return lo, lo + width


def _build_both(rows):
    schema = ProbabilisticSchema(
        [Column("rid", DataType.INT), Column("value", DataType.REAL)], [{"value"}]
    )
    rel = ProbabilisticRelation(schema, name="readings")
    db = Database()
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    for rid, pdf in rows:
        rel.insert(certain={"rid": rid}, uncertain={"value": pdf})
        db.table("readings").insert(certain={"rid": rid}, uncertain={"value": pdf})
    return rel, db


def _masses(result_rows):
    return {
        t.certain["rid"]: t.pdfs[frozenset({"value"})].mass() for t in result_rows
    }


@settings(max_examples=30, deadline=None)
@given(rows=random_tables(), bounds=range_predicates())
def test_range_selection_equivalence(rows, bounds):
    lo, hi = bounds
    rel, db = _build_both(rows)
    pred = And([Comparison("value", ">", lo), Comparison("value", "<", hi)])
    model_out = _masses(select(rel, pred).tuples)
    sql_out = _masses(
        db.execute(
            f"SELECT rid, value FROM readings WHERE value > {lo} AND value < {hi}"
        ).rows
    )
    assert set(model_out) == set(sql_out)
    for rid in model_out:
        assert model_out[rid] == pytest.approx(sql_out[rid], abs=1e-9)


@settings(max_examples=30, deadline=None)
@given(
    rows=random_tables(),
    bounds=range_predicates(),
    threshold=st.floats(min_value=0.05, max_value=0.95),
)
def test_threshold_equivalence(rows, bounds, threshold):
    lo, hi = bounds
    rel, db = _build_both(rows)
    pred = And([Comparison("value", ">", lo), Comparison("value", "<", hi)])
    model_ids = sorted(
        t.certain["rid"] for t in threshold_select(select(rel, pred), None, ">=", threshold)
    )
    sql_ids = sorted(
        r["rid"]
        for r in db.execute(
            f"SELECT rid FROM readings "
            f"WHERE PROB(value > {lo} AND value < {hi}) >= {threshold}"
        ).to_dicts()
    )
    assert model_ids == sql_ids


@settings(max_examples=20, deadline=None)
@given(rows=random_tables(), bounds=range_predicates())
def test_index_paths_agree_with_seqscan(rows, bounds):
    lo, hi = bounds
    _, db = _build_both(rows)
    base = _masses(
        db.execute(
            f"SELECT rid, value FROM readings WHERE value > {lo} AND value < {hi}"
        ).rows
    )
    db.execute("CREATE PROB INDEX ON readings (value)")
    indexed = _masses(
        db.execute(
            f"SELECT rid, value FROM readings WHERE value > {lo} AND value < {hi}"
        ).rows
    )
    assert set(base) == set(indexed)
    for rid in base:
        assert base[rid] == pytest.approx(indexed[rid], abs=1e-12)


@settings(max_examples=20, deadline=None)
@given(
    rows=random_tables(),
    cut=st.floats(min_value=0, max_value=100),
)
def test_or_predicate_equivalence(rows, cut):
    rel, db = _build_both(rows)
    pred = Or([Comparison("value", "<", cut), Comparison("value", ">", cut + 20)])
    model_out = _masses(select(rel, pred).tuples)
    sql_out = _masses(
        db.execute(
            f"SELECT rid, value FROM readings WHERE value < {cut} OR value > {cut + 20}"
        ).rows
    )
    assert set(model_out) == set(sql_out)
    for rid in model_out:
        assert model_out[rid] == pytest.approx(sql_out[rid], abs=1e-9)
