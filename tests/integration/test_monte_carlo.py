"""Monte Carlo validation of the continuous paths.

The exact PWS enumeration only covers discrete data; here the continuous
operators (symbolic floors, grid collapses, joint products) are validated
against stochastic simulation of the underlying random variables.
"""

import numpy as np
import pytest

from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    existence_probability,
    join,
    select,
)
from repro.core.predicates import And, Comparison, col
from repro.pdf import GaussianPdf, JointGaussianPdf, UniformPdf

N_SAMPLES = 200_000
#: Monte Carlo tolerance: ~5 standard errors at p=0.5, plus grid error.
TOL = 5 * 0.5 / np.sqrt(N_SAMPLES) + 0.01


@pytest.fixture(scope="module")
def rng():
    return np.random.default_rng(20260705)


class TestSelectionMass:
    def test_range_selection_gaussian(self, rng):
        schema = ProbabilisticSchema([Column("v", DataType.REAL)], [{"v"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"v": GaussianPdf(20, 5)})
        out = select(
            rel, And([Comparison("v", ">", 18), Comparison("v", "<", 22)])
        )
        samples = rng.normal(20, np.sqrt(5), N_SAMPLES)
        mc = np.mean((samples > 18) & (samples < 22))
        assert existence_probability(out, out.tuples[0]) == pytest.approx(mc, abs=TOL)

    def test_chained_selections(self, rng):
        schema = ProbabilisticSchema([Column("v", DataType.REAL)], [{"v"}])
        rel = ProbabilisticRelation(schema)
        rel.insert(uncertain={"v": UniformPdf(0, 100)})
        out = select(select(rel, Comparison("v", ">", 30)), Comparison("v", "<", 60))
        samples = rng.uniform(0, 100, N_SAMPLES)
        mc = np.mean((samples > 30) & (samples < 60))
        assert existence_probability(out, out.tuples[0]) == pytest.approx(mc, abs=TOL)

    def test_joint_gaussian_correlated_box(self, rng):
        schema = ProbabilisticSchema(
            [Column("x", DataType.REAL), Column("y", DataType.REAL)], [{"x", "y"}]
        )
        rel = ProbabilisticRelation(schema)
        cov = [[2.0, 1.2], [1.2, 3.0]]
        rel.insert(uncertain={("x", "y"): JointGaussianPdf(("x", "y"), [1, -1], cov)})
        out = select(
            rel, And([Comparison("x", ">", 0), Comparison("y", "<", 0)])
        )
        draws = rng.multivariate_normal([1, -1], cov, N_SAMPLES)
        mc = np.mean((draws[:, 0] > 0) & (draws[:, 1] < 0))
        assert existence_probability(out, out.tuples[0]) == pytest.approx(mc, abs=TOL)

    def test_attr_vs_attr_within_joint(self, rng):
        schema = ProbabilisticSchema(
            [Column("x", DataType.REAL), Column("y", DataType.REAL)], [{"x", "y"}]
        )
        rel = ProbabilisticRelation(schema)
        cov = [[1.0, 0.5], [0.5, 1.0]]
        rel.insert(uncertain={("x", "y"): JointGaussianPdf(("x", "y"), [0, 0.5], cov)})
        out = select(rel, Comparison("x", "<", col("y")))
        draws = rng.multivariate_normal([0, 0.5], cov, N_SAMPLES)
        mc = np.mean(draws[:, 0] < draws[:, 1])
        # Non-rectangular predicate: grid collapse, wider tolerance.
        assert existence_probability(out, out.tuples[0]) == pytest.approx(
            mc, abs=TOL + 0.02
        )


class TestJoinMass:
    def test_continuous_join_probability(self, rng):
        schema_a = ProbabilisticSchema(
            [Column("ida", DataType.INT), Column("a", DataType.REAL)], [{"a"}]
        )
        ra = ProbabilisticRelation(schema_a, name="A")
        ra.insert(certain={"ida": 1}, uncertain={"a": GaussianPdf(0, 4)})
        schema_b = ProbabilisticSchema(
            [Column("idb", DataType.INT), Column("b", DataType.REAL)], [{"b"}]
        )
        rb = ProbabilisticRelation(schema_b, ra.store, name="B")
        rb.insert(certain={"idb": 2}, uncertain={"b": UniformPdf(-1, 5)})

        out = join(ra, rb, Comparison("a", "<", col("b")))
        a = rng.normal(0, 2, N_SAMPLES)
        b = rng.uniform(-1, 5, N_SAMPLES)
        mc = np.mean(a < b)
        assert existence_probability(out, out.tuples[0]) == pytest.approx(
            mc, abs=TOL + 0.02
        )

    def test_join_then_second_predicate(self, rng):
        """Dependent product over the grid-collapsed join result."""
        schema_a = ProbabilisticSchema([Column("a", DataType.REAL)], [{"a"}])
        ra = ProbabilisticRelation(schema_a, name="A")
        ra.insert(uncertain={"a": GaussianPdf(0, 1)})
        schema_b = ProbabilisticSchema([Column("b", DataType.REAL)], [{"b"}])
        rb = ProbabilisticRelation(schema_b, ra.store, name="B")
        rb.insert(uncertain={"b": GaussianPdf(0.5, 1)})

        joined = join(ra, rb, Comparison("a", "<", col("b")))
        narrowed = select(joined, Comparison("a", ">", -1))
        a = rng.normal(0, 1, N_SAMPLES)
        b = rng.normal(0.5, 1, N_SAMPLES)
        mc = np.mean((a < b) & (a > -1))
        assert existence_probability(narrowed, narrowed.tuples[0]) == pytest.approx(
            mc, abs=TOL + 0.03
        )


class TestFlooredSampling:
    def test_floored_pdf_sampling_matches_analytic_moments(self, rng):
        from repro.pdf import BoxRegion, IntervalSet

        g = GaussianPdf(0, 1)
        f = g.restrict(BoxRegion({"x": IntervalSet.between(-1.5, 0.5)}))
        samples = f.sample(rng, 50_000)["x"]
        assert samples.mean() == pytest.approx(f.mean(), abs=0.02)
        assert samples.var() == pytest.approx(f.variance(), abs=0.02)

    def test_grid_sampling_matches_grid_moments(self, rng):
        jg = JointGaussianPdf(("x", "y"), [2, 3], [[1, -0.6], [-0.6, 1]])
        grid = jg.to_grid()
        samples = grid.sample(rng, 50_000)
        assert samples["x"].mean() == pytest.approx(2.0, abs=0.05)
        assert samples["y"].mean() == pytest.approx(3.0, abs=0.05)
        corr = np.corrcoef(samples["x"], samples["y"])[0, 1]
        assert corr == pytest.approx(-0.6, abs=0.05)
