"""Targeted WAL, checkpoint, and recovery unit tests.

The crash matrix sweeps every fault point; these tests pin down the
individual protocol guarantees — frame CRCs, torn-tail truncation,
uncommitted-suffix discard, the checkpoint LSN guard, atomic snapshot
installs, group-commit windows, and recovery idempotence.
"""

from __future__ import annotations

import os
import struct

import pytest

from repro.engine import faults
from repro.engine.database import Database
from repro.engine.faults import InjectedCrash
from repro.engine.snapshot import load_database
from repro.engine.wal import scan_wal
from repro.errors import TransactionError, WalError


def _mkdb(tmp_path, **kw):
    return Database(path=str(tmp_path / "db"), **kw)


def _seed(db):
    db.execute("CREATE TABLE r (rid INT, v REAL UNCERTAIN)")
    db.execute("INSERT INTO r VALUES (1, GAUSSIAN(20, 5))")
    db.execute("INSERT INTO r VALUES (2, UNIFORM(0, 10))")


class TestBasicDurability:
    def test_reopen_restores_committed_state(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        dump = db.dump_state()
        db.close()
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()

    def test_unclosed_database_still_recovers(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        dump = db.dump_state()
        db._wal.discard()  # no close(), no final sync
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()

    def test_recovery_is_idempotent(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        db._wal.discard()
        dumps = []
        for _ in range(3):
            db2 = _mkdb(tmp_path)
            dumps.append(db2.dump_state())
            db2.close()
        assert dumps[0] == dumps[1] == dumps[2]

    def test_derived_state_rebuilt_after_recovery(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        db.execute("CREATE INDEX ON r (rid)")
        db.execute("CREATE PROB INDEX ON r (v)")
        db.execute("ANALYZE r")
        db.close()
        db2 = _mkdb(tmp_path)
        table = db2.table("r")
        assert "rid" in table.btrees and "v" in table.ptis
        assert table.statistics is not None  # stats recomputed on recovery
        assert table.synopses  # page synopses rebuilt
        rows = db2.execute("SELECT rid FROM r WHERE rid = 1").rows
        assert len(rows) == 1
        db2.close()


class TestTornAndCorruptTails:
    def test_torn_frame_is_discarded(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        dump = db.dump_state()
        db.close()
        wal_path = str(tmp_path / "db" / "wal.log")
        with open(wal_path, "r+b") as f:
            f.seek(0, os.SEEK_END)
            # a torn frame: plausible header, missing payload bytes
            f.write(struct.pack("<II", 1000, 0) + b"partial")
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()
        # recovery truncated the junk away
        _, committed, good_end = scan_wal(wal_path)
        assert os.path.getsize(wal_path) == good_end

    def test_crc_corruption_discards_suffix(self, tmp_path):
        db = _mkdb(tmp_path)
        db.execute("CREATE TABLE r (rid INT, v REAL UNCERTAIN)")
        dump_after_create = db.dump_state()
        size_after_create = os.path.getsize(str(tmp_path / "db" / "wal.log"))
        db.execute("INSERT INTO r VALUES (1, GAUSSIAN(20, 5))")
        db.close()
        wal_path = str(tmp_path / "db" / "wal.log")
        # Flip a payload byte inside the INSERT transaction's frames.
        with open(wal_path, "r+b") as f:
            f.seek(size_after_create + 12)
            byte = f.read(1)
            f.seek(size_after_create + 12)
            f.write(bytes([byte[0] ^ 0xFF]))
        db2 = _mkdb(tmp_path)
        # The corrupt transaction (and everything after) is gone; the
        # intact prefix survives.
        assert db2.dump_state() == dump_after_create
        db2.close()

    def test_uncommitted_transaction_never_reaches_the_log(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        dump = db.dump_state()
        db.begin()
        db.execute("INSERT INTO r VALUES (99, GAUSSIAN(0, 1))")
        # crash before COMMIT: the buffered ops were never appended
        db._wal.discard()
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        assert all(
            r["certain"]["rid"] != 99
            for r in db2.dump_state()["tables"]["r"]["rows"]
        )
        db2.close()


class TestTransactions:
    def test_rollback_restores_exact_state(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        dump = db.dump_state()
        db.begin()
        db.execute("INSERT INTO r VALUES (5, GAUSSIAN(1, 1))")
        db.execute("DELETE FROM r WHERE rid = 1")
        db.execute("CREATE TABLE side (x INT)")
        db.execute("ANALYZE r")
        db.rollback()
        assert db.dump_state() == dump
        db.close()

    def test_rollback_matches_oracle_for_future_statements(self, tmp_path):
        """After an abort, later inserts draw the same ids as a database
        in which the aborted transaction never ran."""
        db = _mkdb(tmp_path)
        _seed(db)
        db.begin()
        db.execute("INSERT INTO r VALUES (5, GAUSSIAN(1, 1))")
        db.rollback()
        db.execute("INSERT INTO r VALUES (6, GAUSSIAN(2, 1))")
        oracle = Database()
        _seed(oracle)
        oracle.execute("INSERT INTO r VALUES (6, GAUSSIAN(2, 1))")
        assert db.dump_state() == oracle.dump_state()
        db.close()

    def test_nested_begin_rejected(self, tmp_path):
        db = _mkdb(tmp_path)
        db.begin()
        with pytest.raises(TransactionError):
            db.begin()
        db.rollback()
        db.close()

    def test_commit_without_begin_rejected(self, tmp_path):
        db = _mkdb(tmp_path)
        with pytest.raises(TransactionError):
            db.commit()
        with pytest.raises(TransactionError):
            db.abort()
        db.close()

    def test_failed_statement_autocommit_rolls_back(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        dump = db.dump_state()
        with pytest.raises(Exception):
            # second row has a bad arity pdf -> statement fails midway
            db.execute(
                "INSERT INTO r VALUES (7, GAUSSIAN(0, 1)), "
                "(8, JOINT_GAUSSIAN([0, 0], [[1, 0], [0, 1]]))"
            )
        assert db.dump_state() == dump
        db.close()

    def test_in_memory_transactions_work_without_wal(self):
        db = Database()
        _seed(db)
        dump = db.dump_state()
        db.begin()
        db.execute("INSERT INTO r VALUES (9, GAUSSIAN(0, 1))")
        db.rollback()
        assert db.dump_state() == dump


class TestCheckpoints:
    def test_checkpoint_then_recover(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        db.checkpoint()
        db.execute("INSERT INTO r VALUES (3, GAUSSIAN(5, 1))")
        dump = db.dump_state()
        db._wal.discard()
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()

    def test_lsn_guard_skips_checkpointed_transactions(self, tmp_path):
        """A stale WAL alongside a newer checkpoint must not double-apply."""
        db = _mkdb(tmp_path)
        _seed(db)
        # Crash after the checkpoint rename but before the log reset: the
        # old WAL (with all three transactions) survives next to the new
        # checkpoint that already contains them.
        faults.arm("wal.reset.before")
        with pytest.raises(InjectedCrash):
            db.checkpoint()
        faults.disarm_all()
        db._wal.discard()
        assert os.path.exists(str(tmp_path / "db" / "data.ckpt"))
        db2 = _mkdb(tmp_path)
        rows = db2.dump_state()["tables"]["r"]["rows"]
        assert [r["certain"]["rid"] for r in rows] == [1, 2]
        db2.close()

    def test_torn_checkpoint_leaves_old_state_loadable(self, tmp_path):
        db = _mkdb(tmp_path)
        _seed(db)
        db.checkpoint()
        db.execute("INSERT INTO r VALUES (3, GAUSSIAN(5, 1))")
        dump = db.dump_state()
        faults.disarm_all()  # reset counts: the first checkpoint hit this point
        faults.arm("checkpoint.write.torn")
        with pytest.raises(InjectedCrash):
            db.checkpoint()
        faults.disarm_all()
        db._wal.discard()
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()

    def test_checkpoint_every_triggers_automatically(self, tmp_path):
        db = _mkdb(tmp_path, checkpoint_every=2)
        _seed(db)  # 3 commits -> at least one checkpoint
        assert os.path.exists(str(tmp_path / "db" / "data.ckpt"))
        dump = db.dump_state()
        db._wal.discard()
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()

    def test_checkpoint_requires_durable_database(self):
        db = Database()
        with pytest.raises(WalError):
            db.checkpoint()


class TestGroupCommit:
    def test_group_commit_recovers_flushed_prefix(self, tmp_path):
        db = _mkdb(tmp_path, group_commit=8)
        _seed(db)
        dump = db.dump_state()
        db._wal.discard()
        # Unbuffered appends reached the OS even without fsync; in this
        # simulation (no page-cache loss) the full prefix recovers.
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()

    def test_close_syncs_pending_group(self, tmp_path):
        db = _mkdb(tmp_path, group_commit=64)
        _seed(db)
        dump = db.dump_state()
        db.close()
        db2 = _mkdb(tmp_path)
        assert db2.dump_state() == dump
        db2.close()

    def test_group_commit_batches_fsyncs(self, tmp_path):
        faults.disarm_all()
        db = _mkdb(tmp_path, group_commit=4)
        _seed(db)  # 3 commits: below the window
        db.execute("INSERT INTO r VALUES (3, GAUSSIAN(1, 1))")  # 4th commit
        counts = faults.INJECTOR.counts()
        assert counts.get("wal.fsync.after", 0) == 1
        assert counts.get("wal.append.after", 0) == 4
        db.close()


class TestStoreLineageOff:
    def test_recovery_without_lineage_matches_live(self, tmp_path):
        db = Database(path=str(tmp_path / "db"), store_lineage=False)
        _seed(db)
        db.execute("DELETE FROM r WHERE rid = 1")
        dump = db.dump_state()
        db._wal.discard()
        db2 = Database(path=str(tmp_path / "db"), store_lineage=False)
        assert db2.dump_state() == dump
        db2.close()


class TestAtomicSnapshot:
    """Satellite: snapshots install via write-temp-then-os.replace."""

    def test_crash_mid_snapshot_preserves_old_snapshot(self, tmp_path):
        db = Database()
        _seed(db)
        snap = str(tmp_path / "data.snap")
        db.save(snap)
        old_dump = Database.open(snap).dump_state()
        db.execute("INSERT INTO r VALUES (3, GAUSSIAN(9, 1))")
        faults.disarm_all()  # reset counts: the first save hit this point
        faults.arm("snapshot.write.torn")
        with pytest.raises(InjectedCrash):
            db.save(snap)
        faults.disarm_all()
        # The old snapshot file is untouched and still loads.
        reloaded = load_database(snap)
        assert reloaded.dump_state() == old_dump

    def test_crash_before_rename_preserves_old_snapshot(self, tmp_path):
        db = Database()
        _seed(db)
        snap = str(tmp_path / "data.snap")
        db.save(snap)
        old_dump = Database.open(snap).dump_state()
        db.execute("INSERT INTO r VALUES (3, GAUSSIAN(9, 1))")
        faults.disarm_all()  # reset counts: the first save hit this point
        faults.arm("snapshot.rename.before")
        with pytest.raises(InjectedCrash):
            db.save(snap)
        faults.disarm_all()
        assert load_database(snap).dump_state() == old_dump
        # the temp file may linger; a retry then succeeds cleanly
        db.save(snap)
        assert load_database(snap).dump_state() == db.dump_state()

    def test_snapshot_roundtrip_dump_identical(self, tmp_path):
        db = Database()
        _seed(db)
        db.execute("CREATE INDEX ON r (rid)")
        snap = str(tmp_path / "data.snap")
        db.save(snap)
        assert Database.open(snap).dump_state() == db.dump_state()
