"""Hypothesis state machine: random workloads, random crashes, exact recovery.

A durable database and an in-memory oracle execute the same randomly
generated statement stream.  Statements inside an explicit transaction are
buffered and only applied to the oracle at COMMIT (dropped at ROLLBACK), so
the oracle always holds *exactly the committed prefix*.  At any step the
machine may kill the durable database — either cleanly (discard the WAL
handle unsynced) or by arming a torn-append fault mid-statement — reopen
it, and demand the recovered dump be bit-identical to the oracle's.
"""

from __future__ import annotations

import shutil
import tempfile

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.engine import faults
from repro.engine.database import Database
from repro.engine.faults import InjectedCrash

_PDF_SQL = st.sampled_from(
    [
        "GAUSSIAN(20, 5)",
        "GAUSSIAN(-3, 0.5)",
        "UNIFORM(0, 10)",
        "UNIFORM(5, 6)",
        "DISCRETE(1:0.4, 2:0.6)",
        "DISCRETE(7:1.0)",
        "HISTOGRAM(0, 10, 20 ; 0.4, 0.6)",
    ]
)


class CrashRecoveryMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.dir = tempfile.mkdtemp(prefix="repro-sm-")
        faults.disarm_all()
        self.db = Database(path=self.dir + "/db", group_commit=1)
        self.oracle = Database()
        self.in_txn = False
        self.txn_buffer = []
        self.next_key = 0

    # -- helpers -------------------------------------------------------------

    def _run(self, sql: str) -> None:
        """Execute on the durable db; mirror to the oracle when committed."""
        self.db.execute(sql)
        if self.in_txn:
            self.txn_buffer.append(sql)
        else:
            self.oracle.execute(sql)

    # -- schema --------------------------------------------------------------

    @initialize()
    def create_table(self):
        self._run("CREATE TABLE m (k INT, v REAL UNCERTAIN)")

    # -- mutations -----------------------------------------------------------

    @rule(pdf=_PDF_SQL)
    def insert(self, pdf):
        self.next_key += 1
        self._run(f"INSERT INTO m VALUES ({self.next_key}, {pdf})")

    @rule(data=st.data())
    def delete(self, data):
        if self.next_key == 0:
            return
        key = data.draw(st.integers(1, self.next_key), label="delete key")
        self._run(f"DELETE FROM m WHERE k = {key}")

    @rule()
    def analyze(self):
        self._run("ANALYZE m")

    # -- transactions --------------------------------------------------------

    @precondition(lambda self: not self.in_txn)
    @rule()
    def begin(self):
        self.db.begin()
        self.in_txn = True
        self.txn_buffer = []

    @precondition(lambda self: self.in_txn)
    @rule()
    def commit(self):
        self.db.commit()
        self.in_txn = False
        for sql in self.txn_buffer:
            self.oracle.execute(sql)
        self.txn_buffer = []

    @precondition(lambda self: self.in_txn)
    @rule()
    def rollback(self):
        self.db.abort()
        self.in_txn = False
        self.txn_buffer = []

    # -- durability events ---------------------------------------------------

    @precondition(lambda self: not self.in_txn)
    @rule()
    def checkpoint(self):
        self.db.checkpoint()

    @precondition(lambda self: not self.in_txn)
    @rule()
    def crash_and_recover(self):
        """Process death between statements: nothing in flight is lost."""
        self.db._wal.discard()
        self.db = Database(path=self.dir + "/db", group_commit=1)
        assert self.db.dump_state() == self.oracle.dump_state()

    @precondition(lambda self: not self.in_txn)
    @rule(pdf=_PDF_SQL)
    def crash_mid_append(self, pdf):
        """Torn log append mid-INSERT: the statement must vanish entirely."""
        faults.disarm_all()
        faults.arm("wal.append.torn")
        try:
            self.db.execute(f"INSERT INTO m VALUES (0, {pdf})")
        except InjectedCrash:
            pass
        else:
            raise AssertionError("armed torn append did not fire")
        finally:
            faults.disarm_all()
        self.db._wal.discard()
        self.db = Database(path=self.dir + "/db", group_commit=1)
        assert self.db.dump_state() == self.oracle.dump_state()

    # -- invariant -----------------------------------------------------------

    @invariant()
    def durable_matches_oracle_outside_txn(self):
        if not self.in_txn:
            assert self.db.dump_state() == self.oracle.dump_state()

    def teardown(self):
        faults.disarm_all()
        try:
            self.db.close()
        except Exception:
            pass
        shutil.rmtree(self.dir, ignore_errors=True)


CrashRecoveryMachine.TestCase.settings = settings(
    max_examples=12, stateful_step_count=25, deadline=None
)
TestCrashRecovery = CrashRecoveryMachine.TestCase
