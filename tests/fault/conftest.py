"""Fixtures for the crash-safety suite.

Every test starts and ends with the process-global fault injector
disarmed, and the active ``REPRO_FAULT_SEED`` is echoed once per session
so a failing matrix cell can be replayed bit-for-bit by exporting the
same seed.
"""

from __future__ import annotations

import pytest

from repro.engine import faults


def pytest_report_header(config):
    return f"REPRO_FAULT_SEED={faults.fault_seed()}"


@pytest.fixture(autouse=True)
def clean_injector():
    faults.disarm_all()
    yield
    faults.disarm_all()
