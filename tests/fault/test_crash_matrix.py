"""The crash matrix: inject a crash at every fault point x hit, recover,
and demand the committed-prefix oracle's exact state.

For each cell the workload runs against a durable database with a fault
armed; the injected crash abandons the process state (the WAL handle is
discarded unsynced, nothing is closed), recovery reopens the directory,
and the recovered dump must equal an *admissible* oracle prefix:

* ``oracle[k]`` — the units acknowledged before the crash, or
* ``oracle[k + 1]`` — additionally the in-flight unit, when its log
  append survived (e.g. a crash between the append and the commit
  acknowledgement).

Equality is bitwise over :meth:`Database.dump_state` — certain values,
pdf encodings, dependency sets, lineage, index definitions, and the full
history store.  Anything of an uncommitted suffix surviving recovery, or
anything committed getting lost, fails the cell.
"""

from __future__ import annotations

import pytest

from repro.engine import faults
from repro.engine.database import Database
from repro.engine.faults import FAULT_POINTS, InjectedCrash

# The full matrix (every fault point x first/middle/last hit) is minutes of
# work; tier-1 deselects it and the dedicated slow CI job runs it.
pytestmark = pytest.mark.slow

#: The workload, as committed units.  Single-statement units autocommit;
#: the multi-statement unit runs as one explicit transaction.  "SAVE"
#: snapshots to a side file (exercising the snapshot fault points).
WORKLOAD = [
    ["CREATE TABLE sensors (sid INT, temp REAL UNCERTAIN)"],
    ["INSERT INTO sensors VALUES (1, GAUSSIAN(20, 5))"],
    ["INSERT INTO sensors VALUES (2, UNIFORM(0, 10)), (3, DISCRETE(1:0.4, 2:0.6))"],
    ["CREATE TABLE objects (oid INT, x REAL, y REAL, DEPENDENCY (x, y))"],
    ["INSERT INTO objects VALUES (10, JOINT_GAUSSIAN([0, 0], [[1, 0.5], [0.5, 1]]))"],
    ["CREATE INDEX ON sensors (sid)"],
    ["CREATE PROB INDEX ON sensors (temp)"],
    [
        "INSERT INTO sensors VALUES (4, GAUSSIAN(30, 2))",
        "INSERT INTO objects VALUES (11, JOINT_DISCRETE((4, 5): 0.9, (2, 3): 0.1))",
        "DELETE FROM sensors WHERE sid = 2",
    ],
    ["ANALYZE sensors"],
    ["CREATE TABLE hot AS SELECT sid, temp FROM sensors WHERE PROB(temp > 15) >= 0.5"],
    ["SAVE"],
    ["UPDATE sensors SET temp = GAUSSIAN(21, 1) WHERE sid = 1"],
    ["CREATE SPATIAL INDEX ON objects (x, y)"],
    ["DROP TABLE hot"],
    ["DELETE FROM objects WHERE oid = 10"],
]


def run_workload(db: Database, snap_path: str, upto: int = len(WORKLOAD)) -> int:
    """Execute workload units; returns the number fully acknowledged.

    An :class:`InjectedCrash` mid-unit leaves the returned count out of
    reach — callers catching it read the progress from ``db`` instead —
    so progress is tracked on the database object itself.
    """
    db.units_acked = 0
    for unit in WORKLOAD[:upto]:
        if unit == ["SAVE"]:
            db.save(snap_path)
        elif len(unit) == 1:
            db.execute(unit[0])
        else:
            db.begin()
            for sql in unit:
                db.execute(sql)
            db.commit()
        db.units_acked += 1
    return db.units_acked


@pytest.fixture(scope="module")
def oracle_dumps(tmp_path_factory):
    """dump_state() after each committed prefix of the workload, 0..N."""
    faults.disarm_all()
    snap = str(tmp_path_factory.mktemp("oracle") / "side.snap")
    dumps = []
    for k in range(len(WORKLOAD) + 1):
        db = Database()
        run_workload(db, snap, upto=k)
        dumps.append(db.dump_state())
    return dumps


_COUNTS = {}


@pytest.fixture(scope="module", autouse=True)
def probe_counts(tmp_path_factory):
    """One fault-free durable run, recording how often each point fires."""
    faults.disarm_all()
    base = tmp_path_factory.mktemp("probe")
    db = Database(path=str(base / "db"), group_commit=1, checkpoint_every=5)
    run_workload(db, str(base / "side.snap"))
    db.close()
    _COUNTS.update(faults.INJECTOR.counts())
    faults.disarm_all()


def _matrix_cells():
    """(point, which-hit) cells: first, middle, and last hit per point."""
    cells = []
    for point in FAULT_POINTS:
        cells.append((point, "first"))
        cells.append((point, "middle"))
        cells.append((point, "last"))
    return cells


def _resolve_hit(point: str, which: str):
    total = _COUNTS.get(point, 0)
    if total == 0:
        return None
    hit = {"first": 1, "middle": total // 2 + 1, "last": total}[which]
    if which == "middle" and hit in (1, total) and total > 1:
        return None  # coincides with first/last; skip the duplicate cell
    if which in ("middle", "last") and total == 1:
        return None
    return hit


def test_matrix_covers_required_points():
    """The acceptance bar: >= 12 fault points exercised by the workload."""
    reached = {p for p, n in _COUNTS.items() if n > 0}
    assert len(reached) >= 12, f"only {sorted(reached)} reached"
    assert len(FAULT_POINTS) >= 12


@pytest.mark.parametrize("point,which", _matrix_cells())
def test_crash_and_recover(point, which, oracle_dumps, tmp_path):
    hit = _resolve_hit(point, which)
    if hit is None:
        pytest.skip(f"no distinct {which!r} hit for {point!r} in this workload")

    path = str(tmp_path / "db")
    snap = str(tmp_path / "side.snap")
    db = Database(path=path, group_commit=1, checkpoint_every=5)
    faults.arm(point, hit)
    crashed = False
    try:
        run_workload(db, snap)
    except InjectedCrash as boom:
        crashed = True
        assert boom.point == point
    finally:
        faults.disarm_all()
        if db._wal is not None:
            db._wal.discard()  # simulated process death: nothing syncs
    acked = db.units_acked

    recovered = Database(path=path)
    try:
        dump = recovered.dump_state()
    finally:
        recovered.close()

    if not crashed:
        # The armed hit was only reached by close(); recovery is still exact.
        assert dump == oracle_dumps[len(WORKLOAD)]
        return

    # The recovered state must be some committed prefix of the workload
    # (prefix-consistency) *and* the right one: every acknowledged unit
    # recovered, at most the one in-flight unit beyond.
    matches = [k for k, d in enumerate(oracle_dumps) if d == dump]
    assert matches, f"recovered state matches no committed prefix ({point}@{hit})"
    assert any(k in (acked, acked + 1) for k in matches), (
        f"{point}@{hit}: recovered prefix(es) {matches}, but {acked} units "
        f"were acknowledged before the crash"
    )
