"""Property test: the batch pipeline ≡ tuple-at-a-time execution.

For random small databases and representative plan shapes (select, project,
join, PROB threshold), running ``plan.batches(size)`` and flattening must
produce the same tuples, in the same order, with probabilities within 1e-12
of the scalar ``iter(plan)`` results.  (They are in fact bitwise identical —
the looser bound is the acceptance criterion.)
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Column,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
)
from repro.core.operations import PDF_OP_CACHE
from repro.core.predicates import And, Comparison
from repro.core.threshold import probability_of
from repro.engine.executor import (
    Filter,
    NestedLoopJoin,
    ProbFilter,
    Project,
    RelationScan,
    ThresholdFilter,
)
from repro.pdf import (
    BoxRegion,
    DiscretePdf,
    GaussianPdf,
    Interval,
    IntervalSet,
    UniformPdf,
)

BATCH_SIZES = (1, 3, 256)


@st.composite
def pdf_values(draw, attr):
    kind = draw(st.integers(0, 4))
    if kind == 0:
        return None  # NULL pdf
    mu = draw(st.floats(-10, 10))
    if kind == 1:
        return GaussianPdf(mu, draw(st.floats(0.1, 5)), attr=attr)
    if kind == 2:
        lo = draw(st.floats(-10, 10))
        return UniformPdf(lo, lo + draw(st.floats(0.5, 10)), attr=attr)
    if kind == 3:
        g = GaussianPdf(mu, draw(st.floats(0.1, 5)), attr=attr)
        cut = draw(st.floats(-12, 12))
        return g.restrict(BoxRegion({attr: IntervalSet([Interval(cut, float("inf"))])}))
    return DiscretePdf({-1.0: 0.25, 0.0: 0.25, 1.0: 0.5}, attr=attr)


@st.composite
def relations(draw, attr="v", name="r", id_col="sid", min_size=0, max_size=12):
    schema = ProbabilisticSchema(
        [Column(id_col, DataType.INT), Column(attr, DataType.REAL)], [{attr}]
    )
    rel = ProbabilisticRelation(schema, name=name)
    n = draw(st.integers(min_size, max_size))
    for i in range(n):
        rel.insert(certain={id_col: i}, uncertain={attr: draw(pdf_values(attr))})
    return rel


def run_both(make_plan):
    """Scalar rows and, per batch size, the flattened batch rows."""
    PDF_OP_CACHE.reset()
    scalar = list(make_plan())
    out = {}
    for size in BATCH_SIZES:
        PDF_OP_CACHE.reset()
        out[size] = [t for b in make_plan().batches(size) for t in b.tuples]
    return scalar, out


def assert_rows_equal(scalar, batch, store, compare_ids=True):
    assert len(scalar) == len(batch)
    for a, b in zip(scalar, batch):
        if compare_ids:
            assert a.tuple_id == b.tuple_id
        assert a.certain == b.certain
        assert set(a.pdfs) == set(b.pdfs)
        for dep in a.pdfs:
            pa, pb = a.pdfs[dep], b.pdfs[dep]
            if pa is None:
                assert pb is None
                continue
            assert pb is not None
            assert set(pa.attrs) == set(pb.attrs)
            ma, mb = pa.mass(), pb.mass()
            assert math.isfinite(ma) and math.isfinite(mb)
            assert abs(ma - mb) <= 1e-12
        pa = probability_of(a, store, None)
        pb = probability_of(b, store, None)
        assert abs(pa - pb) <= 1e-12


@settings(max_examples=30, deadline=None)
@given(rel=relations(), lo=st.floats(-8, 8), width=st.floats(0.5, 10))
def test_filter_batch_equivalence(rel, lo, width):
    pred = And([Comparison("v", ">", lo), Comparison("v", "<", lo + width)])
    scalar, batches = run_both(lambda: Filter(RelationScan(rel), pred, rel.store))
    for size, rows in batches.items():
        assert_rows_equal(scalar, rows, rel.store)


@settings(max_examples=20, deadline=None)
@given(rel=relations(), lo=st.floats(-8, 8))
def test_project_batch_equivalence(rel, lo):
    def make_plan():
        return Project(Filter(RelationScan(rel), Comparison("v", ">", lo), rel.store), ["sid"])

    scalar, batches = run_both(make_plan)
    for size, rows in batches.items():
        assert_rows_equal(scalar, rows, rel.store)


@settings(max_examples=15, deadline=None)
@given(
    left=relations(attr="a", name="l", id_col="lid", max_size=6),
    right=relations(attr="b", name="r", id_col="rid", max_size=6),
    lo=st.floats(-8, 8),
)
def test_join_batch_equivalence(left, right, lo):
    # Shared store so new_tuple_id draws from one counter in both runs.
    right_in_left_store = ProbabilisticRelation(
        right.schema, store=left.store, name="r2"
    )
    for t in right.tuples:
        right_in_left_store.insert(
            certain=dict(t.certain),
            uncertain={"b": t.pdfs[frozenset({"b"})]},
        )
    pred = Comparison("a", ">", lo)

    def make_plan():
        return NestedLoopJoin(
            RelationScan(left),
            RelationScan(right_in_left_store),
            pred,
            left.store,
        )

    scalar, batches = run_both(make_plan)
    for size, rows in batches.items():
        # Join output tuple ids come from a fresh counter draw per pair, so
        # they differ between runs; everything else must match.
        assert_rows_equal(scalar, rows, left.store, compare_ids=False)


@settings(max_examples=20, deadline=None)
@given(
    rel=relations(),
    lo=st.floats(-8, 8),
    p=st.floats(0.05, 0.95),
    op=st.sampled_from([">", ">=", "<", "<="]),
)
def test_prob_filter_batch_equivalence(rel, lo, p, op):
    def make_plan():
        return ProbFilter(RelationScan(rel), Comparison("v", ">", lo), op, p, rel.store)

    scalar, batches = run_both(make_plan)
    for size, rows in batches.items():
        assert_rows_equal(scalar, rows, rel.store)


@settings(max_examples=20, deadline=None)
@given(rel=relations(), p=st.floats(0.05, 0.95))
def test_threshold_filter_batch_equivalence(rel, p):
    def make_plan():
        return ThresholdFilter(RelationScan(rel), ["v"], ">", p, rel.store)

    scalar, batches = run_both(make_plan)
    for size, rows in batches.items():
        assert_rows_equal(scalar, rows, rel.store)
