"""End-to-end SQL tests through the Database facade."""

import pytest

from repro import Database
from repro.core.model import ModelConfig
from repro.errors import CatalogError, QueryError, SqlBindError
from repro.pdf import DiscretePdf, FlooredPdf, GaussianPdf


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    db.execute(
        "INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), "
        "(3, GAUSSIAN(13, 1))"
    )
    return db


class TestDdlDml:
    def test_create_insert_select(self, db):
        result = db.execute("SELECT * FROM readings")
        assert result.rowcount == 3
        assert result.columns == ["rid", "value"]

    def test_insert_named_columns(self, db):
        db.execute("INSERT INTO readings (rid, value) VALUES (4, GAUSSIAN(1, 1))")
        assert db.execute("SELECT * FROM readings").rowcount == 4

    def test_insert_null_pdf(self, db):
        db.execute("INSERT INTO readings VALUES (5, NULL)")
        rows = db.execute("SELECT * FROM readings").to_dicts()
        assert rows[-1]["value"] is None

    def test_plain_number_into_uncertain_becomes_point_mass(self, db):
        db.execute("INSERT INTO readings VALUES (6, 42)")
        rows = db.execute("SELECT value FROM readings WHERE rid = 6" .replace("rid", "rid"))
        # rid was projected away; check through a full select
        rows = db.execute("SELECT * FROM readings").to_dicts()
        point = [r for r in rows if r["rid"] == 6][0]["value"]
        assert isinstance(point, DiscretePdf)
        assert float(point.pdf_at(42)) == pytest.approx(1.0)

    def test_delete(self, db):
        out = db.execute("DELETE FROM readings WHERE rid = 2")
        assert out.rowcount == 1
        assert db.execute("SELECT * FROM readings").rowcount == 2

    def test_delete_uncertain_predicate_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("DELETE FROM readings WHERE value > 5")

    def test_drop(self, db):
        db.execute("DROP TABLE readings")
        with pytest.raises(CatalogError):
            db.execute("SELECT * FROM readings")

    def test_joint_dependency_insert(self):
        db = Database()
        db.execute(
            "CREATE TABLE objects (oid INT, x REAL, y REAL, DEPENDENCY (x, y))"
        )
        db.execute(
            "INSERT INTO objects VALUES (1, JOINT_GAUSSIAN([0, 0], [[1, 0.5], [0.5, 1]]))"
        )
        rows = db.execute("SELECT * FROM objects").rows
        assert set(rows[0].pdfs[frozenset({"x", "y"})].attrs) == {"x", "y"}

    def test_pdf_into_certain_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("INSERT INTO readings VALUES (GAUSSIAN(1, 1), GAUSSIAN(1, 1))")


class TestSelection:
    def test_range_query(self, db):
        rows = db.execute(
            "SELECT rid FROM readings WHERE value > 18 AND value < 22"
        ).to_dicts()
        assert [r["rid"] for r in rows] == [1, 2]

    def test_floors_are_symbolic(self, db):
        rows = db.execute("SELECT * FROM readings WHERE value > 18").rows
        assert isinstance(rows[0].pdf_of_attr("value"), FlooredPdf)

    def test_certain_filter(self, db):
        assert db.execute("SELECT * FROM readings WHERE rid >= 2").rowcount == 2

    def test_prob_threshold(self, db):
        rows = db.execute(
            "SELECT rid FROM readings WHERE PROB(value > 18 AND value < 22) >= 0.5"
        ).to_dicts()
        assert [r["rid"] for r in rows] == [1]

    def test_prob_star(self, db):
        # All base tuples exist with probability 1.
        assert db.execute("SELECT rid FROM readings WHERE PROB(*) >= 1").rowcount == 3

    def test_or_predicate(self, db):
        rows = db.execute(
            "SELECT rid FROM readings WHERE rid = 1 OR rid = 3"
        ).to_dicts()
        assert [r["rid"] for r in rows] == [1, 3]

    def test_order_and_limit(self, db):
        rows = db.execute(
            "SELECT rid FROM readings ORDER BY rid DESC LIMIT 2"
        ).to_dicts()
        assert [r["rid"] for r in rows] == [3, 2]


class TestJoins:
    @pytest.fixture
    def db2(self, db):
        db.execute("CREATE TABLE sensors (sid INT, label TEXT)")
        db.execute("INSERT INTO sensors VALUES (1, 'hall'), (2, 'lab'), (3, 'roof')")
        return db

    def test_equi_join(self, db2):
        rows = db2.execute(
            "SELECT s.label, r.rid FROM sensors s, readings r WHERE s.sid = r.rid"
        ).to_dicts()
        assert len(rows) == 3

    def test_join_with_uncertain_filter(self, db2):
        rows = db2.execute(
            "SELECT s.label FROM sensors s, readings r "
            "WHERE s.sid = r.rid AND r.value > 20"
        ).rows
        labels = [t.certain["s.label"] for t in rows]
        assert labels == ["hall", "lab"]

    def test_ambiguous_column_rejected(self, db2):
        db2.execute("CREATE TABLE more (rid INT)")
        with pytest.raises(SqlBindError):
            db2.execute("SELECT rid FROM readings, more")

    def test_unknown_alias_rejected(self, db2):
        with pytest.raises(SqlBindError):
            db2.execute("SELECT zzz.label FROM sensors s")


class TestAggregatesSql:
    def test_count(self, db):
        pdf = db.execute("SELECT COUNT(*) FROM readings").scalar()
        assert float(pdf.pdf_at(3)) == pytest.approx(1.0)

    def test_uncertain_count_after_selection(self, db):
        pdf = db.execute(
            "SELECT COUNT(*) FROM readings WHERE value > 18 AND value < 22"
        ).scalar()
        # The count is genuinely a distribution now.
        assert pdf.mass() == pytest.approx(1.0)
        assert pdf.variance() > 0

    def test_expected(self, db):
        value = db.execute("SELECT EXPECTED(value) FROM readings").scalar()
        assert value == pytest.approx(58.0)

    def test_sum(self, db):
        pdf = db.execute("SELECT SUM(value) FROM readings").scalar()
        assert pdf.mean() == pytest.approx(58.0)
        assert pdf.variance() == pytest.approx(10.0)

    def test_aggregate_alias(self, db):
        result = db.execute("SELECT COUNT(*) AS n FROM readings")
        assert result.columns == ["n"]

    def test_mixed_agg_and_plain_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT rid, COUNT(*) FROM readings")


class TestIndexedQueries:
    def test_btree_used(self, db):
        db.execute("CREATE INDEX ON readings (rid)")
        plan = db.execute("EXPLAIN SELECT rid FROM readings WHERE rid >= 2").plan_text
        assert "BTreeScan" in plan
        rows = db.execute("SELECT rid FROM readings WHERE rid >= 2").to_dicts()
        assert [r["rid"] for r in rows] == [2, 3]

    def test_pti_used(self, db):
        db.execute("CREATE PROB INDEX ON readings (value)")
        plan = db.execute(
            "EXPLAIN SELECT rid FROM readings WHERE value > 18 AND value < 22"
        ).plan_text
        assert "PtiScan" in plan

    def test_pti_threshold_pushdown(self, db):
        db.execute("CREATE PROB INDEX ON readings (value)")
        plan = db.execute(
            "EXPLAIN SELECT rid FROM readings WHERE PROB(value > 18 AND value < 22) >= 0.5"
        ).plan_text
        assert "PtiScan" in plan and "0.5" in plan

    def test_indexed_and_unindexed_agree(self, db):
        base = db.execute(
            "SELECT rid FROM readings WHERE value > 18 AND value < 22"
        ).to_dicts()
        db.execute("CREATE PROB INDEX ON readings (value)")
        indexed = db.execute(
            "SELECT rid FROM readings WHERE value > 18 AND value < 22"
        ).to_dicts()
        assert sorted(r["rid"] for r in base) == sorted(r["rid"] for r in indexed)


class TestResultApi:
    def test_pretty(self, db):
        text = db.execute("SELECT * FROM readings").pretty()
        assert "rid" in text and "GAUSSIAN(20, 5)" in text

    def test_scalar_shape_check(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT * FROM readings").scalar()

    def test_explain_has_no_rows(self, db):
        result = db.execute("EXPLAIN SELECT * FROM readings")
        assert result.rows == [] and result.plan_text

    def test_io_counters_accessible(self, db):
        db.reset_io_stats()
        db.execute("SELECT * FROM readings")
        assert db.buffer_stats.logical_reads > 0

    def test_categorical_sql_roundtrip(self):
        db = Database()
        db.execute("CREATE TABLE ann (tid INT, label TEXT UNCERTAIN)")
        db.execute(
            "INSERT INTO ann VALUES (1, CATEGORICAL('person': 0.7, 'place': 0.3))"
        )
        rows = db.execute("SELECT tid FROM ann WHERE label = 'person'").to_dicts()
        assert [r["tid"] for r in rows] == [1]
        assert db.execute("SELECT tid FROM ann WHERE label = 'zebra'").rowcount == 0
