"""Per-row scalarisation tests: MEAN / VARIANCE / MASS in the SELECT list."""

import pytest

from repro import Database
from repro.errors import QueryError


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    db.execute(
        "INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, UNIFORM(0, 10)), "
        "(3, NULL)"
    )
    return db


class TestScalarFunctions:
    def test_mean(self, db):
        rows = db.execute("SELECT rid, MEAN(value) FROM readings").to_dicts()
        by_rid = {r["rid"]: r["mean_value"] for r in rows}
        assert by_rid[1] == pytest.approx(20.0)
        assert by_rid[2] == pytest.approx(5.0)
        assert by_rid[3] is None

    def test_variance(self, db):
        rows = db.execute("SELECT rid, VARIANCE(value) FROM readings").to_dicts()
        by_rid = {r["rid"]: r["variance_value"] for r in rows}
        assert by_rid[1] == pytest.approx(5.0)
        assert by_rid[2] == pytest.approx(100 / 12)

    def test_mass_after_selection(self, db):
        rows = db.execute(
            "SELECT rid, MASS(value) FROM readings WHERE value > 5"
        ).to_dicts()
        by_rid = {r["rid"]: r["mass_value"] for r in rows}
        assert by_rid[2] == pytest.approx(0.5)
        assert by_rid[1] == pytest.approx(1.0, abs=1e-9)

    def test_alias(self, db):
        result = db.execute("SELECT MEAN(value) AS mu FROM readings")
        assert result.columns == ["mu"]

    def test_mixed_with_columns_and_star(self, db):
        result = db.execute("SELECT *, MASS(value) FROM readings")
        assert result.columns == ["rid", "value", "mass_value"]

    def test_output_is_certain(self, db):
        result = db.execute("SELECT rid, MEAN(value) FROM readings")
        assert not result.schema.is_uncertain("mean_value")

    def test_scalar_on_certain_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT MEAN(rid) FROM readings")

    def test_scalar_with_aggregate_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT MEAN(value), COUNT(*) FROM readings")

    def test_scalar_in_join(self, db):
        db.execute("CREATE TABLE names (nid INT, label TEXT)")
        db.execute("INSERT INTO names VALUES (1, 'a'), (2, 'b')")
        rows = db.execute(
            "SELECT n.label, MEAN(r.value) FROM names n, readings r "
            "WHERE n.nid = r.rid"
        ).to_dicts()
        by_label = {r["n.label"]: r["mean_r_value"] for r in rows}
        assert by_label["a"] == pytest.approx(20.0)

    def test_joint_attribute_scalarizes_marginal(self):
        db = Database()
        db.execute("CREATE TABLE o (oid INT, x REAL, y REAL, DEPENDENCY (x, y))")
        db.execute(
            "INSERT INTO o VALUES (1, JOINT_GAUSSIAN([3, 7], [[1, 0.5], [0.5, 2]]))"
        )
        rows = db.execute("SELECT MEAN(x), MEAN(y) FROM o").to_dicts()
        assert rows[0]["mean_x"] == pytest.approx(3.0)
        assert rows[0]["mean_y"] == pytest.approx(7.0)
