"""Property test: morsel-driven parallel execution ≡ serial execution.

For random small databases and representative plan shapes (select, project,
join, PROB threshold — including NULL and floored partial pdfs), running the
plan through :func:`execute_plan` with ``workers in (2, 4)`` must produce
the same tuples, in the same order, with the same pdfs and existence
probabilities as both the serial batched pipeline and scalar
tuple-at-a-time iteration.  A tiny ``morsel_size`` forces real multi-morsel
fan-out even on the small hypothesis relations.

Also covers satellite concerns: the ``batch_size <= 1`` scalar fallback
(the batch protocol must not be entered at all) and a process-backend
smoke run.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ProbabilisticRelation
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.core.predicates import And, Comparison
from repro.engine.executor import (
    Filter,
    Gather,
    HashJoin,
    NestedLoopJoin,
    ParallelHashJoin,
    ParallelNestedLoopJoin,
    ProbFilter,
    Project,
    RelationScan,
    last_run_stats,
    parallelize_plan,
    reset_run_stats,
)
from repro.engine.sql.planner import execute_plan

from .test_batch_equivalence import assert_rows_equal, pdf_values, relations

WORKER_COUNTS = (2, 4)


def _parallel_config(workers, backend="thread"):
    # morsel_size=3 slices even the tiny hypothesis relations into several
    # morsels, so the Exchange/Gather machinery actually fans out.
    return ModelConfig(
        batch_size=64, workers=workers, parallel_backend=backend, morsel_size=3
    )


def run_modes(make_plan, backends=("thread",)):
    """Rows from scalar, serial-batched, and each parallel configuration."""
    PDF_OP_CACHE.reset()
    scalar = list(make_plan())
    PDF_OP_CACHE.reset()
    serial = execute_plan(make_plan(), ModelConfig(batch_size=64))
    parallel = {}
    for workers in WORKER_COUNTS:
        for backend in backends:
            PDF_OP_CACHE.reset()
            parallel[(workers, backend)] = execute_plan(
                make_plan(), _parallel_config(workers, backend)
            )
    return scalar, serial, parallel


@settings(max_examples=25, deadline=None)
@given(rel=relations(), lo=st.floats(-8, 8), width=st.floats(0.5, 10))
def test_filter_parallel_equivalence(rel, lo, width):
    pred = And([Comparison("v", ">", lo), Comparison("v", "<", lo + width)])
    scalar, serial, parallel = run_modes(
        lambda: Filter(RelationScan(rel), pred, rel.store)
    )
    assert_rows_equal(scalar, serial, rel.store)
    for rows in parallel.values():
        # Scan chains are order- and id-preserving: exact match.
        assert_rows_equal(scalar, rows, rel.store)


@settings(max_examples=20, deadline=None)
@given(rel=relations(), lo=st.floats(-8, 8))
def test_project_parallel_equivalence(rel, lo):
    def make_plan():
        return Project(
            Filter(RelationScan(rel), Comparison("v", ">", lo), rel.store), ["sid"]
        )

    scalar, serial, parallel = run_modes(make_plan)
    assert_rows_equal(scalar, serial, rel.store)
    for rows in parallel.values():
        assert_rows_equal(scalar, rows, rel.store)


@settings(max_examples=20, deadline=None)
@given(
    rel=relations(),
    lo=st.floats(-8, 8),
    p=st.floats(0.05, 0.95),
    op=st.sampled_from([">", ">=", "<", "<="]),
)
def test_prob_filter_parallel_equivalence(rel, lo, p, op):
    def make_plan():
        return ProbFilter(
            RelationScan(rel), Comparison("v", ">", lo), op, p, rel.store
        )

    scalar, serial, parallel = run_modes(make_plan)
    assert_rows_equal(scalar, serial, rel.store)
    for rows in parallel.values():
        assert_rows_equal(scalar, rows, rel.store)


def _shared_store_copy(right, left):
    copy = ProbabilisticRelation(right.schema, store=left.store, name="r2")
    for t in right.tuples:
        copy.insert(
            certain=dict(t.certain),
            uncertain={"b": t.pdfs[frozenset({"b"})]},
        )
    return copy


@settings(max_examples=12, deadline=None)
@given(
    left=relations(attr="a", name="l", id_col="lid", max_size=6),
    right=relations(attr="b", name="r", id_col="rid", max_size=6),
    lo=st.floats(-8, 8),
)
def test_nested_loop_join_parallel_equivalence(left, right, lo):
    right2 = _shared_store_copy(right, left)
    pred = Comparison("a", ">", lo)

    def make_plan():
        return NestedLoopJoin(
            RelationScan(left), RelationScan(right2), pred, left.store
        )

    scalar, serial, parallel = run_modes(make_plan)
    # Join output ids come from fresh counter draws, so they differ per run.
    assert_rows_equal(scalar, serial, left.store, compare_ids=False)
    for rows in parallel.values():
        assert_rows_equal(scalar, rows, left.store, compare_ids=False)


@settings(max_examples=12, deadline=None)
@given(
    left=relations(attr="a", name="l", id_col="lid", max_size=8),
    right=relations(attr="b", name="r", id_col="rid", max_size=8),
    lo=st.floats(-8, 8),
)
def test_hash_join_parallel_equivalence(left, right, lo):
    right2 = _shared_store_copy(right, left)
    pred = Comparison("a", ">", lo)

    def make_plan():
        return HashJoin(
            RelationScan(left),
            RelationScan(right2),
            "lid",
            "rid",
            pred,
            left.store,
        )

    scalar, serial, parallel = run_modes(make_plan)
    assert_rows_equal(scalar, serial, left.store, compare_ids=False)
    for rows in parallel.values():
        assert_rows_equal(scalar, rows, left.store, compare_ids=False)


def _fixed_relation(n=40):
    from repro.pdf import BernoulliPdf, BinomialPdf, GaussianPdf, PoissonPdf

    rel = None
    import repro.core as core

    schema = core.ProbabilisticSchema(
        [core.Column("sid", core.DataType.INT), core.Column("v", core.DataType.REAL)],
        [{"v"}],
    )
    rel = ProbabilisticRelation(schema, name="fixed")
    for i in range(n):
        kind = i % 5
        if kind == 0:
            pdf = GaussianPdf(i % 11, 2.0, attr="v")
        elif kind == 1:
            pdf = BinomialPdf(10, 0.3 + (i % 5) / 10.0, attr="v")
        elif kind == 2:
            pdf = PoissonPdf(1.0 + (i % 7), attr="v")
        elif kind == 3:
            pdf = BernoulliPdf(0.2 + (i % 6) / 10.0, attr="v")
        else:
            pdf = None
        rel.insert(certain={"sid": i}, uncertain={"v": pdf})
    return rel


def test_process_backend_smoke():
    """Fork-based workers return picklable tuples with identical content."""
    rel = _fixed_relation()
    pred = And([Comparison("v", ">", 2), Comparison("v", "<", 9)])

    def make_plan():
        return Filter(RelationScan(rel), pred, rel.store)

    scalar, serial, parallel = run_modes(make_plan, backends=("thread", "process"))
    assert_rows_equal(scalar, serial, rel.store)
    for rows in parallel.values():
        assert_rows_equal(scalar, rows, rel.store)


def test_parallel_stats_recorded():
    rel = _fixed_relation()
    plan = Filter(RelationScan(rel), Comparison("v", ">", 3), rel.store)
    reset_run_stats()
    execute_plan(plan, _parallel_config(2))
    stats = last_run_stats()
    assert stats is not None
    assert stats["morsels"] >= 2
    assert stats["busy_time"] >= 0.0
    assert sum(w["morsels"] for w in stats["per_worker"].values()) == stats["morsels"]


def test_parallelize_plan_shapes():
    """The rewriter produces Gather over scans and parallel join operators."""
    rel = _fixed_relation()
    config = _parallel_config(2)
    rewritten = parallelize_plan(
        Filter(RelationScan(rel), Comparison("v", ">", 0), rel.store), config
    )
    assert isinstance(rewritten, Gather)

    import repro.core as core

    left = _fixed_relation(10)
    right_schema = core.ProbabilisticSchema(
        [core.Column("rid", core.DataType.INT), core.Column("w", core.DataType.REAL)],
        [{"w"}],
    )
    right = ProbabilisticRelation(right_schema, store=left.store, name="r2")
    for t in left.tuples:
        right.insert(certain={"rid": t.certain["sid"]}, uncertain={"w": None})
    hj = HashJoin(
        RelationScan(left),
        RelationScan(right),
        "sid",
        "rid",
        Comparison("sid", ">=", 0),
        left.store,
    )
    assert isinstance(parallelize_plan(hj, config), ParallelHashJoin)
    nlj = NestedLoopJoin(
        RelationScan(left),
        RelationScan(right),
        Comparison("sid", ">=", 0),
        left.store,
    )
    assert isinstance(parallelize_plan(nlj, config), ParallelNestedLoopJoin)


def test_workers_one_plan_untouched():
    rel = _fixed_relation(8)
    plan = Filter(RelationScan(rel), Comparison("v", ">", 0), rel.store)
    assert parallelize_plan(plan, ModelConfig(workers=1)) is plan


class _NoBatchesScan(RelationScan):
    """Scan that fails the test if the batch protocol is entered."""

    def batches(self, size=256):
        raise AssertionError(
            "batch_size <= 1 must use the scalar iterator protocol"
        )


def test_batch_size_one_uses_scalar_protocol():
    """Satellite fix: at batch_size<=1, execute_plan must not wrap single
    tuples in TupleBatch objects (the 0.63x regression of BENCH_engine)."""
    rel = _fixed_relation(10)
    plan = _NoBatchesScan(rel)
    rows = execute_plan(plan, ModelConfig(batch_size=1))
    assert [t.tuple_id for t in rows] == [t.tuple_id for t in rel.tuples]
    # batch_size=0/None degrade to scalar too instead of crashing batched().
    assert len(execute_plan(_NoBatchesScan(rel), ModelConfig(batch_size=0))) == 10
