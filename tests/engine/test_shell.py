"""Interactive shell tests (driven through in-memory streams)."""

import io

import pytest

from repro.engine.shell import Shell


def run_shell(script: str, shell: Shell = None) -> str:
    out = io.StringIO()
    sh = shell or Shell(stdout=out)
    sh.stdout = out
    for line in script.splitlines():
        sh.feed_line(line + "\n")
    return out.getvalue()


class TestShell:
    def test_create_insert_select(self):
        output = run_shell(
            "CREATE TABLE t (a INT, v REAL UNCERTAIN);\n"
            "INSERT INTO t VALUES (1, GAUSSIAN(5, 1));\n"
            "SELECT * FROM t;"
        )
        assert "CREATE TABLE t" in output
        assert "INSERT 1" in output
        assert "GAUSSIAN(5, 1)" in output
        assert "(1 row)" in output

    def test_multiline_statement(self):
        output = run_shell(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t\n"
            "VALUES (1),\n"
            "       (2);\n"
            "SELECT * FROM t;"
        )
        assert "INSERT 2" in output
        assert "(2 rows)" in output

    def test_error_reported_not_raised(self):
        output = run_shell("SELECT * FROM missing;")
        assert "error:" in output
        assert "missing" in output

    def test_syntax_error_reported(self):
        output = run_shell("SELEKT;")
        assert "error:" in output

    def test_dot_tables(self):
        output = run_shell(
            "CREATE TABLE one (a INT);\nCREATE TABLE two (b INT);\n.tables"
        )
        assert "one" in output and "two" in output

    def test_dot_tables_empty(self):
        assert "(no tables)" in run_shell(".tables")

    def test_dot_schema(self):
        output = run_shell("CREATE TABLE t (a INT, v REAL UNCERTAIN);\n.schema t")
        assert "a:int" in output and "v:real" in output

    def test_dot_stats(self):
        output = run_shell(".stats")
        assert "buffer" in output and "disk" in output

    def test_dot_help(self):
        assert ".tables" in run_shell(".help")

    def test_unknown_dot_command(self):
        assert "unknown command" in run_shell(".bogus")

    def test_explain(self):
        output = run_shell(
            "CREATE TABLE t (a INT);\nEXPLAIN SELECT * FROM t;"
        )
        assert "SeqScan" in output

    def test_quit_stops(self):
        sh = Shell(stdout=io.StringIO())
        sh.feed_line(".quit\n")
        assert not sh._running

    def test_save_and_open(self, tmp_path):
        path = str(tmp_path / "shell.rpdb")
        output = run_shell(
            "CREATE TABLE t (a INT);\n"
            "INSERT INTO t VALUES (7);\n"
            f".save {path}\n"
        )
        assert "saved" in output
        output2 = run_shell(f".open {path}\nSELECT * FROM t;")
        assert "(1 row)" in output2

    def test_blank_lines_ignored(self):
        output = run_shell("\n\nCREATE TABLE t (a INT);")
        assert "CREATE TABLE" in output

    def test_open_durable_directory_and_checkpoint(self, tmp_path):
        path = str(tmp_path / "durable_db")
        output = run_shell(
            f".open {path}\n"
            "CREATE TABLE t (a INT, v REAL UNCERTAIN);\n"
            "INSERT INTO t VALUES (1, GAUSSIAN(0, 1));\n"
            "BEGIN;\n"
            "INSERT INTO t VALUES (2, UNIFORM(0, 1));\n"
            "COMMIT;\n"
            ".checkpoint\n"
        )
        assert "opened" in output and "checkpoint written" in output
        # the session recovers from the directory
        output2 = run_shell(f".open {path}\nSELECT a FROM t;")
        assert "(2 rows)" in output2

    def test_checkpoint_in_memory_reports_error(self):
        assert "error" in run_shell(".checkpoint")
