"""Snapshot save/open tests: catalog, pages, histories, indexes, labels."""

import os

import pytest

from repro import Database
from repro.errors import SerializationError


@pytest.fixture
def populated(tmp_path):
    db = Database()
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    for i in range(40):
        db.execute(f"INSERT INTO readings VALUES ({i}, GAUSSIAN({i}, 1))")
    db.execute("CREATE TABLE ann (tid INT, label TEXT UNCERTAIN)")
    db.execute("INSERT INTO ann VALUES (1, CATEGORICAL('snapshot-cat': 0.7, 'snapshot-dog': 0.3))")
    db.execute("CREATE INDEX ON readings (rid)")
    db.execute("CREATE PROB INDEX ON readings (value)")
    path = str(tmp_path / "db.rpdb")
    return db, path


class TestSnapshot:
    def test_roundtrip_rows(self, populated):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        rows = db2.execute("SELECT rid FROM readings ORDER BY rid").to_dicts()
        assert [r["rid"] for r in rows] == list(range(40))

    def test_pdfs_survive(self, populated):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        rows = db2.execute("SELECT * FROM readings").rows
        pdf = {t.certain["rid"]: t.pdf_of_attr("value") for t in rows}[7]
        assert pdf.params == {"mean": 7.0, "variance": 1.0}

    def test_categorical_labels_survive(self, populated):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        rows = db2.execute("SELECT tid FROM ann WHERE label = 'snapshot-cat'")
        assert rows.rowcount == 1

    def test_indexes_rebuilt(self, populated):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        plan = db2.execute("EXPLAIN SELECT rid FROM readings WHERE rid >= 30").plan_text
        assert "BTreeScan" in plan
        plan = db2.execute(
            "EXPLAIN SELECT rid FROM readings WHERE value > 5 AND value < 6"
        ).plan_text
        assert "PtiScan" in plan

    def test_histories_survive(self, populated):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        _, t = next(iter(db2.table("readings").scan()))
        (link,) = t.lineage[frozenset({"value"})]
        assert link.ref in db2.catalog.store

    def test_writable_after_open(self, populated):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        db2.execute("INSERT INTO readings VALUES (100, GAUSSIAN(0, 1))")
        db2.execute("DELETE FROM readings WHERE rid = 0")
        assert db2.execute("SELECT * FROM readings").rowcount == 40

    def test_tuple_ids_do_not_collide_after_open(self, populated):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        # Inserting must not re-register an existing ancestor id.
        for i in range(5):
            db2.execute(f"INSERT INTO readings VALUES ({200 + i}, GAUSSIAN(1, 1))")
        assert db2.execute("SELECT * FROM readings").rowcount == 45

    def test_save_open_save_open(self, populated, tmp_path):
        db, path = populated
        db.save(path)
        db2 = Database.open(path)
        path2 = str(tmp_path / "db2.rpdb")
        db2.save(path2)
        db3 = Database.open(path2)
        assert db3.execute("SELECT * FROM readings").rowcount == 40

    def test_bad_magic_rejected(self, tmp_path):
        path = str(tmp_path / "junk.rpdb")
        with open(path, "wb") as f:
            f.write(b"NOPE1234")
        with pytest.raises(SerializationError):
            Database.open(path)

    def test_empty_database(self, tmp_path):
        db = Database()
        path = str(tmp_path / "empty.rpdb")
        db.save(path)
        db2 = Database.open(path)
        assert db2.catalog.tables == {}

    def test_jumbo_records_survive(self, tmp_path):
        db = Database()
        db.execute("CREATE TABLE big (k INT, v REAL UNCERTAIN)")
        # A 600-point discrete pdf does not fit an ordinary page.
        points = ", ".join(f"{i}: {1/600}" for i in range(600))
        db.execute(f"INSERT INTO big VALUES (1, DISCRETE({points}))")
        path = str(tmp_path / "jumbo.rpdb")
        db.save(path)
        db2 = Database.open(path)
        rows = db2.execute("SELECT * FROM big").rows
        assert len(rows[0].pdf_of_attr("v").values) == 600
