"""Planner tests: plan shapes via EXPLAIN for every feature."""

import pytest

from repro import Database
from repro.errors import QueryError


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE r (rid INT, site TEXT, value REAL UNCERTAIN)")
    db.execute(
        "INSERT INTO r VALUES (1, 'a', GAUSSIAN(10, 1)), (2, 'b', GAUSSIAN(50, 1))"
    )
    db.execute("CREATE TABLE s (sid INT, name TEXT)")
    db.execute("INSERT INTO s VALUES (1, 'x'), (2, 'y')")
    return db


def plan(db, sql):
    return db.execute("EXPLAIN " + sql).plan_text


class TestAccessPaths:
    def test_seq_scan_default(self, db):
        assert "SeqScan(r)" in plan(db, "SELECT * FROM r")

    def test_btree_chosen_for_certain_range(self, db):
        db.execute("CREATE INDEX ON r (rid)")
        text = plan(db, "SELECT rid FROM r WHERE rid > 1")
        assert "BTreeScan" in text and "SeqScan" not in text

    def test_btree_equality(self, db):
        db.execute("CREATE INDEX ON r (rid)")
        assert "BTreeScan(r.rid in [2.0, 2.0])" in plan(db, "SELECT rid FROM r WHERE rid = 2")

    def test_pti_chosen_for_uncertain_range(self, db):
        db.execute("CREATE PROB INDEX ON r (value)")
        text = plan(db, "SELECT rid FROM r WHERE value > 5 AND value < 15")
        assert "PtiScan" in text

    def test_pti_not_used_without_range(self, db):
        db.execute("CREATE PROB INDEX ON r (value)")
        text = plan(db, "SELECT rid FROM r WHERE site = 'a'")
        assert "PtiScan" not in text

    def test_no_index_scan_in_multi_table_queries(self, db):
        db.execute("CREATE INDEX ON r (rid)")
        text = plan(db, "SELECT a.rid FROM r a, s b WHERE a.rid = b.sid")
        assert "BTreeScan" not in text


class TestPredicateSplit:
    def test_certain_filter_below_uncertain(self, db):
        text = plan(db, "SELECT rid FROM r WHERE site = 'a' AND value > 5")
        lines = text.splitlines()
        certain_idx = next(i for i, l in enumerate(lines) if "site" in l)
        uncertain_idx = next(i for i, l in enumerate(lines) if "value" in l)
        # Deeper in the tree = larger index; certain runs first (below).
        assert certain_idx > uncertain_idx

    def test_prob_terms_become_filters(self, db):
        text = plan(db, "SELECT rid FROM r WHERE PROB(value > 5) >= 0.5")
        assert "ProbFilter" in text

    def test_prob_star_becomes_threshold_filter(self, db):
        text = plan(db, "SELECT rid FROM r WHERE PROB(*) >= 0.5")
        assert "ThresholdFilter" in text


class TestJoins:
    def test_hash_join_for_certain_equi(self, db):
        text = plan(db, "SELECT a.rid FROM r a, s b WHERE a.rid = b.sid")
        assert "HashJoin" in text

    def test_nested_loop_without_equi_key(self, db):
        text = plan(db, "SELECT a.rid FROM r a, s b WHERE a.rid < b.sid")
        assert "NestedLoopJoin" in text

    def test_three_tables_left_deep(self, db):
        db.execute("CREATE TABLE t3 (k INT)")
        text = plan(db, "SELECT a.rid FROM r a, s b, t3 c")
        assert text.count("NestedLoopJoin") == 2

    def test_aliases_produce_renames(self, db):
        text = plan(db, "SELECT a.rid FROM r a, s b")
        assert "Rename" in text


class TestSelectList:
    def test_projection(self, db):
        assert "Project(rid)" in plan(db, "SELECT rid FROM r")

    def test_star_no_projection(self, db):
        assert "Project" not in plan(db, "SELECT * FROM r")

    def test_alias_rename_on_top(self, db):
        text = plan(db, "SELECT rid AS k FROM r")
        assert "Rename(rid->k)" in text

    def test_aggregate_plan(self, db):
        text = plan(db, "SELECT COUNT(*), EXPECTED(value) FROM r")
        assert "Aggregate(COUNT(*)" in text

    def test_group_plan(self, db):
        text = plan(db, "SELECT site, COUNT(*) FROM r GROUP BY site")
        assert "GroupAggregate(by site" in text

    def test_scalarize_plan(self, db):
        text = plan(db, "SELECT rid, MEAN(value) FROM r")
        assert "Scalarize(MEAN(value) AS mean_value)" in text

    def test_distinct_plan(self, db):
        text = plan(db, "SELECT DISTINCT site FROM r")
        assert "Distinct" in text

    def test_sort_limit_order(self, db):
        text = plan(db, "SELECT rid FROM r ORDER BY rid LIMIT 1")
        lines = text.splitlines()
        assert "Limit" in lines[0]
        assert "Sort" in lines[1]

    def test_top_k_plan(self, db):
        text = plan(db, "SELECT rid FROM r ORDER BY PROB(*) DESC LIMIT 1")
        assert "SortByProbability(DESC)" in text


class TestPlannerValidation:
    def test_order_by_uncertain_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT rid FROM r ORDER BY value")

    def test_duplicate_aliases_rejected(self, db):
        from repro.errors import SqlBindError

        with pytest.raises(SqlBindError):
            db.execute("SELECT x.rid FROM r x, s x")

    def test_column_selected_twice_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT rid, rid FROM r")
