"""Transaction semantics at the SQL surface (in-memory databases).

The WAL suite (tests/fault/) covers durability; these tests pin the
logical semantics of BEGIN/COMMIT/ROLLBACK — statement grammar, precise
undo of every mutating statement kind, and autocommit behaviour.
"""

from __future__ import annotations

import pytest

from repro.engine.database import Database
from repro.engine.sql import parser
from repro.engine.sql import ast
from repro.errors import TransactionError


@pytest.fixture
def db():
    d = Database()
    d.execute("CREATE TABLE s (sid INT, temp REAL UNCERTAIN)")
    d.execute("INSERT INTO s VALUES (1, GAUSSIAN(20, 5))")
    d.execute("INSERT INTO s VALUES (2, UNIFORM(0, 10))")
    return d


def test_parser_accepts_transaction_statements():
    assert isinstance(parser.parse("BEGIN"), ast.Begin)
    assert isinstance(parser.parse("BEGIN TRANSACTION"), ast.Begin)
    assert isinstance(parser.parse("COMMIT"), ast.Commit)
    assert isinstance(parser.parse("ROLLBACK"), ast.Rollback)


def test_sql_begin_commit(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO s VALUES (3, GAUSSIAN(0, 1))")
    db.execute("COMMIT")
    assert len(db.execute("SELECT sid FROM s").rows) == 3


def test_sql_rollback_discards(db):
    before = db.dump_state()
    db.execute("BEGIN TRANSACTION")
    db.execute("INSERT INTO s VALUES (3, GAUSSIAN(0, 1))")
    db.execute("ROLLBACK")
    assert db.dump_state() == before


def test_rollback_undoes_insert_and_history(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("INSERT INTO s VALUES (3, DISCRETE(1:0.5, 2:0.5))")
    db.execute("ROLLBACK")
    # history store has no leaked entries, tuple ids not consumed
    assert db.dump_state() == before


def test_rollback_undoes_delete(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("DELETE FROM s WHERE sid = 1")
    assert len(db.execute("SELECT sid FROM s").rows) == 1
    db.execute("ROLLBACK")
    assert db.dump_state() == before
    assert len(db.execute("SELECT sid FROM s").rows) == 2


def test_rollback_undoes_update(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("UPDATE s SET temp = GAUSSIAN(99, 1) WHERE sid = 1")
    db.execute("ROLLBACK")
    assert db.dump_state() == before


def test_rollback_undoes_ddl(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("CREATE TABLE extra (x INT)")
    db.execute("INSERT INTO extra VALUES (1)")
    db.execute("ROLLBACK")
    assert db.dump_state() == before
    assert "extra" not in db.dump_state()["tables"]


def test_rollback_undoes_drop_table(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("DROP TABLE s")
    assert "s" not in db.dump_state()["tables"]
    db.execute("ROLLBACK")
    assert db.dump_state() == before


def test_rollback_undoes_indexes(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("CREATE INDEX ON s (sid)")
    db.execute("CREATE PROB INDEX ON s (temp)")
    db.execute("ROLLBACK")
    assert db.dump_state() == before
    t = db.table("s")
    assert not t.btrees and not t.ptis


def test_rollback_undoes_analyze(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("ANALYZE s")
    db.execute("ROLLBACK")
    assert db.dump_state() == before
    assert db.table("s").statistics is None


def test_commit_then_rollback_only_undoes_new_work(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO s VALUES (3, GAUSSIAN(0, 1))")
    db.execute("COMMIT")
    committed = db.dump_state()
    db.execute("BEGIN")
    db.execute("INSERT INTO s VALUES (4, GAUSSIAN(0, 1))")
    db.execute("ROLLBACK")
    assert db.dump_state() == committed


def test_nested_begin_raises(db):
    db.execute("BEGIN")
    with pytest.raises(TransactionError):
        db.execute("BEGIN")
    db.execute("ROLLBACK")


def test_commit_outside_txn_raises(db):
    with pytest.raises(TransactionError):
        db.execute("COMMIT")
    with pytest.raises(TransactionError):
        db.execute("ROLLBACK")


def test_context_manager_commits(db):
    # Database is a context manager over its lifetime (close), while
    # begin/commit pair naturally with try/except at the call site.
    db.begin()
    db.execute("INSERT INTO s VALUES (3, GAUSSIAN(0, 1))")
    db.commit()
    assert len(db.execute("SELECT sid FROM s").rows) == 3


def test_queries_allowed_inside_transaction(db):
    db.execute("BEGIN")
    db.execute("INSERT INTO s VALUES (3, GAUSSIAN(30, 1))")
    rows = db.execute("SELECT sid FROM s WHERE PROB(temp > 25) >= 0.9").rows
    assert [t.certain["sid"] for t in rows] == [3]
    db.execute("ROLLBACK")


def test_rollback_releases_tuple_ids(db):
    """Tuple ids consumed by an aborted txn are re-drawn by later inserts."""
    db.execute("BEGIN")
    db.execute("INSERT INTO s VALUES (3, GAUSSIAN(0, 1))")
    db.execute("ROLLBACK")
    db.execute("INSERT INTO s VALUES (4, GAUSSIAN(0, 1))")
    oracle = Database()
    oracle.execute("CREATE TABLE s (sid INT, temp REAL UNCERTAIN)")
    oracle.execute("INSERT INTO s VALUES (1, GAUSSIAN(20, 5))")
    oracle.execute("INSERT INTO s VALUES (2, UNIFORM(0, 10))")
    oracle.execute("INSERT INTO s VALUES (4, GAUSSIAN(0, 1))")
    assert db.dump_state() == oracle.dump_state()


def test_ctas_rolls_back(db):
    before = db.dump_state()
    db.execute("BEGIN")
    db.execute("CREATE TABLE hot AS SELECT sid, temp FROM s WHERE PROB(temp > 15) >= 0.5")
    db.execute("ROLLBACK")
    assert db.dump_state() == before
