"""Tests for the SQL extensions: UPDATE, GROUP BY, DISTINCT, BETWEEN/IN, CTAS."""

import pytest

from repro import Database
from repro.errors import CatalogError, QueryError, SqlBindError, SqlParseError
from repro.pdf import DiscretePdf, GaussianPdf


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE readings (rid INT, site TEXT, value REAL UNCERTAIN)")
    db.execute(
        "INSERT INTO readings VALUES "
        "(1, 'lab', GAUSSIAN(20, 5)), (2, 'lab', GAUSSIAN(25, 4)), "
        "(3, 'roof', GAUSSIAN(13, 1)), (4, 'roof', GAUSSIAN(50, 2))"
    )
    return db


class TestBetweenIn:
    def test_between_desugars(self, db):
        a = db.execute("SELECT rid FROM readings WHERE rid BETWEEN 2 AND 3").to_dicts()
        b = db.execute("SELECT rid FROM readings WHERE rid >= 2 AND rid <= 3").to_dicts()
        assert a == b

    def test_between_on_uncertain(self, db):
        rows = db.execute(
            "SELECT rid FROM readings WHERE value BETWEEN 18 AND 27"
        ).to_dicts()
        assert [r["rid"] for r in rows] == [1, 2]

    def test_in_list(self, db):
        rows = db.execute("SELECT rid FROM readings WHERE rid IN (1, 4)").to_dicts()
        assert [r["rid"] for r in rows] == [1, 4]

    def test_in_strings(self, db):
        rows = db.execute("SELECT rid FROM readings WHERE site IN ('roof')").to_dicts()
        assert [r["rid"] for r in rows] == [3, 4]

    def test_in_single_value(self, db):
        rows = db.execute("SELECT rid FROM readings WHERE rid IN (2)").to_dicts()
        assert [r["rid"] for r in rows] == [2]


class TestUpdate:
    def test_update_certain(self, db):
        out = db.execute("UPDATE readings SET site = 'attic' WHERE rid = 1")
        assert out.rowcount == 1
        rows = db.execute("SELECT site FROM readings WHERE rid = 1" if False else
                          "SELECT rid, site FROM readings").to_dicts()
        by_rid = {r["rid"]: r["site"] for r in rows}
        assert by_rid[1] == "attic" and by_rid[2] == "lab"

    def test_update_pdf(self, db):
        db.execute("UPDATE readings SET value = GAUSSIAN(99, 1) WHERE rid = 2")
        rows = db.execute("SELECT rid, value FROM readings").rows
        pdf = {t.certain["rid"]: t.pdf_of_attr("value") for t in rows}[2]
        assert pdf.params == {"mean": 99.0, "variance": 1.0}

    def test_update_all_rows(self, db):
        out = db.execute("UPDATE readings SET site = 'x'")
        assert out.rowcount == 4

    def test_update_maintains_indexes(self, db):
        db.execute("CREATE INDEX ON readings (rid)")
        db.execute("CREATE PROB INDEX ON readings (value)")
        db.execute("UPDATE readings SET value = GAUSSIAN(999, 1) WHERE rid = 3")
        rows = db.execute(
            "SELECT rid FROM readings WHERE value > 990 AND value < 1010"
        ).to_dicts()
        assert [r["rid"] for r in rows] == [3]

    def test_update_makes_fresh_ancestor(self, db):
        before = len(db.catalog.store)
        db.execute("UPDATE readings SET value = GAUSSIAN(1, 1) WHERE rid = 1")
        # Old ancestor released (unreferenced -> dropped), new one registered.
        assert len(db.catalog.store) == before

    def test_update_uncertain_predicate_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("UPDATE readings SET site = 'x' WHERE value > 5")

    def test_update_unknown_column_rejected(self, db):
        with pytest.raises(SqlBindError):
            db.execute("UPDATE readings SET nope = 1")


class TestGroupBy:
    def test_group_counts(self, db):
        rows = db.execute(
            "SELECT site, COUNT(*) FROM readings GROUP BY site"
        ).rows
        counts = {
            t.certain["site"]: float(t.pdfs[frozenset({"count"})].pdf_at(2))
            for t in rows
        }
        assert counts == {"lab": pytest.approx(1.0), "roof": pytest.approx(1.0)}

    def test_group_expected(self, db):
        rows = db.execute(
            "SELECT site, EXPECTED(value) FROM readings GROUP BY site"
        ).to_dicts()
        by_site = {r["site"]: r["expected_value"] for r in rows}
        assert by_site["lab"] == pytest.approx(45.0)
        assert by_site["roof"] == pytest.approx(63.0)

    def test_group_sum_distribution(self, db):
        rows = db.execute(
            "SELECT site, SUM(value) FROM readings GROUP BY site"
        ).rows
        sums = {t.certain["site"]: t.pdfs[frozenset({"sum_value"})] for t in rows}
        assert sums["lab"].mean() == pytest.approx(45.0)
        assert sums["lab"].variance() == pytest.approx(9.0)

    def test_group_after_uncertain_selection(self, db):
        rows = db.execute(
            "SELECT site, COUNT(*) FROM readings WHERE value > 20 GROUP BY site"
        ).rows
        counts = {t.certain["site"]: t.pdfs[frozenset({"count"})] for t in rows}
        # roof's Gaus(13,1) tuple is (essentially) filtered out;
        # Gaus(50,2) survives with mass ~1.
        assert counts["roof"].mean() == pytest.approx(1.0, abs=1e-6)
        # lab's count is a genuine distribution (two partial tuples).
        assert counts["lab"].variance() > 0

    def test_non_grouped_column_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT rid, COUNT(*) FROM readings GROUP BY site")

    def test_group_by_uncertain_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT COUNT(*) FROM readings GROUP BY value")

    def test_group_by_without_aggregates_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT site FROM readings GROUP BY site")

    def test_group_ordering_of_columns(self, db):
        result = db.execute(
            "SELECT COUNT(*), site FROM readings GROUP BY site"
        )
        assert result.columns == ["count", "site"]


class TestDistinctSql:
    def test_distinct_sites(self, db):
        rows = db.execute("SELECT DISTINCT site FROM readings").to_dicts()
        assert [r["site"] for r in rows] == ["lab", "roof"]

    def test_distinct_probability(self):
        db = Database()
        db.execute("CREATE TABLE t (tag TEXT, v REAL UNCERTAIN)")
        db.execute(
            "INSERT INTO t VALUES ('a', DISCRETE(1: 0.5)), ('a', DISCRETE(2: 0.5))"
        )
        result = db.execute("SELECT DISTINCT tag FROM t")
        (row,) = result.rows
        assert db.existence_probability(row) == pytest.approx(0.75)

    def test_distinct_on_uncertain_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT DISTINCT value FROM readings")

    def test_distinct_with_aggregate_rejected(self, db):
        with pytest.raises(QueryError):
            db.execute("SELECT DISTINCT COUNT(*) FROM readings")


class TestCreateTableAs:
    def test_materialise_certain_query(self, db):
        db.execute("CREATE TABLE lab AS SELECT rid FROM readings WHERE site = 'lab'")
        rows = db.execute("SELECT * FROM lab").to_dicts()
        assert [r["rid"] for r in rows] == [1, 2]

    def test_materialise_uncertain_query(self, db):
        db.execute(
            "CREATE TABLE hot AS SELECT rid, value FROM readings WHERE value > 20"
        )
        rows = db.execute("SELECT * FROM hot").rows
        masses = {t.certain["rid"]: t.pdf_of_attr("value").mass() for t in rows}
        assert masses[4] == pytest.approx(1.0, abs=1e-6)
        assert 0 < masses[1] < 1

    def test_lineage_survives_materialisation(self, db):
        db.execute("CREATE TABLE hot AS SELECT rid, value FROM readings WHERE value > 20")
        _, t = next(iter(db.table("hot").scan()))
        (link,) = t.lineage[frozenset({"value"})]
        assert link.ref in db.catalog.store

    def test_duplicate_name_rejected(self, db):
        with pytest.raises(CatalogError):
            db.execute("CREATE TABLE readings AS SELECT rid FROM readings")

    def test_queryable_like_any_table(self, db):
        db.execute("CREATE TABLE hot AS SELECT rid, value FROM readings WHERE value > 20")
        n = db.execute("SELECT COUNT(*) FROM hot WHERE PROB(*) >= 0.999").scalar()
        assert float(n.pdf_at(1)) == pytest.approx(1.0)  # only rid 4 is near-certain
