"""Spatial grid index tests: soundness, maintenance, SQL integration."""

import numpy as np
import pytest

from repro import Database
from repro.engine.index.spatial import SpatialGridIndex
from repro.engine.storage.heapfile import RID
from repro.errors import IndexError_, QueryError
from repro.pdf import JointGaussianPdf
from repro.workloads import generate_moving_objects


def _rid(i):
    return RID(i, 0)


class TestSpatialGridIndex:
    def _index_with_objects(self, objects):
        index = SpatialGridIndex(("x", "y"), cell_size=10.0)
        for i, obj in enumerate(objects):
            index.insert(_rid(i), obj.pdf)
        return index

    def test_candidates_sound(self):
        """Never prunes an object with support overlapping the window."""
        objects = generate_moving_objects(80, seed=3)
        index = self._index_with_objects(objects)
        rng = np.random.default_rng(4)
        for _ in range(30):
            x0 = float(rng.uniform(0, 90))
            y0 = float(rng.uniform(0, 90))
            window = [(x0, x0 + 15), (y0, y0 + 15)]
            cands = set(index.candidates(window))
            for i, obj in enumerate(objects):
                support = obj.pdf.support()
                overlaps = all(
                    support[a][0] <= hi and support[a][1] >= lo
                    for a, (lo, hi) in zip(("x", "y"), window)
                )
                if overlaps:
                    assert _rid(i) in cands, (i, window)

    def test_pruning_happens(self):
        objects = generate_moving_objects(80, seed=3)
        index = self._index_with_objects(objects)
        assert index.selectivity([(0, 10), (0, 10)]) < 0.5

    def test_delete(self):
        index = SpatialGridIndex(("x", "y"))
        pdf = JointGaussianPdf(("x", "y"), [5, 5], [[1, 0], [0, 1]])
        index.insert(_rid(0), pdf)
        assert index.candidates([(0, 10), (0, 10)]) == [_rid(0)]
        assert index.delete(_rid(0))
        assert not index.delete(_rid(0))
        assert index.candidates([(0, 10), (0, 10)]) == []
        assert index._cells == {}  # buckets cleaned up

    def test_empty_window(self):
        index = SpatialGridIndex(("x", "y"))
        index.insert(_rid(0), JointGaussianPdf(("x", "y"), [0, 0], [[1, 0], [0, 1]]))
        assert index.candidates([(5, 4), (0, 1)]) == []

    def test_candidates_within_ball(self):
        index = SpatialGridIndex(("x", "y"), cell_size=5.0)
        near = JointGaussianPdf(("x", "y"), [1, 1], [[0.5, 0], [0, 0.5]])
        far = JointGaussianPdf(("x", "y"), [50, 50], [[0.5, 0], [0, 0.5]])
        index.insert(_rid(0), near)
        index.insert(_rid(1), far)
        cands = index.candidates_within([0.0, 0.0], 5.0)
        assert _rid(0) in cands and _rid(1) not in cands

    def test_validation(self):
        with pytest.raises(IndexError_):
            SpatialGridIndex(("x",))
        with pytest.raises(IndexError_):
            SpatialGridIndex(("x", "y"), cell_size=0)
        index = SpatialGridIndex(("x", "y"))
        with pytest.raises(IndexError_):
            index.candidates([(0, 1)])  # dimension mismatch


class TestSpatialSql:
    @pytest.fixture
    def db(self):
        db = Database()
        db.execute("CREATE TABLE o (oid INT, x REAL, y REAL, DEPENDENCY (x, y))")
        for obj in generate_moving_objects(40, seed=8):
            db.table("o").insert(
                certain={"oid": obj.oid}, uncertain={("x", "y"): obj.pdf}
            )
        return db

    def test_plan_uses_spatial_scan(self, db):
        db.execute("CREATE SPATIAL INDEX ON o (x, y)")
        plan = db.execute(
            "EXPLAIN SELECT oid FROM o WHERE x BETWEEN 30 AND 50 AND y BETWEEN 30 AND 50"
        ).plan_text
        assert "SpatialScan" in plan

    def test_answers_agree_with_seqscan(self, db):
        sql = (
            "SELECT oid, MASS(x) FROM o "
            "WHERE x BETWEEN 30 AND 50 AND y BETWEEN 30 AND 50"
        )
        base = {r["oid"]: r["mass_x"] for r in db.execute(sql).to_dicts()}
        db.execute("CREATE SPATIAL INDEX ON o (x, y)")
        indexed = {r["oid"]: r["mass_x"] for r in db.execute(sql).to_dicts()}
        assert base == pytest.approx(indexed)

    def test_partial_window_falls_back(self, db):
        db.execute("CREATE SPATIAL INDEX ON o (x, y)")
        # Only x is bounded: the 2-D index cannot serve it.
        plan = db.execute(
            "EXPLAIN SELECT oid FROM o WHERE x BETWEEN 30 AND 50"
        ).plan_text
        assert "SpatialScan" not in plan

    def test_index_maintained_on_insert_delete(self, db):
        db.execute("CREATE SPATIAL INDEX ON o (x, y)")
        db.execute(
            "INSERT INTO o VALUES (99, JOINT_GAUSSIAN([200, 200], [[1, 0], [0, 1]]))"
        )
        rows = db.execute(
            "SELECT oid FROM o WHERE x BETWEEN 195 AND 205 AND y BETWEEN 195 AND 205"
        ).to_dicts()
        assert [r["oid"] for r in rows] == [99]
        db.execute("DELETE FROM o WHERE oid = 99")
        rows = db.execute(
            "SELECT oid FROM o WHERE x BETWEEN 195 AND 205 AND y BETWEEN 195 AND 205"
        ).to_dicts()
        assert rows == []

    def test_spatial_index_on_independent_columns_rejected(self):
        db = Database()
        db.execute("CREATE TABLE t (a REAL UNCERTAIN, b REAL UNCERTAIN)")
        with pytest.raises(QueryError):
            db.execute("CREATE SPATIAL INDEX ON t (a, b)")

    def test_single_column_spatial_rejected(self, db):
        from repro.errors import SqlParseError

        with pytest.raises(SqlParseError):
            db.execute("CREATE SPATIAL INDEX ON o (x)")

    def test_multi_column_plain_index_rejected(self, db):
        from repro.errors import SqlParseError

        with pytest.raises(SqlParseError):
            db.execute("CREATE INDEX ON o (x, y)")

    def test_snapshot_roundtrip(self, db, tmp_path):
        db.execute("CREATE SPATIAL INDEX ON o (x, y)")
        path = str(tmp_path / "spatial.rpdb")
        db.save(path)
        db2 = Database.open(path)
        plan = db2.execute(
            "EXPLAIN SELECT oid FROM o WHERE x BETWEEN 30 AND 50 AND y BETWEEN 30 AND 50"
        ).plan_text
        assert "SpatialScan" in plan
