"""Executor operator tests, driven directly (no SQL)."""

import pytest

from repro.core import (
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
)
from repro.core.predicates import And, Comparison, TruePredicate, col
from repro.engine.catalog import Catalog
from repro.engine.executor import (
    AggSpec,
    Aggregate,
    BTreeScan,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    ProbFilter,
    Project,
    PtiScan,
    RelationScan,
    RenameOp,
    SeqScan,
    Sort,
    ThresholdFilter,
)
from repro.errors import QueryError, SchemaError
from repro.pdf import DiscretePdf, GaussianPdf


@pytest.fixture
def catalog():
    return Catalog()


@pytest.fixture
def readings(catalog):
    schema = ProbabilisticSchema(
        [Column("rid", DataType.INT), Column("value", DataType.REAL)], [{"value"}]
    )
    t = catalog.create_table("readings", schema)
    t.insert(certain={"rid": 1}, uncertain={"value": GaussianPdf(20, 5)})
    t.insert(certain={"rid": 2}, uncertain={"value": GaussianPdf(25, 4)})
    t.insert(certain={"rid": 3}, uncertain={"value": GaussianPdf(13, 1)})
    return t


@pytest.fixture
def labels(catalog):
    schema = ProbabilisticSchema(
        [Column("sid", DataType.INT), Column("name", DataType.TEXT)]
    )
    t = catalog.create_table("labels", schema)
    t.insert(certain={"sid": 1, "name": "hall"})
    t.insert(certain={"sid": 2, "name": "lab"})
    return t


class TestScans:
    def test_seq_scan(self, readings):
        rows = list(SeqScan(readings))
        assert [t.certain["rid"] for t in rows] == [1, 2, 3]

    def test_btree_scan(self, readings):
        readings.create_btree_index("rid")
        rows = list(BTreeScan(readings, "rid", lo=2))
        assert [t.certain["rid"] for t in rows] == [2, 3]

    def test_btree_scan_needs_index(self, readings):
        with pytest.raises(QueryError):
            BTreeScan(readings, "rid")

    def test_pti_scan(self, readings):
        readings.create_pti_index("value")
        rows = list(PtiScan(readings, "value", 18, 22))
        assert {t.certain["rid"] for t in rows} == {1, 2}

    def test_relation_scan(self, readings, catalog):
        rel = ProbabilisticRelation(readings.schema, catalog.store)
        rel.insert(certain={"rid": 9}, uncertain={"value": GaussianPdf(1, 1)})
        rows = list(RelationScan(rel))
        assert rows[0].certain["rid"] == 9


class TestFilterProject:
    def test_filter_uncertain(self, readings, catalog):
        op = Filter(
            SeqScan(readings),
            And([Comparison("value", ">", 18), Comparison("value", "<", 22)]),
            catalog.store,
        )
        rows = list(op)
        assert {t.certain["rid"] for t in rows} == {1, 2}

    def test_filter_certain(self, readings, catalog):
        op = Filter(SeqScan(readings), Comparison("rid", "=", 2), catalog.store)
        assert len(list(op)) == 1

    def test_project(self, readings, catalog):
        op = Project(SeqScan(readings), ["rid"])
        assert op.output_schema.visible_attrs == ("rid",)
        assert len(list(op)) == 3

    def test_rename(self, readings):
        op = RenameOp(SeqScan(readings), {"rid": "r.rid", "value": "r.value"})
        assert op.output_schema.visible_attrs == ("r.rid", "r.value")
        t = next(iter(op))
        assert "r.rid" in t.certain


class TestJoins:
    def test_nested_loop(self, readings, labels, catalog):
        op = NestedLoopJoin(
            SeqScan(labels),
            SeqScan(readings),
            Comparison("sid", "=", col("rid")),
            catalog.store,
        )
        rows = list(op)
        assert len(rows) == 2
        assert {t.certain["name"] for t in rows} == {"hall", "lab"}

    def test_hash_join_same_answers(self, readings, labels, catalog):
        pred = Comparison("sid", "=", col("rid"))
        nl = {t.certain["sid"] for t in NestedLoopJoin(SeqScan(labels), SeqScan(readings), pred, catalog.store)}
        hj = {t.certain["sid"] for t in HashJoin(SeqScan(labels), SeqScan(readings), "sid", "rid", pred, catalog.store)}
        assert nl == hj

    def test_hash_join_requires_certain_keys(self, readings, labels, catalog):
        with pytest.raises(QueryError):
            HashJoin(
                SeqScan(labels),
                SeqScan(readings),
                "sid",
                "value",
                TruePredicate(),
                catalog.store,
            )

    def test_join_collision_rejected(self, readings, catalog):
        with pytest.raises(SchemaError):
            NestedLoopJoin(
                SeqScan(readings), SeqScan(readings), TruePredicate(), catalog.store
            )

    def test_explain_tree(self, readings, labels, catalog):
        op = Limit(
            NestedLoopJoin(
                SeqScan(labels), SeqScan(readings), TruePredicate(), catalog.store
            ),
            2,
        )
        text = op.explain()
        assert "Limit" in text and "NestedLoopJoin" in text and "SeqScan" in text


class TestThresholdOperators:
    def test_threshold_filter(self, catalog):
        schema = ProbabilisticSchema([Column("v", DataType.INT)], [{"v"}])
        t = catalog.create_table("p", schema)
        t.insert(uncertain={"v": DiscretePdf({1: 0.9})})
        t.insert(uncertain={"v": DiscretePdf({1: 0.4})})
        rows = list(ThresholdFilter(SeqScan(t), None, ">", 0.5, catalog.store))
        assert len(rows) == 1

    def test_prob_filter(self, readings, catalog):
        op = ProbFilter(
            SeqScan(readings),
            And([Comparison("value", ">", 18), Comparison("value", "<", 22)]),
            ">=",
            0.5,
            catalog.store,
        )
        rows = list(op)
        assert [t.certain["rid"] for t in rows] == [1]
        # Tuples pass through unchanged (histories copied, no floors).
        assert rows[0].pdf_of_attr("value").mass() == pytest.approx(1.0)

    def test_prob_filter_bad_op(self, readings, catalog):
        with pytest.raises(QueryError):
            ProbFilter(SeqScan(readings), TruePredicate(), "~", 0.5, catalog.store)


class TestSortLimit:
    def test_sort(self, readings):
        rows = list(Sort(SeqScan(readings), ["rid"], descending=True))
        assert [t.certain["rid"] for t in rows] == [3, 2, 1]

    def test_sort_uncertain_rejected(self, readings):
        with pytest.raises(QueryError):
            Sort(SeqScan(readings), ["value"])

    def test_limit(self, readings):
        rows = list(Limit(SeqScan(readings), 2))
        assert len(rows) == 2

    def test_limit_zero(self, readings):
        assert list(Limit(SeqScan(readings), 0)) == []

    def test_limit_negative_rejected(self, readings):
        with pytest.raises(QueryError):
            Limit(SeqScan(readings), -1)


class TestAggregateOp:
    def test_count_and_expected(self, readings, catalog):
        op = Aggregate(
            SeqScan(readings),
            [AggSpec("count"), AggSpec("expected", "value")],
            catalog.store,
        )
        (row,) = list(op)
        count_pdf = row.pdfs[frozenset({"count"})]
        assert float(count_pdf.pdf_at(3)) == pytest.approx(1.0)
        assert row.certain["expected_value"] == pytest.approx(20 + 25 + 13)

    def test_sum_gaussian(self, readings, catalog):
        op = Aggregate(
            SeqScan(readings), [AggSpec("sum", "value", method="gaussian")], catalog.store
        )
        (row,) = list(op)
        pdf = row.pdfs[frozenset({"sum_value"})]
        assert pdf.mean() == pytest.approx(58.0)
        assert pdf.variance() == pytest.approx(10.0)

    def test_min_max(self, readings, catalog):
        op = Aggregate(
            SeqScan(readings),
            [AggSpec("min", "value"), AggSpec("max", "value")],
            catalog.store,
        )
        (row,) = list(op)
        assert row.pdfs[frozenset({"min_value"})].mean() < row.pdfs[
            frozenset({"max_value"})
        ].mean()

    def test_alias(self, readings, catalog):
        op = Aggregate(
            SeqScan(readings), [AggSpec("count", alias="n")], catalog.store
        )
        assert op.output_schema.visible_attrs == ("n",)

    def test_bad_spec(self):
        with pytest.raises(QueryError):
            AggSpec("median", "v")
        with pytest.raises(QueryError):
            AggSpec("sum")
