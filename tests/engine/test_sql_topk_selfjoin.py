"""Top-k by probability and SQL self-joins."""

import pytest

from repro import Database
from repro.errors import UnsupportedOperationError


@pytest.fixture
def db():
    db = Database()
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    db.execute(
        "INSERT INTO readings VALUES (1, GAUSSIAN(20, 5)), (2, GAUSSIAN(25, 4)), "
        "(3, GAUSSIAN(19, 1))"
    )
    return db


class TestOrderByProb:
    def test_top_k(self, db):
        rows = db.execute(
            "SELECT rid FROM readings WHERE value > 18 AND value < 22 "
            "ORDER BY PROB(*) DESC LIMIT 2"
        ).to_dicts()
        # Gaus(19,1) has the most mass in (18,22), then Gaus(20,5).
        assert [r["rid"] for r in rows] == [3, 1]

    def test_ascending(self, db):
        rows = db.execute(
            "SELECT rid FROM readings WHERE value > 18 AND value < 22 "
            "ORDER BY PROB(*) ASC"
        ).to_dicts()
        assert [r["rid"] for r in rows] == [2, 1, 3]

    def test_plan_label(self, db):
        plan = db.execute(
            "EXPLAIN SELECT rid FROM readings ORDER BY PROB(*) DESC"
        ).plan_text
        assert "SortByProbability" in plan

    def test_full_mass_ties_keep_input_order(self, db):
        rows = db.execute("SELECT rid FROM readings ORDER BY PROB(*) DESC").to_dicts()
        assert [r["rid"] for r in rows] == [1, 2, 3]


class TestSelfJoin:
    def test_certain_self_join(self, db):
        rows = db.execute(
            "SELECT a.rid, b.rid FROM readings a, readings b WHERE a.rid = b.rid"
        ).to_dicts()
        assert len(rows) == 3
        assert all(r["a.rid"] == r["b.rid"] for r in rows)

    def test_discrete_self_join_is_diagonal(self):
        db = Database()
        db.execute("CREATE TABLE t (k INT, v REAL UNCERTAIN)")
        db.execute("INSERT INTO t VALUES (1, DISCRETE(1: 0.5, 2: 0.5))")
        # v on both sides is the SAME random variable: a.v = b.v always.
        result = db.execute(
            "SELECT a.k FROM t a, t b WHERE a.k = b.k AND a.v = b.v"
        )
        assert result.rowcount == 1
        assert db.existence_probability(result.rows[0]) == pytest.approx(1.0)
        # ...and a.v < b.v never holds.
        result = db.execute(
            "SELECT a.k FROM t a, t b WHERE a.k = b.k AND a.v < b.v"
        )
        assert result.rowcount == 0

    def test_continuous_self_join_raises_clearly(self):
        db = Database()
        db.execute("CREATE TABLE t (k INT, v REAL UNCERTAIN)")
        db.execute("INSERT INTO t VALUES (1, GAUSSIAN(0, 1))")
        with pytest.raises(UnsupportedOperationError):
            db.execute("SELECT a.k FROM t a, t b WHERE a.k = b.k AND a.v < b.v")

    def test_cross_rows_of_self_join_are_independent(self):
        db = Database()
        db.execute("CREATE TABLE t (k INT, v REAL UNCERTAIN)")
        db.execute(
            "INSERT INTO t VALUES (1, DISCRETE(1: 0.5, 2: 0.5)), "
            "(2, DISCRETE(1: 0.5, 2: 0.5))"
        )
        # Different base tuples: a.v < b.v is an ordinary independent product.
        result = db.execute(
            "SELECT a.k, b.k FROM t a, t b WHERE a.k = 1 AND b.k = 2 AND a.v < b.v"
        )
        assert result.rowcount == 1
        assert db.existence_probability(result.rows[0]) == pytest.approx(0.25)
