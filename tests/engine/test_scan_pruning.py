"""Page synopses and pruned scans: maintenance units + equivalence properties.

Two halves:

* Unit tests that the per-page synopses are maintained correctly across
  inserts (bounds widen), deletes (live count shrinks, bounds stay — so
  pruning stays conservative), jumbo records, and full rebuilds.
* Property tests that pruned + lazily decoded scans return exactly the
  same rows as unpruned full-decode scans, across representative plan
  shapes (select / project / join / PROB thresholds), serially and with 2
  workers, including NULL pdfs, partial (floored) pdfs, and pages emptied
  by deletes.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.engine.database import Database
from repro.engine.storage.serialize import DepSummary
from repro.engine.storage.synopsis import PageSynopsis, ScanPruner
from repro.pdf import BoxRegion, GaussianPdf, Interval, IntervalSet, UniformPdf

# ---------------------------------------------------------------------------
# PageSynopsis unit tests
# ---------------------------------------------------------------------------


def _dep(attr, lo, hi, mass=1.0, has_pdf=True):
    if not has_pdf:
        return DepSummary(frozenset({attr}), False, 0.0, {})
    return DepSummary(frozenset({attr}), True, mass, {attr: (lo, hi)})


class TestPageSynopsis:
    def test_insert_widens_bounds(self):
        syn = PageSynopsis()
        syn.add({"a": 5}, [_dep("u", 0.0, 1.0, mass=0.8)])
        syn.add({"a": 2}, [_dep("u", -3.0, 0.5, mass=0.4)])
        assert syn.live == 2
        assert syn.certain["a"] == (2.0, 5.0)
        assert syn.uncertain["u"][:2] == [-3.0, 1.0]
        assert syn.uncertain["u"][2] == 0.8  # page-max mass
        assert syn.max_exist_mass == 0.8

    def test_null_values_leave_no_bounds(self):
        syn = PageSynopsis()
        syn.add({"a": None}, [_dep("u", 0, 0, has_pdf=False)])
        assert "a" not in syn.certain
        assert "u" not in syn.uncertain
        # NULL pdf: the tuple exists with certainty.
        assert syn.max_exist_mass == 1.0

    def test_non_numeric_value_disables_pruning(self):
        syn = PageSynopsis()
        syn.add({"a": "text"}, [])
        syn.add({"a": 7}, [])
        lo, hi = syn.certain["a"]
        assert lo == float("-inf") and hi == float("inf")
        # An unbounded entry admits every range test.
        pruner = ScanPruner(certain_ranges={"a": (100.0, 200.0)})
        assert pruner.admits_page(syn)

    def test_delete_decrements_live_only(self):
        syn = PageSynopsis()
        syn.add({"a": 1}, [])
        syn.add({"a": 9}, [])
        syn.remove()
        assert syn.live == 1
        assert syn.certain["a"] == (1.0, 9.0)  # bounds stay (conservative)
        syn.remove()
        assert syn.live == 0
        assert not ScanPruner().admits_page(syn)  # empty page is skippable

    def test_threshold_pruning(self):
        syn = PageSynopsis()
        syn.add({}, [_dep("u", 0.0, 1.0, mass=0.3)])
        admits = ScanPruner(attr_thresholds={"u": [(">=", 0.2)]}).admits_page(syn)
        assert admits
        assert not ScanPruner(attr_thresholds={"u": [(">=", 0.5)]}).admits_page(syn)
        assert not ScanPruner(attr_thresholds={"u": [(">", 0.3)]}).admits_page(syn)
        assert not ScanPruner(exist_thresholds=[(">", 0.3)]).admits_page(syn)
        # Upper bounds cannot refute <= style thresholds.
        assert ScanPruner(attr_thresholds={"u": [("<=", 0.1)]}).admits_page(syn)


# ---------------------------------------------------------------------------
# Table-level synopsis maintenance
# ---------------------------------------------------------------------------


def _make_db(**config_kwargs):
    db = Database(config=ModelConfig(batch_size=64, **config_kwargs))
    db.execute("CREATE TABLE r (rid INT, cval REAL, uval REAL UNCERTAIN)")
    return db


class TestTableSynopses:
    def test_insert_maintains_per_page_bounds(self):
        db = _make_db()
        table = db.table("r")
        for i in range(50):
            table.insert(
                certain={"rid": i, "cval": float(i)},
                uncertain={"uval": GaussianPdf(float(i), 1.0, attr="uval")},
            )
        assert set(table.synopses) == set(table.heap.page_ids)
        total_live = sum(s.live for s in table.synopses.values())
        assert total_live == 50
        for syn in table.synopses.values():
            lo, hi = syn.certain["cval"]
            assert lo <= hi
            assert syn.uncertain["uval"][0] <= syn.uncertain["uval"][1]

    def test_rebuild_matches_incremental(self):
        db = _make_db()
        table = db.table("r")
        rids = []
        for i in range(40):
            pdf = None if i % 7 == 0 else GaussianPdf(float(i), 2.0, attr="uval")
            rids.append(
                table.insert(certain={"rid": i, "cval": float(i)}, uncertain={"uval": pdf})
            )
        for rid in rids[::3]:
            table.delete(rid)
        before = {
            pid: (syn.live, dict(syn.certain), {k: list(v) for k, v in syn.uncertain.items()})
            for pid, syn in table.synopses.items()
        }
        table.rebuild_synopses()
        assert set(table.synopses) == set(before)
        for pid, syn in table.synopses.items():
            live, certain, uncertain = before[pid]
            assert syn.live == live
            # A rebuild sees only live records, so bounds can only tighten.
            for attr, (lo, hi) in syn.certain.items():
                assert certain[attr][0] <= lo and hi <= certain[attr][1]
            for attr, (ulo, uhi, umass) in (
                (a, tuple(v)) for a, v in syn.uncertain.items()
            ):
                assert uncertain[attr][0] <= ulo and uhi <= uncertain[attr][1]
                assert umass <= uncertain[attr][2]

    def test_emptied_page_is_pruned(self):
        db = _make_db()
        table = db.table("r")
        rids = []
        for i in range(60):
            rids.append(
                table.insert(
                    certain={"rid": i, "cval": float(i)},
                    uncertain={"uval": UniformPdf(i, i + 1.0, attr="uval")},
                )
            )
        pages_before = table.candidate_pages(ScanPruner())
        first_page = rids[0].page_id
        for rid in rids:
            if rid.page_id == first_page:
                table.delete(rid)
        pages_after = table.candidate_pages(ScanPruner())
        assert first_page in pages_before
        assert first_page not in pages_after
        res = db.execute("SELECT rid FROM r WHERE cval >= 0")
        assert len(res) == 60 - sum(1 for r in rids if r.page_id == first_page)

    def test_jumbo_records_have_synopses(self):
        db = _make_db()
        db.execute("CREATE TABLE j (rid INT, blob TEXT, uval REAL UNCERTAIN)")
        table = db.table("j")
        table.insert(
            certain={"rid": 1, "blob": "x" * 20000},
            uncertain={"uval": GaussianPdf(5.0, 1.0, attr="uval")},
        )
        table.insert(certain={"rid": 2, "blob": "y"}, uncertain={"uval": None})
        assert sum(s.live for s in table.synopses.values()) == 2
        rows = db.execute("SELECT rid FROM j WHERE uval > 0 AND uval < 10").rows
        assert [t.certain["rid"] for t in rows] == [1]


# ---------------------------------------------------------------------------
# Equivalence: pruned + lazy scans == full scans
# ---------------------------------------------------------------------------

CONFIGS = {
    "baseline": dict(scan_pruning=False, lazy_decode=False),
    "prune": dict(scan_pruning=True, lazy_decode=False),
    "lazy": dict(scan_pruning=False, lazy_decode=True),
    "both": dict(scan_pruning=True, lazy_decode=True),
}


@st.composite
def table_rows(draw, min_size=0, max_size=18):
    """(rid, cval, pdf_spec) rows; pdf_spec builds fresh per database."""
    n = draw(st.integers(min_size, max_size))
    rows = []
    for i in range(n):
        cval = draw(st.one_of(st.none(), st.floats(-20, 20, allow_nan=False)))
        kind = draw(st.integers(0, 3))
        mu = draw(st.floats(-10, 10))
        width = draw(st.floats(0.5, 8))
        cut = draw(st.floats(-12, 12))
        rows.append((i, cval, (kind, mu, width, cut)))
    deleted = draw(
        st.lists(st.integers(0, max(0, n - 1)), unique=True, max_size=n // 2)
        if n
        else st.just([])
    )
    return rows, deleted


def _build_pdf(spec, attr="uval"):
    kind, mu, width, cut = spec
    if kind == 0:
        return None  # NULL pdf
    if kind == 1:
        return GaussianPdf(mu, width, attr=attr)
    if kind == 2:
        return UniformPdf(mu, mu + width, attr=attr)
    # Partial pdf: mass < 1 encodes P(tuple absent) > 0.
    g = GaussianPdf(mu, width, attr=attr)
    return g.restrict(BoxRegion({attr: IntervalSet([Interval(cut, float("inf"))])}))


def _populate(db, rows, deleted):
    table = db.table("r")
    rids = []
    for rid, cval, spec in rows:
        rids.append(
            table.insert(
                certain={"rid": rid, "cval": cval},
                uncertain={"uval": _build_pdf(spec)},
            )
        )
    for i in deleted:
        table.delete(rids[i])


def _row_key(t, schema):
    parts = []
    for attr in schema.visible_attrs:
        if schema.is_uncertain(attr):
            pdf = t.pdf_of_attr(attr)
            parts.append(None if pdf is None else (round(pdf.mass(), 9),))
        else:
            parts.append(t.certain.get(attr))
    return tuple(parts)


def _run(query, rows, deleted, workers=1, **flags):
    PDF_OP_CACHE.reset()
    db = _make_db(workers=workers, **flags)
    _populate(db, rows, deleted)
    res = db.execute(query)
    return sorted(_row_key(t, res.schema) for t in res.rows)


QUERIES = [
    "SELECT rid, cval, uval FROM r WHERE cval > -5 AND cval < 5",
    "SELECT rid FROM r WHERE uval > 0 AND uval < 4",
    "SELECT rid, uval FROM r WHERE cval >= 0 AND uval > -2",
    "SELECT rid FROM r WHERE PROB(uval > 1) >= 0.3",
    "SELECT rid FROM r WHERE PROB(uval > 0 AND uval < 6) > 0.5",
    "SELECT rid FROM r WHERE PROB(*) >= 0.6",
]


@pytest.mark.parametrize("query", QUERIES)
@settings(max_examples=15, deadline=None)
@given(data=table_rows())
def test_pruned_scan_equivalence(query, data):
    rows, deleted = data
    baseline = _run(query, rows, deleted, **CONFIGS["baseline"])
    for name, flags in CONFIGS.items():
        if name == "baseline":
            continue
        assert _run(query, rows, deleted, **flags) == baseline, name


@settings(max_examples=8, deadline=None)
@given(data=table_rows(max_size=14))
def test_pruned_scan_equivalence_parallel(data):
    rows, deleted = data
    query = "SELECT rid, uval FROM r WHERE cval > -8 AND uval > -4 AND uval < 6"
    baseline = _run(query, rows, deleted, workers=1, **CONFIGS["baseline"])
    assert _run(query, rows, deleted, workers=2, **CONFIGS["both"]) == baseline


@settings(max_examples=8, deadline=None)
@given(data=table_rows(min_size=1, max_size=10), lo=st.floats(-6, 6))
def test_pruned_join_equivalence(data, lo):
    rows, deleted = data

    def run(flags, workers=1):
        PDF_OP_CACHE.reset()
        db = _make_db(workers=workers, **flags)
        _populate(db, rows, deleted)
        db.execute("CREATE TABLE s (sid INT, key REAL)")
        for i in range(6):
            db.execute(f"INSERT INTO s VALUES ({i}, {float(i)})")
        res = db.execute(
            "SELECT r.rid, s.sid FROM r, s "
            f"WHERE r.cval = s.key AND r.cval > {lo}"
        )
        return sorted(_row_key(t, res.schema) for t in res.rows)

    baseline = run(CONFIGS["baseline"])
    assert run(CONFIGS["both"]) == baseline
    assert run(CONFIGS["both"], workers=2) == baseline
