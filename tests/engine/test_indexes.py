"""Index tests: B+tree correctness and PTI pruning soundness."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.index.btree import BPlusTree
from repro.engine.index.pti import (
    DEFAULT_LADDER,
    ProbabilityThresholdIndex,
    quantile_of,
)
from repro.engine.storage.heapfile import RID
from repro.errors import IndexError_
from repro.pdf import (
    BoxRegion,
    DiscretePdf,
    GaussianPdf,
    HistogramPdf,
    IntervalSet,
    UniformPdf,
)


def _rid(i):
    return RID(i, 0)


class TestBPlusTree:
    def test_insert_search(self):
        tree = BPlusTree(order=4)
        for i in range(20):
            tree.insert(i, _rid(i))
        assert tree.search(7) == [_rid(7)]
        assert tree.search(99) == []
        assert len(tree) == 20

    def test_duplicates(self):
        tree = BPlusTree(order=4)
        tree.insert(5, _rid(1))
        tree.insert(5, _rid(2))
        assert sorted(tree.search(5)) == [_rid(1), _rid(2)]

    def test_range_scan_sorted(self):
        tree = BPlusTree(order=4)
        import random

        values = list(range(100))
        random.Random(7).shuffle(values)
        for v in values:
            tree.insert(v, _rid(v))
        got = [k for k, _ in tree.range_scan(10, 20)]
        assert got == list(range(10, 21))

    def test_range_scan_exclusive_bounds(self):
        tree = BPlusTree(order=4)
        for v in range(10):
            tree.insert(v, _rid(v))
        got = [k for k, _ in tree.range_scan(3, 7, include_lo=False, include_hi=False)]
        assert got == [4, 5, 6]

    def test_range_scan_unbounded(self):
        tree = BPlusTree(order=4)
        for v in (5, 1, 9):
            tree.insert(v, _rid(v))
        assert [k for k, _ in tree.range_scan()] == [1, 5, 9]
        assert [k for k, _ in tree.range_scan(hi=5)] == [1, 5]
        assert [k for k, _ in tree.range_scan(lo=5)] == [5, 9]

    def test_string_keys(self):
        tree = BPlusTree(order=4)
        for word in ["pear", "apple", "mango"]:
            tree.insert(word, _rid(hash(word) % 100))
        assert [k for k, _ in tree.range_scan()] == ["apple", "mango", "pear"]

    def test_delete(self):
        tree = BPlusTree(order=4)
        tree.insert(5, _rid(1))
        tree.insert(5, _rid(2))
        assert tree.delete(5, _rid(1))
        assert tree.search(5) == [_rid(2)]
        assert not tree.delete(5, _rid(1))
        assert tree.delete(5, _rid(2))
        assert tree.search(5) == []

    def test_depth_grows(self):
        tree = BPlusTree(order=4)
        for i in range(200):
            tree.insert(i, _rid(i))
        assert tree.depth() >= 3
        tree.check_invariants()

    def test_order_validation(self):
        with pytest.raises(IndexError_):
            BPlusTree(order=2)


@settings(max_examples=30, deadline=None)
@given(
    keys=st.lists(st.integers(min_value=-1000, max_value=1000), min_size=1, max_size=300),
    lo=st.integers(min_value=-1000, max_value=1000),
    hi=st.integers(min_value=-1000, max_value=1000),
)
def test_btree_matches_sorted_list(keys, lo, hi):
    tree = BPlusTree(order=6)
    for i, k in enumerate(keys):
        tree.insert(k, _rid(i))
    tree.check_invariants()
    lo, hi = min(lo, hi), max(lo, hi)
    got = sorted(k for k, _ in tree.range_scan(lo, hi))
    expected = sorted(k for k in keys if lo <= k <= hi)
    assert got == expected


class TestQuantileOf:
    def test_gaussian_uses_closed_form(self):
        g = GaussianPdf(10, 4)
        assert quantile_of(g, 0.5) == pytest.approx(10.0)

    def test_histogram_bisection(self):
        h = HistogramPdf([0, 10], [1.0])
        assert quantile_of(h, 0.25) == pytest.approx(2.5, abs=1e-6)

    def test_floored_partial(self):
        g = GaussianPdf(0, 1).restrict(BoxRegion({"x": IntervalSet.less_than(0)}))
        q = quantile_of(g, 0.25)
        assert float(g.cdf(q)) == pytest.approx(0.25, abs=1e-6)


class TestPti:
    def _index_with(self, pdfs):
        index = ProbabilityThresholdIndex("value")
        for i, pdf in enumerate(pdfs):
            index.insert(_rid(i), pdf)
        return index

    def test_support_pruning(self):
        index = self._index_with([GaussianPdf(10, 1), GaussianPdf(50, 1)])
        cands = index.candidates(45, 55, threshold=0.0)
        assert cands == [_rid(1)]

    def test_threshold_pruning(self):
        # Gaussian(10,1): P(in [14, 20]) is tiny; prune at threshold 0.5.
        index = self._index_with([GaussianPdf(10, 1), GaussianPdf(15, 1)])
        cands = index.candidates(14, 20, threshold=0.5)
        assert cands == [_rid(1)]

    def test_soundness_never_prunes_qualifying(self):
        """The index invariant: every qualifying record survives pruning."""
        rng = np.random.default_rng(5)
        pdfs = [
            GaussianPdf(float(rng.uniform(0, 100)), float(rng.uniform(0.5, 9)))
            for _ in range(60)
        ]
        index = self._index_with(pdfs)
        for _ in range(40):
            lo = float(rng.uniform(0, 100))
            hi = lo + float(rng.uniform(0.5, 20))
            threshold = float(rng.uniform(0, 0.9))
            window = IntervalSet.between(lo, hi)
            cands = set(index.candidates(lo, hi, threshold))
            for i, pdf in enumerate(pdfs):
                exact = pdf.prob_interval(window)
                if exact >= threshold and exact > 0:
                    assert _rid(i) in cands, (lo, hi, threshold, i)

    def test_pruning_actually_prunes(self):
        pdfs = [GaussianPdf(float(m), 1.0) for m in range(0, 100, 5)]
        index = self._index_with(pdfs)
        assert index.selectivity(40, 45, threshold=0.5) < 0.5

    def test_delete(self):
        index = self._index_with([UniformPdf(0, 1)])
        assert index.delete(_rid(0))
        assert not index.delete(_rid(0))
        assert index.candidates(0, 1) == []

    def test_empty_range(self):
        index = self._index_with([UniformPdf(0, 1)])
        assert index.candidates(5, 4) == []

    def test_ladder_validation(self):
        with pytest.raises(IndexError_):
            ProbabilityThresholdIndex("v", ladder=[0.5, 1.0])

    def test_selectivity_empty_index(self):
        index = ProbabilityThresholdIndex("v")
        assert index.selectivity(0, 1) == 1.0

    def test_partial_pdfs_indexed(self):
        partial = GaussianPdf(10, 1).restrict(
            BoxRegion({"x": IntervalSet.less_than(10)})
        )
        index = self._index_with([partial])
        assert index.candidates(5, 9, threshold=0.2) == [_rid(0)]
        # Mass above 10 is floored away entirely.
        assert index.candidates(11, 20, threshold=0.2) == []
