"""ANALYZE statistics and the cost-based planner.

Covers the statistics module (equi-depth histograms over certain values
and pdf support midpoints, mass histograms, null fractions), the
stats-gated cost-based access-path and join choices, and the EXPLAIN /
EXPLAIN ANALYZE surface: every scan type must report estimated rows, and
EXPLAIN ANALYZE must add actual row counts.
"""

import random
import re

import pytest

from repro import Database
from repro.core.model import ModelConfig
from repro.engine.stats import analyze_table


def _insert_many(db, n=200, spread=100.0, seed=11):
    rng = random.Random(seed)
    for i in range(n):
        mu = rng.uniform(0, spread)
        db.execute(f"INSERT INTO r VALUES ({i}, {i % 50}, GAUSSIAN({mu:.4f}, 1.0))")


@pytest.fixture
def db():
    db = Database(config=ModelConfig(batch_size=64))
    db.execute("CREATE TABLE r (rid INT, grp INT, value REAL UNCERTAIN)")
    return db


def plan(db, sql):
    return db.execute("EXPLAIN " + sql).plan_text


class TestAnalyze:
    def test_analyze_builds_stats(self, db):
        _insert_many(db, 120)
        res = db.execute("ANALYZE r")
        assert "ANALYZE" in res.message
        stats = db.table("r").statistics
        assert stats is not None
        assert stats.row_count == 120
        assert stats.page_count == db.table("r").heap.num_pages
        assert {"rid", "grp", "value"} <= set(stats.columns)
        assert stats.columns["value"].uncertain
        assert not stats.columns["rid"].uncertain

    def test_analyze_all_tables(self, db):
        db.execute("CREATE TABLE s (sid INT)")
        db.execute("INSERT INTO s VALUES (1)")
        _insert_many(db, 30)
        db.execute("ANALYZE")
        assert db.table("r").statistics is not None
        assert db.table("s").statistics is not None

    def test_histogram_selectivity_is_calibrated(self, db):
        # rid is uniform over 0..199: a quarter-range should estimate ~25%.
        _insert_many(db, 200)
        stats = analyze_table(db.table("r"))
        sel = stats.selectivity("rid", 50, 99)
        assert 0.18 <= sel <= 0.32
        assert stats.selectivity("rid", -100, -50) == 0.0
        # Support-midpoint histogram for the uncertain column spans the data.
        col = stats.columns["value"]
        assert col.lo >= -10 and col.hi <= 110

    def test_null_fraction(self, db):
        for i in range(20):
            pdf = "NULL" if i % 4 == 0 else "GAUSSIAN(5, 1)"
            db.execute(f"INSERT INTO r VALUES ({i}, 0, {pdf})")
        stats = analyze_table(db.table("r"))
        assert stats.columns["value"].null_frac == pytest.approx(0.25)

    def test_mass_fraction(self, db):
        _insert_many(db, 40)
        stats = analyze_table(db.table("r"))
        col = stats.columns["value"]
        # Complete Gaussians carry (almost) all their mass.
        assert col.mass_fraction(0.5) > 0.9
        assert col.mean_mass == pytest.approx(1.0, abs=0.01)


class TestCostBasedChoices:
    def test_btree_rule_based_without_stats(self, db):
        _insert_many(db, 10)
        db.execute("CREATE INDEX ON r (rid)")
        assert "BTreeScan" in plan(db, "SELECT rid FROM r WHERE rid < 3")

    def test_small_table_prefers_seq_after_analyze(self, db):
        # 10 rows on one page: a probe + fetches costs more than one page read.
        _insert_many(db, 10)
        db.execute("CREATE INDEX ON r (rid)")
        db.execute("ANALYZE r")
        assert "SeqScan" in plan(db, "SELECT rid FROM r WHERE rid >= 0")

    def test_selective_range_prefers_btree_after_analyze(self, db):
        _insert_many(db, 400)
        db.execute("CREATE INDEX ON r (rid)")
        db.execute("ANALYZE r")
        assert "BTreeScan" in plan(db, "SELECT rid FROM r WHERE rid < 4")

    def test_wide_range_prefers_seq_after_analyze(self, db):
        _insert_many(db, 400)
        db.execute("CREATE INDEX ON r (rid)")
        db.execute("ANALYZE r")
        assert "SeqScan" in plan(db, "SELECT rid FROM r WHERE rid >= 0")

    def test_tiny_join_prefers_nested_loop_after_analyze(self, db):
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (y INT)")
        db.execute("INSERT INTO a VALUES (1), (2)")
        db.execute("INSERT INTO b VALUES (1), (2)")
        sql = "SELECT a.x FROM a, b WHERE a.x = b.y"
        assert "HashJoin" in plan(db, sql)  # rule-based without stats
        db.execute("ANALYZE")
        assert "NestedLoopJoin" in plan(db, sql)

    def test_large_join_keeps_hash_after_analyze(self, db):
        db.execute("CREATE TABLE a (x INT)")
        db.execute("CREATE TABLE b (y INT)")
        for i in range(30):
            db.execute(f"INSERT INTO a VALUES ({i})")
            db.execute(f"INSERT INTO b VALUES ({i})")
        db.execute("ANALYZE")
        assert "HashJoin" in plan(db, "SELECT a.x FROM a, b WHERE a.x = b.y")


class TestExplainEstimates:
    def test_seq_scan_reports_estimates(self, db):
        _insert_many(db, 50)
        text = plan(db, "SELECT rid FROM r WHERE rid < 10")
        assert re.search(r"SeqScan\(r\)\s+\[est=\d+", text)

    def test_all_scan_types_report_est_and_actual(self, db):
        _insert_many(db, 200)
        db.execute("CREATE TABLE o (oid INT, x REAL UNCERTAIN, y REAL UNCERTAIN, DEPENDENCY (x, y))")
        for i in range(60):
            db.execute(
                f"INSERT INTO o VALUES ({i}, "
                f"JOINT_GAUSSIAN([{float(i)}, {float(i)}], [[1, 0], [0, 1]]))"
            )
        db.execute("CREATE INDEX ON r (rid)")
        db.execute("CREATE PROB INDEX ON r (value)")
        db.execute("CREATE SPATIAL INDEX ON o (x, y)")
        db.execute("ANALYZE")

        cases = {
            "BTreeScan": "SELECT rid FROM r WHERE rid < 5",
            "PtiScan": "SELECT rid FROM r WHERE PROB(value > 99) >= 0.9",
            "SpatialScan": "SELECT oid FROM o WHERE x > 1 AND x < 4 AND y > 1 AND y < 4",
            "SeqScan": "SELECT rid FROM r WHERE grp < 10",
        }
        for scan, sql in cases.items():
            text = db.execute("EXPLAIN ANALYZE " + sql).plan_text
            match = re.search(rf"{scan}\([^)]*\)\s+\[est=(\d+) actual=(\d+)", text)
            assert match, f"{scan} missing est/actual in:\n{text}"

    def test_explain_analyze_counts_match(self, db):
        _insert_many(db, 80)
        sql = "SELECT rid FROM r WHERE grp < 5"
        expected = len(db.execute(sql))
        text = db.execute("EXPLAIN ANALYZE " + sql).plan_text
        match = re.search(r"Filter\([^]]*\[est=\d+ actual=(\d+)", text)
        assert match and int(match.group(1)) == expected

    def test_plain_explain_has_no_actual(self, db):
        _insert_many(db, 30)
        text = plan(db, "SELECT rid FROM r WHERE rid < 5")
        assert "actual=" not in text
        assert "est=" in text
