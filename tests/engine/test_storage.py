"""Storage layer tests: pages, disks, buffer pool, heap files."""

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.storage.buffer import BufferPool
from repro.engine.storage.disk import FileDisk, MemoryDisk
from repro.engine.storage.heapfile import HeapFile, RID
from repro.engine.storage.page import JumboPage, PAGE_SIZE, Page, page_capacity
from repro.errors import StorageError


class TestPage:
    def test_insert_read(self):
        page = Page()
        slot = page.insert(b"hello")
        assert page.read(slot) == b"hello"

    def test_multiple_records(self):
        page = Page()
        slots = [page.insert(f"record-{i}".encode()) for i in range(10)]
        for i, slot in enumerate(slots):
            assert page.read(slot) == f"record-{i}".encode()

    def test_records_iterates_live(self):
        page = Page()
        page.insert(b"a")
        s = page.insert(b"b")
        page.insert(b"c")
        page.delete(s)
        assert [rec for _, rec in page.records()] == [b"a", b"c"]

    def test_delete_twice_rejected(self):
        page = Page()
        s = page.insert(b"x")
        page.delete(s)
        with pytest.raises(StorageError):
            page.delete(s)

    def test_read_deleted_rejected(self):
        page = Page()
        s = page.insert(b"x")
        page.delete(s)
        with pytest.raises(StorageError):
            page.read(s)

    def test_bad_slot_rejected(self):
        page = Page()
        with pytest.raises(StorageError):
            page.read(0)

    def test_free_space_decreases(self):
        page = Page()
        before = page.free_space()
        page.insert(b"x" * 100)
        assert page.free_space() < before - 100

    def test_overflow_rejected(self):
        page = Page()
        with pytest.raises(StorageError):
            page.insert(b"x" * PAGE_SIZE)

    def test_fill_until_full(self):
        page = Page()
        count = 0
        record = b"y" * 100
        while page.free_space() >= len(record):
            page.insert(record)
            count += 1
        assert count == len(list(page.records()))
        with pytest.raises(StorageError):
            page.insert(record)

    def test_dirty_tracking(self):
        page = Page()
        assert not page.dirty
        page.insert(b"x")
        assert page.dirty


class TestJumboPage:
    def test_holds_one_big_record(self):
        record = b"z" * (PAGE_SIZE * 3)
        page = JumboPage.for_record(record)
        assert page.read(0) == record
        assert list(page.records()) == [(0, record)]

    def test_delete(self):
        page = JumboPage.for_record(b"big" * 2000)
        page.delete(0)
        assert not page.is_live(0)
        assert list(page.records()) == []

    def test_no_second_insert(self):
        page = JumboPage.for_record(b"big")
        with pytest.raises(StorageError):
            page.insert(b"more")

    def test_roundtrip_through_bytes(self):
        record = b"q" * 10_000
        page = JumboPage.for_record(record)
        reloaded = JumboPage(data=bytearray(page.data))
        assert reloaded.read(0) == record


class TestMemoryDisk:
    def test_allocate_write_read(self):
        disk = MemoryDisk()
        pid = disk.allocate()
        disk.write_page(pid, b"\x01" * PAGE_SIZE)
        assert bytes(disk.read_page(pid)) == b"\x01" * PAGE_SIZE

    def test_read_unwritten_rejected(self):
        disk = MemoryDisk()
        pid = disk.allocate()
        with pytest.raises(StorageError):
            disk.read_page(pid)

    def test_write_unallocated_rejected(self):
        disk = MemoryDisk()
        with pytest.raises(StorageError):
            disk.write_page(5, b"x")

    def test_io_units_for_jumbo(self):
        disk = MemoryDisk()
        pid = disk.allocate()
        disk.write_page(pid, b"x" * (PAGE_SIZE * 2 + 1))
        assert disk.counters.writes == 3
        disk.read_page(pid)
        assert disk.counters.reads == 3


class TestFileDisk:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "data.db")
        with FileDisk(path) as disk:
            pid = disk.allocate()
            disk.write_page(pid, b"\x07" * PAGE_SIZE)
            assert bytes(disk.read_page(pid)) == b"\x07" * PAGE_SIZE

    def test_update_appends_then_compact(self, tmp_path):
        path = str(tmp_path / "data.db")
        with FileDisk(path) as disk:
            pid = disk.allocate()
            disk.write_page(pid, b"a" * PAGE_SIZE)
            disk.write_page(pid, b"b" * PAGE_SIZE)
            size_before = os.path.getsize(path)
            disk.compact()
            assert os.path.getsize(path) < size_before
            assert bytes(disk.read_page(pid)) == b"b" * PAGE_SIZE


class TestBufferPool:
    def test_hit_and_miss_counting(self):
        pool = BufferPool(MemoryDisk(), capacity=2)
        pid = pool.new_page()
        pool.get_page(pid)
        assert pool.stats.hits == 1
        pool.clear()
        pool.get_page(pid)
        assert pool.stats.misses == 1

    def test_lru_eviction_writes_dirty(self):
        pool = BufferPool(MemoryDisk(), capacity=2)
        pids = [pool.new_page() for _ in range(3)]
        # Creating the 3rd page evicts the 1st (dirty -> flushed).
        assert pool.stats.evictions >= 1
        assert pool.disk.counters.writes >= 1
        page = pool.get_page(pids[0])  # physical read back
        assert pool.disk.counters.reads >= 1

    def test_eviction_order_is_lru(self):
        pool = BufferPool(MemoryDisk(), capacity=2)
        a = pool.new_page()
        b = pool.new_page()
        pool.get_page(a)  # touch a: b is now LRU
        c = pool.new_page()  # evicts b
        pool.disk.counters.reset()
        pool.get_page(a)
        assert pool.disk.counters.reads == 0  # still cached
        pool.get_page(b)
        assert pool.disk.counters.reads == 1  # was evicted

    def test_flush_all_persists(self):
        disk = MemoryDisk()
        pool = BufferPool(disk, capacity=8)
        pid = pool.new_page()
        pool.get_page(pid).insert(b"data")
        pool.flush_all()
        assert pid in disk

    def test_capacity_validation(self):
        with pytest.raises(StorageError):
            BufferPool(MemoryDisk(), capacity=0)


class TestHeapFile:
    def _heap(self, capacity=64):
        return HeapFile(BufferPool(MemoryDisk(), capacity=capacity), name="t")

    def test_insert_read(self):
        heap = self._heap()
        rid = heap.insert(b"hello")
        assert heap.read(rid) == b"hello"
        assert len(heap) == 1

    def test_scan_in_order(self):
        heap = self._heap()
        records = [f"r{i}".encode() for i in range(100)]
        for r in records:
            heap.insert(r)
        assert [rec for _, rec in heap.scan()] == records

    def test_spills_to_multiple_pages(self):
        heap = self._heap()
        for _ in range(100):
            heap.insert(b"x" * 200)
        assert heap.num_pages > 1

    def test_jumbo_record(self):
        heap = self._heap()
        big = b"B" * (PAGE_SIZE * 2)
        rid = heap.insert(big)
        assert heap.read(rid) == big

    def test_mixed_sizes_scan(self):
        heap = self._heap()
        small = b"s" * 10
        big = b"B" * (page_capacity() + 100)
        heap.insert(small)
        heap.insert(big)
        heap.insert(small)
        # Scans run in page order: the second small record lands back on the
        # first ordinary page, before the jumbo page.
        assert sorted(rec for _, rec in heap.scan()) == sorted([small, big, small])
        assert len(heap) == 3

    def test_delete(self):
        heap = self._heap()
        rid1 = heap.insert(b"a")
        rid2 = heap.insert(b"b")
        heap.delete(rid1)
        assert len(heap) == 1
        assert [rec for _, rec in heap.scan()] == [b"b"]

    def test_read_foreign_rid_rejected(self):
        heap = self._heap()
        heap.insert(b"a")
        with pytest.raises(StorageError):
            heap.read(RID(999, 0))

    def test_delete_foreign_rid_rejected(self):
        """delete() must reject RIDs whose page was never part of this file.

        Regression test: delete() used to skip the membership check read()
        performs, so a stray RID could corrupt an unrelated file's page.
        """
        pool = BufferPool(MemoryDisk(), capacity=8)
        heap = HeapFile(pool, name="t")
        other = HeapFile(pool, name="other")
        rid_other = other.insert(b"x")
        heap.insert(b"a")
        with pytest.raises(StorageError):
            heap.delete(RID(999, 0))
        with pytest.raises(StorageError):
            heap.delete(rid_other)
        assert len(other) == 1
        assert other.read(rid_other) == b"x"

    def test_survives_buffer_pressure(self):
        """Data outlives eviction: everything reads back after cache churn."""
        heap = self._heap(capacity=2)
        records = [os.urandom(500) for _ in range(50)]
        rids = [heap.insert(r) for r in records]
        for rid, expected in zip(rids, records):
            assert heap.read(rid) == expected


@settings(max_examples=25, deadline=None)
@given(
    sizes=st.lists(st.integers(min_value=0, max_value=9000), min_size=1, max_size=40)
)
def test_heapfile_roundtrip_property(sizes):
    heap = HeapFile(BufferPool(MemoryDisk(), capacity=4), name="t")
    records = [bytes([i % 256]) * size for i, size in enumerate(sizes)]
    rids = [heap.insert(r) for r in records]
    assert len(set(rids)) == len(rids)
    for rid, expected in zip(rids, records):
        assert heap.read(rid) == expected
    assert sorted(rec for _, rec in heap.scan()) == sorted(records)
