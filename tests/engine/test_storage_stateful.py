"""Stateful property tests: storage structures vs simple reference models.

Hypothesis drives random interleavings of inserts, deletes, reads and scans
against a heap file (reference: a dict) and a B+tree (reference: a sorted
multimap), under a tiny buffer pool so evictions happen constantly.
"""

import hypothesis.strategies as st
import pytest
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.engine.index.btree import BPlusTree
from repro.engine.storage.buffer import BufferPool
from repro.engine.storage.disk import MemoryDisk
from repro.engine.storage.heapfile import HeapFile, RID


class HeapFileMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.heap = HeapFile(BufferPool(MemoryDisk(), capacity=2), name="m")
        self.reference = {}
        self.counter = 0

    @rule(size=st.integers(min_value=0, max_value=6000))
    def insert(self, size):
        payload = self.counter.to_bytes(4, "little") * max(size // 4, 1)
        self.counter += 1
        rid = self.heap.insert(payload)
        assert rid not in self.reference
        self.reference[rid] = payload

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def read_existing(self, data):
        rid = data.draw(st.sampled_from(sorted(self.reference)))
        assert self.heap.read(rid) == self.reference[rid]

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def delete_existing(self, data):
        rid = data.draw(st.sampled_from(sorted(self.reference)))
        self.heap.delete(rid)
        del self.reference[rid]

    @invariant()
    def record_count_matches(self):
        assert len(self.heap) == len(self.reference)

    @invariant()
    def scan_matches_reference(self):
        scanned = {rid: data for rid, data in self.heap.scan()}
        assert scanned == self.reference


class BTreeMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.tree = BPlusTree(order=4)
        self.reference = []  # list of (key, rid)
        self.counter = 0

    @rule(key=st.integers(min_value=-100, max_value=100))
    def insert(self, key):
        rid = RID(self.counter, 0)
        self.counter += 1
        self.tree.insert(key, rid)
        self.reference.append((key, rid))

    @precondition(lambda self: self.reference)
    @rule(data=st.data())
    def delete_existing(self, data):
        key, rid = data.draw(st.sampled_from(self.reference))
        assert self.tree.delete(key, rid)
        self.reference.remove((key, rid))

    @rule(key=st.integers(min_value=-100, max_value=100))
    def search(self, key):
        expected = sorted(rid for k, rid in self.reference if k == key)
        assert sorted(self.tree.search(key)) == expected

    @rule(
        lo=st.integers(min_value=-120, max_value=120),
        hi=st.integers(min_value=-120, max_value=120),
    )
    def range_scan(self, lo, hi):
        lo, hi = min(lo, hi), max(lo, hi)
        got = sorted((k, rid) for k, rid in self.tree.range_scan(lo, hi))
        expected = sorted((k, rid) for k, rid in self.reference if lo <= k <= hi)
        assert got == expected

    @invariant()
    def structure_valid(self):
        self.tree.check_invariants()
        assert len(self.tree) == len(self.reference)


TestHeapFileStateful = HeapFileMachine.TestCase
TestBTreeStateful = BTreeMachine.TestCase
