"""Grammar-driven SQL fuzzing: any input, only :class:`ReproError` out.

Two layers of generation feed ``Database.execute``:

* a *grammar* strategy composing syntactically plausible statements from
  the dialect's productions (often valid, sometimes semantically wrong —
  unknown tables, arity errors, bad thresholds);
* raw token soup and mutations of a seed corpus (``sql_corpus/``), which
  are almost never valid and stress the lexer/parser error paths.

The engine contract under fuzzing: every failure is a ``ReproError``
subclass — never a bare ``Exception``, ``TypeError``, numpy warning
escalation, or interpreter-level crash — and a failed statement leaves
the database consistent (autocommit rollback).
"""

from __future__ import annotations

import os

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine.database import Database
from repro.errors import ReproError

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "sql_corpus")


def corpus_statements():
    out = []
    for name in sorted(os.listdir(CORPUS_DIR)):
        if not name.endswith(".sql"):
            continue
        with open(os.path.join(CORPUS_DIR, name)) as f:
            for line in f:
                line = line.strip()
                if line and not line.startswith("--"):
                    out.append(line.rstrip(";"))
    return out


CORPUS = corpus_statements()


def test_corpus_exists_and_is_nontrivial():
    assert len(CORPUS) >= 12


# ---------------------------------------------------------------------------
# Grammar strategies
# ---------------------------------------------------------------------------

_names = st.sampled_from(["t", "s", "r", "missing", "T", "x1"])
_attrs = st.sampled_from(["a", "b", "v", "temp", "nope", "rid"])
_numbers = st.one_of(
    st.integers(-100, 100),
    st.floats(
        min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
    ),
)


@st.composite
def _pdf_expr(draw):
    kind = draw(st.integers(0, 4))
    a = draw(_numbers)
    b = draw(_numbers)
    if kind == 0:
        return f"GAUSSIAN({a}, {b})"
    if kind == 1:
        return f"UNIFORM({a}, {b})"
    if kind == 2:
        p = draw(st.floats(min_value=-0.5, max_value=1.5))
        return f"DISCRETE({a}:{p}, {b}:{1.0 - p})"
    if kind == 3:
        return f"HISTOGRAM(0, {a}, {b} ; 0.5, 0.5)"
    return f"JOINT_GAUSSIAN([{a}, {b}], [[1, 0.5], [0.5, 1]])"


@st.composite
def _predicate(draw):
    attr = draw(_attrs)
    op = draw(st.sampled_from([">", "<", ">=", "<=", "="]))
    val = draw(_numbers)
    base = f"{attr} {op} {val}"
    if draw(st.booleans()):
        attr2 = draw(_attrs)
        conj = draw(st.sampled_from(["AND", "OR"]))
        base = f"{base} {conj} {attr2} {op} {val}"
    return base


@st.composite
def _statement(draw):
    kind = draw(st.integers(0, 9))
    name = draw(_names)
    attr = draw(_attrs)
    if kind == 0:
        extra = draw(st.sampled_from(["", " UNCERTAIN"]))
        dep = draw(st.sampled_from(["", f", DEPENDENCY ({attr}, b)"]))
        return f"CREATE TABLE {name} (rid INT, {attr} REAL{extra}{dep})"
    if kind == 1:
        pdf = draw(_pdf_expr())
        return f"INSERT INTO {name} VALUES ({draw(_numbers)}, {pdf})"
    if kind == 2:
        pred = draw(_predicate())
        return f"SELECT rid, {attr} FROM {name} WHERE {pred}"
    if kind == 3:
        p = draw(st.floats(min_value=-1, max_value=2))
        op = draw(st.sampled_from([">", ">=", "<", "<="]))
        inner = draw(st.sampled_from(["*", f"{attr} > {draw(_numbers)}"]))
        return f"SELECT rid FROM {name} WHERE PROB({inner}) {op} {p}"
    if kind == 4:
        idx = draw(st.sampled_from(["INDEX", "PROB INDEX", "SPATIAL INDEX"]))
        return f"CREATE {idx} ON {name} ({attr})"
    if kind == 5:
        return draw(
            st.sampled_from(
                [
                    f"DROP TABLE {name}",
                    f"ANALYZE {name}",
                    "BEGIN",
                    "COMMIT",
                    "ROLLBACK",
                ]
            )
        )
    if kind == 6:
        pred = draw(_predicate())
        return f"DELETE FROM {name} WHERE {pred}"
    if kind == 7:
        pdf = draw(_pdf_expr())
        return f"UPDATE {name} SET {attr} = {pdf} WHERE rid = {draw(_numbers)}"
    if kind == 8:
        agg = draw(st.sampled_from(["COUNT(*)", f"SUM({attr})", f"AVG({attr})"]))
        group = draw(st.sampled_from(["", " GROUP BY rid"]))
        return f"SELECT {agg} FROM {name}{group}"
    return f"CREATE TABLE {name}2 AS SELECT rid FROM {name} WHERE PROB(*) >= 0.5"


def _mutate(sql: str, cut: int, insert: str) -> str:
    pos = cut % (len(sql) + 1)
    return sql[:pos] + insert + sql[pos:]


_FUZZ_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _check(db: Database, sql: str) -> None:
    try:
        db.execute(sql)
    except ReproError:
        pass  # the only admissible failure
    # anything else propagates and fails the test


@given(stmts=st.lists(_statement(), min_size=1, max_size=8))
@_FUZZ_SETTINGS
def test_grammar_fuzz_only_repro_errors(stmts):
    db = Database()
    for sql in stmts:
        _check(db, sql)


@given(
    seed=st.sampled_from(CORPUS) if CORPUS else st.just(""),
    cut=st.integers(0, 500),
    junk=st.sampled_from(
        ["(", ")", ",", ";", "''", "PROB", "SELECT", "\x00", "🙂", "1e999", "--", "'"]
    ),
)
@_FUZZ_SETTINGS
def test_corpus_mutation_fuzz(seed, cut, junk):
    db = Database()
    for sql in CORPUS[:4]:
        _check(db, sql)  # a little live schema for the mutants to hit
    _check(db, _mutate(seed, cut, junk))


@given(
    soup=st.text(
        alphabet=st.sampled_from(
            list("SELECTFROMWHEREPROB()*<>=.,;'\"0123456789 abcxyz\n\t-+[]:")
        ),
        max_size=80,
    )
)
@_FUZZ_SETTINGS
def test_token_soup_never_escapes(soup):
    _check(Database(), soup)


@given(stmts=st.lists(_statement(), min_size=2, max_size=6))
@_FUZZ_SETTINGS
def test_failed_statements_leave_database_consistent(stmts):
    """A failing statement must roll back: the dump before equals the
    dump after, and the database still answers queries."""
    db = Database()
    db.execute("CREATE TABLE base (rid INT, v REAL UNCERTAIN)")
    db.execute("INSERT INTO base VALUES (1, GAUSSIAN(0, 1))")
    for sql in stmts:
        before = db.dump_state()
        try:
            db.execute(sql)
        except ReproError:
            if not db.catalog.txn.active:
                assert db.dump_state() == before
    if db.catalog.txn.active:
        db.abort()
    assert db.execute("SELECT rid FROM base").rowcount >= 0


def test_corpus_replays_clean():
    """Every corpus statement is dialect-valid against the seed schema."""
    db = Database()
    for sql in CORPUS:
        db.execute(sql)
