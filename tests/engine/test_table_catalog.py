"""Table and catalog tests: persistence, indexes, history integration."""

import pytest

from repro.core import Column, DataType, ProbabilisticSchema
from repro.engine.catalog import Catalog
from repro.engine.storage.disk import FileDisk, MemoryDisk
from repro.errors import CatalogError, QueryError
from repro.pdf import DiscretePdf, GaussianPdf, JointGaussianPdf


def _readings_schema():
    return ProbabilisticSchema(
        [Column("rid", DataType.INT), Column("value", DataType.REAL)], [{"value"}]
    )


@pytest.fixture
def catalog():
    return Catalog(buffer_capacity=16)


@pytest.fixture
def table(catalog):
    t = catalog.create_table("readings", _readings_schema())
    t.insert(certain={"rid": 1}, uncertain={"value": GaussianPdf(20, 5)})
    t.insert(certain={"rid": 2}, uncertain={"value": GaussianPdf(25, 4)})
    t.insert(certain={"rid": 3}, uncertain={"value": GaussianPdf(13, 1)})
    return t


class TestTable:
    def test_insert_scan_roundtrip(self, table):
        rows = list(table.scan())
        assert len(rows) == 3
        _, t = rows[0]
        assert t.certain["rid"] == 1
        assert t.pdf_of_attr("value").params["mean"] == 20.0

    def test_read_by_rid(self, table):
        rid, t0 = next(iter(table.scan()))
        assert table.read(rid).tuple_id == t0.tuple_id

    def test_lineage_persisted(self, table):
        _, t = next(iter(table.scan()))
        (link,) = t.lineage[frozenset({"value"})]
        assert link.ref in table.store

    def test_lineage_omitted_when_disabled(self):
        catalog = Catalog(store_lineage=False)
        t = catalog.create_table("r", _readings_schema())
        t.insert(certain={"rid": 1}, uncertain={"value": GaussianPdf(0, 1)})
        _, row = next(iter(t.scan()))
        assert row.lineage[frozenset({"value"})] == frozenset()

    def test_delete_phantomizes_history(self, table):
        rid, t = next(iter(table.scan()))
        store = table.store
        # Simulate an outstanding derived reference.
        lineage = t.lineage[frozenset({"value"})]
        store.acquire(lineage)
        table.delete(rid)
        (link,) = lineage
        assert store.is_phantom(link.ref)
        assert len(table) == 2

    def test_btree_index_maintained(self, table):
        tree = table.create_btree_index("rid")
        assert len(tree.search(2)) == 1
        rid4 = table.insert(certain={"rid": 4}, uncertain={"value": GaussianPdf(1, 1)})
        assert tree.search(4) == [rid4]
        table.delete(rid4)
        assert tree.search(4) == []

    def test_btree_on_uncertain_rejected(self, table):
        with pytest.raises(QueryError):
            table.create_btree_index("value")

    def test_pti_index_maintained(self, table):
        pti = table.create_pti_index("value")
        assert len(pti) == 3
        rid4 = table.insert(certain={"rid": 4}, uncertain={"value": GaussianPdf(90, 1)})
        assert rid4 in pti.candidates(85, 95)
        table.delete(rid4)
        assert rid4 not in pti.candidates(85, 95)

    def test_pti_on_certain_rejected(self, table):
        with pytest.raises(QueryError):
            table.create_pti_index("rid")

    def test_duplicate_index_rejected(self, table):
        table.create_btree_index("rid")
        with pytest.raises(CatalogError):
            table.create_btree_index("rid")

    def test_joint_attr_pti(self, catalog):
        schema = ProbabilisticSchema(
            [Column("oid", DataType.INT), Column("x"), Column("y")], [{"x", "y"}]
        )
        t = catalog.create_table("objects", schema)
        t.insert(
            certain={"oid": 1},
            uncertain={("x", "y"): JointGaussianPdf(("x", "y"), [5, 5], [[1, 0.5], [0.5, 1]])},
        )
        pti = t.create_pti_index("x")
        assert len(pti) == 1
        assert pti.candidates(4, 6) != []

    def test_stats(self, table):
        stats = table.stats()
        assert stats["rows"] == 3
        assert stats["pages"] >= 1


class TestCatalog:
    def test_create_get_drop(self, catalog):
        catalog.create_table("t", _readings_schema())
        assert catalog.has_table("T")  # case-insensitive
        catalog.get_table("t")
        catalog.drop_table("t")
        assert not catalog.has_table("t")

    def test_duplicate_rejected(self, catalog):
        catalog.create_table("t", _readings_schema())
        with pytest.raises(CatalogError):
            catalog.create_table("T", _readings_schema())

    def test_unknown_table_rejected(self, catalog):
        with pytest.raises(CatalogError):
            catalog.get_table("nope")
        with pytest.raises(CatalogError):
            catalog.drop_table("nope")

    def test_drop_releases_history(self, catalog):
        t = catalog.create_table("t", _readings_schema())
        t.insert(certain={"rid": 1}, uncertain={"value": GaussianPdf(0, 1)})
        assert len(catalog.store) == 1
        catalog.drop_table("t")
        assert len(catalog.store) == 0

    def test_file_backed_catalog(self, tmp_path):
        disk = FileDisk(str(tmp_path / "db.bin"))
        catalog = Catalog(disk=disk, buffer_capacity=2)
        t = catalog.create_table("r", _readings_schema())
        for i in range(300):
            t.insert(certain={"rid": i}, uncertain={"value": GaussianPdf(i, 1)})
        values = sorted(row.certain["rid"] for _, row in t.scan())
        assert values == list(range(300))
        assert disk.counters.reads > 0  # buffer pressure forced real reads
        disk.close()
