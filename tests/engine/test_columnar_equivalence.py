"""Columnar struct-of-arrays execution ≡ batched ≡ scalar ≡ parallel.

The columnar path decodes scans into per-family parameter arrays and sweeps
selection and PROB thresholds with fused ufunc kernels
(:mod:`repro.core.columnar`, ``SelectionPlan.apply_columnar``).  These tests
pin the acceptance criterion of the columnar work: for relations spanning
every symbolic family, histogram pdfs, explicit discrete pdfs, floored
partials, and NULLs, all four execution modes produce bitwise-identical
tuples in identical order — same ids, same certain values, same pdfs, same
masses.  Also covered: the EXPLAIN ANALYZE columnar counters, the
relation-level segment cache invalidation, and the pickle boundary of
:class:`ColumnarBatch`.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Column,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
)
from repro.core.expr import ColExpr
from repro.core.history import HistoryStore
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.core.predicates import And, Comparison, col
from repro.engine.catalog import Catalog
from repro.engine.executor import (
    AggSpec,
    Compute,
    Filter,
    GroupAggregate,
    HashJoin,
    ProbFilter,
    Project,
    RelationScan,
    SeqScan,
    ThresholdFilter,
)
from repro.engine.executor.batch import TupleBatch
from repro.engine.executor.columnar import ColumnarBatch
from repro.engine.sql.planner import execute_plan
from repro.pdf import (
    BernoulliPdf,
    BetaPdf,
    BinomialPdf,
    BoxRegion,
    DiscretePdf,
    ExponentialPdf,
    GammaPdf,
    GaussianPdf,
    GeometricPdf,
    HistogramPdf,
    Interval,
    IntervalSet,
    LognormalPdf,
    PoissonPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)

BATCH_SIZES = (1, 3, 7, 64)


def _schema():
    return ProbabilisticSchema(
        [Column("sid", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
    )


def _pdf_for(i: int):
    """Deterministic all-families rotation, including edge shapes."""
    kind = i % 16
    if kind == 0:
        return GaussianPdf(i % 11, 1.0 + (i % 3), attr="v")
    if kind == 1:
        return UniformPdf(i % 7, i % 7 + 4.0, attr="v")
    if kind == 2:
        return ExponentialPdf(0.3 + (i % 5) / 5.0, attr="v")
    if kind == 3:
        lo = float(i % 5)
        return TriangularPdf(lo, lo + 1.5, lo + 4.0, attr="v")
    if kind == 4:
        return GammaPdf(1.0 + (i % 4), 0.5 + (i % 3) / 2.0, attr="v")
    if kind == 5:
        return LognormalPdf((i % 5) / 2.0, 0.3 + (i % 3) / 4.0, attr="v")
    if kind == 6:
        return BetaPdf(1.0 + (i % 4), 1.0 + ((i + 1) % 4), attr="v")
    if kind == 7:
        return WeibullPdf(0.8 + (i % 3), 2.0 + (i % 4), attr="v")
    if kind == 8:
        return BernoulliPdf(0.1 + (i % 8) / 10.0, attr="v")
    if kind == 9:
        return BinomialPdf(4 + (i % 9), 0.2 + (i % 6) / 10.0, attr="v")
    if kind == 10:
        return PoissonPdf(1.0 + (i % 7), attr="v")
    if kind == 11:
        return GeometricPdf(0.15 + (i % 7) / 10.0, attr="v")
    if kind == 12:
        return HistogramPdf(
            [float(i % 4), i % 4 + 2.0, i % 4 + 3.0, i % 4 + 6.0],
            [0.2, 0.5, 0.3],
            attr="v",
        )
    if kind == 13:
        return DiscretePdf({float(i % 5): 0.25, i % 5 + 2.0: 0.75}, attr="v")
    if kind == 14:
        # Floored partial: the columnar path must fall back per-row here.
        g = GaussianPdf(i % 9, 2.0, attr="v")
        return g.restrict(
            BoxRegion({"v": IntervalSet([Interval(float(i % 3), float("inf"))])})
        )
    return None  # NULL pdf


def _all_families_relation(n=64):
    rel = ProbabilisticRelation(_schema(), name="zoo")
    for i in range(n):
        rel.insert(certain={"sid": i}, uncertain={"v": _pdf_for(i)})
    return rel


def _assert_bitwise_equal(expected, actual):
    """Tuples equal down to the bit: ids, certain, pdfs, masses, order."""
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a.tuple_id == b.tuple_id
        assert a.certain == b.certain
        assert set(a.pdfs) == set(b.pdfs)
        assert set(a.lineage) == set(b.lineage)
        for dep, pa in a.pdfs.items():
            pb = b.pdfs[dep]
            if pa is None:
                assert pb is None
                continue
            assert type(pa) is type(pb)
            assert pa.attrs == pb.attrs
            assert pa == pb
            assert pa.mass() == pb.mass()  # bitwise, no tolerance


def _four_ways(make_plan, parallel_columnar=True):
    """Rows from scalar, legacy-batched, columnar, and parallel execution."""
    PDF_OP_CACHE.reset()
    scalar = list(make_plan(False))
    modes = {}
    for size in BATCH_SIZES:
        PDF_OP_CACHE.reset()
        modes[("batched", size)] = [
            t for b in make_plan(False).batches(size) for t in b.tuples
        ]
        PDF_OP_CACHE.reset()
        modes[("columnar", size)] = [
            t for b in make_plan(True).batches(size) for t in b.tuples
        ]
    PDF_OP_CACHE.reset()
    modes[("parallel", 16)] = execute_plan(
        make_plan(parallel_columnar),
        ModelConfig(
            workers=2, morsel_size=9, batch_size=16, columnar=parallel_columnar
        ),
    )
    return scalar, modes


PRED = And([Comparison("v", ">", 2.0), Comparison("v", "<", 7.5)])


def test_filter_columnar_equivalence_all_families():
    rel = _all_families_relation()

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return Filter(RelationScan(rel, columnar=columnar), PRED, rel.store, cfg)

    scalar, modes = _four_ways(make_plan)
    assert len(scalar) > 0
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_threshold_filter_columnar_equivalence_all_families():
    rel = _all_families_relation()

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return ThresholdFilter(
            RelationScan(rel, columnar=columnar), ["v"], ">", 0.3, rel.store, cfg
        )

    scalar, modes = _four_ways(make_plan)
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_prob_filter_columnar_equivalence_all_families():
    rel = _all_families_relation()

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return ProbFilter(
            RelationScan(rel, columnar=columnar),
            Comparison("v", ">", 3.0),
            ">",
            0.25,
            rel.store,
            cfg,
        )

    scalar, modes = _four_ways(make_plan)
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


@settings(max_examples=25, deadline=None)
@given(
    kinds=st.lists(st.integers(0, 15), min_size=0, max_size=24),
    lo=st.floats(-2, 8),
    width=st.floats(0.5, 8),
    size=st.sampled_from(BATCH_SIZES),
)
def test_filter_columnar_equivalence_property(kinds, lo, width, size):
    rel = ProbabilisticRelation(_schema(), name="r")
    for i, kind in enumerate(kinds):
        rel.insert(certain={"sid": i}, uncertain={"v": _pdf_for(kind)})
    pred = And([Comparison("v", ">", lo), Comparison("v", "<", lo + width)])

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return Filter(RelationScan(rel, columnar=columnar), pred, rel.store, cfg)

    PDF_OP_CACHE.reset()
    scalar = list(make_plan(False))
    PDF_OP_CACHE.reset()
    columnar_rows = [t for b in make_plan(True).batches(size) for t in b.tuples]
    _assert_bitwise_equal(scalar, columnar_rows)


def test_explain_analyze_reports_columnar_stats():
    rel = _all_families_relation()
    cfg = ModelConfig(columnar=True)
    plan = Filter(RelationScan(rel, columnar=True), PRED, rel.store, cfg)
    for _ in plan.batches(16):
        pass
    text = plan.explain()
    assert "columnar_batches=" in text
    assert "columnar_rows=" in text
    assert "kernels=" in text
    assert "GaussianPdf" in text


def test_columnar_switch_off_yields_plain_batches():
    rel = _all_families_relation(16)
    for batch in RelationScan(rel, columnar=False).batches(8):
        assert type(batch) is TupleBatch
    for batch in RelationScan(rel, columnar=True).batches(8):
        assert type(batch) is ColumnarBatch


def test_project_identity_preserves_columnar_batches():
    rel = _all_families_relation(16)
    plan = Project(RelationScan(rel, columnar=True), ["sid", "v"])
    batches = list(plan.batches(8))
    assert all(type(b) is ColumnarBatch for b in batches)
    assert [t.tuple_id for b in batches for t in b.tuples] == [
        t.tuple_id for t in rel.tuples
    ]


def test_segment_cache_invalidated_on_mutation():
    rel = _all_families_relation(8)
    seg = rel.columnar_segment()
    assert rel.columnar_segment() is seg  # cached
    rel.insert(certain={"sid": 99}, uncertain={"v": GaussianPdf(0, 1, attr="v")})
    seg2 = rel.columnar_segment()
    assert seg2 is not seg
    assert seg2.n == len(rel.tuples)
    # Scans after the mutation see the new row.
    rows = [t for b in RelationScan(rel, columnar=True).batches(4) for t in b.tuples]
    assert rows[-1].certain["sid"] == 99


def test_columnar_batch_pickles_to_plain_batch():
    rel = _all_families_relation(32)
    (batch,) = list(RelationScan(rel, columnar=True).batches(64))
    assert type(batch) is ColumnarBatch
    assert batch.attr_column(frozenset({"v"})) is not None
    clone = pickle.loads(pickle.dumps(batch))
    assert type(clone) is TupleBatch
    _assert_bitwise_equal(batch.tuples, clone.tuples)


def test_stale_segment_falls_back_to_none():
    """A batch whose cached segment no longer matches returns None from
    attr_column, forcing callers onto the reference path."""
    rel = _all_families_relation(8)
    (batch,) = list(RelationScan(rel, columnar=True).batches(16))
    seg = batch.segment
    assert seg is not None
    # Shrink the snapshot under the batch: offset+len now exceeds seg.n.
    batch.offset = seg.n - len(batch.tuples) + 1
    assert batch.attr_column(frozenset({"v"})) is None


# ---------------------------------------------------------------------------
# Columnar hash join / GROUP BY / Compute equivalence
# ---------------------------------------------------------------------------


def _join_relations(n=48, keys=None, null_pdfs=True):
    """Uncertain readings (all pdf families, NULL join keys) + certain dim.

    ``null_pdfs=False`` skips the NULL-pdf rotation slot — EXPECTED over a
    NULL attribute is a QueryError by design, so aggregate workloads need
    the zoo without it.
    """
    store = HistoryStore()
    readings = ProbabilisticRelation(
        ProbabilisticSchema(
            [
                Column("rid", DataType.INT),
                Column("site", DataType.INT),
                Column("v", DataType.REAL),
            ],
            [{"v"}],
        ),
        store=store,
        name="readings",
    )
    for i in range(n):
        if keys is not None:
            site = keys[i % len(keys)]
        else:
            site = None if i % 11 == 10 else i % 6
        kind = i % 15 if not null_pdfs else i
        readings.insert(
            certain={"rid": i, "site": site}, uncertain={"v": _pdf_for(kind)}
        )
    sites = ProbabilisticRelation(
        ProbabilisticSchema(
            [Column("site_id", DataType.INT), Column("region", DataType.INT)]
        ),
        store=store,
        name="sites",
    )
    for s in range(6):
        sites.insert(certain={"site_id": s, "region": s % 2})
    return store, readings, sites


def _modes_with_id_reset(store, make_plan):
    """Scalar/batched/columnar rows with the id counter pinned per run.

    Joins and aggregates mint fresh tuple ids; resetting the store's
    counter to the same snapshot before every run makes the id streams —
    and therefore the bitwise comparison — exact, not modulo renumbering.
    """
    id0 = store._next_tuple_id

    def fresh(columnar):
        store._next_tuple_id = id0
        PDF_OP_CACHE.reset()
        return make_plan(columnar)

    scalar = list(fresh(False))
    modes = {}
    for size in BATCH_SIZES:
        modes[("batched", size)] = [
            t for b in fresh(False).batches(size) for t in b.tuples
        ]
        modes[("columnar", size)] = [
            t for b in fresh(True).batches(size) for t in b.tuples
        ]
    store._next_tuple_id = id0
    return scalar, modes


def _no_id_key(rows):
    """Row fingerprints without tuple ids (parallel runs renumber)."""
    return [
        (
            tuple(sorted(t.certain.items())),
            tuple(
                (tuple(sorted(dep)), repr(pdf))
                for dep, pdf in sorted(t.pdfs.items(), key=lambda kv: sorted(kv[0]))
            ),
        )
        for t in rows
    ]


def _make_join(store, readings, sites, predicate=None):
    def make(columnar):
        cfg = ModelConfig(columnar=columnar)
        return HashJoin(
            RelationScan(readings, columnar=columnar),
            RelationScan(sites, columnar=columnar),
            "site",
            "site_id",
            predicate
            if predicate is not None
            else Comparison("site", "=", col("site_id")),
            store,
            cfg,
        )

    return make


def test_hash_join_columnar_equivalence_null_keys():
    store, readings, sites = _join_relations()
    make_plan = _make_join(store, readings, sites)
    scalar, modes = _modes_with_id_reset(store, make_plan)
    # NULL keys never match, everything else does: n minus the NULL rows.
    assert len(scalar) == sum(
        1 for t in readings.tuples if t.certain["site"] is not None
    )
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_hash_join_parallel_matches_modulo_ids():
    store, readings, sites = _join_relations()
    make_plan = _make_join(store, readings, sites)
    id0 = store._next_tuple_id
    scalar = list(make_plan(False))
    store._next_tuple_id = id0
    rows = execute_plan(
        make_plan(True),
        ModelConfig(workers=2, morsel_size=9, batch_size=16, columnar=True),
    )
    # Parallel morsels renumber output ids; contents and order still match.
    assert _no_id_key(scalar) == _no_id_key(rows)


def test_hash_join_uncertain_residual_predicate():
    """A probabilistic residual rides along with the key equality."""
    store, readings, sites = _join_relations()
    pred = And(
        [Comparison("site", "=", col("site_id")), Comparison("v", ">", 3.0)]
    )
    make_plan = _make_join(store, readings, sites, predicate=pred)
    scalar, modes = _modes_with_id_reset(store, make_plan)
    assert 0 < len(scalar)
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_hash_join_string_keys_fall_back():
    """TEXT keys cannot ride the float64 probe; the dict path must kick in."""
    store = HistoryStore()
    left = ProbabilisticRelation(
        ProbabilisticSchema(
            [Column("rid", DataType.INT), Column("tag", DataType.TEXT)]
        ),
        store=store,
        name="left",
    )
    for i in range(12):
        left.insert(certain={"rid": i, "tag": f"t{i % 3}"})
    right = ProbabilisticRelation(
        ProbabilisticSchema(
            [Column("tag_id", DataType.TEXT), Column("label", DataType.TEXT)]
        ),
        store=store,
        name="right",
    )
    for s in range(3):
        right.insert(certain={"tag_id": f"t{s}", "label": f"L{s}"})

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return HashJoin(
            RelationScan(left, columnar=columnar),
            RelationScan(right, columnar=columnar),
            "tag",
            "tag_id",
            Comparison("tag", "=", col("tag_id")),
            store,
            cfg,
        )

    scalar, modes = _modes_with_id_reset(store, make_plan)
    assert len(scalar) == 12
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)
    store._next_tuple_id += 1000
    plan = make_plan(True)
    list(plan.batches(8))
    assert plan.join_probe_kernels == 0  # fell back, never vectorized


def test_hash_join_huge_int_keys_fall_back():
    """Keys >= 2**53 lose bits in float64; the probe must not use them."""
    big = 2**53
    store, readings, sites = _join_relations(keys=[big, big + 1, big + 2])
    sites2 = ProbabilisticRelation(
        ProbabilisticSchema(
            [Column("site_id", DataType.INT), Column("region", DataType.INT)]
        ),
        store=store,
        name="sites2",
    )
    for s in range(3):
        sites2.insert(certain={"site_id": big + s, "region": s})
    make_plan = _make_join(store, readings, sites2)
    scalar, modes = _modes_with_id_reset(store, make_plan)
    assert len(scalar) == len(readings.tuples)
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_hash_join_empty_inputs():
    store = HistoryStore()
    readings = ProbabilisticRelation(
        ProbabilisticSchema(
            [
                Column("rid", DataType.INT),
                Column("site", DataType.INT),
                Column("v", DataType.REAL),
            ],
            [{"v"}],
        ),
        store=store,
        name="readings",
    )
    sites = ProbabilisticRelation(
        ProbabilisticSchema(
            [Column("site_id", DataType.INT), Column("region", DataType.INT)]
        ),
        store=store,
        name="sites",
    )
    make_plan = _make_join(store, readings, sites)
    assert list(make_plan(False)) == []
    assert [t for b in make_plan(True).batches(4) for t in b.tuples] == []


def test_hash_join_explain_probe_kernels():
    store, readings, sites = _join_relations()
    plan = _make_join(store, readings, sites)(True)
    list(plan.batches(16))
    assert plan.join_probe_kernels > 0
    assert f"join_probe_kernels={plan.join_probe_kernels}" in plan.explain()


def _make_groupby(store, readings, sites):
    join = _make_join(store, readings, sites)

    def make(columnar):
        cfg = ModelConfig(columnar=columnar)
        return GroupAggregate(
            join(columnar),
            ["region"],
            [AggSpec("count"), AggSpec("expected", "v")],
            store,
            cfg,
        )

    return make


def test_group_aggregate_columnar_equivalence():
    """COUNT + EXPECTED per region over the all-families join stream."""
    store, readings, sites = _join_relations(null_pdfs=False)
    make_plan = _make_groupby(store, readings, sites)
    scalar, modes = _modes_with_id_reset(store, make_plan)
    assert len(scalar) == 2  # two regions
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_group_aggregate_null_group_keys():
    """NULL grouping keys form their own group, as in SQL."""
    store = HistoryStore()
    rel = ProbabilisticRelation(_schema(), store=store, name="r")
    for i in range(24):
        rel.insert(
            certain={"sid": None if i % 5 == 4 else i % 3},
            uncertain={"v": _pdf_for(i % 15)},  # no NULL pdfs: EXPECTED rejects them
        )

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return GroupAggregate(
            RelationScan(rel, columnar=columnar),
            ["sid"],
            [AggSpec("count"), AggSpec("expected", "v")],
            store,
            cfg,
        )

    scalar, modes = _modes_with_id_reset(store, make_plan)
    assert len(scalar) == 4  # 0, 1, 2, NULL
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_group_aggregate_explain_groups():
    store, readings, sites = _join_relations(null_pdfs=False)
    plan = _make_groupby(store, readings, sites)(True)
    list(plan.batches(16))
    assert plan.groupby_groups > 0
    assert f"groupby_groups={plan.groupby_groups}" in plan.explain()


def _make_compute(store, readings):
    # rid / site divides by zero for site == 0 and hits NULL site rows:
    # both must come back NULL, bitwise-identically, on every path.
    items = [
        (ColExpr("rid") / ColExpr("site"), "ratio"),
        (ColExpr("rid") * 2.0 + 1.0, "shifted"),
    ]

    def make(columnar):
        cfg = ModelConfig(columnar=columnar)
        return Compute(RelationScan(readings, columnar=columnar), items, store, cfg)

    return make


def test_compute_columnar_equivalence_nulls_div_zero():
    store, readings, _ = _join_relations()
    make_plan = _make_compute(store, readings)
    scalar, modes = _modes_with_id_reset(store, make_plan)
    by_rid = {t.certain["rid"]: t for t in scalar}
    assert by_rid[0].certain["ratio"] is None  # 0 / 0 -> NULL
    assert by_rid[10].certain["ratio"] is None  # NULL site -> NULL
    assert by_rid[7].certain["ratio"] == 7.0  # 7 / 1
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_compute_explain_kernels():
    store, readings, _ = _join_relations()
    plan = _make_compute(store, readings)(True)
    list(plan.batches(16))
    assert plan.compute_kernels > 0
    assert f"compute_kernels={plan.compute_kernels}" in plan.explain()


@settings(max_examples=25, deadline=None)
@given(
    data=st.lists(
        st.tuples(
            st.one_of(st.none(), st.integers(0, 5)), st.integers(0, 14)
        ),
        min_size=0,
        max_size=24,
    ),
    size=st.sampled_from(BATCH_SIZES),
)
def test_join_groupby_columnar_equivalence_property(data, size):
    """Random key/pdf mixes: join + GROUP BY agree scalar vs columnar."""
    store, readings, sites = _join_relations(n=0)
    for i, (site, kind) in enumerate(data):
        readings.insert(
            certain={"rid": i, "site": site}, uncertain={"v": _pdf_for(kind)}
        )
    make_plan = _make_groupby(store, readings, sites)
    id0 = store._next_tuple_id
    PDF_OP_CACHE.reset()
    scalar = list(make_plan(False))
    store._next_tuple_id = id0
    PDF_OP_CACHE.reset()
    columnar_rows = [t for b in make_plan(True).batches(size) for t in b.tuples]
    _assert_bitwise_equal(scalar, columnar_rows)


# ---------------------------------------------------------------------------
# Direct page -> segment decoding (SeqScan)
# ---------------------------------------------------------------------------


def _seq_table():
    catalog = Catalog()
    t = catalog.create_table("readings", _schema())
    for i in range(32):
        t.insert(certain={"sid": i}, uncertain={"v": _pdf_for(i)})
    return t


def test_seqscan_direct_decode_counter():
    t = _seq_table()
    scan = SeqScan(t, columnar=True)
    rows = [tp for b in scan.batches(8) for tp in b.tuples]
    assert len(rows) == 32
    assert scan.direct_decode_rows > 0
    assert f"direct_decode_rows={scan.direct_decode_rows}" in scan.explain()


def test_seqscan_direct_decode_off_when_not_columnar():
    t = _seq_table()
    scan = SeqScan(t, columnar=False)
    rows = [tp for b in scan.batches(8) for tp in b.tuples]
    assert len(rows) == 32
    assert scan.direct_decode_rows == 0
    assert "direct_decode_rows=" not in scan.explain()


def test_seqscan_direct_decode_matches_reference():
    t = _seq_table()
    reference = [tp for b in SeqScan(t, columnar=False).batches(8) for tp in b.tuples]
    direct = [tp for b in SeqScan(t, columnar=True).batches(8) for tp in b.tuples]
    _assert_bitwise_equal(reference, direct)
