"""Columnar struct-of-arrays execution ≡ batched ≡ scalar ≡ parallel.

The columnar path decodes scans into per-family parameter arrays and sweeps
selection and PROB thresholds with fused ufunc kernels
(:mod:`repro.core.columnar`, ``SelectionPlan.apply_columnar``).  These tests
pin the acceptance criterion of the columnar work: for relations spanning
every symbolic family, histogram pdfs, explicit discrete pdfs, floored
partials, and NULLs, all four execution modes produce bitwise-identical
tuples in identical order — same ids, same certain values, same pdfs, same
masses.  Also covered: the EXPLAIN ANALYZE columnar counters, the
relation-level segment cache invalidation, and the pickle boundary of
:class:`ColumnarBatch`.
"""

from __future__ import annotations

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Column,
    DataType,
    ProbabilisticRelation,
    ProbabilisticSchema,
)
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.core.predicates import And, Comparison
from repro.engine.executor import (
    Filter,
    ProbFilter,
    Project,
    RelationScan,
    ThresholdFilter,
)
from repro.engine.executor.batch import TupleBatch
from repro.engine.executor.columnar import ColumnarBatch
from repro.engine.sql.planner import execute_plan
from repro.pdf import (
    BernoulliPdf,
    BetaPdf,
    BinomialPdf,
    BoxRegion,
    DiscretePdf,
    ExponentialPdf,
    GammaPdf,
    GaussianPdf,
    GeometricPdf,
    HistogramPdf,
    Interval,
    IntervalSet,
    LognormalPdf,
    PoissonPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)

BATCH_SIZES = (1, 3, 7, 64)


def _schema():
    return ProbabilisticSchema(
        [Column("sid", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
    )


def _pdf_for(i: int):
    """Deterministic all-families rotation, including edge shapes."""
    kind = i % 16
    if kind == 0:
        return GaussianPdf(i % 11, 1.0 + (i % 3), attr="v")
    if kind == 1:
        return UniformPdf(i % 7, i % 7 + 4.0, attr="v")
    if kind == 2:
        return ExponentialPdf(0.3 + (i % 5) / 5.0, attr="v")
    if kind == 3:
        lo = float(i % 5)
        return TriangularPdf(lo, lo + 1.5, lo + 4.0, attr="v")
    if kind == 4:
        return GammaPdf(1.0 + (i % 4), 0.5 + (i % 3) / 2.0, attr="v")
    if kind == 5:
        return LognormalPdf((i % 5) / 2.0, 0.3 + (i % 3) / 4.0, attr="v")
    if kind == 6:
        return BetaPdf(1.0 + (i % 4), 1.0 + ((i + 1) % 4), attr="v")
    if kind == 7:
        return WeibullPdf(0.8 + (i % 3), 2.0 + (i % 4), attr="v")
    if kind == 8:
        return BernoulliPdf(0.1 + (i % 8) / 10.0, attr="v")
    if kind == 9:
        return BinomialPdf(4 + (i % 9), 0.2 + (i % 6) / 10.0, attr="v")
    if kind == 10:
        return PoissonPdf(1.0 + (i % 7), attr="v")
    if kind == 11:
        return GeometricPdf(0.15 + (i % 7) / 10.0, attr="v")
    if kind == 12:
        return HistogramPdf(
            [float(i % 4), i % 4 + 2.0, i % 4 + 3.0, i % 4 + 6.0],
            [0.2, 0.5, 0.3],
            attr="v",
        )
    if kind == 13:
        return DiscretePdf({float(i % 5): 0.25, i % 5 + 2.0: 0.75}, attr="v")
    if kind == 14:
        # Floored partial: the columnar path must fall back per-row here.
        g = GaussianPdf(i % 9, 2.0, attr="v")
        return g.restrict(
            BoxRegion({"v": IntervalSet([Interval(float(i % 3), float("inf"))])})
        )
    return None  # NULL pdf


def _all_families_relation(n=64):
    rel = ProbabilisticRelation(_schema(), name="zoo")
    for i in range(n):
        rel.insert(certain={"sid": i}, uncertain={"v": _pdf_for(i)})
    return rel


def _assert_bitwise_equal(expected, actual):
    """Tuples equal down to the bit: ids, certain, pdfs, masses, order."""
    assert len(expected) == len(actual)
    for a, b in zip(expected, actual):
        assert a.tuple_id == b.tuple_id
        assert a.certain == b.certain
        assert set(a.pdfs) == set(b.pdfs)
        assert set(a.lineage) == set(b.lineage)
        for dep, pa in a.pdfs.items():
            pb = b.pdfs[dep]
            if pa is None:
                assert pb is None
                continue
            assert type(pa) is type(pb)
            assert pa.attrs == pb.attrs
            assert pa == pb
            assert pa.mass() == pb.mass()  # bitwise, no tolerance


def _four_ways(make_plan, parallel_columnar=True):
    """Rows from scalar, legacy-batched, columnar, and parallel execution."""
    PDF_OP_CACHE.reset()
    scalar = list(make_plan(False))
    modes = {}
    for size in BATCH_SIZES:
        PDF_OP_CACHE.reset()
        modes[("batched", size)] = [
            t for b in make_plan(False).batches(size) for t in b.tuples
        ]
        PDF_OP_CACHE.reset()
        modes[("columnar", size)] = [
            t for b in make_plan(True).batches(size) for t in b.tuples
        ]
    PDF_OP_CACHE.reset()
    modes[("parallel", 16)] = execute_plan(
        make_plan(parallel_columnar),
        ModelConfig(
            workers=2, morsel_size=9, batch_size=16, columnar=parallel_columnar
        ),
    )
    return scalar, modes


PRED = And([Comparison("v", ">", 2.0), Comparison("v", "<", 7.5)])


def test_filter_columnar_equivalence_all_families():
    rel = _all_families_relation()

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return Filter(RelationScan(rel, columnar=columnar), PRED, rel.store, cfg)

    scalar, modes = _four_ways(make_plan)
    assert len(scalar) > 0
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_threshold_filter_columnar_equivalence_all_families():
    rel = _all_families_relation()

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return ThresholdFilter(
            RelationScan(rel, columnar=columnar), ["v"], ">", 0.3, rel.store, cfg
        )

    scalar, modes = _four_ways(make_plan)
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


def test_prob_filter_columnar_equivalence_all_families():
    rel = _all_families_relation()

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return ProbFilter(
            RelationScan(rel, columnar=columnar),
            Comparison("v", ">", 3.0),
            ">",
            0.25,
            rel.store,
            cfg,
        )

    scalar, modes = _four_ways(make_plan)
    for rows in modes.values():
        _assert_bitwise_equal(scalar, rows)


@settings(max_examples=25, deadline=None)
@given(
    kinds=st.lists(st.integers(0, 15), min_size=0, max_size=24),
    lo=st.floats(-2, 8),
    width=st.floats(0.5, 8),
    size=st.sampled_from(BATCH_SIZES),
)
def test_filter_columnar_equivalence_property(kinds, lo, width, size):
    rel = ProbabilisticRelation(_schema(), name="r")
    for i, kind in enumerate(kinds):
        rel.insert(certain={"sid": i}, uncertain={"v": _pdf_for(kind)})
    pred = And([Comparison("v", ">", lo), Comparison("v", "<", lo + width)])

    def make_plan(columnar):
        cfg = ModelConfig(columnar=columnar)
        return Filter(RelationScan(rel, columnar=columnar), pred, rel.store, cfg)

    PDF_OP_CACHE.reset()
    scalar = list(make_plan(False))
    PDF_OP_CACHE.reset()
    columnar_rows = [t for b in make_plan(True).batches(size) for t in b.tuples]
    _assert_bitwise_equal(scalar, columnar_rows)


def test_explain_analyze_reports_columnar_stats():
    rel = _all_families_relation()
    cfg = ModelConfig(columnar=True)
    plan = Filter(RelationScan(rel, columnar=True), PRED, rel.store, cfg)
    for _ in plan.batches(16):
        pass
    text = plan.explain()
    assert "columnar_batches=" in text
    assert "columnar_rows=" in text
    assert "kernels=" in text
    assert "GaussianPdf" in text


def test_columnar_switch_off_yields_plain_batches():
    rel = _all_families_relation(16)
    for batch in RelationScan(rel, columnar=False).batches(8):
        assert type(batch) is TupleBatch
    for batch in RelationScan(rel, columnar=True).batches(8):
        assert type(batch) is ColumnarBatch


def test_project_identity_preserves_columnar_batches():
    rel = _all_families_relation(16)
    plan = Project(RelationScan(rel, columnar=True), ["sid", "v"])
    batches = list(plan.batches(8))
    assert all(type(b) is ColumnarBatch for b in batches)
    assert [t.tuple_id for b in batches for t in b.tuples] == [
        t.tuple_id for t in rel.tuples
    ]


def test_segment_cache_invalidated_on_mutation():
    rel = _all_families_relation(8)
    seg = rel.columnar_segment()
    assert rel.columnar_segment() is seg  # cached
    rel.insert(certain={"sid": 99}, uncertain={"v": GaussianPdf(0, 1, attr="v")})
    seg2 = rel.columnar_segment()
    assert seg2 is not seg
    assert seg2.n == len(rel.tuples)
    # Scans after the mutation see the new row.
    rows = [t for b in RelationScan(rel, columnar=True).batches(4) for t in b.tuples]
    assert rows[-1].certain["sid"] == 99


def test_columnar_batch_pickles_to_plain_batch():
    rel = _all_families_relation(32)
    (batch,) = list(RelationScan(rel, columnar=True).batches(64))
    assert type(batch) is ColumnarBatch
    assert batch.attr_column(frozenset({"v"})) is not None
    clone = pickle.loads(pickle.dumps(batch))
    assert type(clone) is TupleBatch
    _assert_bitwise_equal(batch.tuples, clone.tuples)


def test_stale_segment_falls_back_to_none():
    """A batch whose cached segment no longer matches returns None from
    attr_column, forcing callers onto the reference path."""
    rel = _all_families_relation(8)
    (batch,) = list(RelationScan(rel, columnar=True).batches(16))
    seg = batch.segment
    assert seg is not None
    # Shrink the snapshot under the batch: offset+len now exceeds seg.n.
    batch.offset = seg.n - len(batch.tuples) + 1
    assert batch.attr_column(frozenset({"v"})) is None
