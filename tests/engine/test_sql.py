"""SQL front-end tests: lexer, parser, and statement shapes."""

import pytest

from repro.engine.sql import ast
from repro.engine.sql.lexer import tokenize
from repro.engine.sql.parser import parse
from repro.errors import SqlLexError, SqlParseError
from repro.pdf import (
    CategoricalPdf,
    DiscretePdf,
    GaussianPdf,
    HistogramPdf,
    JointDiscretePdf,
    JointGaussianPdf,
)


class TestLexer:
    def test_basic_tokens(self):
        tokens = tokenize("SELECT a FROM t WHERE x >= 1.5")
        kinds = [t.kind for t in tokens]
        assert kinds == ["KEYWORD", "NAME", "KEYWORD", "NAME", "KEYWORD", "NAME", "OP", "NUMBER", "EOF"]

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].kind == "KEYWORD"
        assert tokenize("SeLeCt")[0].kind == "KEYWORD"

    def test_string_escaping(self):
        (tok, _) = tokenize("'it''s'")
        assert tok.kind == "STRING" and tok.value == "it's"

    def test_comments_stripped(self):
        tokens = tokenize("SELECT -- comment here\n1")
        assert [t.kind for t in tokens] == ["KEYWORD", "NUMBER", "EOF"]

    def test_scientific_numbers(self):
        assert tokenize("1.5e-3")[0].value == "1.5e-3"

    def test_ne_spellings(self):
        assert tokenize("<>")[0].value == "!="
        assert tokenize("!=")[0].value == "!="

    def test_unknown_char(self):
        with pytest.raises(SqlLexError):
            tokenize("SELECT ¤")


class TestCreateTable:
    def test_basic(self):
        stmt = parse(
            "CREATE TABLE readings (rid INT, value REAL UNCERTAIN)"
        )
        assert isinstance(stmt, ast.CreateTable)
        assert stmt.name == "readings"
        assert stmt.columns[0] == ast.ColumnDef("rid", "int", False)
        assert stmt.columns[1] == ast.ColumnDef("value", "real", True)

    def test_dependency_clause(self):
        stmt = parse(
            "CREATE TABLE objects (oid INT, x REAL, y REAL, DEPENDENCY (x, y))"
        )
        assert stmt.dependencies == [["x", "y"]]

    def test_type_aliases(self):
        stmt = parse("CREATE TABLE t (a INTEGER, b DOUBLE, c VARCHAR, d BOOLEAN)")
        assert [c.dtype for c in stmt.columns] == ["int", "real", "text", "bool"]

    def test_missing_type_rejected(self):
        with pytest.raises(SqlParseError):
            parse("CREATE TABLE t (a)")


class TestInsert:
    def test_simple_values(self):
        stmt = parse("INSERT INTO t VALUES (1, 2.5, 'text', TRUE, NULL)")
        row = stmt.rows[0]
        assert [v.value for v in row] == [1, 2.5, "text", True, None]
        assert isinstance(row[0].value, int)
        assert isinstance(row[1].value, float)

    def test_negative_numbers(self):
        stmt = parse("INSERT INTO t VALUES (-5, -2.5)")
        assert [v.value for v in stmt.rows[0]] == [-5, -2.5]

    def test_named_columns(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 2)")
        assert stmt.columns == ["a", "b"]

    def test_multi_row(self):
        stmt = parse("INSERT INTO t VALUES (1), (2), (3)")
        assert len(stmt.rows) == 3

    def test_gaussian_literal(self):
        stmt = parse("INSERT INTO t VALUES (GAUSSIAN(20, 5))")
        pdf = stmt.rows[0][0].pdf
        assert isinstance(pdf, GaussianPdf)
        assert pdf.params == {"mean": 20.0, "variance": 5.0}

    def test_gaus_alias(self):
        stmt = parse("INSERT INTO t VALUES (GAUS(20, 5))")
        assert isinstance(stmt.rows[0][0].pdf, GaussianPdf)

    def test_discrete_literal(self):
        stmt = parse("INSERT INTO t VALUES (DISCRETE(0: 0.1, 1: 0.9))")
        pdf = stmt.rows[0][0].pdf
        assert isinstance(pdf, DiscretePdf)
        assert float(pdf.pdf_at(1)) == pytest.approx(0.9)

    def test_categorical_literal(self):
        stmt = parse("INSERT INTO t VALUES (CATEGORICAL('cat': 0.7, 'dog': 0.3))")
        pdf = stmt.rows[0][0].pdf
        assert isinstance(pdf, CategoricalPdf)
        assert pdf.prob_label("cat") == pytest.approx(0.7)

    def test_histogram_literal(self):
        stmt = parse("INSERT INTO t VALUES (HISTOGRAM(0, 10, 20 ; 0.4, 0.6))")
        pdf = stmt.rows[0][0].pdf
        assert isinstance(pdf, HistogramPdf)
        assert pdf.num_buckets == 2

    def test_joint_gaussian_literal(self):
        stmt = parse(
            "INSERT INTO t VALUES (JOINT_GAUSSIAN([0, 0], [[1, 0.5], [0.5, 1]]))"
        )
        pdf = stmt.rows[0][0].pdf
        assert isinstance(pdf, JointGaussianPdf)
        assert pdf.cov[0][1] == pytest.approx(0.5)

    def test_joint_discrete_literal(self):
        stmt = parse("INSERT INTO t VALUES (JOINT_DISCRETE((4, 5): 0.9, (2, 3): 0.1))")
        pdf = stmt.rows[0][0].pdf
        assert isinstance(pdf, JointDiscretePdf)
        assert pdf.mass() == pytest.approx(1.0)

    def test_symbolic_discrete_literals(self):
        stmt = parse(
            "INSERT INTO t VALUES (POISSON(4), BINOMIAL(10, 0.3), BERNOULLI(0.5))"
        )
        names = [type(v.pdf).__name__ for v in stmt.rows[0]]
        assert names == ["PoissonPdf", "BinomialPdf", "BernoulliPdf"]

    def test_wrong_arity_rejected(self):
        with pytest.raises(SqlParseError):
            parse("INSERT INTO t VALUES (GAUSSIAN(20))")


class TestSelect:
    def test_star(self):
        stmt = parse("SELECT * FROM t")
        assert stmt.items[0].star

    def test_columns_and_aliases(self):
        stmt = parse("SELECT a, b AS bee FROM t")
        assert stmt.items[0].column.name == "a"
        assert stmt.items[1].alias == "bee"

    def test_qualified_columns(self):
        stmt = parse("SELECT t1.a FROM t AS t1")
        assert stmt.items[0].column.qualifier == "t1"

    def test_table_aliases(self):
        stmt = parse("SELECT a FROM long_name x, other AS y")
        assert stmt.tables[0].binding == "x"
        assert stmt.tables[1].binding == "y"

    def test_where_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a > 1 AND b < 2 OR c = 3")
        assert isinstance(stmt.where, ast.OrExpr)
        assert isinstance(stmt.where.parts[0], ast.AndExpr)

    def test_parenthesized(self):
        stmt = parse("SELECT a FROM t WHERE a > 1 AND (b < 2 OR c = 3)")
        assert isinstance(stmt.where, ast.AndExpr)

    def test_not(self):
        stmt = parse("SELECT a FROM t WHERE NOT a = 1")
        assert isinstance(stmt.where, ast.NotExpr)

    def test_prob_predicate(self):
        stmt = parse("SELECT a FROM t WHERE PROB(x > 5) >= 0.5")
        assert isinstance(stmt.where, ast.ProbExpr)
        assert stmt.where.threshold == 0.5
        assert stmt.where.op == ">="

    def test_prob_star(self):
        stmt = parse("SELECT a FROM t WHERE PROB(*) > 0.9")
        assert stmt.where.inner is None

    def test_order_limit(self):
        stmt = parse("SELECT a FROM t ORDER BY a DESC LIMIT 10")
        assert stmt.order_desc and stmt.limit == 10

    def test_aggregates(self):
        stmt = parse("SELECT COUNT(*), SUM(v), EXPECTED(v), MIN(v), MAX(v) FROM t")
        funcs = [item.aggregate.func for item in stmt.items]
        assert funcs == ["count", "sum", "expected", "min", "max"]

    def test_sum_method(self):
        stmt = parse("SELECT SUM(v, 'exact') FROM t")
        assert stmt.items[0].aggregate.method == "exact"

    def test_column_vs_column(self):
        stmt = parse("SELECT a FROM t WHERE a < b")
        cmp = stmt.where
        assert isinstance(cmp.right, ast.ColumnExpr)


class TestOtherStatements:
    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE id = 3")
        assert isinstance(stmt, ast.Delete)

    def test_drop(self):
        assert isinstance(parse("DROP TABLE t"), ast.DropTable)

    def test_create_index(self):
        stmt = parse("CREATE INDEX ON t (a)")
        assert isinstance(stmt, ast.CreateIndex) and not stmt.probabilistic

    def test_create_prob_index(self):
        stmt = parse("CREATE PROB INDEX ON t (v)")
        assert stmt.probabilistic

    def test_explain(self):
        stmt = parse("EXPLAIN SELECT * FROM t")
        assert isinstance(stmt, ast.Explain)

    def test_trailing_semicolon_ok(self):
        parse("SELECT * FROM t;")

    def test_trailing_junk_rejected(self):
        with pytest.raises(SqlParseError):
            parse("SELECT * FROM t garbage garbage")

    def test_empty_rejected(self):
        with pytest.raises(SqlParseError):
            parse("")
