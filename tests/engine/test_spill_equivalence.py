"""Property tests: memory-bounded (spill-to-disk) execution ≡ in-memory.

With ``ModelConfig.work_mem`` set, HashJoin partitions to disk Grace-style,
Sort / ORDER BY PROB(*) run an external merge sort, and DISTINCT groups via
spilled runs.  The invariant is the repo-wide one: the spilled result
stream — tuple ids, order, and contents — is **bitwise identical** to the
in-memory stream, under any budget down to the pathological ``work_mem=1``
(every operator state spills immediately).  Joins are additionally checked
against the NestedLoopJoin reference (semantic equality; pair ids differ
because the nested loop draws ids for non-matching pairs too).

The crash test arms the ``spill.write`` fault point on a durable database:
the injected crash must leave partially-written spill files behind (the
point fires only after frames reached disk) and recovery must clear them.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Column, DataType, ProbabilisticRelation, ProbabilisticSchema
from repro.core.model import ModelConfig
from repro.core.operations import PDF_OP_CACHE
from repro.core.predicates import Comparison
from repro.engine import faults
from repro.engine.database import Database
from repro.engine.executor import (
    Distinct,
    HashJoin,
    NestedLoopJoin,
    RelationScan,
    Sort,
    SortByProbability,
)
from repro.engine.executor.spill import SPILL_STATS, ExternalSorter, SpillManager
from repro.engine.faults import InjectedCrash
from repro.engine.sql.planner import execute_plan

from .test_batch_equivalence import assert_rows_equal, pdf_values

#: ``None`` is the in-memory baseline; ``1`` forces a spill on the first
#: buffered tuple; ``4096`` spills only the larger examples.
BUDGETS = (None, 1, 4096)


@st.composite
def keyed_relations(draw, prefix, store=None, max_size=10):
    """A relation with a low-cardinality (possibly NULL) certain join key.

    Keys repeat so hash joins produce real multi-match buckets, and the
    uncertain column exercises NULL, partial (floored), and symbolic pdfs.
    """
    attr = f"{prefix}v"
    schema = ProbabilisticSchema(
        [
            Column(f"{prefix}id", DataType.INT),
            Column(f"{prefix}k", DataType.INT),
            Column(attr, DataType.REAL),
        ],
        [{attr}],
    )
    rel = ProbabilisticRelation(schema, store=store, name=prefix)
    n = draw(st.integers(0, max_size))
    for i in range(n):
        key = draw(st.one_of(st.none(), st.integers(0, 3)))
        rel.insert(
            certain={f"{prefix}id": i, f"{prefix}k": key},
            uncertain={attr: draw(pdf_values(attr))},
        )
    return rel


def run_budgets(make_plan, store, batch_size=7):
    """Rows per work_mem budget, from one shared tuple-id baseline."""
    out = {}
    id0 = store._next_tuple_id
    for wm in BUDGETS:
        store._next_tuple_id = id0
        PDF_OP_CACHE.reset()
        config = ModelConfig(batch_size=batch_size, work_mem=wm)
        out[wm] = execute_plan(make_plan(config), config)
    return out


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_hash_join_spill_equivalence(data):
    left = data.draw(keyed_relations("l"))
    right = data.draw(keyed_relations("r", store=left.store))
    store = left.store
    # The hash prefilter enforces key equality; the residual probabilistic
    # term exercises the post-hash SelectionPlan (pdf flooring) path too.
    lo = data.draw(st.floats(-8, 8))
    residual = Comparison("lv", ">", lo)

    def make_plan(config):
        return HashJoin(
            RelationScan(left),
            RelationScan(right),
            "lk",
            "rk",
            residual,
            store,
            config,
        )

    rows = run_budgets(make_plan, store)
    for wm in BUDGETS[1:]:
        # Spilled ≡ in-memory: bitwise, including the tuple-id stream.
        assert_rows_equal(rows[None], rows[wm], store)

    # Semantic reference: a nested loop with the hash prefilter folded into
    # the predicate produces the same pairs (ids differ by construction).
    def make_nlj(config):
        return NestedLoopJoin(
            RelationScan(left),
            RelationScan(right),
            residual,
            store,
            config,
        )

    store._next_tuple_id = 10_000_000
    PDF_OP_CACHE.reset()
    config = ModelConfig(batch_size=7)
    nlj_rows = [
        t
        for t in execute_plan(make_nlj(config), config)
        if t.certain.get("lk") is not None
        and t.certain.get("lk") == t.certain.get("rk")
    ]
    assert_rows_equal(rows[None], nlj_rows, store, compare_ids=False)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_sort_spill_equivalence(data):
    rel = data.draw(keyed_relations("s", max_size=14))
    descending = data.draw(st.booleans())

    def make_plan(config):
        # Sorting on the repeating key column exercises stable-tie handling.
        return Sort(RelationScan(rel), ["sk"], descending, config=config)

    rows = run_budgets(make_plan, rel.store)
    for wm in BUDGETS[1:]:
        assert_rows_equal(rows[None], rows[wm], rel.store)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_sort_by_probability_spill_equivalence(data):
    rel = data.draw(keyed_relations("p", max_size=14))

    def make_plan(config):
        return SortByProbability(RelationScan(rel), rel.store, config=config)

    rows = run_budgets(make_plan, rel.store)
    for wm in BUDGETS[1:]:
        assert_rows_equal(rows[None], rows[wm], rel.store)


@settings(max_examples=20, deadline=None)
@given(data=st.data())
def test_distinct_spill_equivalence(data):
    rel = data.draw(keyed_relations("d", max_size=14))

    def make_plan(config):
        from repro.engine.executor import Project

        return Distinct(
            Project(RelationScan(rel), ["dk"], config), rel.store, config
        )

    rows = run_budgets(make_plan, rel.store)
    for wm in BUDGETS[1:]:
        assert_rows_equal(rows[None], rows[wm], rel.store)


def test_spill_stats_report_runs_and_partitions():
    """A forced spill surfaces in SPILL_STATS and in EXPLAIN ANALYZE."""
    schema = ProbabilisticSchema(
        [Column("id", DataType.INT), Column("k", DataType.INT)], []
    )
    rel = ProbabilisticRelation(schema, name="big")
    for i in range(100):
        rel.insert(certain={"id": i, "k": i % 5})
    config = ModelConfig(batch_size=16, work_mem=1)
    SPILL_STATS.reset()
    sort = Sort(RelationScan(rel), ["k"], config=config)
    out = execute_plan(sort, config)
    assert len(out) == 100
    assert sort.sort_runs > 1
    assert any("sort_runs=" in e for e in sort.explain_extras())
    snap = SPILL_STATS.snapshot()
    assert snap["sort_spills"] >= 1 and snap["bytes_written"] > 0


def test_external_sorter_lineage_roundtrip(tmp_path):
    """Frames preserve lineage refs bitwise through the disk round-trip."""
    schema = ProbabilisticSchema(
        [Column("id", DataType.INT), Column("v", DataType.REAL)], [{"v"}]
    )
    rel = ProbabilisticRelation(schema, name="lin")
    for i in range(30):
        rel.insert(certain={"id": i}, uncertain={"v": None})
    with SpillManager(str(tmp_path), label="t") as mgr:
        sorter = ExternalSorter(mgr, work_mem=1)
        for i, t in enumerate(rel.tuples):
            sorter.add(-i, t)
        got = [item[2] for item in sorter.sorted()]
    assert sorter.run_count == 30
    expect = list(reversed(rel.tuples))
    assert [t.tuple_id for t in got] == [t.tuple_id for t in expect]
    assert [t.certain for t in got] == [t.certain for t in expect]
    assert [t.lineage for t in got] == [t.lineage for t in expect]


def _spill_leftovers(path):
    spill_dir = os.path.join(path, "spill")
    if not os.path.isdir(spill_dir):
        return []
    return [
        os.path.join(root, f)
        for root, _, files in os.walk(spill_dir)
        for f in files
    ]


def test_mid_spill_crash_leaves_files_and_recovery_cleans(tmp_path):
    """Crash at ``spill.write``: files persist the crash, recovery clears them."""
    from dataclasses import replace

    path = str(tmp_path / "db")
    db = Database(path=path)
    db.execute("CREATE TABLE t (id INT, v REAL UNCERTAIN)")
    for i in range(30):
        db.execute(f"INSERT INTO t VALUES ({i}, GAUSSIAN({i}, 1))")
    db.catalog.config = replace(db.catalog.config, work_mem=1)

    faults.disarm_all()  # earlier tests advanced the spill.write hit counter
    faults.arm("spill.write", 1)
    try:
        with pytest.raises(InjectedCrash):
            db.execute("SELECT id FROM t ORDER BY id DESC")
    finally:
        faults.disarm_all()

    # The fault fires only after the frame bytes were written and flushed,
    # so the simulated crash must leave observable spill files behind.
    leftovers = _spill_leftovers(path)
    assert leftovers, "spill.write crash left no files on disk"
    if db._wal is not None:
        db._wal.discard()  # simulated process death

    recovered = Database(path=path)
    try:
        assert _spill_leftovers(path) == [], "recovery kept stale spill files"
        # The data itself is intact and memory-bounded queries work again.
        recovered.catalog.config = replace(recovered.catalog.config, work_mem=1)
        out = recovered.execute("SELECT id FROM t ORDER BY id DESC")
        assert [t.certain["id"] for t in out] == list(range(29, -1, -1))
    finally:
        recovered.close()
