"""Failure-injection tests: corrupted pages, truncated records, bad inputs.

A production-grade storage layer must fail loudly and precisely, not return
garbage probabilities.  These tests corrupt on-disk state and assert the
engine surfaces typed errors (or provably ignores the corruption).
"""

import struct

import pytest

from repro import Database
from repro.engine.storage.buffer import BufferPool
from repro.engine.storage.disk import MemoryDisk
from repro.engine.storage.heapfile import HeapFile
from repro.engine.storage.serialize import decode_pdf, decode_tuple, encode_pdf
from repro.errors import ReproError, SerializationError, StorageError
from repro.pdf import DiscretePdf, GaussianPdf


class TestCorruptedPdfBytes:
    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            decode_pdf(bytes([250]))

    def test_truncated_gaussian(self):
        data = encode_pdf(GaussianPdf(0, 1, attr="v"))
        with pytest.raises(Exception) as excinfo:
            decode_pdf(data[: len(data) // 2])
        # struct errors or serialization errors, never silent success
        assert excinfo.type is not None

    def test_negative_variance_rejected_on_decode(self):
        data = bytearray(encode_pdf(GaussianPdf(0, 1, attr="v")))
        # Overwrite the variance (the last 8 bytes) with -1.0.
        data[-8:] = struct.pack("<d", -1.0)
        from repro.errors import InvalidDistributionError

        with pytest.raises(InvalidDistributionError):
            decode_pdf(bytes(data))

    def test_probability_overflow_rejected_on_decode(self):
        # DiscretePdf fast-path decode skips validation; the joint decode
        # still validates.  Corrupt a JointDiscretePdf probability instead.
        from repro.pdf import JointDiscretePdf

        j = JointDiscretePdf(("a",), {(1.0,): 1.0})
        data = bytearray(encode_pdf(j))
        data[-8:] = struct.pack("<d", 7.5)
        from repro.errors import InvalidDistributionError

        with pytest.raises(InvalidDistributionError):
            decode_pdf(bytes(data))


class TestCorruptedStorage:
    def test_scan_over_zeroed_page(self):
        pool = BufferPool(MemoryDisk(), capacity=4)
        heap = HeapFile(pool, name="t")
        rid = heap.insert(b"hello world")
        # Zero the page behind the buffer pool's back and drop the cache.
        pool.flush_all()
        pool.disk._pages[rid.page_id] = bytes(pool.disk.page_size)
        pool._frames.clear()
        # A zeroed page has zero slots: the record is gone, scan sees nothing.
        assert list(heap.scan()) == []
        with pytest.raises(StorageError):
            heap.read(rid)

    def test_tuple_decode_of_garbage(self):
        with pytest.raises(Exception):
            decode_tuple(b"\x00" * 3)


class TestBadUserInput:
    def test_all_sql_errors_are_repro_errors(self):
        db = Database()
        statements = [
            "SELECT * FROM missing",
            "CREATE TABLE t (a NOTATYPE)",
            "INSERT INTO nowhere VALUES (1)",
            "SELEKT 1",
            "SELECT * FROM",
        ]
        for sql in statements:
            with pytest.raises(ReproError):
                db.execute(sql)

    def test_insert_arity_mismatch(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, b INT)")
        with pytest.raises(ReproError):
            db.execute("INSERT INTO t VALUES (1)")
        with pytest.raises(ReproError):
            db.execute("INSERT INTO t VALUES (1, 2, 3)")

    def test_pdf_literal_validation_bubbles_up(self):
        db = Database()
        db.execute("CREATE TABLE t (v REAL UNCERTAIN)")
        with pytest.raises(ReproError):
            db.execute("INSERT INTO t VALUES (GAUSSIAN(0, -1))")
        with pytest.raises(ReproError):
            db.execute("INSERT INTO t VALUES (DISCRETE(0: 0.9, 1: 0.9))")

    def test_database_state_intact_after_errors(self):
        db = Database()
        db.execute("CREATE TABLE t (a INT, v REAL UNCERTAIN)")
        db.execute("INSERT INTO t VALUES (1, GAUSSIAN(0, 1))")
        for sql in ("SELECT * FROM nope", "INSERT INTO t VALUES (2)"):
            with pytest.raises(ReproError):
                db.execute(sql)
        assert db.execute("SELECT * FROM t").rowcount == 1
