"""Serialization round-trip tests for values, every pdf kind, and tuples."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.history import AncestorLink, AncestorRef
from repro.core.model import ProbabilisticTuple
from repro.engine.storage.serialize import (
    decode_pdf,
    decode_tuple,
    decode_value,
    encode_pdf,
    encode_tuple,
    encode_value,
    pdf_size,
)
from repro.errors import SerializationError
from repro.pdf import (
    BernoulliPdf,
    BetaPdf,
    BinomialPdf,
    BoxRegion,
    CategoricalPdf,
    DiscretePdf,
    ExponentialPdf,
    FlooredPdf,
    GammaPdf,
    GaussianPdf,
    GeometricPdf,
    HistogramPdf,
    IntervalSet,
    JointDiscretePdf,
    JointGaussianPdf,
    LognormalPdf,
    PoissonPdf,
    ProductPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)


class TestValues:
    @pytest.mark.parametrize(
        "value", [None, 0, -5, 2**40, 3.14159, -0.0, True, False, "", "héllo 'quoted'"]
    )
    def test_roundtrip(self, value):
        data = encode_value(value)
        out, offset = decode_value(data)
        assert out == value
        assert type(out) is type(value)
        assert offset == len(data)

    def test_unknown_type_rejected(self):
        with pytest.raises(SerializationError):
            encode_value(object())

    def test_bad_tag_rejected(self):
        with pytest.raises(SerializationError):
            decode_value(b"\xff")


ALL_PDFS = [
    GaussianPdf(20, 5, attr="value"),
    UniformPdf(-3, 7, attr="u"),
    ExponentialPdf(2.5, attr="e"),
    TriangularPdf(0, 1, 4, attr="t"),
    GammaPdf(2, 3, attr="g"),
    LognormalPdf(0.5, 1.2, attr="l"),
    BetaPdf(2.5, 4.0, attr="conf"),
    WeibullPdf(1.5, 7.0, attr="life"),
    BernoulliPdf(0.25, attr="flag"),
    BinomialPdf(12, 0.4, attr="n"),
    PoissonPdf(6.5, attr="p"),
    GeometricPdf(0.1, attr="geo"),
    DiscretePdf({0: 0.1, 1: 0.9}, attr="d"),
    DiscretePdf({-2.5: 0.3, 1e6: 0.2}, attr="partial"),
    CategoricalPdf({"cat": 0.7, "dog": 0.3}, attr="animal"),
    HistogramPdf([0, 1, 3, 7], [0.2, 0.3, 0.5], attr="h"),
    FlooredPdf(GaussianPdf(5, 1, attr="f"), IntervalSet.less_than(5)),
    FlooredPdf(
        GaussianPdf(0, 1, attr="f2"),
        IntervalSet.between(-1, 0).union(IntervalSet.greater_than(2)),
    ),
    JointDiscretePdf(("a", "b"), {(0, 1): 0.06, (0, 2): 0.04, (1, 2): 0.36}),
    JointGaussianPdf(("x", "y"), [1, 2], [[2, 0.5], [0.5, 1]]),
    GaussianPdf(0, 1, attr="gg").to_grid(),
    DiscretePdf({1: 0.5, 2: 0.5}, attr="k").to_grid(),
    ProductPdf(
        [GaussianPdf(0, 1, attr="x"), DiscretePdf({1: 0.5, 2: 0.5}, attr="k")],
        weight=0.75,
    ),
]


@pytest.mark.parametrize("pdf", ALL_PDFS, ids=lambda p: f"{type(p).__name__}:{p.attrs}")
class TestPdfRoundtrip:
    def test_roundtrip_equality(self, pdf):
        data = encode_pdf(pdf)
        out, offset = decode_pdf(data)
        assert offset == len(data)
        assert out.attrs == pdf.attrs
        assert type(out) is type(pdf)
        assert out.mass() == pytest.approx(pdf.mass(), abs=1e-12)

    def test_roundtrip_density(self, pdf):
        out, _ = decode_pdf(encode_pdf(pdf))
        support = pdf.support()
        points = {
            a: np.linspace(lo, hi, 7) for a, (lo, hi) in support.items()
        }
        assert np.allclose(out.density(points), pdf.density(points), atol=1e-12)


class TestPdfEdgeCases:
    def test_null_pdf(self):
        out, offset = decode_pdf(encode_pdf(None))
        assert out is None and offset == 1

    def test_unknown_tag(self):
        with pytest.raises(SerializationError):
            decode_pdf(b"\xfe")

    def test_pdf_size_ordering(self):
        """The storage claim behind Figure 5: symbolic < hist-5 < discrete-25."""
        from repro.pdf import discretize, to_histogram

        g = GaussianPdf(50, 4, attr="value")
        symbolic = pdf_size(g)
        hist5 = pdf_size(to_histogram(g, 5))
        disc25 = pdf_size(discretize(g, 25))
        assert symbolic < hist5 < disc25

    def test_floored_roundtrip_preserves_intervals(self):
        allowed = IntervalSet.between(1, 2, closed_lo=False).union(
            IntervalSet.greater_than(5, inclusive=True)
        )
        f = FlooredPdf(UniformPdf(0, 10, attr="x"), allowed)
        out, _ = decode_pdf(encode_pdf(f))
        assert out.allowed == allowed

    def test_categorical_roundtrip_labels(self):
        c = CategoricalPdf({"alpha": 0.5, "beta": 0.5}, attr="tag")
        out, _ = decode_pdf(encode_pdf(c))
        assert dict(out.label_items()) == pytest.approx(dict(c.label_items()))


class TestTupleRoundtrip:
    def _tuple(self):
        dep = frozenset({"value"})
        ref = AncestorRef(7, dep)
        link = AncestorLink.identity(ref).renamed({"value": "v2"})
        return ProbabilisticTuple(
            42,
            {"id": 1, "name": "sensor-1", "ok": True, "note": None},
            {dep: GaussianPdf(20, 5, attr="value"), frozenset({"w"}): None},
            {dep: frozenset({link}), frozenset({"w"}): frozenset()},
        )

    def test_roundtrip_full(self):
        t = self._tuple()
        out, offset = decode_tuple(encode_tuple(t))
        assert offset == len(encode_tuple(t))
        assert out.tuple_id == 42
        assert out.certain == t.certain
        assert out.pdfs[frozenset({"value"})] == t.pdfs[frozenset({"value"})]
        assert out.pdfs[frozenset({"w"})] is None
        assert out.lineage == t.lineage

    def test_without_lineage(self):
        t = self._tuple()
        out, _ = decode_tuple(encode_tuple(t, store_lineage=False))
        assert out.lineage[frozenset({"value"})] == frozenset()

    def test_lineage_makes_records_bigger(self):
        t = self._tuple()
        assert len(encode_tuple(t)) > len(encode_tuple(t, store_lineage=False))


@settings(max_examples=50, deadline=None)
@given(
    pairs=st.dictionaries(
        st.floats(min_value=-1e6, max_value=1e6).map(lambda x: round(x, 6)),
        st.floats(min_value=0.001, max_value=1.0),
        min_size=1,
        max_size=12,
    )
)
def test_discrete_roundtrip_property(pairs):
    total = sum(pairs.values())
    d = DiscretePdf({k: v / total for k, v in pairs.items()}, attr="v")
    out, _ = decode_pdf(encode_pdf(d))
    assert out == d


@settings(max_examples=40, deadline=None)
@given(
    mean=st.floats(min_value=-1e6, max_value=1e6),
    var=st.floats(min_value=1e-6, max_value=1e6),
)
def test_gaussian_roundtrip_property(mean, var):
    g = GaussianPdf(mean, var, attr="v")
    out, _ = decode_pdf(encode_pdf(g))
    assert out == g
