SELECT rid, value FROM readings WHERE value > 18;
SELECT rid FROM readings WHERE value > 18 AND value < 22;
SELECT rid, site FROM readings WHERE site = 'a';
SELECT oid FROM objects WHERE x > 0 AND y > 0;
