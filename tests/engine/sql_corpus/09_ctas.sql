CREATE TABLE hot AS SELECT rid, value FROM readings WHERE PROB(value > 15) >= 0.5;
SELECT COUNT(*) FROM hot WHERE PROB(*) >= 0.999;
