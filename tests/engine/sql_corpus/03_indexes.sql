CREATE INDEX ON readings (rid);
CREATE PROB INDEX ON readings (value);
CREATE SPATIAL INDEX ON objects (x, y);
