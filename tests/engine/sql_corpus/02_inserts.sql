-- One of every pdf constructor the dialect accepts.
INSERT INTO readings VALUES (1, 'a', GAUSSIAN(20, 5));
INSERT INTO readings VALUES (2, 'a', UNIFORM(0, 10)), (3, 'b', DISCRETE(1:0.4, 2:0.6));
INSERT INTO readings VALUES (4, 'b', HISTOGRAM(0, 10, 20 ; 0.4, 0.6));
INSERT INTO objects VALUES (10, JOINT_GAUSSIAN([0, 0], [[1, 0.5], [0.5, 1]]));
INSERT INTO objects VALUES (11, JOINT_DISCRETE((4, 5): 0.9, (2, 3): 0.1));
INSERT INTO plain VALUES (1, 'certain');
