SELECT rid FROM readings WHERE PROB(value > 15) >= 0.5;
SELECT rid FROM readings WHERE PROB(value > 18 AND value < 22) > 0.3;
SELECT rid FROM readings WHERE PROB(*) >= 1;
SELECT rid FROM readings WHERE value > 18 ORDER BY PROB(*) DESC LIMIT 2;
