UPDATE readings SET value = GAUSSIAN(21, 1) WHERE rid = 1;
DELETE FROM readings WHERE rid = 5;
