ANALYZE readings;
ANALYZE objects;
