-- Seed schema: certain + uncertain columns, a joint dependency set.
CREATE TABLE readings (rid INT, site TEXT, value REAL UNCERTAIN);
CREATE TABLE objects (oid INT, x REAL, y REAL, DEPENDENCY (x, y));
CREATE TABLE plain (k INT, label TEXT);
