EXPLAIN SELECT rid FROM readings WHERE PROB(value > 18 AND value < 22) >= 0.5;
EXPLAIN SELECT rid FROM readings ORDER BY PROB(*) DESC;
