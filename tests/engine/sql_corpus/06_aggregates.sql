SELECT COUNT(*) FROM readings;
SELECT site, COUNT(*) FROM readings GROUP BY site;
SELECT site, SUM(value) FROM readings GROUP BY site;
SELECT site, EXPECTED(value) FROM readings GROUP BY site;
