"""Reporting helper tests."""

from repro.bench.reporting import format_table, print_figure


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [30, 4.123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all rows equal width

    def test_float_formatting(self):
        text = format_table(["x"], [[0.00001234], [1234567.0], [0.5]])
        assert "1.234e-05" in text
        assert "1.235e+06" in text or "1234567" in text
        assert "0.5000" in text

    def test_ints_passthrough(self):
        assert "42" in format_table(["n"], [[42]])

    def test_strings_passthrough(self):
        assert "symbolic" in format_table(["variant"], [["symbolic"]])


class TestPrintFigure:
    def test_prints_banner_and_rows(self, capsys):
        print_figure("My Figure", ["a", "b"], [[1, 2]])
        out = capsys.readouterr().out
        assert "My Figure" in out
        assert "=" in out
        assert "1" in out and "2" in out


class TestCommittedReports:
    """The committed BENCH_*.json reports carry provenance and sane shapes."""

    @staticmethod
    def _load(name):
        import json
        from pathlib import Path

        path = Path(__file__).resolve().parents[1] / name
        assert path.exists(), f"{name} must be committed at the repo root"
        return json.loads(path.read_text())

    def _check_environment(self, report):
        env = report["environment"]
        for key in ("python", "numpy", "scipy", "platform", "machine", "cpu_count"):
            assert key in env, f"environment_info missing {key!r}"

    def _check_variants(self, section):
        assert section["variants"], "report has no sweep cells"
        for v in section["variants"]:
            assert v["seconds"] > 0
            assert v["speedup"] > 0
            assert isinstance(v["columnar"], bool)

    def test_bench_engine_report(self):
        report = self._load("BENCH_engine.json")
        self._check_environment(report)
        self._check_variants(report)

    def test_bench_join_report(self):
        report = self._load("BENCH_join.json")
        self._check_environment(report)
        self._check_variants(report)
        assert report["workload"] == "equi_join_groupby"
        self._check_variants(report["join_only"])
        # The committed full-N report must document the acceptance bar:
        # batch >= 256 columnar join + GROUP BY at >= 10x scalar.
        if report["tuples"] >= 4000:
            best = max(
                v["speedup"]
                for v in report["variants"]
                if v["batch_size"] >= 256 and v["columnar"]
            )
            assert best >= 10.0
