"""Reporting helper tests."""

from repro.bench.reporting import format_table, print_figure


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "long_header"], [[1, 2.5], [30, 4.123456]])
        lines = text.splitlines()
        assert len(lines) == 4
        widths = {len(l) for l in lines}
        assert len(widths) == 1  # all rows equal width

    def test_float_formatting(self):
        text = format_table(["x"], [[0.00001234], [1234567.0], [0.5]])
        assert "1.234e-05" in text
        assert "1.235e+06" in text or "1234567" in text
        assert "0.5000" in text

    def test_ints_passthrough(self):
        assert "42" in format_table(["n"], [[42]])

    def test_strings_passthrough(self):
        assert "symbolic" in format_table(["variant"], [["symbolic"]])


class TestPrintFigure:
    def test_prints_banner_and_rows(self, capsys):
        print_figure("My Figure", ["a", "b"], [[1, 2]])
        out = capsys.readouterr().out
        assert "My Figure" in out
        assert "=" in out
        assert "1" in out and "2" in out
