"""Golden data-quality queries over a tiny fixed uncertain-TPC-H instance.

The cleaning scenario the workload exists for, pinned as golden files:
rank tuples by denial-constraint violation probability, repair by
conditioning (CTAS keeping only constraint-satisfying mass), and verify
the repaired table carries no residual violation.  The instance is a
30-lineitem ``TpchConfig`` with 3 injected violators per constraint, so
every pdf digest in the goldens is reviewable by hand.

Regenerate after an intentional semantic change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q
"""

from __future__ import annotations

import json
import os

import pytest

from repro.engine.database import Database
from repro.workloads import TpchConfig, default_constraints, generate_tpch

from .test_golden import UPDATE, _row_summary


def summarize(result) -> dict:
    """Row-level summary: unlike the plan-pinning base suite, the cleaning
    goldens pin the *data* — certain values and pdf digests per row — so a
    drift in violation probabilities or conditioned masses is caught."""
    rows = [_row_summary(t) for t in result.rows]
    rows.sort(key=lambda r: json.dumps(r, sort_keys=True))
    return {"columns": list(result.columns), "rows": rows}

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "cases_tpch")

CFG = TpchConfig(
    lineitem_rows=30, orders_rows=10, part_rows=5, seed=5,
    violations_per_constraint=3, partial_fraction=0.2,
)

_QUANTITY, _PRICE, _SHIPDATE = default_constraints(CFG)

#: Repairs (CTAS by conditioning) run once at setup; cases query them.
SETUP = [
    _QUANTITY.repair_sql("clean_quantity"),
    _PRICE.repair_sql("clean_price"),
]

CASES = {
    # -- rank by violation probability (most suspicious first) --------------
    "tpch_rank_quantity": _QUANTITY.ranking_sql(columns="l_linenumber", limit=10),
    "tpch_rank_price": _PRICE.ranking_sql(columns="l_linenumber"),
    "tpch_rank_shipdate": _SHIPDATE.ranking_sql(columns="l_linenumber"),
    # -- thresholded violation report ---------------------------------------
    "tpch_prob_threshold": (
        f"SELECT l_linenumber FROM lineitem WHERE PROB({_QUANTITY.violation_predicate}) >= 0.2"
    ),
    # -- repair by conditioning: pdfs keep only satisfying mass -------------
    "tpch_repaired_pdfs": (
        f"SELECT l_linenumber, l_quantity FROM clean_quantity WHERE {_QUANTITY.satisfaction_predicate}"
    ),
    "tpch_repair_is_clean": (
        f"SELECT l_linenumber FROM clean_price WHERE {_PRICE.violation_predicate}"
    ),
    # -- the workload's analytics shapes over the same instance -------------
    "tpch_expected_by_status": (
        "SELECT l_linestatus, COUNT(*), EXPECTED(l_extendedprice) "
        "FROM lineitem GROUP BY l_linestatus"
    ),
    "tpch_join_priorities": (
        "SELECT l_linenumber, o_orderpriority FROM lineitem, orders "
        "WHERE lineitem.l_orderkey = orders.o_orderkey"
    ),
}


@pytest.fixture(scope="module")
def db():
    d = Database()
    generate_tpch(d, CFG)
    for sql in SETUP:
        d.execute(sql)
    return d


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_tpch(name, db):
    summary = summarize(db.execute(CASES[name]))
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    if UPDATE:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
            f.write("\n")
        pytest.skip("golden updated")
    assert os.path.exists(path), (
        f"missing golden {path}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    with open(path) as f:
        expected = json.load(f)
    assert summary == expected, (
        f"result for {name!r} drifted from {path}; if intentional, "
        "regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_tpch_goldens_cover_all_cases():
    names = {
        os.path.splitext(n)[0]
        for n in os.listdir(GOLDEN_DIR)
        if n.endswith(".json")
    }
    assert names == set(CASES), (
        f"stale/missing goldens: {sorted(names ^ set(CASES))}"
    )
    assert len(CASES) >= 6
