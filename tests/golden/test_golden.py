"""Golden-file regression suite over ~20 canonical queries.

Each case runs a query against a fixed, deterministically built database
and compares a *semantic summary* of the result — visible columns, sorted
rows with certain values, and per-dependency-set pdf digests (symbolic
repr, mass/mean/variance rounded to 9 significant decimals) — against a
checked-in JSON file.  Rounding keeps the goldens stable across benign
floating-point refactors while still catching semantic drift.

Regenerate after an intentional semantic change with::

    REPRO_UPDATE_GOLDEN=1 PYTHONPATH=src python -m pytest tests/golden -q
"""

from __future__ import annotations

import json
import math
import os

import pytest

from repro.engine.database import Database

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), "cases")
UPDATE = os.environ.get("REPRO_UPDATE_GOLDEN") == "1"

#: name -> SQL.  Setup statements mutate; query cases are summarized.
SETUP = [
    "CREATE TABLE readings (rid INT, site TEXT, value REAL UNCERTAIN)",
    "INSERT INTO readings VALUES (1, 'a', GAUSSIAN(20, 5))",
    "INSERT INTO readings VALUES (2, 'a', UNIFORM(0, 10))",
    "INSERT INTO readings VALUES (3, 'b', DISCRETE(1:0.4, 2:0.6))",
    "INSERT INTO readings VALUES (4, 'b', HISTOGRAM(0, 10, 20 ; 0.4, 0.6))",
    "INSERT INTO readings VALUES (5, 'c', GAUSSIAN(30, 2))",
    "CREATE TABLE objects (oid INT, x REAL, y REAL, DEPENDENCY (x, y))",
    "INSERT INTO objects VALUES (10, JOINT_GAUSSIAN([0, 0], [[1, 0.5], [0.5, 1]]))",
    "INSERT INTO objects VALUES (11, JOINT_DISCRETE((4, 5): 0.9, (2, 3): 0.1))",
    "CREATE INDEX ON readings (rid)",
    "CREATE PROB INDEX ON readings (value)",
    "ANALYZE readings",
    "CREATE TABLE hot AS SELECT rid, value FROM readings WHERE PROB(value > 15) >= 0.5",
]

CASES = {
    "select_all": "SELECT rid, site, value FROM readings",
    "select_certain_eq": "SELECT rid FROM readings WHERE site = 'a'",
    "select_value_floor": "SELECT rid, value FROM readings WHERE value > 18",
    "select_value_band": "SELECT rid, value FROM readings WHERE value > 18 AND value < 22",
    "select_or": "SELECT rid FROM readings WHERE rid = 1 OR rid = 3",
    "prob_simple": "SELECT rid FROM readings WHERE PROB(value > 15) >= 0.5",
    "prob_band": "SELECT rid FROM readings WHERE PROB(value > 18 AND value < 22) > 0.3",
    "prob_exist": "SELECT rid FROM readings WHERE PROB(*) >= 1",
    "prob_upper": "SELECT rid FROM readings WHERE PROB(value > 25) <= 0.1",
    "topk_prob": "SELECT rid FROM readings WHERE value > 18 ORDER BY PROB(*) DESC LIMIT 2",
    "order_prob_asc": "SELECT rid FROM readings WHERE value > 5 ORDER BY PROB(*) ASC",
    "count_all": "SELECT COUNT(*) FROM readings",
    "count_group": "SELECT site, COUNT(*) FROM readings GROUP BY site",
    "sum_group": "SELECT site, SUM(value) FROM readings GROUP BY site",
    "expected_group": "SELECT site, EXPECTED(value) FROM readings GROUP BY site",
    "count_filtered": "SELECT site, COUNT(*) FROM readings WHERE value > 20 GROUP BY site",
    "joint_select": "SELECT oid, x, y FROM objects WHERE x > 0 AND y > 0",
    "joint_prob": "SELECT oid FROM objects WHERE PROB(x > 0) >= 0.5",
    "ctas_result": "SELECT rid, value FROM hot",
    "ctas_prob": "SELECT COUNT(*) FROM hot WHERE PROB(*) >= 0.999",
    "explain_prob": "EXPLAIN SELECT rid FROM readings WHERE PROB(value > 18 AND value < 22) >= 0.5",
    "explain_topk": "EXPLAIN SELECT rid FROM readings ORDER BY PROB(*) DESC",
}


def _round(x: float) -> float:
    if x != x or math.isinf(x):  # NaN/inf become strings for JSON stability
        return str(x)
    return float(f"{x:.9g}")


def _pdf_digest(pdf) -> dict:
    if pdf is None:
        return {"null": True}
    digest = {"repr": repr(pdf), "mass": _round(pdf.mass())}
    try:
        digest["mean"] = _round(float(pdf.mean()))
        digest["variance"] = _round(float(pdf.variance()))
    except Exception:
        pass  # multivariate/symbolic pdfs without scalar moments
    return digest


def _row_summary(t) -> dict:
    certain = {
        k: (_round(v) if isinstance(v, float) else v)
        for k, v in sorted(t.certain.items())
    }
    pdfs = {
        ",".join(sorted(dep)): _pdf_digest(pdf)
        for dep, pdf in sorted(t.pdfs.items(), key=lambda kv: sorted(kv[0]))
    }
    return {"certain": certain, "pdfs": pdfs}


def summarize(result) -> dict:
    if getattr(result, "plan_text", None):
        return {"plan": result.plan_text.splitlines()}
    rows = [_row_summary(t) for t in result.rows]
    rows.sort(key=lambda r: json.dumps(r, sort_keys=True))
    return {"columns": list(result.columns), "rows": rows}


@pytest.fixture(scope="module")
def db():
    d = Database()
    for sql in SETUP:
        d.execute(sql)
    return d


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden(name, db):
    summary = summarize(db.execute(CASES[name]))
    path = os.path.join(GOLDEN_DIR, f"{name}.json")
    if UPDATE:
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(path, "w") as f:
            json.dump(summary, f, indent=2, sort_keys=True)
            f.write("\n")
        pytest.skip("golden updated")
    assert os.path.exists(path), (
        f"missing golden {path}; regenerate with REPRO_UPDATE_GOLDEN=1"
    )
    with open(path) as f:
        expected = json.load(f)
    assert summary == expected, (
        f"result for {name!r} drifted from {path}; if intentional, "
        "regenerate with REPRO_UPDATE_GOLDEN=1"
    )


def test_goldens_cover_all_cases():
    names = {
        os.path.splitext(n)[0]
        for n in os.listdir(GOLDEN_DIR)
        if n.endswith(".json")
    }
    assert names == set(CASES), (
        f"stale/missing goldens: {sorted(names ^ set(CASES))}"
    )
    assert len(CASES) >= 20
