"""Exception hierarchy for the repro probabilistic database.

All library errors derive from :class:`ReproError` so that callers can catch
one base class.  Engine-level errors (storage, SQL) and model-level errors
(schema, pdf) have their own subtrees.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A relation schema or dependency specification is invalid."""


class PdfError(ReproError):
    """A probability distribution is invalid or an operation on it failed."""


class InvalidDistributionError(PdfError):
    """Distribution parameters are out of range (e.g. negative variance)."""


class DimensionMismatchError(PdfError):
    """Two pdfs or a pdf and a region disagree on their attribute sets."""


class HistoryError(ReproError):
    """Ancestor/history bookkeeping was violated (e.g. dangling reference)."""


class QueryError(ReproError):
    """A query is malformed with respect to the schema or the model."""


class UnsupportedOperationError(ReproError):
    """The requested operation is not supported for this pdf or operator."""


class EngineError(ReproError):
    """Base class for storage/execution engine errors."""


class StorageError(EngineError):
    """A page, heap file, or buffer pool invariant was violated."""


class SerializationError(EngineError):
    """A value or pdf could not be encoded to / decoded from bytes."""


class CatalogError(EngineError):
    """A table or index name is unknown or already exists."""


class TransactionError(EngineError):
    """BEGIN/COMMIT/ROLLBACK used outside a valid transaction state."""


class WalError(EngineError):
    """The write-ahead log or a checkpoint file is malformed."""


class SqlError(EngineError):
    """Base class for SQL front-end errors."""


class SqlLexError(SqlError):
    """The SQL text contains an unrecognised token."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class SqlParseError(SqlError):
    """The SQL token stream does not match the grammar."""

    def __init__(self, message: str, position: int = -1):
        super().__init__(message)
        self.position = position


class SqlBindError(SqlError):
    """A SQL identifier does not resolve against the catalog."""


class IndexError_(EngineError):
    """A B-tree or uncertainty-index invariant was violated."""
