"""Vectorized probability kernels for batches of symbolic pdfs.

The batch executor gathers the parameters of same-family symbolic pdfs
(continuous: Gaussian, Uniform, Exponential, Triangular, Gamma, Lognormal,
Beta, Weibull; discrete: Bernoulli, Binomial, Poisson, Geometric) into numpy
arrays and evaluates all interval probabilities with one ufunc sweep instead
of N scipy object round-trips.  Histogram pdfs vectorize as well: same-width
groups share one bin-mass matrix sweep.  The kernels are *bitwise-identical*
to the scalar paths:

* scalar :meth:`ContinuousPdf.prob_interval` accumulates
  ``total += float(cdf(hi) - cdf(lo))`` per interval, left to right, then
  clamps with ``min(max(total, 0), 1)``;
* the kernels evaluate the same elementwise cdf ufuncs over the flattened
  endpoint arrays, sum per-pdf segments with ``np.bincount`` (which also
  accumulates in array order), and clamp with ``np.clip`` — the same IEEE
  operations in the same order;
* the families without cached closed forms (Triangular, Gamma, Lognormal,
  Beta, Weibull) go through the scipy *class-level* cdf ufuncs, which are
  the very functions their frozen distributions delegate to, so the batched
  values equal the scalar ``.cdf()`` results bit for bit.  The lognormal
  ``scale`` is gathered with per-pdf ``math.exp`` because that is what the
  frozen constructor uses (``np.exp`` is not elementwise-identical to it).

The parameter gathers live in :data:`FAMILY_PARAMS` so that columnar batches
(:mod:`repro.engine.executor.columnar`) can materialize the parameter arrays
once per segment and re-run sweeps over slices without touching the pdf
objects again; :func:`interval_probs_params` is the array-native entry point
those columnar sweeps use.

Families not registered here fall back to their scalar methods, so the
batch entry points accept arbitrary pdfs.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np
from scipy import special, stats

from .base import Pdf, UnivariatePdf
from .continuous import (
    BetaPdf,
    ExponentialPdf,
    GammaPdf,
    GaussianPdf,
    LognormalPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)
from .discrete import (
    BernoulliPdf,
    BinomialPdf,
    DiscretePdf,
    GeometricPdf,
    PoissonPdf,
    SymbolicDiscretePdf,
)
from .floors import FlooredPdf
from .histogram import HistogramPdf
from .regions import BoxRegion, IntervalSet

__all__ = [
    "FAMILY_PARAMS",
    "VECTOR_FAMILIES",
    "DISCRETE_VECTOR_FAMILIES",
    "kernel_family",
    "supports_batch_mass",
    "interval_probs_params",
    "batch_interval_probs",
    "batch_mass",
    "batch_materialize",
]


# ---------------------------------------------------------------------------
# Continuous symbolic families: parameter gathers + array-native cdfs
# ---------------------------------------------------------------------------
#
# Each family is split into two layers so the columnar executor can cache the
# gathered parameter arrays:
#
# * a *gather* (``FAMILY_PARAMS``): pdf objects -> tuple of parameter arrays
#   in the family's frozen-distribution parameterization;
# * an array-native cdf (``_FAMILY_CDF``): (params, xs) -> cdf values, pure
#   ufunc work, no pdf objects involved.
#
# ``VECTOR_FAMILIES`` (the object-level sweep used by ``batch_interval_probs``)
# composes the two.


def _gaussian_params(pdfs: Sequence[GaussianPdf]) -> Tuple[np.ndarray, ...]:
    return (
        np.array([p._mu for p in pdfs]),
        np.array([p._sd for p in pdfs]),
    )


def _gaussian_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    mu, sd = params
    return special.ndtr((xs - mu) / sd)


def _uniform_params(pdfs: Sequence[UniformPdf]) -> Tuple[np.ndarray, ...]:
    return (
        np.array([p._lo for p in pdfs]),
        np.array([p._hi for p in pdfs]),
    )


def _uniform_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    lo, hi = params
    return np.clip((xs - lo) / (hi - lo), 0.0, 1.0)


def _exponential_params(pdfs: Sequence[ExponentialPdf]) -> Tuple[np.ndarray, ...]:
    return (np.array([p._rate for p in pdfs]),)


def _exponential_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    (rate,) = params
    xs = np.asarray(xs, dtype=float)
    return np.where(xs <= 0.0, 0.0, 1.0 - np.exp(-rate * np.maximum(xs, 0.0)))


def _triangular_params(pdfs: Sequence[TriangularPdf]) -> Tuple[np.ndarray, ...]:
    lo = np.array([p._params["lo"] for p in pdfs])
    mode = np.array([p._params["mode"] for p in pdfs])
    hi = np.array([p._params["hi"] for p in pdfs])
    # The frozen dist is stats.triang(c, loc=lo, scale=hi - lo); elementwise
    # IEEE subtraction/division reproduce the scalar parameters exactly.
    return ((mode - lo) / (hi - lo), lo, hi - lo)


def _triangular_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    c, loc, scale = params
    return np.asarray(stats.triang.cdf(xs, c, loc=loc, scale=scale))


def _gamma_params(pdfs: Sequence[GammaPdf]) -> Tuple[np.ndarray, ...]:
    shape = np.array([p._params["shape"] for p in pdfs])
    rate = np.array([p._params["rate"] for p in pdfs])
    return (shape, 1.0 / rate)


def _gamma_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    a, scale = params
    return np.asarray(stats.gamma.cdf(xs, a, scale=scale))


def _lognormal_params(pdfs: Sequence[LognormalPdf]) -> Tuple[np.ndarray, ...]:
    s = np.array([p._params["sigma"] for p in pdfs])
    # math.exp, not np.exp: the frozen dist's scale is math.exp(mu) and the
    # two exponentials are not elementwise-identical.
    scale = np.array([math.exp(p._params["mu"]) for p in pdfs])
    return (s, scale)


def _lognormal_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    s, scale = params
    return np.asarray(stats.lognorm.cdf(xs, s, scale=scale))


def _beta_params(pdfs: Sequence[BetaPdf]) -> Tuple[np.ndarray, ...]:
    return (
        np.array([p._params["alpha"] for p in pdfs]),
        np.array([p._params["beta"] for p in pdfs]),
    )


def _beta_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    a, b = params
    return np.asarray(stats.beta.cdf(xs, a, b))


def _weibull_params(pdfs: Sequence[WeibullPdf]) -> Tuple[np.ndarray, ...]:
    return (
        np.array([p._params["shape"] for p in pdfs]),
        np.array([p._params["scale"] for p in pdfs]),
    )


def _weibull_cdf_arrays(params: Tuple[np.ndarray, ...], xs) -> np.ndarray:
    c, scale = params
    return np.asarray(stats.weibull_min.cdf(xs, c, scale=scale))


#: family type -> gather of the frozen-dist parameter arrays
FAMILY_PARAMS: Dict[type, Callable[[Sequence[UnivariatePdf]], Tuple[np.ndarray, ...]]] = {
    GaussianPdf: _gaussian_params,
    UniformPdf: _uniform_params,
    ExponentialPdf: _exponential_params,
    TriangularPdf: _triangular_params,
    GammaPdf: _gamma_params,
    LognormalPdf: _lognormal_params,
    BetaPdf: _beta_params,
    WeibullPdf: _weibull_params,
}

#: family type -> array-native cdf over (parameter arrays, points)
_FAMILY_CDF: Dict[type, Callable[[Tuple[np.ndarray, ...], object], np.ndarray]] = {
    GaussianPdf: _gaussian_cdf_arrays,
    UniformPdf: _uniform_cdf_arrays,
    ExponentialPdf: _exponential_cdf_arrays,
    TriangularPdf: _triangular_cdf_arrays,
    GammaPdf: _gamma_cdf_arrays,
    LognormalPdf: _lognormal_cdf_arrays,
    BetaPdf: _beta_cdf_arrays,
    WeibullPdf: _weibull_cdf_arrays,
}


def _make_vector_cdf(fam: type):
    gather = FAMILY_PARAMS[fam]
    cdf = _FAMILY_CDF[fam]

    def vector_cdf(pdfs: Sequence[UnivariatePdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
        params = gather(pdfs)
        return cdf(tuple(a[seg] for a in params), xs)

    return vector_cdf


#: family type -> vectorized cdf over (pdfs, segment index per endpoint, endpoints)
VECTOR_FAMILIES: Dict[type, Callable[[Sequence[UnivariatePdf], np.ndarray, np.ndarray], np.ndarray]] = {
    fam: _make_vector_cdf(fam) for fam in FAMILY_PARAMS
}


def interval_probs_params(
    fam: type, params: Tuple[np.ndarray, ...], allowed: IntervalSet
) -> np.ndarray:
    """``P(X_i in allowed)`` for rows given as parameter arrays of one family.

    The columnar fast path: every row shares the *same* interval set (the
    selection region), so the cdf sweeps broadcast scalar endpoints against
    the cached parameter arrays.  Bitwise-identical to per-row
    ``prob_interval``: intervals accumulate left-to-right from ``0.0`` and
    the final clamp is the same ``min(max(total, 0), 1)``.
    """
    cdf = _FAMILY_CDF[fam]
    n = len(params[0])
    ivs = allowed.intervals
    if not ivs:
        return np.zeros(n)
    if len(ivs) == 1:
        iv = ivs[0]
        totals = cdf(params, iv.hi) - cdf(params, iv.lo)
    else:
        totals = np.zeros(n)
        for iv in ivs:
            totals += cdf(params, iv.hi) - cdf(params, iv.lo)
    return np.clip(totals, 0.0, 1.0)


# ---------------------------------------------------------------------------
# Histogram pdfs: same-width groups share one bin-mass matrix sweep
# ---------------------------------------------------------------------------
#
# ``HistogramPdf.cdf`` is a per-point bucket lookup plus a linear fraction of
# the bucket's mass.  For a group of histograms with the same bucket count we
# stack edges/masses into matrices and replay exactly those operations
# row-wise: the bucket index comes from counting ``edges <= x`` (identical to
# ``searchsorted(side="right") - 1``, ties included), the row-wise cumsum
# equals each row's 1-D cumsum bitwise, and the interval accumulation mirrors
# the scalar ``total += cdf(hi) - cdf(lo)`` / ``max(total, 0)`` —
# histograms clamp below only (a partial histogram's mass may be < 1).


def _histogram_cdf_rows(
    edges: np.ndarray, masses: np.ndarray, cum: np.ndarray, rows: np.ndarray, xs: np.ndarray
) -> np.ndarray:
    """Row-wise replay of ``HistogramPdf.cdf``: point ``xs[j]`` against row ``rows[j]``."""
    nb = masses.shape[1]
    e = edges[rows]
    idx = (e <= xs[:, None]).sum(axis=1) - 1
    idx = np.minimum(np.clip(idx, 0, None), nb - 1)
    take = np.arange(len(rows))
    left = e[take, idx]
    width = e[take, idx + 1] - left
    frac = np.clip((xs - left) / width, 0.0, 1.0)
    out = cum[rows, idx] + frac * masses[rows, idx]
    out = np.where(xs <= e[:, 0], 0.0, out)
    out = np.where(xs >= e[:, -1], cum[rows, -1], out)
    return out


def _histogram_group_probs(
    pdfs: Sequence[HistogramPdf], alloweds: Sequence[IntervalSet]
) -> np.ndarray:
    """``prob_interval`` for same-bucket-count histograms, one matrix sweep."""
    edges = np.stack([p._edges for p in pdfs])
    masses = np.stack([p._masses for p in pdfs])
    cum = np.concatenate(
        [np.zeros((len(pdfs), 1)), np.cumsum(masses, axis=1)], axis=1
    )
    seg: List[int] = []
    los: List[float] = []
    his: List[float] = []
    for k, allowed in enumerate(alloweds):
        for iv in allowed.intervals:
            seg.append(k)
            los.append(iv.lo)
            his.append(iv.hi)
    if not seg:
        return np.zeros(len(pdfs))
    n_pts = len(seg)
    seg_arr = np.array(seg, dtype=np.intp)
    xs = np.empty(2 * n_pts, dtype=float)
    xs[:n_pts] = los
    xs[n_pts:] = his
    vals = _histogram_cdf_rows(
        edges, masses, cum, np.concatenate([seg_arr, seg_arr]), xs
    )
    diffs = vals[n_pts:] - vals[:n_pts]
    # bincount accumulates from 0.0 in array order — the scalar method's
    # ``total = 0.0; total += cdf(hi) - cdf(lo)`` exactly.  Histograms clamp
    # below only: a partial histogram's interval mass may legitimately be < 1.
    totals = np.bincount(seg_arr, weights=diffs, minlength=len(pdfs))
    return np.maximum(totals, 0.0)


def histogram_interval_probs(
    pdfs: Sequence[HistogramPdf], alloweds: Sequence[IntervalSet]
) -> np.ndarray:
    """``[p.prob_interval(a) for p, a in zip(pdfs, alloweds)]``, vectorized.

    Histograms are grouped by bucket count; each group shares one stacked
    edge/mass matrix sweep.  Element-wise bitwise-identical to the scalar
    method.
    """
    out = np.empty(len(pdfs), dtype=float)
    groups: Dict[int, List[int]] = {}
    for i, p in enumerate(pdfs):
        groups.setdefault(p.num_buckets, []).append(i)
    for idxs in groups.values():
        where = np.array(idxs, dtype=np.intp)
        out[where] = _histogram_group_probs(
            [pdfs[i] for i in idxs], [alloweds[i] for i in idxs]
        )
    return out


# ---------------------------------------------------------------------------
# Discrete symbolic families: vectorized materialization
# ---------------------------------------------------------------------------
#
# ``SymbolicDiscretePdf`` answers interval probabilities by materializing an
# explicit DiscretePdf first (see ``materialize``):
#
#     lo, hi = dist.support();  hi = ppf(1 - 1e-12) if infinite
#     values = np.arange(int(lo), int(hi) + 1);  probs = dist.pmf(values)
#
# The batch path below replays exactly those steps, but evaluates the pmf of
# every same-family pdf in the group with ONE scipy ufunc sweep over the
# concatenated supports.  Frozen scipy distributions delegate to the
# class-level ufuncs (``stats.binom(n, p).pmf(x) == stats.binom.pmf(x, n, p)``
# element for element), so the batched probabilities are bitwise-identical
# to the scalar ones.


def _bernoulli_support(pdfs: Sequence[BernoulliPdf]) -> Tuple[np.ndarray, np.ndarray]:
    n = len(pdfs)
    return np.zeros(n, dtype=np.int64), np.ones(n, dtype=np.int64)


def _bernoulli_pmf(pdfs: Sequence[BernoulliPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    p = np.array([f._params["p"] for f in pdfs])
    return np.asarray(stats.bernoulli.pmf(xs, p[seg]))


def _binomial_support(pdfs: Sequence[BinomialPdf]) -> Tuple[np.ndarray, np.ndarray]:
    his = np.array([int(f._params["n"]) for f in pdfs], dtype=np.int64)
    return np.zeros(len(pdfs), dtype=np.int64), his


def _binomial_pmf(pdfs: Sequence[BinomialPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    n = np.array([int(f._params["n"]) for f in pdfs])
    p = np.array([f._params["p"] for f in pdfs])
    return np.asarray(stats.binom.pmf(xs, n[seg], p[seg]))


def _poisson_support(pdfs: Sequence[PoissonPdf]) -> Tuple[np.ndarray, np.ndarray]:
    rates = np.array([f._params["rate"] for f in pdfs])
    # Scalar path: support() is (0, inf), truncated at ppf(1 - 1e-12).
    his = np.asarray(stats.poisson.ppf(1.0 - 1e-12, rates))
    return np.zeros(len(pdfs), dtype=np.int64), his.astype(np.int64)


def _poisson_pmf(pdfs: Sequence[PoissonPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    rates = np.array([f._params["rate"] for f in pdfs])
    return np.asarray(stats.poisson.pmf(xs, rates[seg]))


def _geometric_support(pdfs: Sequence[GeometricPdf]) -> Tuple[np.ndarray, np.ndarray]:
    ps = np.array([f._params["p"] for f in pdfs])
    # Scalar path: support() is (1, inf), truncated at ppf(1 - 1e-12).
    his = np.asarray(stats.geom.ppf(1.0 - 1e-12, ps))
    return np.ones(len(pdfs), dtype=np.int64), his.astype(np.int64)


def _geometric_pmf(pdfs: Sequence[GeometricPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    ps = np.array([f._params["p"] for f in pdfs])
    return np.asarray(stats.geom.pmf(xs, ps[seg]))


#: family type -> (vectorized support bounds, vectorized pmf over
#: (pdfs, segment index per value, values))
DISCRETE_VECTOR_FAMILIES: Dict[type, Tuple[Callable, Callable]] = {
    BernoulliPdf: (_bernoulli_support, _bernoulli_pmf),
    BinomialPdf: (_binomial_support, _binomial_pmf),
    PoissonPdf: (_poisson_support, _poisson_pmf),
    GeometricPdf: (_geometric_support, _geometric_pmf),
}


def batch_materialize(pdfs: Sequence[SymbolicDiscretePdf]) -> List[DiscretePdf]:
    """``pdf.materialize()`` for each symbolic discrete pdf.

    Registered families (Bernoulli, Binomial, Poisson, Geometric) share one
    pmf ufunc sweep over their concatenated integer supports; anything else
    falls back to the scalar method.  Element-wise bitwise-identical to
    ``materialize``.
    """
    out: List[DiscretePdf] = [None] * len(pdfs)  # type: ignore[list-item]
    groups: Dict[type, List[int]] = {}
    for i, pdf in enumerate(pdfs):
        fam = type(pdf)
        if fam in DISCRETE_VECTOR_FAMILIES:
            groups.setdefault(fam, []).append(i)
        else:
            out[i] = pdf.materialize()
    for fam, idxs in groups.items():
        support_fn, pmf_fn = DISCRETE_VECTOR_FAMILIES[fam]
        group = [pdfs[i] for i in idxs]
        los, his = support_fn(group)
        counts = (his - los + 1).astype(np.intp)
        if np.any(counts <= 0):
            # Degenerate supports (e.g. geom.ppf quirks at p == 1) take the
            # scalar path so they raise/behave exactly as ``materialize``.
            bad = [k for k in range(len(group)) if counts[k] <= 0]
            for k in bad:
                out[idxs[k]] = group[k].materialize()
            keep_k = [k for k in range(len(group)) if counts[k] > 0]
            if not keep_k:
                continue
            idxs = [idxs[k] for k in keep_k]
            group = [group[k] for k in keep_k]
            los, his = los[keep_k], his[keep_k]
            counts = counts[keep_k]
        starts = np.zeros(len(group), dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        total = int(starts[-1] + counts[-1]) if len(group) else 0
        seg = np.repeat(np.arange(len(group), dtype=np.intp), counts)
        # Per-segment ``np.arange(lo, hi + 1)``, concatenated: an integer
        # ramp offset by each segment's start, shifted to its lo.
        offsets = np.arange(total, dtype=np.int64) - starts[seg]
        values = (los[seg] + offsets).astype(float)
        probs = pmf_fn(group, seg, values)
        for k, i in enumerate(idxs):
            lo_k = starts[k]
            hi_k = lo_k + counts[k]
            vals_k = values[lo_k:hi_k]
            probs_k = probs[lo_k:hi_k]
            keep = probs_k > 0
            out[i] = DiscretePdf._from_arrays(
                vals_k[keep], probs_k[keep], pdfs[i].attr
            )
    return out


def kernel_family(pdf: Pdf):
    """The vectorizable family of a (possibly floored) pdf, or ``None``."""
    base = pdf.base if isinstance(pdf, FlooredPdf) else pdf
    t = type(base)
    if t in VECTOR_FAMILIES or t in DISCRETE_VECTOR_FAMILIES or t is HistogramPdf:
        return t
    return None


def supports_batch_mass(pdf: Pdf) -> bool:
    """True when :func:`batch_mass` has a vectorized path for ``pdf``."""
    return kernel_family(pdf) is not None


def _scalar_interval_prob(base: UnivariatePdf, allowed: IntervalSet) -> float:
    """Mirror of ``FlooredPdf._base_prob`` for non-kernel bases."""
    prob_interval = getattr(base, "prob_interval", None)
    if prob_interval is not None:
        return float(prob_interval(allowed))
    return float(base.prob(BoxRegion({base.attr: allowed})))


def batch_interval_probs(
    bases: Sequence[UnivariatePdf], alloweds: Sequence[IntervalSet]
) -> np.ndarray:
    """``P(X_i in allowed_i)`` for parallel sequences of base pdfs and interval sets.

    Equals ``[b.prob_interval(a) for b, a in zip(bases, alloweds)]`` bit for
    bit; registered families are computed with one cdf sweep per family,
    histograms with one matrix sweep per bucket count, everything else falls
    back to the scalar method.
    """
    n = len(bases)
    out = np.empty(n, dtype=float)
    groups: Dict[type, List[int]] = {}
    discrete_idx: List[int] = []
    hist_idx: List[int] = []
    for i, base in enumerate(bases):
        fam = type(base)
        if fam in VECTOR_FAMILIES:
            groups.setdefault(fam, []).append(i)
        elif fam in DISCRETE_VECTOR_FAMILIES:
            discrete_idx.append(i)
        elif fam is HistogramPdf:
            hist_idx.append(i)
        else:
            out[i] = _scalar_interval_prob(base, alloweds[i])
    if discrete_idx:
        # Scalar path: materialize() then DiscretePdf.prob_interval.  The
        # materialization (the expensive pmf sweep) is shared per family;
        # the per-pdf masked sum afterwards is already a numpy reduction.
        mats = batch_materialize([bases[i] for i in discrete_idx])
        for mat, i in zip(mats, discrete_idx):
            out[i] = mat.prob_interval(alloweds[i])
    if hist_idx:
        out[np.array(hist_idx, dtype=np.intp)] = histogram_interval_probs(
            [bases[i] for i in hist_idx], [alloweds[i] for i in hist_idx]
        )
    for fam, idxs in groups.items():
        seg: List[int] = []
        los: List[float] = []
        his: List[float] = []
        single = True
        for k, i in enumerate(idxs):
            ivs = alloweds[i].intervals
            if len(ivs) != 1:
                single = False
            for iv in ivs:
                seg.append(k)
                los.append(iv.lo)
                his.append(iv.hi)
        where = np.array(idxs, dtype=np.intp)
        if not seg:
            out[where] = 0.0
            continue
        n_pts = len(seg)
        seg_arr = np.array(seg, dtype=np.intp)
        group_pdfs = [bases[i] for i in idxs]
        cdf = VECTOR_FAMILIES[fam]
        # One cdf sweep over both endpoint vectors: parameters are gathered
        # once, and the elementwise values are identical to two sweeps.
        xs = np.empty(2 * n_pts, dtype=float)
        xs[:n_pts] = los
        xs[n_pts:] = his
        vals = cdf(group_pdfs, np.concatenate([seg_arr, seg_arr]), xs)
        diffs = vals[n_pts:] - vals[:n_pts]
        if single:
            # Exactly one interval per pdf: seg is the identity, bincount is a no-op.
            totals = diffs
        else:
            totals = np.bincount(seg_arr, weights=diffs, minlength=len(idxs))
        out[where] = np.clip(totals, 0.0, 1.0)
    return out


def batch_mass(pdfs: Sequence[Pdf]) -> np.ndarray:
    """``mass()`` for each pdf, vectorized where a kernel family applies.

    Floored symbolic pdfs renormalize through :func:`batch_interval_probs`
    (their mass is the base probability of the allowed set); raw registered
    symbolic families have mass exactly 1; raw histograms sum their bucket
    masses in same-width matrix groups (a partial histogram's mass may be
    < 1, so there is no shortcut); everything else uses its scalar ``mass``.
    """
    out = np.empty(len(pdfs), dtype=float)
    idxs: List[int] = []
    bases: List[UnivariatePdf] = []
    alloweds: List[IntervalSet] = []
    hist_idx: List[int] = []
    for i, pdf in enumerate(pdfs):
        if isinstance(pdf, FlooredPdf):
            idxs.append(i)
            bases.append(pdf.base)
            alloweds.append(pdf.allowed)
        elif type(pdf) in VECTOR_FAMILIES or type(pdf) in DISCRETE_VECTOR_FAMILIES:
            # Raw symbolic families (continuous and discrete) have mass
            # exactly 1 by construction.
            out[i] = 1.0
        elif type(pdf) is HistogramPdf:
            hist_idx.append(i)
        else:
            out[i] = pdf.mass()
    if hist_idx:
        by_width: Dict[int, List[int]] = {}
        for i in hist_idx:
            by_width.setdefault(pdfs[i].num_buckets, []).append(i)
        for group in by_width.values():
            stacked = np.stack([pdfs[i]._masses for i in group])
            # Row-wise sum of a stacked matrix equals each row's own 1-D
            # ``masses.sum()`` bitwise (same pairwise summation per row).
            out[np.array(group, dtype=np.intp)] = stacked.sum(axis=1)
    if idxs:
        out[np.array(idxs, dtype=np.intp)] = batch_interval_probs(bases, alloweds)
    return out
