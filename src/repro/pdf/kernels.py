"""Vectorized probability kernels for batches of symbolic pdfs.

The batch executor gathers the parameters of same-family symbolic pdfs
(Gaussian, Uniform, Exponential) into numpy arrays and evaluates all
interval probabilities with one ufunc sweep instead of N scipy object
round-trips.  The kernels are *bitwise-identical* to the scalar paths:

* scalar :meth:`ContinuousPdf.prob_interval` accumulates
  ``total += float(cdf(hi) - cdf(lo))`` per interval, left to right, then
  clamps with ``min(max(total, 0), 1)``;
* the kernels evaluate the same elementwise cdf ufuncs over the flattened
  endpoint arrays, sum per-pdf segments with ``np.bincount`` (which also
  accumulates in array order), and clamp with ``np.clip`` — the same IEEE
  operations in the same order.

Families not registered here fall back to their scalar methods, so the
batch entry points accept arbitrary pdfs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np
from scipy import special

from .base import Pdf, UnivariatePdf
from .continuous import ExponentialPdf, GaussianPdf, UniformPdf
from .floors import FlooredPdf
from .regions import BoxRegion, IntervalSet

__all__ = [
    "VECTOR_FAMILIES",
    "kernel_family",
    "supports_batch_mass",
    "batch_interval_probs",
    "batch_mass",
]


def _gaussian_cdf(pdfs: Sequence[GaussianPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    mu = np.array([p._mu for p in pdfs])
    sd = np.array([p._sd for p in pdfs])
    return special.ndtr((xs - mu[seg]) / sd[seg])


def _uniform_cdf(pdfs: Sequence[UniformPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    lo = np.array([p._lo for p in pdfs])
    hi = np.array([p._hi for p in pdfs])
    return np.clip((xs - lo[seg]) / (hi[seg] - lo[seg]), 0.0, 1.0)


def _exponential_cdf(pdfs: Sequence[ExponentialPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    rate = np.array([p._rate for p in pdfs])
    return np.where(xs <= 0.0, 0.0, 1.0 - np.exp(-rate[seg] * np.maximum(xs, 0.0)))


#: family type -> vectorized cdf over (pdfs, segment index per endpoint, endpoints)
VECTOR_FAMILIES: Dict[type, Callable[[Sequence[UnivariatePdf], np.ndarray, np.ndarray], np.ndarray]] = {
    GaussianPdf: _gaussian_cdf,
    UniformPdf: _uniform_cdf,
    ExponentialPdf: _exponential_cdf,
}


def kernel_family(pdf: Pdf):
    """The vectorizable family of a (possibly floored) pdf, or ``None``."""
    base = pdf.base if isinstance(pdf, FlooredPdf) else pdf
    t = type(base)
    return t if t in VECTOR_FAMILIES else None


def supports_batch_mass(pdf: Pdf) -> bool:
    """True when :func:`batch_mass` has a vectorized path for ``pdf``."""
    return kernel_family(pdf) is not None


def _scalar_interval_prob(base: UnivariatePdf, allowed: IntervalSet) -> float:
    """Mirror of ``FlooredPdf._base_prob`` for non-kernel bases."""
    prob_interval = getattr(base, "prob_interval", None)
    if prob_interval is not None:
        return float(prob_interval(allowed))
    return float(base.prob(BoxRegion({base.attr: allowed})))


def batch_interval_probs(
    bases: Sequence[UnivariatePdf], alloweds: Sequence[IntervalSet]
) -> np.ndarray:
    """``P(X_i in allowed_i)`` for parallel sequences of base pdfs and interval sets.

    Equals ``[b.prob_interval(a) for b, a in zip(bases, alloweds)]`` bit for
    bit; registered families are computed with one cdf sweep per family,
    everything else falls back to the scalar method.
    """
    n = len(bases)
    out = np.empty(n, dtype=float)
    groups: Dict[type, List[int]] = {}
    for i, base in enumerate(bases):
        fam = type(base)
        if fam in VECTOR_FAMILIES:
            groups.setdefault(fam, []).append(i)
        else:
            out[i] = _scalar_interval_prob(base, alloweds[i])
    for fam, idxs in groups.items():
        seg: List[int] = []
        los: List[float] = []
        his: List[float] = []
        single = True
        for k, i in enumerate(idxs):
            ivs = alloweds[i].intervals
            if len(ivs) != 1:
                single = False
            for iv in ivs:
                seg.append(k)
                los.append(iv.lo)
                his.append(iv.hi)
        where = np.array(idxs, dtype=np.intp)
        if not seg:
            out[where] = 0.0
            continue
        n_pts = len(seg)
        seg_arr = np.array(seg, dtype=np.intp)
        group_pdfs = [bases[i] for i in idxs]
        cdf = VECTOR_FAMILIES[fam]
        # One cdf sweep over both endpoint vectors: parameters are gathered
        # once, and the elementwise values are identical to two sweeps.
        xs = np.empty(2 * n_pts, dtype=float)
        xs[:n_pts] = los
        xs[n_pts:] = his
        vals = cdf(group_pdfs, np.concatenate([seg_arr, seg_arr]), xs)
        diffs = vals[n_pts:] - vals[:n_pts]
        if single:
            # Exactly one interval per pdf: seg is the identity, bincount is a no-op.
            totals = diffs
        else:
            totals = np.bincount(seg_arr, weights=diffs, minlength=len(idxs))
        out[where] = np.clip(totals, 0.0, 1.0)
    return out


def batch_mass(pdfs: Sequence[Pdf]) -> np.ndarray:
    """``mass()`` for each pdf, vectorized where a kernel family applies.

    Floored symbolic pdfs renormalize through :func:`batch_interval_probs`
    (their mass is the base probability of the allowed set); raw registered
    families have mass exactly 1; everything else uses its scalar ``mass``.
    """
    out = np.empty(len(pdfs), dtype=float)
    idxs: List[int] = []
    bases: List[UnivariatePdf] = []
    alloweds: List[IntervalSet] = []
    for i, pdf in enumerate(pdfs):
        if isinstance(pdf, FlooredPdf):
            idxs.append(i)
            bases.append(pdf.base)
            alloweds.append(pdf.allowed)
        elif type(pdf) in VECTOR_FAMILIES:
            out[i] = 1.0
        else:
            out[i] = pdf.mass()
    if idxs:
        out[np.array(idxs, dtype=np.intp)] = batch_interval_probs(bases, alloweds)
    return out
