"""Vectorized probability kernels for batches of symbolic pdfs.

The batch executor gathers the parameters of same-family symbolic pdfs
(continuous: Gaussian, Uniform, Exponential; discrete: Bernoulli, Binomial,
Poisson) into numpy arrays and evaluates all interval probabilities with one
ufunc sweep instead of N scipy object round-trips.  The kernels are
*bitwise-identical* to the scalar paths:

* scalar :meth:`ContinuousPdf.prob_interval` accumulates
  ``total += float(cdf(hi) - cdf(lo))`` per interval, left to right, then
  clamps with ``min(max(total, 0), 1)``;
* the kernels evaluate the same elementwise cdf ufuncs over the flattened
  endpoint arrays, sum per-pdf segments with ``np.bincount`` (which also
  accumulates in array order), and clamp with ``np.clip`` — the same IEEE
  operations in the same order.

Families not registered here fall back to their scalar methods, so the
batch entry points accept arbitrary pdfs.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np
from scipy import special, stats

from .base import Pdf, UnivariatePdf
from .continuous import ExponentialPdf, GaussianPdf, UniformPdf
from .discrete import (
    BernoulliPdf,
    BinomialPdf,
    DiscretePdf,
    PoissonPdf,
    SymbolicDiscretePdf,
)
from .floors import FlooredPdf
from .regions import BoxRegion, IntervalSet

__all__ = [
    "VECTOR_FAMILIES",
    "DISCRETE_VECTOR_FAMILIES",
    "kernel_family",
    "supports_batch_mass",
    "batch_interval_probs",
    "batch_mass",
    "batch_materialize",
]


def _gaussian_cdf(pdfs: Sequence[GaussianPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    mu = np.array([p._mu for p in pdfs])
    sd = np.array([p._sd for p in pdfs])
    return special.ndtr((xs - mu[seg]) / sd[seg])


def _uniform_cdf(pdfs: Sequence[UniformPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    lo = np.array([p._lo for p in pdfs])
    hi = np.array([p._hi for p in pdfs])
    return np.clip((xs - lo[seg]) / (hi[seg] - lo[seg]), 0.0, 1.0)


def _exponential_cdf(pdfs: Sequence[ExponentialPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    rate = np.array([p._rate for p in pdfs])
    return np.where(xs <= 0.0, 0.0, 1.0 - np.exp(-rate[seg] * np.maximum(xs, 0.0)))


#: family type -> vectorized cdf over (pdfs, segment index per endpoint, endpoints)
VECTOR_FAMILIES: Dict[type, Callable[[Sequence[UnivariatePdf], np.ndarray, np.ndarray], np.ndarray]] = {
    GaussianPdf: _gaussian_cdf,
    UniformPdf: _uniform_cdf,
    ExponentialPdf: _exponential_cdf,
}


# ---------------------------------------------------------------------------
# Discrete symbolic families: vectorized materialization
# ---------------------------------------------------------------------------
#
# ``SymbolicDiscretePdf`` answers interval probabilities by materializing an
# explicit DiscretePdf first (see ``materialize``):
#
#     lo, hi = dist.support();  hi = ppf(1 - 1e-12) if infinite
#     values = np.arange(int(lo), int(hi) + 1);  probs = dist.pmf(values)
#
# The batch path below replays exactly those steps, but evaluates the pmf of
# every same-family pdf in the group with ONE scipy ufunc sweep over the
# concatenated supports.  Frozen scipy distributions delegate to the
# class-level ufuncs (``stats.binom(n, p).pmf(x) == stats.binom.pmf(x, n, p)``
# element for element), so the batched probabilities are bitwise-identical
# to the scalar ones.


def _bernoulli_support(pdfs: Sequence[BernoulliPdf]) -> Tuple[np.ndarray, np.ndarray]:
    n = len(pdfs)
    return np.zeros(n, dtype=np.int64), np.ones(n, dtype=np.int64)


def _bernoulli_pmf(pdfs: Sequence[BernoulliPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    p = np.array([f._params["p"] for f in pdfs])
    return np.asarray(stats.bernoulli.pmf(xs, p[seg]))


def _binomial_support(pdfs: Sequence[BinomialPdf]) -> Tuple[np.ndarray, np.ndarray]:
    his = np.array([int(f._params["n"]) for f in pdfs], dtype=np.int64)
    return np.zeros(len(pdfs), dtype=np.int64), his


def _binomial_pmf(pdfs: Sequence[BinomialPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    n = np.array([int(f._params["n"]) for f in pdfs])
    p = np.array([f._params["p"] for f in pdfs])
    return np.asarray(stats.binom.pmf(xs, n[seg], p[seg]))


def _poisson_support(pdfs: Sequence[PoissonPdf]) -> Tuple[np.ndarray, np.ndarray]:
    rates = np.array([f._params["rate"] for f in pdfs])
    # Scalar path: support() is (0, inf), truncated at ppf(1 - 1e-12).
    his = np.asarray(stats.poisson.ppf(1.0 - 1e-12, rates))
    return np.zeros(len(pdfs), dtype=np.int64), his.astype(np.int64)


def _poisson_pmf(pdfs: Sequence[PoissonPdf], seg: np.ndarray, xs: np.ndarray) -> np.ndarray:
    rates = np.array([f._params["rate"] for f in pdfs])
    return np.asarray(stats.poisson.pmf(xs, rates[seg]))


#: family type -> (vectorized support bounds, vectorized pmf over
#: (pdfs, segment index per value, values))
DISCRETE_VECTOR_FAMILIES: Dict[type, Tuple[Callable, Callable]] = {
    BernoulliPdf: (_bernoulli_support, _bernoulli_pmf),
    BinomialPdf: (_binomial_support, _binomial_pmf),
    PoissonPdf: (_poisson_support, _poisson_pmf),
}


def batch_materialize(pdfs: Sequence[SymbolicDiscretePdf]) -> List[DiscretePdf]:
    """``pdf.materialize()`` for each symbolic discrete pdf.

    Registered families (Bernoulli, Binomial, Poisson) share one pmf ufunc
    sweep over their concatenated integer supports; anything else falls back
    to the scalar method.  Element-wise bitwise-identical to ``materialize``.
    """
    out: List[DiscretePdf] = [None] * len(pdfs)  # type: ignore[list-item]
    groups: Dict[type, List[int]] = {}
    for i, pdf in enumerate(pdfs):
        fam = type(pdf)
        if fam in DISCRETE_VECTOR_FAMILIES:
            groups.setdefault(fam, []).append(i)
        else:
            out[i] = pdf.materialize()
    for fam, idxs in groups.items():
        support_fn, pmf_fn = DISCRETE_VECTOR_FAMILIES[fam]
        group = [pdfs[i] for i in idxs]
        los, his = support_fn(group)
        counts = (his - los + 1).astype(np.intp)
        starts = np.zeros(len(group), dtype=np.intp)
        np.cumsum(counts[:-1], out=starts[1:])
        total = int(starts[-1] + counts[-1]) if len(group) else 0
        seg = np.repeat(np.arange(len(group), dtype=np.intp), counts)
        # Per-segment ``np.arange(lo, hi + 1)``, concatenated: an integer
        # ramp offset by each segment's start, shifted to its lo.
        offsets = np.arange(total, dtype=np.int64) - starts[seg]
        values = (los[seg] + offsets).astype(float)
        probs = pmf_fn(group, seg, values)
        for k, i in enumerate(idxs):
            lo_k = starts[k]
            hi_k = lo_k + counts[k]
            vals_k = values[lo_k:hi_k]
            probs_k = probs[lo_k:hi_k]
            keep = probs_k > 0
            out[i] = DiscretePdf._from_arrays(
                vals_k[keep], probs_k[keep], pdfs[i].attr
            )
    return out


def kernel_family(pdf: Pdf):
    """The vectorizable family of a (possibly floored) pdf, or ``None``."""
    base = pdf.base if isinstance(pdf, FlooredPdf) else pdf
    t = type(base)
    if t in VECTOR_FAMILIES or t in DISCRETE_VECTOR_FAMILIES:
        return t
    return None


def supports_batch_mass(pdf: Pdf) -> bool:
    """True when :func:`batch_mass` has a vectorized path for ``pdf``."""
    return kernel_family(pdf) is not None


def _scalar_interval_prob(base: UnivariatePdf, allowed: IntervalSet) -> float:
    """Mirror of ``FlooredPdf._base_prob`` for non-kernel bases."""
    prob_interval = getattr(base, "prob_interval", None)
    if prob_interval is not None:
        return float(prob_interval(allowed))
    return float(base.prob(BoxRegion({base.attr: allowed})))


def batch_interval_probs(
    bases: Sequence[UnivariatePdf], alloweds: Sequence[IntervalSet]
) -> np.ndarray:
    """``P(X_i in allowed_i)`` for parallel sequences of base pdfs and interval sets.

    Equals ``[b.prob_interval(a) for b, a in zip(bases, alloweds)]`` bit for
    bit; registered families are computed with one cdf sweep per family,
    everything else falls back to the scalar method.
    """
    n = len(bases)
    out = np.empty(n, dtype=float)
    groups: Dict[type, List[int]] = {}
    discrete_idx: List[int] = []
    for i, base in enumerate(bases):
        fam = type(base)
        if fam in VECTOR_FAMILIES:
            groups.setdefault(fam, []).append(i)
        elif fam in DISCRETE_VECTOR_FAMILIES:
            discrete_idx.append(i)
        else:
            out[i] = _scalar_interval_prob(base, alloweds[i])
    if discrete_idx:
        # Scalar path: materialize() then DiscretePdf.prob_interval.  The
        # materialization (the expensive pmf sweep) is shared per family;
        # the per-pdf masked sum afterwards is already a numpy reduction.
        mats = batch_materialize([bases[i] for i in discrete_idx])
        for mat, i in zip(mats, discrete_idx):
            out[i] = mat.prob_interval(alloweds[i])
    for fam, idxs in groups.items():
        seg: List[int] = []
        los: List[float] = []
        his: List[float] = []
        single = True
        for k, i in enumerate(idxs):
            ivs = alloweds[i].intervals
            if len(ivs) != 1:
                single = False
            for iv in ivs:
                seg.append(k)
                los.append(iv.lo)
                his.append(iv.hi)
        where = np.array(idxs, dtype=np.intp)
        if not seg:
            out[where] = 0.0
            continue
        n_pts = len(seg)
        seg_arr = np.array(seg, dtype=np.intp)
        group_pdfs = [bases[i] for i in idxs]
        cdf = VECTOR_FAMILIES[fam]
        # One cdf sweep over both endpoint vectors: parameters are gathered
        # once, and the elementwise values are identical to two sweeps.
        xs = np.empty(2 * n_pts, dtype=float)
        xs[:n_pts] = los
        xs[n_pts:] = his
        vals = cdf(group_pdfs, np.concatenate([seg_arr, seg_arr]), xs)
        diffs = vals[n_pts:] - vals[:n_pts]
        if single:
            # Exactly one interval per pdf: seg is the identity, bincount is a no-op.
            totals = diffs
        else:
            totals = np.bincount(seg_arr, weights=diffs, minlength=len(idxs))
        out[where] = np.clip(totals, 0.0, 1.0)
    return out


def batch_mass(pdfs: Sequence[Pdf]) -> np.ndarray:
    """``mass()`` for each pdf, vectorized where a kernel family applies.

    Floored symbolic pdfs renormalize through :func:`batch_interval_probs`
    (their mass is the base probability of the allowed set); raw registered
    families have mass exactly 1; everything else uses its scalar ``mass``.
    """
    out = np.empty(len(pdfs), dtype=float)
    idxs: List[int] = []
    bases: List[UnivariatePdf] = []
    alloweds: List[IntervalSet] = []
    for i, pdf in enumerate(pdfs):
        if isinstance(pdf, FlooredPdf):
            idxs.append(i)
            bases.append(pdf.base)
            alloweds.append(pdf.allowed)
        elif type(pdf) in VECTOR_FAMILIES or type(pdf) in DISCRETE_VECTOR_FAMILIES:
            # Raw symbolic families (continuous and discrete) have mass
            # exactly 1 by construction.
            out[i] = 1.0
        else:
            out[i] = pdf.mass()
    if idxs:
        out[np.array(idxs, dtype=np.intp)] = batch_interval_probs(bases, alloweds)
    return out
