"""Symbolic floors: selection residue kept in closed form.

Applying a range predicate to a symbolic pdf produces, in general, a
non-standard partial pdf.  Rather than collapsing to a histogram, the paper
stores *symbolic floors* alongside the original distribution — e.g. applying
``x < 5`` to ``Gaus(5, 1)`` yields ``[Gaus(5,1), Floor{[5, inf]}]``
(Section III-A).  :class:`FlooredPdf` is that representation: a base
symbolic pdf plus the :class:`~repro.pdf.regions.IntervalSet` of *allowed*
values (the complement of the floored region).

Successive axis-aligned floors compose by interval-set intersection, which is
why floor order never matters (the property behind Theorem 1).
"""

from __future__ import annotations

from typing import Dict, Mapping, Optional, Sequence, Tuple

import numpy as np

from ..errors import PdfError
from .base import DEFAULT_GRID, ArrayLike, GridSpec, MASS_TOLERANCE, UnivariatePdf
from .regions import BoxRegion, IntervalSet, Region

__all__ = ["FlooredPdf"]

#: Rejection-sampling batches give up after this many rounds without a hit.
_MAX_REJECTION_ROUNDS = 1000


class FlooredPdf(UnivariatePdf):
    """A symbolic 1-D pdf restricted to an interval set.

    The density equals the base density inside ``allowed`` and zero outside,
    so the total mass is generally below 1: the floored-away mass is exactly
    the probability that the owning tuple failed the selection.
    """

    symbol = "FLOORED"

    # Floors are allocated per-survivor on the columnar selection hot path;
    # slots route the three stores past the instance dict.  The base classes
    # are slotless, so lazy attributes (``_fp_memo``) still work.
    __slots__ = ("attrs", "_base", "_allowed")

    def __init__(self, base: UnivariatePdf, allowed: IntervalSet):
        super().__init__(base.attr)
        if isinstance(base, FlooredPdf):
            allowed = allowed.intersect(base.allowed)
            base = base.base
        self._base = base
        self._allowed = allowed

    @classmethod
    def _from_parts(cls, base: UnivariatePdf, allowed: IntervalSet) -> "FlooredPdf":
        """Constructor for hot paths whose ``base`` is already unfloored.

        Skips the ``isinstance`` unwrap of :meth:`__init__`; callers must
        guarantee ``base`` is not itself a :class:`FlooredPdf`.
        """
        self = object.__new__(cls)
        self.attrs = base.attrs
        self._base = base
        self._allowed = allowed
        return self

    @property
    def base(self) -> UnivariatePdf:
        """The unfloored symbolic distribution."""
        return self._base

    @property
    def allowed(self) -> IntervalSet:
        """Values that survived all floors so far."""
        return self._allowed

    @property
    def is_discrete(self) -> bool:
        return self._base.is_discrete

    def with_attrs(self, attrs: Sequence[str]) -> "FlooredPdf":
        (attr,) = attrs
        return FlooredPdf(self._base.with_attrs([attr]), self._allowed)

    def __repr__(self) -> str:
        floored = self._allowed.complement()
        return f"[{self._base!r}, Floor{{{floored!r}}}]"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FlooredPdf):
            return NotImplemented
        return self._base == other._base and self._allowed == other._allowed

    def __hash__(self) -> int:
        return hash((self._base, self._allowed))

    def _fingerprint(self):
        base_fp = self._base.fingerprint()
        if base_fp is None:
            return None
        return ("floor", base_fp, self._allowed)

    # -- probabilistic core ------------------------------------------------------

    def mass(self) -> float:
        return self._base_prob(self._allowed)

    def _base_prob(self, allowed: IntervalSet) -> float:
        prob_interval = getattr(self._base, "prob_interval", None)
        if prob_interval is not None:
            return float(prob_interval(allowed))
        return float(self._base.prob(BoxRegion({self.attr: allowed})))

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        xs = np.asarray(assignment[self.attr], dtype=float)
        inside = self._allowed.contains_array(xs)
        return np.where(inside, self._base.density({self.attr: xs}), 0.0)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        scalar = xs.ndim == 0
        flat = np.atleast_1d(xs)
        out = np.array(
            [
                self._base_prob(self._allowed.intersect(IntervalSet.less_than(v, inclusive=True)))
                for v in flat
            ]
        )
        return out[0] if scalar else out.reshape(xs.shape)

    def prob_interval(self, allowed: IntervalSet) -> float:
        return self._base_prob(self._allowed.intersect(allowed))

    def prob(self, region: Region) -> float:
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            return self.prob_interval(region.interval_set(self.attr))
        return self.to_grid().prob(region)

    def restrict(self, region: Region):
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            return FlooredPdf(self._base, self._allowed.intersect(region.interval_set(self.attr)))
        return self.to_grid().restrict(region)

    def marginalize(self, attrs: Sequence[str]) -> "FlooredPdf":
        self._require_attrs(attrs)
        if tuple(attrs) != self.attrs:
            raise PdfError("cannot marginalize a 1-D pdf to an empty attribute list")
        return self

    # -- support / conversion --------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        (base_lo, base_hi) = self._base.support()[self.attr]
        clipped = self._allowed.intersect(IntervalSet.between(base_lo, base_hi))
        lo, hi = clipped.bounds()
        if lo > hi:
            # All mass floored away; return a degenerate point at the base lo.
            return {self.attr: (base_lo, base_lo)}
        return {self.attr: (lo, hi)}

    def to_grid(self, spec: GridSpec = DEFAULT_GRID):
        from .joint import ContinuousAxis, JointGridPdf

        if self._base.is_discrete:
            return self._base.restrict(BoxRegion({self.attr: self._allowed})).to_grid(spec)
        lo, hi = self.support()[self.attr]
        if hi <= lo:
            hi = lo + 1e-9
        cut_points = {float(lo), float(hi)}
        for iv in self._allowed.intervals:
            for endpoint in (iv.lo, iv.hi):
                if lo < endpoint < hi and np.isfinite(endpoint):
                    cut_points.add(float(endpoint))
        cut_points.update(np.linspace(lo, hi, spec.resolution + 1).tolist())
        edges = np.array(sorted(cut_points), dtype=float)
        masses = np.array(
            [
                self.prob_interval(IntervalSet.between(edges[i], edges[i + 1]))
                for i in range(len(edges) - 1)
            ]
        )
        # Fold clipped tails (support truncation of unbounded bases) into the
        # boundary cells so the grid preserves the floored pdf's total mass.
        masses[0] += self.prob_interval(IntervalSet.less_than(float(edges[0])))
        masses[-1] += self.prob_interval(IntervalSet.greater_than(float(edges[-1])))
        return JointGridPdf((ContinuousAxis(self.attr, edges),), masses)

    # -- moments / sampling ---------------------------------------------------------------

    def mean(self) -> float:
        if self._base.is_discrete:
            return self._base.restrict(BoxRegion({self.attr: self._allowed})).mean()
        grid = self.to_grid()
        return grid.mean(self.attr)

    def variance(self) -> float:
        if self._base.is_discrete:
            return self._base.restrict(BoxRegion({self.attr: self._allowed})).variance()
        grid = self.to_grid()
        return grid.variance(self.attr)

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        if self.mass() <= MASS_TOLERANCE:
            raise PdfError("cannot sample a fully-floored pdf")
        out = np.empty(0, dtype=float)
        for _ in range(_MAX_REJECTION_ROUNDS):
            batch = self._base.sample(rng, max(n, 64))[self.attr]
            kept = batch[self._allowed.contains_array(batch)]
            out = np.concatenate([out, kept])
            if len(out) >= n:
                return {self.attr: out[:n]}
        raise PdfError(
            "rejection sampling failed: the allowed region has too little mass"
        )
