"""Joint (multi-attribute) distributions.

Dependency sets with more than one attribute (Section II-A: e.g. jointly
distributed x/y coordinates of a moving object) are represented by joint
pdfs.  Four representations cover the model:

* :class:`JointDiscretePdf` — sparse, exact, all-discrete joints; the
  representation in the paper's Section III-C worked example.
* :class:`JointGridPdf` — the universal dense fallback: per-dimension axes
  (continuous bucket edges or discrete value lists) with a probability-mass
  array.  Every other pdf can collapse to this form, which is what makes
  arbitrary predicates (``a < b``) computable.
* :class:`JointGaussianPdf` — symbolic multivariate normal (correlated
  continuous attributes such as GPS x/y error).
* :class:`ProductPdf` — a lazy independent product of factor pdfs; keeps
  symbolic factors symbolic until a genuinely joint operation forces a
  collapse.  This is the representation produced by the ``product``
  primitive for historically independent inputs.

All four preserve partial mass and support the core primitives
(``marginalize`` / ``restrict`` / ``prob``), so the relational operators in
:mod:`repro.core` never care which concrete class they hold.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np
from scipy import stats

from ..errors import (
    DimensionMismatchError,
    InvalidDistributionError,
    PdfError,
    UnsupportedOperationError,
)
from .base import DEFAULT_GRID, ArrayLike, GridSpec, MASS_TOLERANCE, Pdf
from .discrete import DiscretePdf
from .floors import FlooredPdf
from .regions import BoxRegion, IntervalSet, Region

__all__ = [
    "Axis",
    "ContinuousAxis",
    "DiscreteAxis",
    "JointGridPdf",
    "JointDiscretePdf",
    "JointGaussianPdf",
    "ProductPdf",
    "independent_product",
    "as_joint_discrete",
]


# ---------------------------------------------------------------------------
# Axes
# ---------------------------------------------------------------------------


class Axis:
    """One dimension of a :class:`JointGridPdf`."""

    attr: str

    @property
    def size(self) -> int:
        raise NotImplementedError

    def representatives(self) -> np.ndarray:
        """One evaluation point per cell (centers / discrete values)."""
        raise NotImplementedError

    def widths(self) -> np.ndarray:
        """Cell Lebesgue measure (all ones for discrete axes)."""
        raise NotImplementedError

    def locate(self, xs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map values to (cell index, inside mask)."""
        raise NotImplementedError

    def refine(self, cut_points: Iterable[float]) -> Tuple["Axis", np.ndarray, np.ndarray]:
        """Split cells at ``cut_points``.

        Returns ``(new_axis, parent_index, fraction)`` where ``fraction`` is
        the share of the parent cell's mass each new cell receives.
        """
        raise NotImplementedError

    def with_attr(self, attr: str) -> "Axis":
        raise NotImplementedError


class ContinuousAxis(Axis):
    """A continuous dimension: ``n + 1`` strictly increasing bucket edges."""

    def __init__(self, attr: str, edges: Iterable[float]):
        self.attr = str(attr)
        arr = np.asarray(list(edges), dtype=float)
        if arr.ndim != 1 or len(arr) < 2 or np.any(np.diff(arr) <= 0):
            raise InvalidDistributionError("axis edges must be strictly increasing, len >= 2")
        self.edges = arr

    @property
    def size(self) -> int:
        return len(self.edges) - 1

    def representatives(self) -> np.ndarray:
        return (self.edges[:-1] + self.edges[1:]) / 2.0

    def widths(self) -> np.ndarray:
        return np.diff(self.edges)

    def locate(self, xs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=float)
        idx = np.searchsorted(self.edges, xs, side="right") - 1
        idx = np.where(xs == self.edges[-1], self.size - 1, idx)
        inside = (idx >= 0) & (idx < self.size)
        return np.clip(idx, 0, self.size - 1), inside

    def refine(self, cut_points: Iterable[float]) -> Tuple["ContinuousAxis", np.ndarray, np.ndarray]:
        lo, hi = self.edges[0], self.edges[-1]
        cuts = sorted(
            {float(c) for c in cut_points if lo < c < hi and np.isfinite(c)}
            | set(self.edges.tolist())
        )
        new_edges = np.array(cuts, dtype=float)
        parent = np.searchsorted(self.edges, new_edges[:-1], side="right") - 1
        parent = np.clip(parent, 0, self.size - 1)
        parent_width = np.diff(self.edges)[parent]
        fraction = np.diff(new_edges) / parent_width
        return ContinuousAxis(self.attr, new_edges), parent, fraction

    def with_attr(self, attr: str) -> "ContinuousAxis":
        return ContinuousAxis(attr, self.edges)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ContinuousAxis):
            return NotImplemented
        return self.attr == other.attr and np.array_equal(self.edges, other.edges)

    def __hash__(self) -> int:
        return hash((self.attr, self.edges.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ContinuousAxis({self.attr}, {self.size} cells on [{self.edges[0]:g}, {self.edges[-1]:g}])"


class DiscreteAxis(Axis):
    """A discrete dimension: an ordered list of attainable values."""

    def __init__(self, attr: str, values: Iterable[float]):
        self.attr = str(attr)
        arr = np.asarray(list(values), dtype=float)
        if arr.ndim != 1 or len(arr) == 0 or np.any(np.diff(arr) <= 0):
            raise InvalidDistributionError("axis values must be strictly increasing, len >= 1")
        self.values = arr

    @property
    def size(self) -> int:
        return len(self.values)

    def representatives(self) -> np.ndarray:
        return self.values

    def widths(self) -> np.ndarray:
        return np.ones(self.size)

    def locate(self, xs: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        xs = np.asarray(xs, dtype=float)
        idx = np.searchsorted(self.values, xs)
        idx = np.clip(idx, 0, self.size - 1)
        inside = self.values[idx] == xs
        return idx, inside

    def refine(self, cut_points: Iterable[float]) -> Tuple["DiscreteAxis", np.ndarray, np.ndarray]:
        # Discrete axes never need splitting; membership is exact already.
        identity = np.arange(self.size)
        return self, identity, np.ones(self.size)

    def with_attr(self, attr: str) -> "DiscreteAxis":
        return DiscreteAxis(attr, self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscreteAxis):
            return NotImplemented
        return self.attr == other.attr and np.array_equal(self.values, other.values)

    def __hash__(self) -> int:
        return hash((self.attr, self.values.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DiscreteAxis({self.attr}, {self.size} values)"


# ---------------------------------------------------------------------------
# JointGridPdf — the universal dense representation
# ---------------------------------------------------------------------------


class JointGridPdf(Pdf):
    """A dense joint pdf: one axis per attribute and a mass array.

    ``masses[i, j, ...]`` is the probability mass of the cell formed by cell
    ``i`` of the first axis, cell ``j`` of the second, and so on.  Mixed
    continuous/discrete axes are supported, which is what lets selections
    correlate a certain (point-mass) attribute with an uncertain one
    (Case 2(b) of Section III-C uses an identity pdf over certain values).
    """

    def __init__(self, axes: Sequence[Axis], masses: np.ndarray):
        axes = tuple(axes)
        masses = np.asarray(masses, dtype=float)
        if masses.shape != tuple(a.size for a in axes):
            raise DimensionMismatchError(
                f"mass array shape {masses.shape} does not match axes "
                f"{tuple(a.size for a in axes)}"
            )
        if np.any(masses < -1e-12):
            raise InvalidDistributionError("grid masses must be non-negative")
        total = float(masses.sum())
        if total > 1.0 + 1e-6:
            raise InvalidDistributionError(f"grid masses sum to {total} > 1")
        names = [a.attr for a in axes]
        if len(set(names)) != len(names):
            raise DimensionMismatchError(f"duplicate axis attributes: {names}")
        self.axes = axes
        self.masses = np.clip(masses, 0.0, None)
        self.attrs = tuple(names)

    # -- structural -----------------------------------------------------------

    @property
    def is_discrete(self) -> bool:
        return all(isinstance(a, DiscreteAxis) for a in self.axes)

    def axis(self, attr: str) -> Axis:
        for a in self.axes:
            if a.attr == attr:
                return a
        raise DimensionMismatchError(f"grid has no axis {attr!r}; axes are {self.attrs}")

    def with_attrs(self, attrs: Sequence[str]) -> "JointGridPdf":
        if len(attrs) != len(self.axes):
            raise DimensionMismatchError(
                f"expected {len(self.axes)} names, got {len(attrs)}"
            )
        return JointGridPdf(
            tuple(a.with_attr(str(n)) for a, n in zip(self.axes, attrs)), self.masses
        )

    def __repr__(self) -> str:
        shape = "x".join(str(a.size) for a in self.axes)
        return f"JointGrid({', '.join(self.attrs)}; {shape} cells, mass={self.mass():.4g})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JointGridPdf):
            return NotImplemented
        return (
            self.axes == other.axes
            and self.masses.shape == other.masses.shape
            and np.array_equal(self.masses, other.masses)
        )

    def __hash__(self) -> int:
        return hash((self.attrs, self.masses.tobytes()))

    # -- probabilistic core -------------------------------------------------------

    def mass(self) -> float:
        return float(self.masses.sum())

    def _cell_volumes(self) -> np.ndarray:
        vol = np.ones(self.masses.shape)
        for dim, axis in enumerate(self.axes):
            shape = [1] * len(self.axes)
            shape[dim] = axis.size
            vol = vol * axis.widths().reshape(shape)
        return vol

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        arrays = [np.asarray(assignment[a.attr], dtype=float) for a in self.axes]
        arrays = np.broadcast_arrays(*arrays)
        shape = arrays[0].shape
        idx_list, inside = [], np.ones(shape, dtype=bool)
        for axis, arr in zip(self.axes, arrays):
            idx, ok = axis.locate(arr)
            idx_list.append(idx)
            inside &= ok
        dens = self.masses / np.where(self._cell_volumes() > 0, self._cell_volumes(), 1.0)
        out = dens[tuple(idx_list)]
        return np.where(inside, out, 0.0)

    def _representative_mesh(self) -> Dict[str, np.ndarray]:
        grids = np.meshgrid(*[a.representatives() for a in self.axes], indexing="ij")
        return {a.attr: g for a, g in zip(self.axes, grids)}

    def _refined_for_box(self, region: BoxRegion) -> "JointGridPdf":
        """Split continuous axes at the box boundaries for exact masks."""
        new_axes: List[Axis] = []
        grid = self.masses
        for dim, axis in enumerate(self.axes):
            cuts: List[float] = []
            allowed = region.interval_set(axis.attr)
            for iv in allowed.intervals:
                cuts.extend([iv.lo, iv.hi])
            new_axis, parent, fraction = axis.refine(cuts)
            new_axes.append(new_axis)
            grid = np.take(grid, parent, axis=dim)
            shape = [1] * grid.ndim
            shape[dim] = len(fraction)
            grid = grid * fraction.reshape(shape)
        return JointGridPdf(tuple(new_axes), grid)

    def prob(self, region: Region) -> float:
        unknown = [a for a in region.attrs if a not in self.attrs]
        if unknown:
            raise DimensionMismatchError(f"region mentions unknown attributes {unknown}")
        target = self._refined_for_box(region) if isinstance(region, BoxRegion) else self
        mesh = target._representative_mesh()
        inside = np.asarray(region.contains(mesh), dtype=bool)
        return float(target.masses[inside].sum())

    def restrict(self, region: Region) -> "JointGridPdf":
        unknown = [a for a in region.attrs if a not in self.attrs]
        if unknown:
            raise DimensionMismatchError(f"region mentions unknown attributes {unknown}")
        target = self._refined_for_box(region) if isinstance(region, BoxRegion) else self
        mesh = target._representative_mesh()
        inside = np.asarray(region.contains(mesh), dtype=bool)
        return JointGridPdf(target.axes, np.where(inside, target.masses, 0.0))

    def marginalize(self, attrs: Sequence[str]) -> "JointGridPdf":
        self._require_attrs(attrs)
        if not attrs:
            raise PdfError("cannot marginalize to an empty attribute list")
        keep = set(attrs)
        drop_dims = tuple(i for i, a in enumerate(self.axes) if a.attr not in keep)
        summed = self.masses.sum(axis=drop_dims) if drop_dims else self.masses
        kept_axes = [a for a in self.axes if a.attr in keep]
        order = [next(i for i, a in enumerate(kept_axes) if a.attr == name) for name in attrs]
        return JointGridPdf(
            tuple(kept_axes[i] for i in order), np.transpose(summed, order)
        )

    def _scaled(self, factor: float) -> "JointGridPdf":
        return JointGridPdf(self.axes, self.masses * factor)

    # -- support / conversion --------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        out = {}
        for axis in self.axes:
            if isinstance(axis, ContinuousAxis):
                out[axis.attr] = (float(axis.edges[0]), float(axis.edges[-1]))
            else:
                vals = axis.representatives()
                out[axis.attr] = (float(vals[0]), float(vals[-1]))
        return out

    def to_grid(self, spec: GridSpec = DEFAULT_GRID) -> "JointGridPdf":
        return self

    # -- moments / sampling ----------------------------------------------------------------

    def mean(self, attr: str) -> float:
        marg = self.marginalize([attr])
        m = marg.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("mean of a zero-mass pdf is undefined")
        reps = marg.axes[0].representatives()
        return float((reps * marg.masses).sum() / m)

    def variance(self, attr: str) -> float:
        marg = self.marginalize([attr])
        m = marg.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("variance of a zero-mass pdf is undefined")
        reps = marg.axes[0].representatives()
        mu = float((reps * marg.masses).sum() / m)
        var = float(((reps - mu) ** 2 * marg.masses).sum() / m)
        axis = marg.axes[0]
        if isinstance(axis, ContinuousAxis):
            var += float((axis.widths() ** 2 / 12.0 * marg.masses).sum() / m)
        return var

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("cannot sample a zero-mass pdf")
        flat = self.masses.reshape(-1) / m
        picks = rng.choice(len(flat), size=n, p=flat)
        cell_idx = np.unravel_index(picks, self.masses.shape)
        out: Dict[str, np.ndarray] = {}
        for axis, idx in zip(self.axes, cell_idx):
            if isinstance(axis, ContinuousAxis):
                left = axis.edges[:-1][idx]
                width = axis.widths()[idx]
                out[axis.attr] = left + width * rng.random(n)
            else:
                out[axis.attr] = axis.representatives()[idx]
        return out


# ---------------------------------------------------------------------------
# JointDiscretePdf — sparse exact joints
# ---------------------------------------------------------------------------


class JointDiscretePdf(Pdf):
    """A sparse, exact joint pmf: value tuples mapped to probabilities.

    This is the representation of the paper's Section III-C example result,
    ``Discrete({0,1}: 0.06, {0,2}: 0.04, {1,2}: 0.36)`` over ``(a, b)``.
    """

    def __init__(self, attrs: Sequence[str], table: Mapping[Tuple[float, ...], float]):
        self.attrs = tuple(str(a) for a in attrs)
        if len(set(self.attrs)) != len(self.attrs):
            raise DimensionMismatchError(f"duplicate attributes: {self.attrs}")
        if not table:
            raise InvalidDistributionError("a joint discrete pdf needs at least one entry")
        cleaned: Dict[Tuple[float, ...], float] = {}
        for key, prob in table.items():
            key_t = tuple(float(v) for v in (key if isinstance(key, tuple) else (key,)))
            if len(key_t) != len(self.attrs):
                raise DimensionMismatchError(
                    f"entry {key_t} has arity {len(key_t)}, expected {len(self.attrs)}"
                )
            if prob < -MASS_TOLERANCE:
                raise InvalidDistributionError("probabilities must be non-negative")
            cleaned[key_t] = cleaned.get(key_t, 0.0) + max(float(prob), 0.0)
        total = sum(cleaned.values())
        if total > 1.0 + 1e-6:
            raise InvalidDistributionError(f"probabilities sum to {total} > 1")
        self._table = dict(sorted(cleaned.items()))

    # -- structural ----------------------------------------------------------

    @property
    def is_discrete(self) -> bool:
        return True

    @property
    def table(self) -> Dict[Tuple[float, ...], float]:
        return dict(self._table)

    def items(self) -> Iterable[Tuple[Tuple[float, ...], float]]:
        return self._table.items()

    def with_attrs(self, attrs: Sequence[str]) -> "JointDiscretePdf":
        return JointDiscretePdf(attrs, self._table)

    def __repr__(self) -> str:
        inner = ", ".join(
            "{" + ",".join(f"{v:g}" for v in key) + f"}}:{p:.4g}" for key, p in self.items()
        )
        return f"JointDiscrete[{','.join(self.attrs)}]({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JointDiscretePdf):
            return NotImplemented
        if self.attrs != other.attrs or set(self._table) != set(other._table):
            return False
        return all(abs(p - other._table[k]) < 1e-9 for k, p in self._table.items())

    def __hash__(self) -> int:
        return hash((self.attrs, tuple(self._table)))

    # -- probabilistic core ------------------------------------------------------

    def mass(self) -> float:
        return float(sum(self._table.values()))

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        arrays = [np.asarray(assignment[a], dtype=float) for a in self.attrs]
        arrays = np.broadcast_arrays(*arrays)
        shape = arrays[0].shape
        flat = [a.reshape(-1) for a in arrays]
        out = np.zeros(flat[0].shape)
        for i in range(len(flat[0])):
            key = tuple(float(col[i]) for col in flat)
            out[i] = self._table.get(key, 0.0)
        return out.reshape(shape)

    def _entry_mask(self, region: Region) -> List[bool]:
        unknown = [a for a in region.attrs if a not in self.attrs]
        if unknown:
            raise DimensionMismatchError(f"region mentions unknown attributes {unknown}")
        keys = list(self._table)
        columns = {
            a: np.array([k[i] for k in keys]) for i, a in enumerate(self.attrs)
        }
        inside = np.asarray(region.contains(columns), dtype=bool)
        return list(np.atleast_1d(inside))

    def prob(self, region: Region) -> float:
        mask = self._entry_mask(region)
        return float(sum(p for (key, p), ok in zip(self.items(), mask) if ok))

    def restrict(self, region: Region) -> "JointDiscretePdf":
        mask = self._entry_mask(region)
        kept = {key: p for (key, p), ok in zip(self.items(), mask) if ok}
        if not kept:
            first = next(iter(self._table))
            kept = {first: 0.0}
        return JointDiscretePdf(self.attrs, kept)

    def marginalize(self, attrs: Sequence[str]) -> Pdf:
        self._require_attrs(attrs)
        if not attrs:
            raise PdfError("cannot marginalize to an empty attribute list")
        positions = [self.attrs.index(a) for a in attrs]
        out: Dict[Tuple[float, ...], float] = {}
        for key, p in self.items():
            sub = tuple(key[i] for i in positions)
            out[sub] = out.get(sub, 0.0) + p
        if len(attrs) == 1:
            return DiscretePdf({k[0]: p for k, p in out.items()}, attr=attrs[0])
        return JointDiscretePdf(attrs, out)

    def _scaled(self, factor: float) -> "JointDiscretePdf":
        return JointDiscretePdf(self.attrs, {k: p * factor for k, p in self.items()})

    # -- support / conversion ---------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        out = {}
        for i, a in enumerate(self.attrs):
            col = [k[i] for k in self._table]
            out[a] = (min(col), max(col))
        return out

    def to_grid(self, spec: GridSpec = DEFAULT_GRID) -> JointGridPdf:
        axes = []
        value_lists = []
        for i, a in enumerate(self.attrs):
            vals = sorted({k[i] for k in self._table})
            axes.append(DiscreteAxis(a, vals))
            value_lists.append({v: j for j, v in enumerate(vals)})
        masses = np.zeros(tuple(a.size for a in axes))
        for key, p in self.items():
            masses[tuple(value_lists[i][v] for i, v in enumerate(key))] += p
        return JointGridPdf(tuple(axes), masses)

    # -- sampling -----------------------------------------------------------------------

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("cannot sample a zero-mass pdf")
        keys = list(self._table)
        probs = np.array([self._table[k] for k in keys]) / m
        picks = rng.choice(len(keys), size=n, p=probs)
        return {
            a: np.array([keys[j][i] for j in picks]) for i, a in enumerate(self.attrs)
        }


# ---------------------------------------------------------------------------
# JointGaussianPdf — symbolic multivariate normal
# ---------------------------------------------------------------------------


class JointGaussianPdf(Pdf):
    """A symbolic multivariate Gaussian over correlated continuous attributes.

    Models intra-tuple correlation such as the x/y location error of a
    moving object (Section II-A).  Marginalisation is exact and symbolic;
    probabilities over single-box regions use the exact multivariate normal
    cdf; anything else collapses to grid form.
    """

    symbol = "JOINT_GAUSSIAN"

    def __init__(
        self,
        attrs: Sequence[str],
        mean: Sequence[float],
        cov: Sequence[Sequence[float]],
    ):
        self.attrs = tuple(str(a) for a in attrs)
        self.mean_vec = np.asarray(mean, dtype=float)
        self.cov = np.asarray(cov, dtype=float)
        k = len(self.attrs)
        if self.mean_vec.shape != (k,) or self.cov.shape != (k, k):
            raise DimensionMismatchError(
                f"need mean of shape ({k},) and cov of shape ({k}, {k})"
            )
        if not np.allclose(self.cov, self.cov.T):
            raise InvalidDistributionError("covariance matrix must be symmetric")
        eigvals = np.linalg.eigvalsh(self.cov)
        if np.any(eigvals <= 0):
            raise InvalidDistributionError("covariance matrix must be positive definite")
        self._dist = stats.multivariate_normal(mean=self.mean_vec, cov=self.cov)

    # -- structural ----------------------------------------------------------

    @property
    def is_discrete(self) -> bool:
        return False

    def with_attrs(self, attrs: Sequence[str]) -> "JointGaussianPdf":
        return JointGaussianPdf(attrs, self.mean_vec, self.cov)

    def __repr__(self) -> str:
        return (
            f"JointGaussian[{','.join(self.attrs)}]"
            f"(mean={self.mean_vec.tolist()}, cov={self.cov.tolist()})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, JointGaussianPdf):
            return NotImplemented
        return (
            self.attrs == other.attrs
            and np.allclose(self.mean_vec, other.mean_vec)
            and np.allclose(self.cov, other.cov)
        )

    def __hash__(self) -> int:
        return hash((self.attrs, self.mean_vec.tobytes(), self.cov.tobytes()))

    # -- probabilistic core ------------------------------------------------------

    def mass(self) -> float:
        return 1.0

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        arrays = [np.asarray(assignment[a], dtype=float) for a in self.attrs]
        arrays = np.broadcast_arrays(*arrays)
        points = np.stack([a.reshape(-1) for a in arrays], axis=-1)
        return np.asarray(self._dist.pdf(points)).reshape(arrays[0].shape)

    def prob(self, region: Region) -> float:
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            sets = [region.interval_set(a) for a in self.attrs]
            if all(len(s.intervals) <= 1 for s in sets):
                lower, upper = [], []
                for s in sets:
                    if s.is_empty():
                        return 0.0
                    iv = s.intervals[0] if s.intervals else None
                    lower.append(iv.lo if iv else -np.inf)
                    upper.append(iv.hi if iv else np.inf)
                return float(
                    self._dist.cdf(np.asarray(upper), lower_limit=np.asarray(lower))
                )
        return self.to_grid().prob(region)

    def restrict(self, region: Region) -> JointGridPdf:
        return self.to_grid().restrict(region)

    def marginalize(self, attrs: Sequence[str]) -> Pdf:
        self._require_attrs(attrs)
        if not attrs:
            raise PdfError("cannot marginalize to an empty attribute list")
        idx = [self.attrs.index(a) for a in attrs]
        if len(idx) == 1:
            from .continuous import GaussianPdf

            i = idx[0]
            return GaussianPdf(
                float(self.mean_vec[i]), float(self.cov[i, i]), attr=attrs[0]
            )
        return JointGaussianPdf(
            attrs, self.mean_vec[idx], self.cov[np.ix_(idx, idx)]
        )

    # -- support / conversion ---------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        z = stats.norm.ppf(1.0 - DEFAULT_GRID.tail_mass)
        sd = np.sqrt(np.diag(self.cov))
        return {
            a: (float(m - z * s), float(m + z * s))
            for a, m, s in zip(self.attrs, self.mean_vec, sd)
        }

    def to_grid(self, spec: GridSpec = DEFAULT_GRID) -> JointGridPdf:
        z = stats.norm.ppf(1.0 - spec.tail_mass)
        sd = np.sqrt(np.diag(self.cov))
        axes = [
            ContinuousAxis(a, np.linspace(m - z * s, m + z * s, spec.resolution + 1))
            for a, m, s in zip(self.attrs, self.mean_vec, sd)
        ]
        grids = np.meshgrid(*[ax.representatives() for ax in axes], indexing="ij")
        points = np.stack([g.reshape(-1) for g in grids], axis=-1)
        dens = np.asarray(self._dist.pdf(points)).reshape(grids[0].shape)
        volumes = np.ones(dens.shape)
        for dim, ax in enumerate(axes):
            shape = [1] * dens.ndim
            shape[dim] = ax.size
            volumes = volumes * ax.widths().reshape(shape)
        masses = dens * volumes
        # Normalize the tail clipping so grid collapse preserves total mass.
        total = masses.sum()
        if total > 0:
            masses = masses / total
        return JointGridPdf(tuple(axes), masses)

    # -- sampling ------------------------------------------------------------------------

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        draws = rng.multivariate_normal(self.mean_vec, self.cov, size=n)
        return {a: draws[:, i] for i, a in enumerate(self.attrs)}


# ---------------------------------------------------------------------------
# ProductPdf — lazy independent products
# ---------------------------------------------------------------------------


class ProductPdf(Pdf):
    """An independent product of factor pdfs over disjoint attribute sets.

    Keeps symbolic factors symbolic: axis-aligned floors push down into the
    factor that owns the attribute, and marginalising away an entire factor
    just folds its mass into a scalar ``weight``.  Only a genuinely joint
    operation (a predicate region across factors) collapses to grid form.
    """

    def __init__(self, factors: Sequence[Pdf], weight: float = 1.0):
        flat: List[Pdf] = []
        for f in factors:
            if isinstance(f, ProductPdf):
                weight *= f.weight
                flat.extend(f.factors)
            else:
                flat.append(f)
        if not flat:
            raise InvalidDistributionError("a product pdf needs at least one factor")
        if weight < -MASS_TOLERANCE or weight > 1.0 + 1e-6:
            raise InvalidDistributionError(f"product weight must be in [0, 1], got {weight}")
        names = [a for f in flat for a in f.attrs]
        if len(set(names)) != len(names):
            raise DimensionMismatchError(
                f"product factors must have disjoint attributes, got {names}"
            )
        self.factors: Tuple[Pdf, ...] = tuple(flat)
        self.weight = float(max(weight, 0.0))
        self.attrs = tuple(names)

    # -- structural -----------------------------------------------------------

    @property
    def is_discrete(self) -> bool:
        return all(f.is_discrete for f in self.factors)

    def factor_for(self, attr: str) -> Pdf:
        for f in self.factors:
            if attr in f.attrs:
                return f
        raise DimensionMismatchError(f"no factor owns attribute {attr!r}")

    def with_attrs(self, attrs: Sequence[str]) -> "ProductPdf":
        if len(attrs) != len(self.attrs):
            raise DimensionMismatchError(
                f"expected {len(self.attrs)} names, got {len(attrs)}"
            )
        mapping = dict(zip(self.attrs, attrs))
        return ProductPdf(
            [f.with_attrs([mapping[a] for a in f.attrs]) for f in self.factors],
            weight=self.weight,
        )

    def __repr__(self) -> str:
        inner = " ⊗ ".join(repr(f) for f in self.factors)
        prefix = f"{self.weight:g}·" if self.weight != 1.0 else ""
        return f"{prefix}({inner})"

    def _fingerprint(self):
        parts = []
        for f in self.factors:
            fp = f.fingerprint()
            if fp is None:
                return None
            parts.append(fp)
        return ("prod", self.weight, tuple(parts))

    # -- probabilistic core --------------------------------------------------------

    def mass(self) -> float:
        out = self.weight
        for f in self.factors:
            out *= f.mass()
        return out

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        out: np.ndarray = np.asarray(self.weight, dtype=float)
        for f in self.factors:
            out = out * f.density({a: assignment[a] for a in f.attrs})
        return np.asarray(out)

    def prob(self, region: Region) -> float:
        if isinstance(region, BoxRegion):
            unknown = [a for a in region.attrs if a not in self.attrs]
            if unknown:
                raise DimensionMismatchError(f"region mentions unknown attributes {unknown}")
            out = self.weight
            for f in self.factors:
                out *= f.prob(region.project(f.attrs))
            return out
        return self.to_grid().prob(region)

    def restrict(self, region: Region) -> Pdf:
        if isinstance(region, BoxRegion):
            unknown = [a for a in region.attrs if a not in self.attrs]
            if unknown:
                raise DimensionMismatchError(f"region mentions unknown attributes {unknown}")
            return ProductPdf(
                [f.restrict(region.project(f.attrs)) for f in self.factors],
                weight=self.weight,
            )
        return self.to_grid().restrict(region)

    def marginalize(self, attrs: Sequence[str]) -> Pdf:
        self._require_attrs(attrs)
        if not attrs:
            raise PdfError("cannot marginalize to an empty attribute list")
        keep = set(attrs)
        weight = self.weight
        kept: List[Pdf] = []
        for f in self.factors:
            shared = [a for a in f.attrs if a in keep]
            if not shared:
                weight *= f.mass()
            elif len(shared) == len(f.attrs):
                kept.append(f)
            else:
                kept.append(f.marginalize(shared))
        if len(kept) == 1 and weight == 1.0 and tuple(kept[0].attrs) == tuple(attrs):
            return kept[0]
        if not kept:
            raise PdfError("marginalisation dropped every factor")
        product = ProductPdf(kept, weight=weight)
        if tuple(product.attrs) == tuple(attrs):
            return product
        # Reorder attributes to the requested order via the grid path only
        # when necessary; attribute order differs but content is identical.
        return product  # attribute order is factor order; callers use names

    def _scaled(self, factor: float) -> "ProductPdf":
        return ProductPdf(self.factors, weight=self.weight * factor)

    # -- support / conversion -----------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        out: Dict[str, Tuple[float, float]] = {}
        for f in self.factors:
            out.update(f.support())
        return out

    def to_grid(self, spec: GridSpec = DEFAULT_GRID) -> JointGridPdf:
        grid: Optional[JointGridPdf] = None
        for f in self.factors:
            fg = f.to_grid(spec)
            grid = fg if grid is None else _grid_outer(grid, fg)
        assert grid is not None
        return grid._scaled(self.weight) if self.weight != 1.0 else grid

    # -- sampling --------------------------------------------------------------------------

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        out: Dict[str, np.ndarray] = {}
        for f in self.factors:
            out.update(f.sample(rng, n))
        return out


def _grid_outer(a: JointGridPdf, b: JointGridPdf) -> JointGridPdf:
    """Outer (independent) product of two grids over disjoint attributes."""
    masses = np.multiply.outer(a.masses, b.masses)
    return JointGridPdf(a.axes + b.axes, masses)


# ---------------------------------------------------------------------------
# Construction helpers
# ---------------------------------------------------------------------------


def as_joint_discrete(pdf: Pdf) -> Optional[JointDiscretePdf]:
    """View ``pdf`` as an exact joint discrete pdf, or None if not possible."""
    from .discrete import SymbolicDiscretePdf

    if isinstance(pdf, JointDiscretePdf):
        return pdf
    if isinstance(pdf, SymbolicDiscretePdf):
        pdf = pdf.materialize()
    if isinstance(pdf, FlooredPdf) and pdf.is_discrete:
        restricted = pdf.base.restrict(BoxRegion({pdf.attr: pdf.allowed}))
        return as_joint_discrete(restricted)
    if isinstance(pdf, DiscretePdf):
        return JointDiscretePdf(pdf.attrs, {(v,): p for v, p in pdf.items()})
    if isinstance(pdf, JointGridPdf) and pdf.is_discrete:
        table: Dict[Tuple[float, ...], float] = {}
        reps = [axis.representatives() for axis in pdf.axes]
        for idx in itertools.product(*[range(axis.size) for axis in pdf.axes]):
            p = float(pdf.masses[idx])
            if p > 0.0:
                table[tuple(float(reps[d][i]) for d, i in enumerate(idx))] = p
        if not table:
            first = tuple(float(r[0]) for r in reps)
            table = {first: 0.0}
        return JointDiscretePdf(pdf.attrs, table)
    if isinstance(pdf, ProductPdf) and pdf.is_discrete:
        result: Optional[JointDiscretePdf] = None
        for f in pdf.factors:
            fd = as_joint_discrete(f)
            if fd is None:
                return None
            result = fd if result is None else _discrete_outer(result, fd)
        assert result is not None
        if pdf.weight != 1.0:
            result = result._scaled(pdf.weight)
        return result
    return None


def _discrete_outer(a: JointDiscretePdf, b: JointDiscretePdf) -> JointDiscretePdf:
    table: Dict[Tuple[float, ...], float] = {}
    for ka, pa in a.items():
        for kb, pb in b.items():
            table[ka + kb] = pa * pb
    return JointDiscretePdf(a.attrs + b.attrs, table)


def independent_product(*pdfs: Pdf) -> Pdf:
    """The ``product`` primitive for historically *independent* pdfs.

    Exact joint discrete inputs produce an exact joint discrete output (so
    possible-worlds arithmetic stays exact); anything else stays a lazy
    :class:`ProductPdf`.
    """
    if not pdfs:
        raise PdfError("product of zero pdfs is undefined")
    if len(pdfs) == 1:
        return pdfs[0]
    if all(p.is_discrete for p in pdfs):
        parts = [as_joint_discrete(p) for p in pdfs]
        if all(p is not None for p in parts):
            result = parts[0]
            for part in parts[1:]:
                result = _discrete_outer(result, part)  # type: ignore[arg-type]
            return result  # type: ignore[return-value]
    return ProductPdf(list(pdfs))
