"""Abstract interfaces for probability distributions (pdfs).

The paper's model stores *uncertain attributes* as probability density /
mass functions.  A pdf in this library is always a distribution over a
named, ordered tuple of attributes (:attr:`Pdf.attrs`), which is what lets
the relational operators marginalise, join, and floor distributions by
attribute name.

Two properties distinguish these pdfs from textbook ones:

* **Partial pdfs** (Section II-B): the total mass may be less than 1.  Under
  the closed-world reading, ``1 - mass`` is the probability that the owning
  tuple does not exist.  All operations preserve partial mass.
* **Floors** (Section III-A): selection zeroes a pdf over the region that
  fails the predicate.  :meth:`Pdf.restrict` keeps a region (the paper's
  ``floor`` removes one — :meth:`Pdf.floor_out` matches the paper's
  signature).

Concrete families:

===============================  ==============================================
:mod:`repro.pdf.continuous`      symbolic continuous (Gaussian, Uniform, ...)
:mod:`repro.pdf.discrete`        explicit and symbolic discrete distributions
:mod:`repro.pdf.histogram`       1-D bucket histograms (the paper's ``Hist``)
:mod:`repro.pdf.floors`          symbolic floors over symbolic pdfs
:mod:`repro.pdf.joint`           joint distributions and independent products
===============================  ==============================================
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Mapping, Sequence, Tuple, Union

import numpy as np

from ..errors import DimensionMismatchError, PdfError, UnsupportedOperationError
from .regions import Region

if TYPE_CHECKING:  # pragma: no cover
    from .joint import JointGridPdf

__all__ = ["GridSpec", "Pdf", "UnivariatePdf", "DEFAULT_GRID", "MASS_TOLERANCE"]

#: Probability-mass slack tolerated before declaring a pdf invalid or a
#: tuple nonexistent.  Grid collapses introduce error of this order.
MASS_TOLERANCE = 1e-9


@dataclass(frozen=True)
class GridSpec:
    """Controls how symbolic pdfs collapse to grid form.

    ``resolution``
        Number of cells per continuous dimension.
    ``tail_mass``
        Probability mass allowed to be clipped from each unbounded tail when
        choosing finite grid bounds (bounds are taken at the
        ``tail_mass`` / ``1 - tail_mass`` quantiles).
    """

    resolution: int = 64
    tail_mass: float = 1e-6

    def __post_init__(self) -> None:
        if self.resolution < 1:
            raise PdfError("grid resolution must be >= 1")
        if not 0 < self.tail_mass < 0.5:
            raise PdfError("tail_mass must be in (0, 0.5)")


DEFAULT_GRID = GridSpec()

ArrayLike = Union[float, np.ndarray]


class Pdf(abc.ABC):
    """A (possibly partial) probability distribution over named attributes.

    Subclasses must populate :attr:`attrs` — the ordered attribute names —
    and implement the abstract operations below.  All probabilistic
    quantities are *unconditional*: they already include the partial-mass
    existence factor.
    """

    attrs: Tuple[str, ...]

    # -- structural --------------------------------------------------------

    @property
    def arity(self) -> int:
        """Number of attributes the pdf is defined over."""
        return len(self.attrs)

    @property
    @abc.abstractmethod
    def is_discrete(self) -> bool:
        """True when every dimension is discrete (a probability *mass* fn)."""

    @abc.abstractmethod
    def with_attrs(self, attrs: Sequence[str]) -> "Pdf":
        """Return a copy with attributes renamed positionally."""

    def rename(self, mapping: Mapping[str, str]) -> "Pdf":
        """Return a copy with attributes renamed via ``mapping``."""
        return self.with_attrs([mapping.get(a, a) for a in self.attrs])

    def _require_attrs(self, attrs: Sequence[str]) -> None:
        unknown = [a for a in attrs if a not in self.attrs]
        if unknown:
            raise DimensionMismatchError(
                f"pdf over {self.attrs} has no attributes {unknown}"
            )

    def fingerprint(self):
        """A stable, hashable identity for memoising pdf-op results.

        Two pdfs with equal fingerprints must behave identically under
        ``mass`` / ``restrict`` / ``marginalize``.  ``None`` means the pdf
        cannot be fingerprinted cheaply and its operations are uncacheable.
        The value is computed once and memoised on the instance (pdfs are
        immutable by convention).
        """
        fp = getattr(self, "_fp_memo", False)
        if fp is False:
            fp = self._fingerprint()
            self._fp_memo = fp
        return fp

    def _fingerprint(self):
        """Subclass hook for :meth:`fingerprint`; default is uncacheable."""
        return None

    # -- probabilistic core --------------------------------------------------

    @abc.abstractmethod
    def mass(self) -> float:
        """Total probability mass; < 1 for partial pdfs (missing tuples)."""

    @abc.abstractmethod
    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        """Evaluate the (joint) density/mass function.

        Continuous dimensions contribute density, discrete dimensions
        contribute point mass; arrays broadcast element-wise.
        """

    @abc.abstractmethod
    def prob(self, region: Region) -> float:
        """P(X in region), including the existence factor."""

    @abc.abstractmethod
    def restrict(self, region: Region) -> "Pdf":
        """Zero the pdf outside ``region`` (keep mass inside).

        This is the complement view of the paper's ``floor`` primitive and
        generally yields a partial pdf.
        """

    def floor_out(self, region: Region) -> "Pdf":
        """The paper's ``floor(f, F)``: zero the pdf *inside* ``region``."""
        return self.restrict(region.complement())

    @abc.abstractmethod
    def marginalize(self, attrs: Sequence[str]) -> "Pdf":
        """The paper's ``marginalize``: integrate out all but ``attrs``.

        The result preserves total mass and orders attributes as given.
        """

    # -- support / conversion -------------------------------------------------

    @abc.abstractmethod
    def support(self) -> Dict[str, Tuple[float, float]]:
        """A per-attribute bounding interval containing (almost) all mass."""

    @abc.abstractmethod
    def to_grid(self, spec: GridSpec = DEFAULT_GRID) -> "JointGridPdf":
        """Collapse to the universal dense grid representation."""

    def normalized(self) -> "Pdf":
        """The conditional distribution given existence (mass scaled to 1)."""
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("cannot normalize a pdf with (near-)zero mass")
        if abs(m - 1.0) <= MASS_TOLERANCE:
            return self
        return self._scaled(1.0 / m)

    def _scaled(self, factor: float) -> "Pdf":
        """Multiply all mass by ``factor`` (subclasses override when cheap)."""
        raise UnsupportedOperationError(
            f"{type(self).__name__} does not support scaling; collapse via "
            "to_grid() first"
        )

    # -- sampling -----------------------------------------------------------

    @abc.abstractmethod
    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        """Draw ``n`` samples *conditional on existence*.

        Returns one array per attribute.  Use :meth:`mass` separately to
        sample the existence event of a partial pdf.
        """


class UnivariatePdf(Pdf):
    """Convenience base class for one-dimensional pdfs.

    Adds the scalar helpers (:meth:`cdf`, :meth:`pdf_at`, :meth:`mean`,
    :meth:`variance`) used throughout the range-query machinery, and exact
    probability over interval sets.
    """

    def __init__(self, attr: str = "x"):
        self.attrs = (str(attr),)

    @property
    def attr(self) -> str:
        """The single attribute name."""
        return self.attrs[0]

    @abc.abstractmethod
    def cdf(self, x: ArrayLike) -> np.ndarray:
        """Unconditional cumulative mass P(X <= x and exists)."""

    def pdf_at(self, x: ArrayLike) -> np.ndarray:
        """Density / point mass at ``x`` (1-D shortcut for :meth:`density`)."""
        return self.density({self.attr: x})

    @abc.abstractmethod
    def mean(self) -> float:
        """Mean of the distribution conditional on existence."""

    @abc.abstractmethod
    def variance(self) -> float:
        """Variance of the distribution conditional on existence."""
