"""One-dimensional histogram pdfs (the paper's generic ``Hist`` type).

When data does not follow a standard symbolic distribution the paper falls
back to a histogram: buckets over the domain with a probability density per
bucket (Section II-A).  The number of buckets is the accuracy/efficiency
knob studied in Figure 4 — a 5-bucket histogram matches the accuracy of a
25-point discrete sampling.

Internally we store *mass per bucket* (density times width) so that partial
pdfs and floors are uniform across representations.  Probabilities over
interval sets are exact (the density is constant within a bucket, so the cdf
is piecewise linear); axis-aligned floors are exact as well, implemented by
splitting buckets at the floor boundaries.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from ..errors import InvalidDistributionError, PdfError
from .base import DEFAULT_GRID, ArrayLike, GridSpec, MASS_TOLERANCE, UnivariatePdf
from .regions import BoxRegion, IntervalSet, Region

__all__ = ["HistogramPdf"]


class HistogramPdf(UnivariatePdf):
    """A piecewise-constant pdf over contiguous buckets.

    ``edges`` are the ``n + 1`` bucket boundaries (strictly increasing) and
    ``masses`` the probability mass inside each of the ``n`` buckets.  Use
    :meth:`from_densities` when the data is given as densities, as in the
    paper's notation.
    """

    symbol = "HISTOGRAM"

    def __init__(self, edges: Iterable[float], masses: Iterable[float], attr: str = "x"):
        super().__init__(attr)
        edges_arr = np.asarray(list(edges), dtype=float)
        masses_arr = np.asarray(list(masses), dtype=float)
        if edges_arr.ndim != 1 or len(edges_arr) < 2:
            raise InvalidDistributionError("a histogram needs at least two bucket edges")
        if len(masses_arr) != len(edges_arr) - 1:
            raise InvalidDistributionError(
                f"{len(edges_arr)} edges require {len(edges_arr) - 1} masses, "
                f"got {len(masses_arr)}"
            )
        if np.any(np.diff(edges_arr) <= 0):
            raise InvalidDistributionError("histogram edges must be strictly increasing")
        if np.any(masses_arr < -MASS_TOLERANCE):
            raise InvalidDistributionError("histogram masses must be non-negative")
        masses_arr = np.clip(masses_arr, 0.0, None)
        total = float(masses_arr.sum())
        if total > 1.0 + 1e-6:
            raise InvalidDistributionError(f"histogram masses sum to {total} > 1")
        self._edges = edges_arr
        self._masses = masses_arr

    @classmethod
    def _from_arrays(
        cls, edges: np.ndarray, masses: np.ndarray, attr: str
    ) -> "HistogramPdf":
        """Trusted fast constructor (no validation) for internal hot paths."""
        pdf = cls.__new__(cls)
        UnivariatePdf.__init__(pdf, attr)
        pdf._edges = edges
        pdf._masses = masses
        return pdf

    @classmethod
    def from_densities(
        cls, edges: Iterable[float], densities: Iterable[float], attr: str = "x"
    ) -> "HistogramPdf":
        """Build from per-bucket densities (the paper's representation)."""
        edges_arr = np.asarray(list(edges), dtype=float)
        dens = np.asarray(list(densities), dtype=float)
        widths = np.diff(edges_arr)
        return cls(edges_arr, dens * widths, attr=attr)

    # -- structural -----------------------------------------------------------

    @property
    def edges(self) -> np.ndarray:
        return self._edges.copy()

    @property
    def masses(self) -> np.ndarray:
        return self._masses.copy()

    @property
    def densities(self) -> np.ndarray:
        return self._masses / np.diff(self._edges)

    @property
    def num_buckets(self) -> int:
        return len(self._masses)

    @property
    def is_discrete(self) -> bool:
        return False

    def with_attrs(self, attrs: Sequence[str]) -> "HistogramPdf":
        (attr,) = attrs
        return HistogramPdf(self._edges, self._masses, attr=str(attr))

    def __repr__(self) -> str:
        return (
            f"Histogram({self.num_buckets} buckets on "
            f"[{self._edges[0]:g}, {self._edges[-1]:g}], mass={self.mass():.4g})@{self.attr}"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HistogramPdf):
            return NotImplemented
        return (
            self.attrs == other.attrs
            and np.array_equal(self._edges, other._edges)
            and np.allclose(self._masses, other._masses, atol=1e-12)
        )

    def __hash__(self) -> int:
        return hash((self.attrs, self._edges.tobytes()))

    def _fingerprint(self):
        return ("hist", self.attrs, self._edges.tobytes(), self._masses.tobytes())

    # -- probabilistic core ------------------------------------------------------

    def mass(self) -> float:
        return float(self._masses.sum())

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        xs = np.asarray(assignment[self.attr], dtype=float)
        scalar = xs.ndim == 0
        flat = np.atleast_1d(xs)
        idx = np.searchsorted(self._edges, flat, side="right") - 1
        # The last edge belongs to the last bucket.
        idx = np.where(flat == self._edges[-1], len(self._masses) - 1, idx)
        inside = (idx >= 0) & (idx < len(self._masses))
        dens = self.densities
        out = np.where(inside, dens[np.clip(idx, 0, len(self._masses) - 1)], 0.0)
        return out[0] if scalar else out.reshape(xs.shape)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        scalar = xs.ndim == 0
        flat = np.atleast_1d(xs).astype(float)
        cum = np.concatenate([[0.0], np.cumsum(self._masses)])
        idx = np.clip(np.searchsorted(self._edges, flat, side="right") - 1, 0, None)
        idx = np.minimum(idx, len(self._masses) - 1)
        left = self._edges[idx]
        width = np.diff(self._edges)[idx]
        frac = np.clip((flat - left) / width, 0.0, 1.0)
        out = cum[idx] + frac * self._masses[idx]
        out = np.where(flat <= self._edges[0], 0.0, out)
        out = np.where(flat >= self._edges[-1], cum[-1], out)
        return out[0] if scalar else out.reshape(xs.shape)

    def prob_interval(self, allowed: IntervalSet) -> float:
        total = 0.0
        for iv in allowed.intervals:
            total += float(self.cdf(iv.hi) - self.cdf(iv.lo))
        return max(total, 0.0)

    def prob(self, region: Region) -> float:
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            return self.prob_interval(region.interval_set(self.attr))
        centers = (self._edges[:-1] + self._edges[1:]) / 2.0
        inside = np.asarray(region.contains({self.attr: centers}), dtype=bool)
        return float(self._masses[inside].sum())

    def restrict(self, region: Region) -> "HistogramPdf":
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            return self._restrict_intervals(region.interval_set(self.attr))
        centers = (self._edges[:-1] + self._edges[1:]) / 2.0
        inside = np.asarray(region.contains({self.attr: centers}), dtype=bool)
        return HistogramPdf(self._edges, np.where(inside, self._masses, 0.0), attr=self.attr)

    def _restrict_intervals(self, allowed: IntervalSet) -> "HistogramPdf":
        """Exact axis-aligned floor: split buckets at the floor boundaries."""
        if len(allowed.intervals) == 1:
            return self._restrict_single(allowed.intervals[0])
        lo, hi = self._edges[0], self._edges[-1]
        cuts = [
            float(endpoint)
            for iv in allowed.intervals
            for endpoint in (iv.lo, iv.hi)
            if lo < endpoint < hi and np.isfinite(endpoint)
        ]
        if cuts:
            new_edges = np.unique(np.concatenate([self._edges, np.asarray(cuts)]))
        else:
            new_edges = self._edges
        centers = (new_edges[:-1] + new_edges[1:]) / 2.0
        parent = np.clip(
            np.searchsorted(self._edges, centers, side="right") - 1,
            0,
            len(self._masses) - 1,
        )
        densities = self._masses / np.diff(self._edges)
        widths = np.diff(new_edges)
        keep = allowed.contains_array(centers)
        new_masses = np.where(keep, densities[parent] * widths, 0.0)
        return HistogramPdf._from_arrays(new_edges, new_masses, self.attr)

    def _restrict_single(self, iv) -> "HistogramPdf":
        """Fast path for the overwhelmingly common single-interval floor."""
        edges = self._edges
        lo = max(float(iv.lo), float(edges[0]))
        hi = min(float(iv.hi), float(edges[-1]))
        if hi <= lo or iv.is_empty():
            # Fully floored: a zero-mass single bucket keeps the type valid.
            return HistogramPdf._from_arrays(edges[:2].copy(), np.zeros(1), self.attr)
        i_lo = int(np.searchsorted(edges, lo, side="right")) - 1
        i_hi = int(np.searchsorted(edges, hi, side="left"))
        i_lo = max(i_lo, 0)
        i_hi = min(max(i_hi, i_lo + 1), len(edges) - 1)
        new_edges = edges[i_lo : i_hi + 1].copy()
        new_masses = self._masses[i_lo:i_hi].copy()
        widths = edges[i_lo + 1 : i_hi + 1] - edges[i_lo:i_hi]
        # Scale the boundary buckets by the kept fraction.
        first_frac = (new_edges[1] - lo) / widths[0]
        last_frac = (hi - new_edges[-2]) / widths[-1]
        if len(new_masses) == 1:
            new_masses[0] *= (hi - lo) / widths[0]
        else:
            new_masses[0] *= min(first_frac, 1.0)
            new_masses[-1] *= min(last_frac, 1.0)
        new_edges[0] = lo
        new_edges[-1] = hi
        return HistogramPdf._from_arrays(new_edges, new_masses, self.attr)

    def marginalize(self, attrs: Sequence[str]) -> "HistogramPdf":
        self._require_attrs(attrs)
        if tuple(attrs) != self.attrs:
            raise PdfError("cannot marginalize a 1-D pdf to an empty attribute list")
        return self

    def _scaled(self, factor: float) -> "HistogramPdf":
        return HistogramPdf(self._edges, self._masses * factor, attr=self.attr)

    # -- support / conversion --------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        return {self.attr: (float(self._edges[0]), float(self._edges[-1]))}

    def to_grid(self, spec: GridSpec = DEFAULT_GRID):
        from .joint import ContinuousAxis, JointGridPdf

        return JointGridPdf((ContinuousAxis(self.attr, self._edges),), self._masses.copy())

    # -- moments / sampling ---------------------------------------------------------------

    def mean(self) -> float:
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("mean of a zero-mass pdf is undefined")
        centers = (self._edges[:-1] + self._edges[1:]) / 2.0
        return float((centers * self._masses).sum() / m)

    def variance(self) -> float:
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("variance of a zero-mass pdf is undefined")
        centers = (self._edges[:-1] + self._edges[1:]) / 2.0
        widths = np.diff(self._edges)
        mu = self.mean()
        # Within-bucket uniform spread contributes width^2 / 12.
        second = ((centers - mu) ** 2 + widths**2 / 12.0) * self._masses
        return float(second.sum() / m)

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("cannot sample a zero-mass pdf")
        bucket = rng.choice(len(self._masses), size=n, p=self._masses / m)
        left = self._edges[:-1][bucket]
        width = np.diff(self._edges)[bucket]
        return {self.attr: left + width * rng.random(n)}
