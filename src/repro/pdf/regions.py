"""Interval-set and region algebra.

Floors (Section III-A of the paper) zero out a pdf over a subset of its
domain.  For one-dimensional symbolic pdfs the paper stores floors
symbolically as sets of intervals (e.g. ``[Gaus(5,1), Floor{[5, inf]}]``);
for joint pdfs a floor may be an arbitrary region such as ``{(a, b) : a >= b}``
produced by a selection predicate.  This module provides both:

* :class:`Interval` / :class:`IntervalSet` — an exact one-dimensional set
  algebra (union, intersection, complement, measure) with open/closed
  endpoints, used for symbolic floors,
* :class:`Region` and its implementations (:class:`BoxRegion`,
  :class:`PredicateRegion`, and the boolean combinators) — multi-dimensional
  membership tests over named attributes, used when flooring joint pdfs.

All membership tests are vectorised over numpy arrays so that grid-based
pdf operations stay cheap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np

from ..errors import DimensionMismatchError, PdfError

__all__ = [
    "Interval",
    "IntervalSet",
    "Region",
    "BoxRegion",
    "PredicateRegion",
    "UnionRegion",
    "IntersectionRegion",
    "ComplementRegion",
    "FULL_LINE",
    "EMPTY_SET",
]

_NEG_INF = float("-inf")
_POS_INF = float("inf")


@dataclass(frozen=True)
class Interval:
    """A single real interval with independently open or closed endpoints.

    ``Interval(2, 5)`` is the closed interval [2, 5]; open endpoints are
    requested with ``closed_lo=False`` / ``closed_hi=False``.  Infinite
    endpoints are always treated as open.
    """

    lo: float
    hi: float
    closed_lo: bool = True
    closed_hi: bool = True

    def __post_init__(self) -> None:
        lo = float(self.lo)
        hi = float(self.hi)
        object.__setattr__(self, "lo", lo)
        object.__setattr__(self, "hi", hi)
        if math.isnan(lo) or math.isnan(hi):
            raise PdfError("interval endpoints must not be NaN")
        if math.isinf(lo) and self.closed_lo:
            object.__setattr__(self, "closed_lo", False)
        if math.isinf(hi) and self.closed_hi:
            object.__setattr__(self, "closed_hi", False)

    # -- predicates ------------------------------------------------------

    def is_empty(self) -> bool:
        """True when no real number lies in the interval."""
        if self.lo > self.hi:
            return True
        if self.lo == self.hi:
            return not (self.closed_lo and self.closed_hi)
        return False

    def is_point(self) -> bool:
        """True for degenerate single-point intervals such as [3, 3]."""
        return self.lo == self.hi and self.closed_lo and self.closed_hi

    def contains(self, x: float) -> bool:
        """Scalar membership test."""
        above_lo = x > self.lo or (self.closed_lo and x == self.lo)
        below_hi = x < self.hi or (self.closed_hi and x == self.hi)
        return above_lo and below_hi

    def contains_array(self, xs: np.ndarray) -> np.ndarray:
        """Vectorised membership test over a numpy array."""
        xs = np.asarray(xs, dtype=float)
        lo_ok = xs >= self.lo if self.closed_lo else xs > self.lo
        hi_ok = xs <= self.hi if self.closed_hi else xs < self.hi
        return lo_ok & hi_ok

    @property
    def measure(self) -> float:
        """Lebesgue measure (length); possibly ``inf``."""
        if self.is_empty():
            return 0.0
        return self.hi - self.lo

    # -- relations with other intervals ----------------------------------

    def intersect(self, other: "Interval") -> "Interval":
        """Intersection of two intervals (possibly empty)."""
        if self.lo > other.lo or (self.lo == other.lo and not self.closed_lo):
            lo, closed_lo = self.lo, self.closed_lo
        else:
            lo, closed_lo = other.lo, other.closed_lo
        if self.hi < other.hi or (self.hi == other.hi and not self.closed_hi):
            hi, closed_hi = self.hi, self.closed_hi
        else:
            hi, closed_hi = other.hi, other.closed_hi
        return Interval(lo, hi, closed_lo, closed_hi)

    def _touches(self, other: "Interval") -> bool:
        """True when the union of the two intervals is a single interval."""
        if self.is_empty() or other.is_empty():
            return False
        a, b = (self, other) if self.lo <= other.lo else (other, self)
        if a.hi > b.lo:
            return True
        if a.hi == b.lo:
            return a.closed_hi or b.closed_lo
        return False

    def _merge(self, other: "Interval") -> "Interval":
        """Union of two touching intervals as a single interval."""
        if self.lo < other.lo or (self.lo == other.lo and self.closed_lo):
            lo, closed_lo = self.lo, self.closed_lo
        else:
            lo, closed_lo = other.lo, other.closed_lo
        if self.hi > other.hi or (self.hi == other.hi and self.closed_hi):
            hi, closed_hi = self.hi, self.closed_hi
        else:
            hi, closed_hi = other.hi, other.closed_hi
        return Interval(lo, hi, closed_lo, closed_hi)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        lb = "[" if self.closed_lo else "("
        rb = "]" if self.closed_hi else ")"
        return f"{lb}{self.lo:g}, {self.hi:g}{rb}"


IntervalLike = Union[Interval, Tuple[float, float]]


def _coerce_interval(value: IntervalLike) -> Interval:
    if isinstance(value, Interval):
        return value
    lo, hi = value
    return Interval(float(lo), float(hi))


class IntervalSet:
    """A finite union of disjoint real intervals, kept in canonical form.

    The canonical form stores intervals sorted by lower endpoint with no two
    intervals touching, so structural equality coincides with set equality.
    The class supports the boolean algebra needed by symbolic floors:
    union, intersection, complement, and (vectorised) membership.
    """

    __slots__ = ("_intervals", "_hash_memo")

    def __init__(self, intervals: Iterable[IntervalLike] = ()):
        items = [_coerce_interval(iv) for iv in intervals]
        items = [iv for iv in items if not iv.is_empty()]
        items.sort(key=lambda iv: (iv.lo, not iv.closed_lo))
        merged: List[Interval] = []
        for iv in items:
            if merged and merged[-1]._touches(iv):
                merged[-1] = merged[-1]._merge(iv)
            else:
                merged.append(iv)
        self._intervals: Tuple[Interval, ...] = tuple(merged)

    # -- constructors -----------------------------------------------------

    @classmethod
    def empty(cls) -> "IntervalSet":
        return cls(())

    @classmethod
    def full(cls) -> "IntervalSet":
        return cls([Interval(_NEG_INF, _POS_INF, False, False)])

    @classmethod
    def point(cls, x: float) -> "IntervalSet":
        return cls([Interval(x, x)])

    @classmethod
    def less_than(cls, x: float, inclusive: bool = False) -> "IntervalSet":
        return cls([Interval(_NEG_INF, x, False, inclusive)])

    @classmethod
    def greater_than(cls, x: float, inclusive: bool = False) -> "IntervalSet":
        return cls([Interval(x, _POS_INF, inclusive, False)])

    @classmethod
    def between(
        cls, lo: float, hi: float, closed_lo: bool = True, closed_hi: bool = True
    ) -> "IntervalSet":
        return cls([Interval(lo, hi, closed_lo, closed_hi)])

    # -- inspection --------------------------------------------------------

    @property
    def intervals(self) -> Tuple[Interval, ...]:
        return self._intervals

    def is_empty(self) -> bool:
        return not self._intervals

    def is_full(self) -> bool:
        if len(self._intervals) != 1:
            return False
        iv = self._intervals[0]
        return iv.lo == _NEG_INF and iv.hi == _POS_INF

    @property
    def measure(self) -> float:
        return sum(iv.measure for iv in self._intervals)

    def bounds(self) -> Tuple[float, float]:
        """Tight (lo, hi) hull of the set; (inf, -inf) when empty."""
        if not self._intervals:
            return (_POS_INF, _NEG_INF)
        return (self._intervals[0].lo, self._intervals[-1].hi)

    def contains(self, x: float) -> bool:
        return any(iv.contains(x) for iv in self._intervals)

    def contains_array(self, xs: np.ndarray) -> np.ndarray:
        xs = np.asarray(xs, dtype=float)
        result = np.zeros(xs.shape, dtype=bool)
        for iv in self._intervals:
            result |= iv.contains_array(xs)
        return result

    # -- algebra ------------------------------------------------------------

    def union(self, other: "IntervalSet") -> "IntervalSet":
        return IntervalSet(self._intervals + other._intervals)

    def intersect(self, other: "IntervalSet") -> "IntervalSet":
        pieces = [
            a.intersect(b)
            for a in self._intervals
            for b in other._intervals
        ]
        return IntervalSet(pieces)

    def complement(self) -> "IntervalSet":
        """Complement within the whole real line."""
        if not self._intervals:
            return IntervalSet.full()
        gaps: List[Interval] = []
        cursor = _NEG_INF
        cursor_closed = False
        for iv in self._intervals:
            gap = Interval(cursor, iv.lo, cursor_closed, not iv.closed_lo)
            if not gap.is_empty():
                gaps.append(gap)
            cursor = iv.hi
            cursor_closed = not iv.closed_hi
        tail = Interval(cursor, _POS_INF, cursor_closed, False)
        if not tail.is_empty():
            gaps.append(tail)
        return IntervalSet(gaps)

    def difference(self, other: "IntervalSet") -> "IntervalSet":
        return self.intersect(other.complement())

    # -- dunder -------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IntervalSet):
            return NotImplemented
        return self._intervals == other._intervals

    def __hash__(self) -> int:
        # Interval sets are immutable and serve as pdf-op cache key parts;
        # hashing the interval tuple dominates lookups without this memo.
        try:
            return self._hash_memo
        except AttributeError:
            h = hash(self._intervals)
            self._hash_memo = h
            return h

    def __bool__(self) -> bool:
        return not self.is_empty()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if not self._intervals:
            return "IntervalSet(∅)"
        return "IntervalSet(" + " ∪ ".join(map(repr, self._intervals)) + ")"


FULL_LINE = IntervalSet.full()
EMPTY_SET = IntervalSet.empty()


Assignment = Mapping[str, Union[float, np.ndarray]]


class Region:
    """A (possibly multi-dimensional) subset of attribute space.

    A region knows which attribute names it constrains (:attr:`attrs`) and
    answers vectorised membership queries via :meth:`contains`.  Regions are
    the arguments of the ``floor`` primitive and the denotation of selection
    predicates.
    """

    attrs: Tuple[str, ...] = ()

    def contains(self, assignment: Assignment) -> np.ndarray:
        """Vectorised membership: arrays in ``assignment`` must broadcast."""
        raise NotImplementedError

    def contains_point(self, assignment: Mapping[str, float]) -> bool:
        """Scalar membership for a single assignment."""
        return bool(np.asarray(self.contains(assignment)).reshape(-1)[0])

    # boolean combinators ---------------------------------------------------

    def union(self, other: "Region") -> "Region":
        return UnionRegion((self, other))

    def intersect(self, other: "Region") -> "Region":
        return IntersectionRegion((self, other))

    def complement(self) -> "Region":
        return ComplementRegion(self)

    def _check(self, assignment: Assignment) -> None:
        missing = [a for a in self.attrs if a not in assignment]
        if missing:
            raise DimensionMismatchError(
                f"assignment is missing attributes {missing} required by region"
            )


class BoxRegion(Region):
    """An axis-aligned region: the product of one IntervalSet per attribute.

    Attributes not mentioned are unconstrained.  Box regions are the
    symbolically-floorable case: flooring a 1-D symbolic pdf with a box
    region keeps the pdf symbolic.
    """

    def __init__(self, constraints: Mapping[str, IntervalSet]):
        self._constraints: Dict[str, IntervalSet] = dict(constraints)
        self.attrs = tuple(sorted(self._constraints))

    @property
    def constraints(self) -> Dict[str, IntervalSet]:
        return dict(self._constraints)

    def interval_set(self, attr: str) -> IntervalSet:
        """The constraint for one attribute (full line when unconstrained)."""
        return self._constraints.get(attr, FULL_LINE)

    def contains(self, assignment: Assignment) -> np.ndarray:
        self._check(assignment)
        result: np.ndarray = np.asarray(True)
        for attr, allowed in self._constraints.items():
            result = result & allowed.contains_array(np.asarray(assignment[attr]))
        return np.asarray(result)

    def is_empty(self) -> bool:
        return any(s.is_empty() for s in self._constraints.values())

    def complement(self) -> "Region":
        """Complement; stays a box for single-attribute constraints."""
        if len(self._constraints) == 1:
            (attr, allowed), = self._constraints.items()
            return BoxRegion({attr: allowed.complement()})
        return ComplementRegion(self)

    def intersect_box(self, other: "BoxRegion") -> "BoxRegion":
        """Exact intersection of two boxes (stays a box)."""
        merged = dict(self._constraints)
        for attr, allowed in other._constraints.items():
            merged[attr] = merged[attr].intersect(allowed) if attr in merged else allowed
        return BoxRegion(merged)

    def project(self, attrs: Sequence[str]) -> "BoxRegion":
        """Keep only the constraints over ``attrs``."""
        return BoxRegion({a: s for a, s in self._constraints.items() if a in set(attrs)})

    def rename(self, mapping: Mapping[str, str]) -> "BoxRegion":
        return BoxRegion({mapping.get(a, a): s for a, s in self._constraints.items()})

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"{a}∈{s!r}" for a, s in sorted(self._constraints.items()))
        return f"BoxRegion({inner})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BoxRegion):
            return NotImplemented
        return self._constraints == other._constraints

    def __hash__(self) -> int:
        return hash(tuple(sorted(self._constraints.items())))


class PredicateRegion(Region):
    """A region defined by an arbitrary vectorised predicate.

    Used for non-rectangular selection conditions such as ``a < b``; pdfs
    floored with a predicate region generally collapse to grid form.
    """

    def __init__(
        self,
        attrs: Sequence[str],
        predicate: Callable[..., np.ndarray],
        description: str = "<predicate>",
    ):
        self.attrs = tuple(attrs)
        self._predicate = predicate
        self.description = description

    def contains(self, assignment: Assignment) -> np.ndarray:
        self._check(assignment)
        args = [np.asarray(assignment[a]) for a in self.attrs]
        return np.asarray(self._predicate(*args), dtype=bool)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"PredicateRegion({self.description}, attrs={self.attrs})"


class UnionRegion(Region):
    """Union of component regions."""

    def __init__(self, parts: Sequence[Region]):
        self.parts = tuple(parts)
        self.attrs = tuple(sorted({a for p in self.parts for a in p.attrs}))

    def contains(self, assignment: Assignment) -> np.ndarray:
        result: np.ndarray = np.asarray(False)
        for part in self.parts:
            result = result | part.contains(assignment)
        return np.asarray(result)


class IntersectionRegion(Region):
    """Intersection of component regions."""

    def __init__(self, parts: Sequence[Region]):
        self.parts = tuple(parts)
        self.attrs = tuple(sorted({a for p in self.parts for a in p.attrs}))

    def contains(self, assignment: Assignment) -> np.ndarray:
        result: np.ndarray = np.asarray(True)
        for part in self.parts:
            result = result & part.contains(assignment)
        return np.asarray(result)


class ComplementRegion(Region):
    """Complement of a region."""

    def __init__(self, inner: Region):
        self.inner = inner
        self.attrs = inner.attrs

    def contains(self, assignment: Assignment) -> np.ndarray:
        return ~np.asarray(self.inner.contains(assignment), dtype=bool)
