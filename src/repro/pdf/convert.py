"""Approximation and conversion between pdf representations.

The paper's Figure 4/5 experiments compare three representations of the same
underlying symbolic pdf:

* the **symbolic** original (exact, constant size),
* a **histogram** approximation with ``b`` buckets (:func:`to_histogram`),
* a **discrete sampling** approximation with ``n`` points
  (:func:`discretize`) — the representation forced on tuple-uncertainty
  models that only support discrete data.

Both approximations preserve total mass exactly; what differs is how range
probabilities degrade, which is precisely what Figure 4 measures.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..errors import PdfError, UnsupportedOperationError
from .base import UnivariatePdf
from .continuous import GaussianPdf
from .discrete import DiscretePdf
from .histogram import HistogramPdf

__all__ = [
    "discretize",
    "to_histogram",
    "fit_gaussian",
    "pdfs_allclose",
]


def _support_bounds(pdf: UnivariatePdf) -> tuple:
    (lo, hi) = pdf.support()[pdf.attr]
    if hi <= lo:
        hi = lo + 1e-9
    return lo, hi


def discretize(pdf: UnivariatePdf, n: int, lo: float = None, hi: float = None) -> DiscretePdf:
    """Approximate a pdf by ``n`` equally spaced value:probability points.

    The domain is split into ``n`` equal-width cells; each sample point sits
    at a cell center and carries the exact probability mass of its cell, so
    the approximation integrates to the original mass.  This mirrors how a
    discrete-only uncertainty model would ingest a continuous sensor pdf.
    """
    if n < 1:
        raise PdfError(f"need at least 1 sample point, got {n}")
    if lo is None or hi is None:
        slo, shi = _support_bounds(pdf)
        lo = slo if lo is None else lo
        hi = shi if hi is None else hi
    edges = np.linspace(lo, hi, n + 1)
    cdf_vals = pdf.cdf(edges)
    masses = np.diff(cdf_vals)
    masses[0] += float(cdf_vals[0])
    masses[-1] += float(pdf.mass() - cdf_vals[-1])
    centers = (edges[:-1] + edges[1:]) / 2.0
    pairs = {float(c): max(float(m), 0.0) for c, m in zip(centers, masses)}
    return DiscretePdf(pairs, attr=pdf.attr)


def to_histogram(
    pdf: UnivariatePdf,
    bins: int,
    lo: float = None,
    hi: float = None,
    method: str = "equiwidth",
) -> HistogramPdf:
    """Approximate a pdf by a ``bins``-bucket histogram.

    ``method="equiwidth"`` (the paper's representation) uses equally spaced
    bucket edges; ``method="equidepth"`` places edges at mass quantiles so
    every bucket holds the same probability.  Equi-depth bounds the error
    of *point/selectivity* estimates by ``mass/bins`` per bucket, but for
    range probabilities over smooth unimodal pdfs equal-width is usually
    more accurate (equi-depth's tail buckets get very wide); measure for
    your workload.  Bucket masses are exact either way (computed from the
    cdf); the only information lost is the shape of the density *within*
    each bucket.
    """
    if bins < 1:
        raise PdfError(f"need at least 1 bucket, got {bins}")
    if lo is None or hi is None:
        slo, shi = _support_bounds(pdf)
        lo = slo if lo is None else lo
        hi = shi if hi is None else hi
    if method == "equiwidth":
        edges = np.linspace(lo, hi, bins + 1)
    elif method == "equidepth":
        total = pdf.mass()
        targets = np.linspace(0.0, total, bins + 1)[1:-1]
        quantile = getattr(pdf, "quantile", None)
        if quantile is not None:
            inner = np.asarray(quantile(targets / total * 1.0), dtype=float)
            # quantile() inverts the conditional cdf only when mass == 1;
            # for partial pdfs fall back to bisection below.
            if abs(total - 1.0) > 1e-9:
                inner = np.array([_invert_cdf(pdf, t, lo, hi) for t in targets])
        else:
            inner = np.array([_invert_cdf(pdf, t, lo, hi) for t in targets])
        inner = np.clip(inner, lo, hi)
        edges = np.unique(np.concatenate([[lo], inner, [hi]]))
        if len(edges) < 2:
            edges = np.array([lo, hi if hi > lo else lo + 1e-9])
    else:
        raise PdfError(f"unknown histogram method {method!r}")
    cdf_vals = pdf.cdf(edges)
    masses = np.diff(cdf_vals)
    masses[0] += float(cdf_vals[0])
    masses[-1] += float(pdf.mass() - cdf_vals[-1])
    return HistogramPdf(edges, np.clip(masses, 0.0, None), attr=pdf.attr)


def _invert_cdf(pdf: UnivariatePdf, target: float, lo: float, hi: float) -> float:
    """Bisection inverse of the unconditional cdf on [lo, hi]."""
    for _ in range(80):
        mid = 0.5 * (lo + hi)
        if float(pdf.cdf(mid)) < target:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def fit_gaussian(pdf: UnivariatePdf) -> GaussianPdf:
    """Moment-match a pdf with a Gaussian (used by continuous aggregates).

    The result is *normalized*: it represents the distribution conditional
    on existence.  Callers that need partial mass should track it separately.
    """
    var = pdf.variance()
    if var <= 0:
        raise UnsupportedOperationError(
            "cannot moment-match a distribution with zero variance"
        )
    return GaussianPdf(pdf.mean(), var, attr=pdf.attr)


def pdfs_allclose(
    a: UnivariatePdf,
    b: UnivariatePdf,
    atol: float = 1e-6,
    points: Sequence[float] = None,
) -> bool:
    """Compare two 1-D pdfs by their cdfs on a common evaluation mesh.

    A testing helper: two pdfs are "close" when their unconditional cdfs
    agree to ``atol`` everywhere on the mesh (defaults to 257 points across
    the union of both supports).
    """
    if points is None:
        lo = min(_support_bounds(a)[0], _support_bounds(b)[0])
        hi = max(_support_bounds(a)[1], _support_bounds(b)[1])
        points = np.linspace(lo, hi, 257)
    xs = np.asarray(points, dtype=float)
    return bool(np.allclose(a.cdf(xs), b.cdf(xs), atol=atol))
