"""Probability distributions for uncertain attributes.

This package is the substrate beneath the probabilistic relational model:
symbolic continuous and discrete distributions, generic histogram and
discrete-sampling representations, symbolic floors, joint distributions, and
the conversions between them.  See :mod:`repro.pdf.base` for the common
interface.
"""

from .arithmetic import affine, convolve_discrete, convolve_histograms, sum_independent
from .base import DEFAULT_GRID, GridSpec, Pdf, UnivariatePdf
from .continuous import (
    BetaPdf,
    ContinuousPdf,
    ExponentialPdf,
    GammaPdf,
    GaussianPdf,
    LognormalPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)
from .convert import discretize, fit_gaussian, pdfs_allclose, to_histogram
from .discrete import (
    BernoulliPdf,
    BinomialPdf,
    CategoricalPdf,
    DiscretePdf,
    GeometricPdf,
    PoissonPdf,
    SymbolicDiscretePdf,
    code_label,
    label_code,
)
from .floors import FlooredPdf
from .metrics import cdf_distance, kl_divergence, mixture, total_variation
from .histogram import HistogramPdf
from .joint import (
    Axis,
    ContinuousAxis,
    DiscreteAxis,
    JointDiscretePdf,
    JointGaussianPdf,
    JointGridPdf,
    ProductPdf,
    as_joint_discrete,
    independent_product,
)
from .regions import (
    BoxRegion,
    ComplementRegion,
    Interval,
    IntervalSet,
    IntersectionRegion,
    PredicateRegion,
    Region,
    UnionRegion,
)

__all__ = [
    # base
    "Pdf",
    "UnivariatePdf",
    "GridSpec",
    "DEFAULT_GRID",
    # regions
    "Interval",
    "IntervalSet",
    "Region",
    "BoxRegion",
    "PredicateRegion",
    "UnionRegion",
    "IntersectionRegion",
    "ComplementRegion",
    # continuous
    "ContinuousPdf",
    "GaussianPdf",
    "UniformPdf",
    "ExponentialPdf",
    "TriangularPdf",
    "GammaPdf",
    "LognormalPdf",
    "BetaPdf",
    "WeibullPdf",
    # discrete
    "DiscretePdf",
    "CategoricalPdf",
    "SymbolicDiscretePdf",
    "BernoulliPdf",
    "BinomialPdf",
    "PoissonPdf",
    "GeometricPdf",
    "label_code",
    "code_label",
    # histogram / floors
    "HistogramPdf",
    "FlooredPdf",
    # joint
    "Axis",
    "ContinuousAxis",
    "DiscreteAxis",
    "JointGridPdf",
    "JointDiscretePdf",
    "JointGaussianPdf",
    "ProductPdf",
    "independent_product",
    "as_joint_discrete",
    # conversion / arithmetic
    "discretize",
    "to_histogram",
    "fit_gaussian",
    "pdfs_allclose",
    "affine",
    "convolve_discrete",
    "convolve_histograms",
    "sum_independent",
    # metrics / mixtures
    "total_variation",
    "kl_divergence",
    "cdf_distance",
    "mixture",
]
