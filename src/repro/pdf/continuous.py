"""Symbolic continuous distributions.

The paper stores standard distributions *symbolically* in the database
(Section II-A): a Gaussian is kept as ``Gaus(mean, variance)`` rather than as
samples, which gives exact range probabilities and constant-size storage.
This module implements the symbolic continuous family:

* :class:`GaussianPdf` — ``Gaus(mean, variance)`` exactly as in Table I,
* :class:`UniformPdf`, :class:`ExponentialPdf`, :class:`TriangularPdf`,
  :class:`GammaPdf`, :class:`LognormalPdf`.

Gaussian, Uniform, and Exponential — the hot paths of every benchmark —
use closed-form cdf/quantile implementations (``scipy.special``), and the
scipy *frozen distribution* backing the generic machinery is constructed
lazily: deserializing a page of symbolic tuples costs a few struct unpacks,
not thousands of scipy object constructions.

Flooring a symbolic pdf with an axis-aligned region keeps it symbolic (a
:class:`~repro.pdf.floors.FlooredPdf`); flooring with an arbitrary predicate
region collapses it to grid form.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

import numpy as np
from scipy import special, stats

from ..errors import InvalidDistributionError
from .base import DEFAULT_GRID, ArrayLike, GridSpec, UnivariatePdf
from .regions import BoxRegion, IntervalSet, Region

__all__ = [
    "ContinuousPdf",
    "GaussianPdf",
    "UniformPdf",
    "ExponentialPdf",
    "TriangularPdf",
    "GammaPdf",
    "LognormalPdf",
    "BetaPdf",
    "WeibullPdf",
]


class ContinuousPdf(UnivariatePdf):
    """Base class for 1-D symbolic continuous distributions.

    Subclasses provide a factory for a frozen scipy distribution (built
    lazily, cached), a ``symbol`` (the SQL-visible name, e.g. ``GAUSSIAN``)
    and their parameter dictionary; everything else — exact interval
    probabilities, symbolic floors, grid collapse — is shared here.
    Subclasses with cheap closed forms override the scalar hot paths.
    """

    symbol: str = "CONTINUOUS"

    def __init__(
        self,
        dist_factory: Callable[[], object],
        params: Mapping[str, float],
        attr: str = "x",
    ):
        super().__init__(attr)
        self._dist_factory = dist_factory
        self._dist_cache: Optional[object] = None
        self._params: Dict[str, float] = {k: float(v) for k, v in params.items()}

    @property
    def _dist(self):
        """The frozen scipy distribution, constructed on first use."""
        if self._dist_cache is None:
            self._dist_cache = self._dist_factory()
        return self._dist_cache

    # -- structural ---------------------------------------------------------

    @property
    def params(self) -> Dict[str, float]:
        """Distribution parameters, for display and serialization."""
        return dict(self._params)

    @property
    def is_discrete(self) -> bool:
        return False

    def with_attrs(self, attrs: Sequence[str]) -> "ContinuousPdf":
        (attr,) = attrs
        clone = type(self)(**self._params)  # type: ignore[arg-type]
        clone.attrs = (str(attr),)
        return clone

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}" for v in self._params.values())
        return f"{self.symbol}({inner})@{self.attr}"

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.attrs == other.attrs and self._params == other._params

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.attrs, tuple(sorted(self._params.items()))))

    def __getstate__(self):
        # The scipy factory is a closure and cannot cross process
        # boundaries (parallel executor, process backend); it is rebuilt
        # from the parameters on unpickle.
        state = self.__dict__.copy()
        state["_dist_factory"] = None
        state["_dist_cache"] = None
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._dist_factory = type(self)(**self._params)._dist_factory

    def _fingerprint(self):
        return (
            "cont",
            type(self).__name__,
            self.attrs,
            tuple(sorted(self._params.items())),
        )

    # -- probabilistic core ----------------------------------------------------

    def mass(self) -> float:
        return 1.0

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        return np.asarray(self._dist.pdf(np.asarray(assignment[self.attr], dtype=float)))

    def cdf(self, x: ArrayLike) -> np.ndarray:
        return np.asarray(self._dist.cdf(np.asarray(x, dtype=float)))

    def quantile(self, q: ArrayLike) -> np.ndarray:
        """Inverse cdf (used for grid bounds and sampling)."""
        return np.asarray(self._dist.ppf(np.asarray(q, dtype=float)))

    def _raw_support(self) -> Tuple[float, float]:
        """Support bounds before tail clipping; may be infinite."""
        lo, hi = self._dist.support()
        return float(lo), float(hi)

    def prob_interval(self, allowed: IntervalSet) -> float:
        """Exact P(X in allowed); endpoint openness is immaterial here."""
        total = 0.0
        for iv in allowed.intervals:
            total += float(self.cdf(iv.hi) - self.cdf(iv.lo))
        return min(max(total, 0.0), 1.0)

    def prob(self, region: Region) -> float:
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            return self.prob_interval(region.interval_set(self.attr))
        return self.to_grid().prob(region)

    def restrict(self, region: Region):
        from .floors import FlooredPdf

        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            return FlooredPdf(self, region.interval_set(self.attr))
        return self.to_grid().restrict(region)

    def marginalize(self, attrs: Sequence[str]) -> "ContinuousPdf":
        self._require_attrs(attrs)
        if tuple(attrs) != self.attrs:
            raise InvalidDistributionError(
                "cannot marginalize a 1-D pdf to an empty attribute list"
            )
        return self

    # -- support / conversion ---------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        return {self.attr: self._grid_bounds(DEFAULT_GRID)}

    def to_grid(self, spec: GridSpec = DEFAULT_GRID):
        from .joint import ContinuousAxis, JointGridPdf

        lo, hi = self._grid_bounds(spec)
        edges = np.linspace(lo, hi, spec.resolution + 1)
        masses = np.diff(self.cdf(edges))
        # Fold the clipped tails into the boundary cells so mass is preserved.
        masses[0] += float(self.cdf(edges[0]))
        masses[-1] += float(1.0 - self.cdf(edges[-1]))
        return JointGridPdf((ContinuousAxis(self.attr, edges),), masses)

    def _grid_bounds(self, spec: GridSpec) -> Tuple[float, float]:
        lo, hi = self._raw_support()
        if math.isinf(lo):
            lo = float(self.quantile(spec.tail_mass))
        if math.isinf(hi):
            hi = float(self.quantile(1.0 - spec.tail_mass))
        if hi <= lo:
            hi = lo + 1e-9
        return float(lo), float(hi)

    # -- moments / sampling -------------------------------------------------------

    def mean(self) -> float:
        return float(self._dist.mean())

    def variance(self) -> float:
        return float(self._dist.var())

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        return {self.attr: np.asarray(self._dist.rvs(size=n, random_state=rng))}


class GaussianPdf(ContinuousPdf):
    """The paper's ``Gaus(mean, variance)`` distribution (Table I).

    Note the second parameter is the **variance**, matching the paper's
    notation, not the standard deviation.  All hot paths are closed-form.
    """

    symbol = "GAUSSIAN"

    def __init__(self, mean: float, variance: float, attr: str = "x"):
        if variance <= 0:
            raise InvalidDistributionError(f"Gaussian variance must be > 0, got {variance}")
        sd = math.sqrt(variance)
        super().__init__(
            lambda: stats.norm(loc=mean, scale=sd),
            {"mean": mean, "variance": variance},
            attr,
        )
        self._mu = float(mean)
        self._sd = sd

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        xs = np.asarray(assignment[self.attr], dtype=float)
        z = (xs - self._mu) / self._sd
        return np.exp(-0.5 * z * z) / (self._sd * math.sqrt(2.0 * math.pi))

    def cdf(self, x: ArrayLike) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        return special.ndtr((xs - self._mu) / self._sd)

    def quantile(self, q: ArrayLike) -> np.ndarray:
        qs = np.asarray(q, dtype=float)
        return self._mu + self._sd * special.ndtri(qs)

    def _raw_support(self) -> Tuple[float, float]:
        return (float("-inf"), float("inf"))

    def mean(self) -> float:
        return self._mu

    def variance(self) -> float:
        return self._sd**2

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        return {self.attr: rng.normal(self._mu, self._sd, size=n)}


class UniformPdf(ContinuousPdf):
    """Uniform distribution over ``[lo, hi]`` (closed-form hot paths)."""

    symbol = "UNIFORM"

    def __init__(self, lo: float, hi: float, attr: str = "x"):
        if hi <= lo:
            raise InvalidDistributionError(f"Uniform requires lo < hi, got [{lo}, {hi}]")
        super().__init__(
            lambda: stats.uniform(loc=lo, scale=hi - lo), {"lo": lo, "hi": hi}, attr
        )
        self._lo = float(lo)
        self._hi = float(hi)

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        xs = np.asarray(assignment[self.attr], dtype=float)
        inside = (xs >= self._lo) & (xs <= self._hi)
        return np.where(inside, 1.0 / (self._hi - self._lo), 0.0)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        return np.clip((xs - self._lo) / (self._hi - self._lo), 0.0, 1.0)

    def quantile(self, q: ArrayLike) -> np.ndarray:
        qs = np.asarray(q, dtype=float)
        return self._lo + qs * (self._hi - self._lo)

    def _raw_support(self) -> Tuple[float, float]:
        return (self._lo, self._hi)

    def mean(self) -> float:
        return 0.5 * (self._lo + self._hi)

    def variance(self) -> float:
        return (self._hi - self._lo) ** 2 / 12.0

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        return {self.attr: rng.uniform(self._lo, self._hi, size=n)}


class ExponentialPdf(ContinuousPdf):
    """Exponential distribution with the given ``rate`` (closed-form hot paths)."""

    symbol = "EXPONENTIAL"

    def __init__(self, rate: float, attr: str = "x"):
        if rate <= 0:
            raise InvalidDistributionError(f"Exponential rate must be > 0, got {rate}")
        super().__init__(lambda: stats.expon(scale=1.0 / rate), {"rate": rate}, attr)
        self._rate = float(rate)

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        xs = np.asarray(assignment[self.attr], dtype=float)
        return np.where(xs >= 0.0, self._rate * np.exp(-self._rate * xs), 0.0)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        return np.where(xs <= 0.0, 0.0, 1.0 - np.exp(-self._rate * np.maximum(xs, 0.0)))

    def quantile(self, q: ArrayLike) -> np.ndarray:
        qs = np.asarray(q, dtype=float)
        return -np.log1p(-qs) / self._rate

    def _raw_support(self) -> Tuple[float, float]:
        return (0.0, float("inf"))

    def mean(self) -> float:
        return 1.0 / self._rate

    def variance(self) -> float:
        return 1.0 / self._rate**2

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        return {self.attr: rng.exponential(1.0 / self._rate, size=n)}


class TriangularPdf(ContinuousPdf):
    """Triangular distribution over ``[lo, hi]`` peaking at ``mode``."""

    symbol = "TRIANGULAR"

    def __init__(self, lo: float, mode: float, hi: float, attr: str = "x"):
        if not (lo <= mode <= hi) or lo == hi:
            raise InvalidDistributionError(
                f"Triangular requires lo <= mode <= hi with lo < hi, got ({lo}, {mode}, {hi})"
            )
        c = (mode - lo) / (hi - lo)
        super().__init__(
            lambda: stats.triang(c, loc=lo, scale=hi - lo),
            {"lo": lo, "mode": mode, "hi": hi},
            attr,
        )
        self._lo = float(lo)
        self._hi = float(hi)

    def _raw_support(self) -> Tuple[float, float]:
        # Closed form: freezing the scipy dist just to learn [lo, hi] costs
        # ~1ms per pdf (doc construction) and dominates bulk-load encoding.
        return (self._lo, self._hi)


class GammaPdf(ContinuousPdf):
    """Gamma distribution with ``shape`` k and ``rate`` lambda."""

    symbol = "GAMMA"

    def __init__(self, shape: float, rate: float, attr: str = "x"):
        if shape <= 0 or rate <= 0:
            raise InvalidDistributionError(
                f"Gamma requires shape > 0 and rate > 0, got ({shape}, {rate})"
            )
        super().__init__(
            lambda: stats.gamma(shape, scale=1.0 / rate),
            {"shape": shape, "rate": rate},
            attr,
        )


class LognormalPdf(ContinuousPdf):
    """Lognormal distribution: ``log X ~ N(mu, sigma^2)``."""

    symbol = "LOGNORMAL"

    def __init__(self, mu: float, sigma: float, attr: str = "x"):
        if sigma <= 0:
            raise InvalidDistributionError(f"Lognormal sigma must be > 0, got {sigma}")
        super().__init__(
            lambda: stats.lognorm(s=sigma, scale=math.exp(mu)),
            {"mu": mu, "sigma": sigma},
            attr,
        )


class BetaPdf(ContinuousPdf):
    """Beta distribution on [0, 1] (confidence scores, match degrees)."""

    symbol = "BETA"

    def __init__(self, alpha: float, beta: float, attr: str = "x"):
        if alpha <= 0 or beta <= 0:
            raise InvalidDistributionError(
                f"Beta requires alpha > 0 and beta > 0, got ({alpha}, {beta})"
            )
        super().__init__(
            lambda: stats.beta(alpha, beta), {"alpha": alpha, "beta": beta}, attr
        )


class WeibullPdf(ContinuousPdf):
    """Weibull distribution with ``shape`` k and ``scale`` lambda (lifetimes)."""

    symbol = "WEIBULL"

    def __init__(self, shape: float, scale: float, attr: str = "x"):
        if shape <= 0 or scale <= 0:
            raise InvalidDistributionError(
                f"Weibull requires shape > 0 and scale > 0, got ({shape}, {scale})"
            )
        super().__init__(
            lambda: stats.weibull_min(shape, scale=scale),
            {"shape": shape, "scale": scale},
            attr,
        )
