"""Distances between pdfs and mixture construction.

Supporting utilities for the accuracy experiments and for the data-cleansing
use case from the paper's introduction ("multiple alternatives for an
incorrect value" — naturally a *mixture* of candidate distributions).

* :func:`total_variation` — ½ ∫ |p - q|, evaluated exactly for discrete
  pairs and on a shared fine grid otherwise,
* :func:`kl_divergence` — KL(p ‖ q) on the same footing,
* :func:`cdf_distance` — sup-norm of the cdf difference (the Kolmogorov
  metric Figure 4's range-query errors are bounded by),
* :func:`mixture` — the convex combination of alternative pdfs; exact for
  discrete inputs, histogram-based for continuous ones.
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from ..errors import PdfError
from .base import UnivariatePdf
from .convert import to_histogram
from .discrete import DiscretePdf
from .histogram import HistogramPdf

__all__ = ["total_variation", "kl_divergence", "cdf_distance", "mixture"]


def _common_grid(p: UnivariatePdf, q: UnivariatePdf, points: int) -> np.ndarray:
    lo = min(p.support()[p.attr][0], q.support()[q.attr][0])
    hi = max(p.support()[p.attr][1], q.support()[q.attr][1])
    if hi <= lo:
        hi = lo + 1e-9
    return np.linspace(lo, hi, points + 1)


def total_variation(p: UnivariatePdf, q: UnivariatePdf, points: int = 512) -> float:
    """Total variation distance; exact when both inputs are discrete."""
    if p.is_discrete and q.is_discrete:
        values = set()
        for pdf in (p, q):
            marg = pdf
            values.update(np.atleast_1d(getattr(marg, "values", [])).tolist())
        values = sorted(values) or [0.0]
        xs = np.asarray(values)
        return float(0.5 * np.abs(p.pdf_at(xs) - q.pdf_at(xs)).sum())
    edges = _common_grid(p, q, points)
    p_mass = np.diff(p.cdf(edges))
    q_mass = np.diff(q.cdf(edges))
    # Account for mass outside the grid (partial pdfs / clipped tails).
    leak = abs(p.mass() - p_mass.sum()) + abs(q.mass() - q_mass.sum())
    return float(0.5 * (np.abs(p_mass - q_mass).sum() + leak))


def kl_divergence(p: UnivariatePdf, q: UnivariatePdf, points: int = 512) -> float:
    """KL(p ‖ q); ``inf`` when p has mass where q has none."""
    if p.is_discrete and q.is_discrete:
        xs = np.atleast_1d(getattr(p, "values", np.array([])))
        if xs.size == 0:
            raise PdfError("cannot compute KL of an empty discrete pdf")
        p_mass = np.asarray(p.pdf_at(xs), dtype=float)
        q_mass = np.asarray(q.pdf_at(xs), dtype=float)
    else:
        edges = _common_grid(p, q, points)
        p_mass = np.diff(p.cdf(edges))
        q_mass = np.diff(q.cdf(edges))
    keep = p_mass > 0
    if np.any(q_mass[keep] <= 0):
        return float("inf")
    return float((p_mass[keep] * np.log(p_mass[keep] / q_mass[keep])).sum())


def cdf_distance(p: UnivariatePdf, q: UnivariatePdf, points: int = 512) -> float:
    """Kolmogorov distance: sup_x |P(X <= x) - Q(X <= x)|."""
    edges = _common_grid(p, q, points)
    return float(np.abs(p.cdf(edges) - q.cdf(edges)).max())


def mixture(
    pdfs: Sequence[UnivariatePdf],
    weights: Sequence[float],
    bins: int = 128,
    attr: str = None,
) -> UnivariatePdf:
    """The convex combination Σ w_i · p_i of alternative distributions.

    Weights must be non-negative and sum to at most 1 (a deficit models
    "none of the alternatives", yielding a partial pdf).  All-discrete
    inputs mix exactly; otherwise the result is a ``bins``-bucket histogram
    over the union of supports.
    """
    if not pdfs:
        raise PdfError("mixture of zero pdfs is undefined")
    if len(pdfs) != len(weights):
        raise PdfError(f"{len(pdfs)} pdfs but {len(weights)} weights")
    weights = [float(w) for w in weights]
    if any(w < 0 for w in weights):
        raise PdfError("mixture weights must be non-negative")
    if sum(weights) > 1.0 + 1e-9:
        raise PdfError(f"mixture weights sum to {sum(weights)} > 1")
    name = attr or pdfs[0].attr

    if all(p.is_discrete for p in pdfs):
        combined: Dict[float, float] = {}
        for pdf, w in zip(pdfs, weights):
            if w == 0:
                continue
            discrete = pdf if isinstance(pdf, DiscretePdf) else None
            if discrete is None:
                materialize = getattr(pdf, "materialize", None)
                if materialize is None:
                    raise PdfError(
                        f"cannot mix discrete pdf of type {type(pdf).__name__}"
                    )
                discrete = materialize()
            for v, p_val in discrete.items():
                combined[v] = combined.get(v, 0.0) + w * p_val
        if not combined:
            raise PdfError("mixture has zero total weight")
        return DiscretePdf(combined, attr=name)

    lo = min(p.support()[p.attr][0] for p in pdfs)
    hi = max(p.support()[p.attr][1] for p in pdfs)
    if hi <= lo:
        hi = lo + 1e-9
    edges = np.linspace(lo, hi, bins + 1)
    masses = np.zeros(bins)
    for pdf, w in zip(pdfs, weights):
        if w == 0:
            continue
        h = to_histogram(pdf, bins, lo=lo, hi=hi)
        masses += w * h.masses
    return HistogramPdf(edges, np.clip(masses, 0.0, None), attr=name)
