"""Arithmetic over independent uncertain attributes (aggregate support).

Section I of the paper observes that aggregates over discrete uncertain
attributes can have *exponentially many* possible result values, while a
continuous approximation stays constant-size — "one can save space as well
as time by approximating with a continuous pdf.  This is exactly what our
model proposes."  This module provides both paths:

* exact discrete convolution (:func:`convolve_discrete`) — the blow-up,
* closed-form Gaussian addition and CLT moment matching
  (:func:`sum_independent` with ``method="gaussian"``) — the paper's fix,
* grid convolution for histograms (:func:`convolve_histograms`).

Only *historically independent* inputs may be summed this way; the model
layer enforces that before calling in.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

import numpy as np

from ..errors import PdfError, UnsupportedOperationError
from .base import UnivariatePdf
from .continuous import GaussianPdf, UniformPdf
from .discrete import DiscretePdf, SymbolicDiscretePdf
from .histogram import HistogramPdf

__all__ = [
    "affine",
    "convolve_discrete",
    "convolve_histograms",
    "sum_independent",
]


def affine(pdf: UnivariatePdf, scale: float, shift: float = 0.0) -> UnivariatePdf:
    """The distribution of ``scale * X + shift`` (exact where closed-form).

    Supports Gaussian and Uniform symbolically, and Discrete / Histogram by
    transforming their supports.  ``scale`` must be non-zero.
    """
    if scale == 0:
        raise PdfError("affine scale must be non-zero (result would be a constant)")
    if isinstance(pdf, GaussianPdf):
        p = pdf.params
        return GaussianPdf(scale * p["mean"] + shift, scale**2 * p["variance"], attr=pdf.attr)
    if isinstance(pdf, UniformPdf):
        p = pdf.params
        lo, hi = scale * p["lo"] + shift, scale * p["hi"] + shift
        return UniformPdf(min(lo, hi), max(lo, hi), attr=pdf.attr)
    if isinstance(pdf, DiscretePdf):
        return DiscretePdf(
            {scale * v + shift: p for v, p in pdf.items()}, attr=pdf.attr
        )
    if isinstance(pdf, HistogramPdf):
        edges = scale * pdf.edges + shift
        masses = pdf.masses
        if scale < 0:
            edges, masses = edges[::-1], masses[::-1]
        return HistogramPdf(edges, masses, attr=pdf.attr)
    raise UnsupportedOperationError(
        f"affine transform not supported for {type(pdf).__name__}"
    )


def convolve_discrete(pdfs: Sequence[DiscretePdf], attr: str = "sum") -> DiscretePdf:
    """Exact distribution of the sum of independent discrete pdfs.

    The support can grow as the product of the input supports — the
    exponential blow-up the paper warns about (exercised by the aggregate
    ablation benchmark).
    """
    if not pdfs:
        raise PdfError("cannot convolve zero pdfs")
    acc: Dict[float, float] = dict(pdfs[0].items())
    for pdf in pdfs[1:]:
        nxt: Dict[float, float] = {}
        for v1, p1 in acc.items():
            for v2, p2 in pdf.items():
                key = v1 + v2
                nxt[key] = nxt.get(key, 0.0) + p1 * p2
        acc = nxt
    return DiscretePdf(acc, attr=attr)


def convolve_histograms(
    pdfs: Sequence[UnivariatePdf], bins: int = 128, attr: str = "sum"
) -> HistogramPdf:
    """Grid convolution of independent pdfs via FFT on a common lattice.

    Each input is first collapsed to a histogram on a shared cell width;
    the output is an equal-width histogram of the sum with ``bins`` buckets.
    """
    from .convert import to_histogram

    if not pdfs:
        raise PdfError("cannot convolve zero pdfs")
    supports = [p.support()[p.attr] for p in pdfs]
    total_lo = sum(s[0] for s in supports)
    total_hi = sum(s[1] for s in supports)
    if total_hi <= total_lo:
        total_hi = total_lo + 1e-9
    cell = (total_hi - total_lo) / bins
    acc = None
    acc_lo = 0.0
    for pdf, (lo, hi) in zip(pdfs, supports):
        n_cells = max(int(math.ceil((hi - lo) / cell)), 1)
        hist = to_histogram(pdf, n_cells, lo=lo, hi=lo + n_cells * cell)
        masses = hist.masses
        if acc is None:
            acc, acc_lo = masses, lo
        else:
            acc = np.convolve(acc, masses)
            acc_lo += lo
    assert acc is not None
    edges = acc_lo + cell * np.arange(len(acc) + 1)
    fine = HistogramPdf(edges, np.clip(acc, 0.0, None), attr=attr)
    # Re-bucket down to the requested resolution.
    out_edges = np.linspace(edges[0], edges[-1], bins + 1)
    out_masses = np.diff(fine.cdf(out_edges))
    return HistogramPdf(out_edges, np.clip(out_masses, 0.0, None), attr=attr)


def sum_independent(
    pdfs: Sequence[UnivariatePdf], method: str = "auto", attr: str = "sum"
) -> UnivariatePdf:
    """Distribution of the sum of independent uncertain attributes.

    ``method``:

    * ``"exact"`` — exact discrete convolution; all inputs must be discrete.
    * ``"gaussian"`` — CLT moment matching: a Gaussian with the summed means
      and variances (closed form when all inputs are Gaussian anyway).
    * ``"histogram"`` — grid convolution.
    * ``"auto"`` — Gaussians add in closed form; all-discrete inputs convolve
      exactly while the support stays small, else fall back to moment
      matching.
    """
    pdfs = list(pdfs)
    if not pdfs:
        raise PdfError("cannot sum zero pdfs")
    if len(pdfs) == 1:
        return pdfs[0].with_attrs([attr])

    def _gaussian() -> GaussianPdf:
        mean = sum(p.mean() for p in pdfs)
        var = sum(p.variance() for p in pdfs)
        if var <= 0:
            raise UnsupportedOperationError("sum has zero variance; not representable")
        return GaussianPdf(mean, var, attr=attr)

    def _materialize(p: UnivariatePdf) -> DiscretePdf:
        if isinstance(p, SymbolicDiscretePdf):
            return p.materialize()
        if isinstance(p, DiscretePdf):
            return p
        raise UnsupportedOperationError(
            f"{type(p).__name__} is not discrete; use gaussian/histogram method"
        )

    if method == "gaussian":
        return _gaussian()
    if method == "exact":
        return convolve_discrete([_materialize(p) for p in pdfs], attr=attr)
    if method == "histogram":
        return convolve_histograms(pdfs, attr=attr)
    if method != "auto":
        raise PdfError(f"unknown sum method {method!r}")

    if all(isinstance(p, GaussianPdf) for p in pdfs):
        return _gaussian()
    if all(p.is_discrete for p in pdfs):
        support_product = 1
        for p in pdfs:
            size = len(_materialize(p).values)
            support_product *= size
            if support_product > 100_000:
                return _gaussian()
        return convolve_discrete([_materialize(p) for p in pdfs], attr=attr)
    return _gaussian()
