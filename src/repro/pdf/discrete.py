"""Discrete distributions: explicit value-probability pairs and symbolic families.

The paper supports discrete uncertainty both as *discrete sampling* (an
enumerated list of value:probability pairs, the representation used by the
tuple-uncertainty literature) and as *symbolic* standard distributions such
as Binomial and Bernoulli (Section II-A).  Explicit discrete pdfs are also
the universal target when a symbolic continuous pdf is "discretized" for the
accuracy experiments (Figure 4).

``DiscretePdf`` may be *partial* (probabilities summing to less than 1),
which is how missing tuples are encoded (Table IV, second block).
"""

from __future__ import annotations

import math
import threading
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple, Union

import numpy as np
from scipy import stats

from ..errors import InvalidDistributionError, PdfError
from .base import DEFAULT_GRID, ArrayLike, GridSpec, MASS_TOLERANCE, UnivariatePdf
from .regions import BoxRegion, IntervalSet, Region

__all__ = [
    "DiscretePdf",
    "CategoricalPdf",
    "SymbolicDiscretePdf",
    "BernoulliPdf",
    "BinomialPdf",
    "PoissonPdf",
    "GeometricPdf",
]

PairsLike = Union[Mapping[float, float], Iterable[Tuple[float, float]]]


class DiscretePdf(UnivariatePdf):
    """An explicit (possibly partial) discrete pdf: value -> probability.

    This is the paper's *discrete sampling* representation, e.g.
    ``Discrete(0: 0.1, 1: 0.9)`` from the Section III-C example.  Values are
    kept sorted and unique; probabilities must be non-negative and sum to at
    most 1 (within tolerance).
    """

    symbol = "DISCRETE"

    def __init__(self, pairs: PairsLike, attr: str = "x"):
        super().__init__(attr)
        items = dict(pairs) if isinstance(pairs, Mapping) else dict(pairs)
        if not items:
            raise InvalidDistributionError("a discrete pdf needs at least one value")
        values = np.array(sorted(items), dtype=float)
        probs = np.array([items[v] for v in sorted(items)], dtype=float)
        if np.any(probs < -MASS_TOLERANCE):
            raise InvalidDistributionError("discrete probabilities must be non-negative")
        probs = np.clip(probs, 0.0, None)
        total = float(probs.sum())
        if total > 1.0 + 1e-6:
            raise InvalidDistributionError(
                f"discrete probabilities sum to {total} > 1"
            )
        self._values = values
        self._probs = probs

    @classmethod
    def _from_arrays(cls, values: np.ndarray, probs: np.ndarray, attr: str) -> "DiscretePdf":
        """Trusted fast constructor (no validation) for internal hot paths."""
        pdf = cls.__new__(cls)
        UnivariatePdf.__init__(pdf, attr)
        pdf._values = values
        pdf._probs = probs
        return pdf

    # -- structural ----------------------------------------------------------

    @property
    def values(self) -> np.ndarray:
        return self._values.copy()

    @property
    def probs(self) -> np.ndarray:
        return self._probs.copy()

    @property
    def is_discrete(self) -> bool:
        return True

    def items(self) -> Iterable[Tuple[float, float]]:
        """(value, probability) pairs in value order."""
        return zip(self._values.tolist(), self._probs.tolist())

    def with_attrs(self, attrs: Sequence[str]) -> "DiscretePdf":
        (attr,) = attrs
        return DiscretePdf(dict(self.items()), attr=str(attr))

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}:{p:.4g}" for v, p in self.items())
        return f"Discrete({inner})@{self.attr}"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DiscretePdf):
            return NotImplemented
        return (
            self.attrs == other.attrs
            and np.array_equal(self._values, other._values)
            and np.allclose(self._probs, other._probs, atol=1e-12)
        )

    def __hash__(self) -> int:
        return hash((self.attrs, self._values.tobytes()))

    def _fingerprint(self):
        return (
            "disc",
            type(self).__name__,
            self.attrs,
            self._values.tobytes(),
            self._probs.tobytes(),
        )

    # -- probabilistic core -----------------------------------------------------

    def mass(self) -> float:
        return float(self._probs.sum())

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        xs = np.asarray(assignment[self.attr], dtype=float)
        scalar = xs.ndim == 0
        flat = np.atleast_1d(xs)
        idx = np.searchsorted(self._values, flat)
        idx = np.clip(idx, 0, len(self._values) - 1)
        hit = self._values[idx] == flat
        out = np.where(hit, self._probs[idx], 0.0)
        return out[0] if scalar else out.reshape(xs.shape)

    def cdf(self, x: ArrayLike) -> np.ndarray:
        xs = np.asarray(x, dtype=float)
        cum = np.concatenate([[0.0], np.cumsum(self._probs)])
        return cum[np.searchsorted(self._values, xs, side="right")]

    def prob_interval(self, allowed: IntervalSet) -> float:
        inside = allowed.contains_array(self._values)
        return float(self._probs[inside].sum())

    def prob(self, region: Region) -> float:
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            return self.prob_interval(region.interval_set(self.attr))
        inside = np.asarray(region.contains({self.attr: self._values}), dtype=bool)
        return float(self._probs[inside].sum())

    def restrict(self, region: Region) -> "DiscretePdf":
        if isinstance(region, BoxRegion):
            self._require_attrs(region.attrs)
            inside = region.interval_set(self.attr).contains_array(self._values)
        else:
            inside = np.asarray(region.contains({self.attr: self._values}), dtype=bool)
        if not inside.any():
            # Fully floored: represent as a zero-mass point pdf so that the
            # caller can detect emptiness via mass() and drop the tuple.
            return DiscretePdf._from_arrays(
                self._values[:1].copy(), np.zeros(1), self.attr
            )
        return DiscretePdf._from_arrays(
            self._values[inside], self._probs[inside], self.attr
        )

    def marginalize(self, attrs: Sequence[str]) -> "DiscretePdf":
        self._require_attrs(attrs)
        if tuple(attrs) != self.attrs:
            raise PdfError("cannot marginalize a 1-D pdf to an empty attribute list")
        return self

    def _scaled(self, factor: float) -> "DiscretePdf":
        return DiscretePdf(
            {float(v): float(p) * factor for v, p in self.items()}, attr=self.attr
        )

    # -- support / conversion -------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        return {self.attr: (float(self._values[0]), float(self._values[-1]))}

    def to_grid(self, spec: GridSpec = DEFAULT_GRID):
        from .joint import DiscreteAxis, JointGridPdf

        return JointGridPdf(
            (DiscreteAxis(self.attr, self._values),), self._probs.copy()
        )

    # -- moments / sampling -------------------------------------------------------------

    def mean(self) -> float:
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("mean of a zero-mass pdf is undefined")
        return float((self._values * self._probs).sum() / m)

    def variance(self) -> float:
        mu = self.mean()
        m = self.mass()
        return float(((self._values - mu) ** 2 * self._probs).sum() / m)

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        m = self.mass()
        if m <= MASS_TOLERANCE:
            raise PdfError("cannot sample a zero-mass pdf")
        picks = rng.choice(self._values, size=n, p=self._probs / m)
        return {self.attr: picks}


#: Process-wide label interning for categorical pdfs.  Using one shared
#: code space makes codes comparable across columns, tuples and relations,
#: which is what lets `annotation = 'person'` and `a.label = b.label`
#: predicates work uniformly through the numeric region machinery.
#: Interning is locked: parallel-executor workers may intern new labels
#: concurrently, and check-then-append would hand out duplicate codes.
_LABEL_CODES: Dict[str, int] = {}
_LABELS: List[str] = []
_LABEL_LOCK = threading.Lock()


def label_code(label: str) -> float:
    """Intern a label and return its stable numeric code."""
    code = _LABEL_CODES.get(label)
    if code is None:
        with _LABEL_LOCK:
            code = _LABEL_CODES.get(label)
            if code is None:
                code = len(_LABELS)
                _LABEL_CODES[label] = code
                _LABELS.append(label)
    return float(code)


def code_label(code: float) -> str:
    """The label for an interned code."""
    idx = int(code)
    if idx < 0 or idx >= len(_LABELS) or idx != code:
        raise KeyError(f"unknown label code {code}")
    return _LABELS[idx]


class CategoricalPdf(DiscretePdf):
    """A discrete pdf over string labels, stored as interned integer codes.

    Used for categorical uncertainty (text annotations, data cleansing
    alternatives).  The numeric machinery operates on the codes; the global
    interning table maps codes back for display and for translating label
    predicates.
    """

    symbol = "CATEGORICAL"

    def __init__(self, pairs: Mapping[str, float], attr: str = "x"):
        if not pairs:
            raise InvalidDistributionError("a categorical pdf needs at least one label")
        code_pairs = {label_code(label): float(p) for label, p in pairs.items()}
        super().__init__(code_pairs, attr=attr)

    @property
    def labels(self) -> Tuple[str, ...]:
        return tuple(code_label(v) for v in self._values)

    def code_of(self, label: str) -> float:
        """The numeric code of ``label`` (interned globally)."""
        return label_code(label)

    def label_of(self, code: float) -> str:
        return code_label(code)

    def label_items(self) -> Iterable[Tuple[str, float]]:
        """(label, probability) pairs."""
        for value, prob in self.items():
            yield code_label(value), prob

    def prob_label(self, label: str) -> float:
        """P(X == label); 0 for labels outside the domain."""
        return float(self.density({self.attr: label_code(label)}))

    def with_attrs(self, attrs: Sequence[str]) -> "CategoricalPdf":
        (attr,) = attrs
        return CategoricalPdf(dict(self.label_items()), attr=str(attr))

    def __repr__(self) -> str:
        inner = ", ".join(f"{label}:{p:.4g}" for label, p in self.label_items())
        return f"Categorical({inner})@{self.attr}"


class SymbolicDiscretePdf(UnivariatePdf):
    """Base class for symbolic discrete families (Bernoulli, Binomial, ...).

    Probabilities over intervals come straight from the scipy cdf; operations
    that change the shape of the distribution (floors, grids) first
    materialize an explicit :class:`DiscretePdf` covering all but
    ``1e-12`` of the mass.
    """

    symbol = "SYMBOLIC_DISCRETE"

    def __init__(self, dist, params: Mapping[str, float], attr: str = "x"):
        super().__init__(attr)
        self._dist = dist
        self._params: Dict[str, float] = {k: float(v) for k, v in params.items()}

    @property
    def params(self) -> Dict[str, float]:
        return dict(self._params)

    @property
    def is_discrete(self) -> bool:
        return True

    def with_attrs(self, attrs: Sequence[str]) -> "SymbolicDiscretePdf":
        (attr,) = attrs
        clone = type(self)(**self._params)  # type: ignore[arg-type]
        clone.attrs = (str(attr),)
        return clone

    def __repr__(self) -> str:
        inner = ", ".join(f"{v:g}" for v in self._params.values())
        return f"{self.symbol}({inner})@{self.attr}"

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.attrs == other.attrs and self._params == other._params

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.attrs, tuple(sorted(self._params.items()))))

    def _fingerprint(self):
        return (
            "symdisc",
            type(self).__name__,
            self.attrs,
            tuple(sorted(self._params.items())),
        )

    def materialize(self) -> DiscretePdf:
        """Explicit value:probability pairs covering mass >= 1 - 1e-12."""
        lo, hi = self._dist.support()
        if math.isinf(hi):
            hi = float(self._dist.ppf(1.0 - 1e-12))
        values = np.arange(int(lo), int(hi) + 1, dtype=float)
        probs = self._dist.pmf(values)
        keep = probs > 0
        return DiscretePdf(dict(zip(values[keep], probs[keep])), attr=self.attr)

    # -- probabilistic core -----------------------------------------------------

    def mass(self) -> float:
        return 1.0

    def density(self, assignment: Mapping[str, ArrayLike]) -> np.ndarray:
        self._require_attrs(list(assignment))
        return np.asarray(self._dist.pmf(np.asarray(assignment[self.attr], dtype=float)))

    def cdf(self, x: ArrayLike) -> np.ndarray:
        return np.asarray(self._dist.cdf(np.asarray(x, dtype=float)))

    def prob_interval(self, allowed: IntervalSet) -> float:
        return self.materialize().prob_interval(allowed)

    def prob(self, region: Region) -> float:
        return self.materialize().prob(region)

    def restrict(self, region: Region) -> DiscretePdf:
        return self.materialize().restrict(region)

    def marginalize(self, attrs: Sequence[str]) -> "SymbolicDiscretePdf":
        self._require_attrs(attrs)
        if tuple(attrs) != self.attrs:
            raise PdfError("cannot marginalize a 1-D pdf to an empty attribute list")
        return self

    # -- support / conversion -------------------------------------------------------

    def support(self) -> Dict[str, Tuple[float, float]]:
        return self.materialize().support()

    def to_grid(self, spec: GridSpec = DEFAULT_GRID):
        return self.materialize().to_grid(spec)

    # -- moments / sampling ------------------------------------------------------------

    def mean(self) -> float:
        return float(self._dist.mean())

    def variance(self) -> float:
        return float(self._dist.var())

    def sample(self, rng: np.random.Generator, n: int) -> Dict[str, np.ndarray]:
        return {self.attr: np.asarray(self._dist.rvs(size=n, random_state=rng), dtype=float)}


class BernoulliPdf(SymbolicDiscretePdf):
    """Bernoulli distribution: 1 with probability ``p``, else 0."""

    symbol = "BERNOULLI"

    def __init__(self, p: float, attr: str = "x"):
        if not 0.0 <= p <= 1.0:
            raise InvalidDistributionError(f"Bernoulli p must be in [0, 1], got {p}")
        super().__init__(stats.bernoulli(p), {"p": p}, attr)


class BinomialPdf(SymbolicDiscretePdf):
    """Binomial distribution with ``n`` trials of success probability ``p``."""

    symbol = "BINOMIAL"

    def __init__(self, n: float, p: float, attr: str = "x"):
        if n < 0 or int(n) != n:
            raise InvalidDistributionError(f"Binomial n must be a non-negative int, got {n}")
        if not 0.0 <= p <= 1.0:
            raise InvalidDistributionError(f"Binomial p must be in [0, 1], got {p}")
        super().__init__(stats.binom(int(n), p), {"n": n, "p": p}, attr)


class PoissonPdf(SymbolicDiscretePdf):
    """Poisson distribution with mean ``rate``."""

    symbol = "POISSON"

    def __init__(self, rate: float, attr: str = "x"):
        if rate <= 0:
            raise InvalidDistributionError(f"Poisson rate must be > 0, got {rate}")
        super().__init__(stats.poisson(rate), {"rate": rate}, attr)


class GeometricPdf(SymbolicDiscretePdf):
    """Geometric distribution (number of trials to first success)."""

    symbol = "GEOMETRIC"

    def __init__(self, p: float, attr: str = "x"):
        if not 0.0 < p <= 1.0:
            raise InvalidDistributionError(f"Geometric p must be in (0, 1], got {p}")
        super().__init__(stats.geom(p), {"p": p}, attr)
