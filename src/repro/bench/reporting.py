"""Reporting helpers: paper-figure-shaped tables on stdout.

Each experiment returns rows of numbers; these helpers print them as the
series the paper plots, aligned for reading and greppable for tooling.
"""

from __future__ import annotations

from typing import List, Sequence

__all__ = [
    "format_table",
    "print_figure",
    "print_cache_stats",
    "print_parallel_stats",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Fixed-width table with a header rule."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e6):
                return f"{value:.3e}"
            return f"{value:.4f}"
        return str(value)

    cells = [list(map(str, headers))] + [[fmt(v) for v in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = ["  ".join(h.rjust(w) for h, w in zip(cells[0], widths))]
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def print_figure(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> None:
    """Print one figure's data series with a banner."""
    banner = "=" * max(len(title), 8)
    print(banner)
    print(title)
    print(banner)
    print(format_table(headers, rows))


def print_cache_stats(stats: dict, label: str = "pdf-op cache") -> None:
    """One greppable line summarising pdf-op cache effectiveness."""
    print(
        f"{label}: hits={stats['hits']} misses={stats['misses']} "
        f"size={stats['size']} hit_rate={stats['hit_rate']:.3f}"
    )
    print()


def print_parallel_stats(stats: dict, label: str = "parallel run") -> None:
    """Morsel counts and per-worker busy times of one parallel query.

    ``stats`` is the dict produced by
    :func:`repro.engine.executor.last_run_stats` (also surfaced as
    ``QueryResult.parallel_stats``).
    """
    if not stats:
        print(f"{label}: serial (no parallel stages ran)")
        print()
        return
    print(
        f"{label}: morsels={stats['morsels']} tuples={stats['tuples']} "
        f"busy={stats['busy_time'] * 1000:.2f}ms "
        f"stages={len(stats['stages'])}"
    )
    rows = [
        [worker, row["morsels"], row["tuples"], row["elapsed"] * 1000]
        for worker, row in sorted(stats["per_worker"].items())
    ]
    print(format_table(["worker", "morsels", "tuples", "busy_ms"], rows))
    print()
