"""Environment provenance for benchmark reports.

Every ``BENCH_*.json`` writer embeds this snapshot so the perf trajectory
recorded in the repo stays comparable across machines and toolchain
versions — a speedup regression can be told apart from a hardware change.
"""

from __future__ import annotations

import os
import platform

import numpy as np
import scipy

__all__ = ["environment_info"]


def environment_info() -> dict:
    """A JSON-serializable snapshot of the benchmark environment."""
    return {
        "python": platform.python_version(),
        "numpy": np.__version__,
        "scipy": scipy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }
