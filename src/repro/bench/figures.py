"""The paper's three result figures as runnable experiments.

Each function returns ``(headers, rows)`` ready for
:func:`repro.bench.reporting.print_figure`; the pytest-benchmark wrappers
in ``benchmarks/`` and the ``python -m repro.bench`` CLI both call in here.

* :func:`fig4_accuracy` — Figure 4, "Accuracy vs Sample Size": mean
  absolute error (and its standard deviation) of range-query probabilities
  under histogram vs discrete approximation, as a function of
  representation size.
* :func:`fig5_discretized_performance` — Figure 5, "Performance of
  Discretized PDFs": range-query workload wall time and physical page I/O
  as the table grows, for symbolic vs histogram-5 vs discrete-25 (the two
  approximations chosen for equal accuracy, per the paper).
* :func:`fig6_history_overhead` — Figure 6, "Overhead of Histories": join
  over range queries (floors + products) and projection of the resulting
  correlated data, with and without history maintenance.
"""

from __future__ import annotations

import time
from typing import List, Sequence, Tuple

import numpy as np

from ..core.join import join, prefix_attrs
from ..core.model import ModelConfig
from ..core.predicates import And, Comparison, col
from ..core.project import project
from ..core.select import select
from ..engine.database import Database
from ..engine.storage.disk import MemoryDisk
from ..pdf.convert import discretize, to_histogram
from ..pdf.regions import BoxRegion, IntervalSet
from .protocol import cold_start
from ..workloads.sensors import (
    generate_range_queries,
    generate_readings,
    load_readings_relation,
)

__all__ = [
    "fig4_accuracy",
    "fig5_discretized_performance",
    "fig6_history_overhead",
]

Headers = List[str]
Rows = List[List[float]]


# ---------------------------------------------------------------------------
# Figure 4 — Accuracy vs sample size
# ---------------------------------------------------------------------------


def fig4_accuracy(
    sample_sizes: Sequence[int] = (2, 3, 5, 8, 10, 15, 20, 25, 30),
    n_pdfs: int = 200,
    n_queries: int = 200,
    seed: int = 7,
) -> Tuple[Headers, Rows]:
    """Mean |error| and error std-dev of range probabilities per sample size.

    For every reading and every range query the exact answer comes from the
    symbolic Gaussian cdf; the histogram and discrete approximations of
    equal size are then evaluated on the same queries.
    """
    readings = generate_readings(n_pdfs, seed=seed)
    queries = generate_range_queries(n_queries, seed=seed + 1)
    rows: Rows = []
    for size in sample_sizes:
        hist_errors: List[float] = []
        disc_errors: List[float] = []
        for reading in readings:
            exact_pdf = reading.pdf
            hist = to_histogram(exact_pdf, size)
            disc = discretize(exact_pdf, size)
            for q in queries:
                window = IntervalSet.between(q.lo, q.hi)
                exact = exact_pdf.prob_interval(window)
                hist_errors.append(abs(hist.prob_interval(window) - exact))
                disc_errors.append(abs(disc.prob_interval(window) - exact))
        hist_arr = np.asarray(hist_errors)
        disc_arr = np.asarray(disc_errors)
        rows.append(
            [
                size,
                float(hist_arr.mean()),
                float(hist_arr.std()),
                float(disc_arr.mean()),
                float(disc_arr.std()),
            ]
        )
    headers = [
        "sample_size",
        "hist_mean_err",
        "hist_err_std",
        "disc_mean_err",
        "disc_err_std",
    ]
    return headers, rows


# ---------------------------------------------------------------------------
# Figure 5 — Performance of discretized pdfs
# ---------------------------------------------------------------------------

_REPRESENTATIONS = (
    ("symbolic", 0),
    ("histogram", 5),
    ("discrete", 25),
)


def _build_database(
    readings, representation: str, size: int, buffer_pages: int
) -> Database:
    db = Database(disk=MemoryDisk(), buffer_capacity=buffer_pages)
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    table = db.table("readings")
    for reading in readings:
        exact = reading.pdf
        if representation == "symbolic":
            pdf = exact
        elif representation == "histogram":
            pdf = to_histogram(exact, size)
        else:
            pdf = discretize(exact, size)
        table.insert(certain={"rid": reading.rid}, uncertain={"value": pdf})
    db.catalog.pool.flush_all()
    return db


def _run_range_workload(db: Database, queries) -> Tuple[float, int, int]:
    """(wall seconds, physical page reads, result rows) for the query batch."""
    cold_start(db)  # fresh scan-heavy workload: no cached pages or pdf ops
    rows = 0
    start = time.perf_counter()
    for q in queries:
        result = db.execute(
            f"SELECT rid FROM readings WHERE value > {q.lo} AND value < {q.hi}"
        )
        rows += len(result)
    elapsed = time.perf_counter() - start
    return elapsed, db.io_counters.reads, rows


def fig5_discretized_performance(
    tuple_counts: Sequence[int] = (500, 1000, 2000, 4000),
    n_queries: int = 10,
    buffer_pages: int = 64,
    io_ms: float = 1.0,
    seed: int = 11,
) -> Tuple[Headers, Rows]:
    """Workload cost per representation and table size.

    The paper fixes histogram buckets at 5 and discrete points at 25 so the
    two approximations have equal accuracy (see Figure 4), then scales the
    table.  Discrete-25 records are several times larger, so they overflow
    the (fixed-size) buffer pool earlier and rise more steeply — the
    paper's qualitative result.  Symbolic costs sit just below the
    histogram's.

    The paper's 2008 testbed was disk-bound; in this reproduction the disk
    is simulated, so the reported ``*_cost`` series charges each physical
    page read ``io_ms`` milliseconds (default 1 ms, a sequential page read
    on a 2008-era disk) on top of measured CPU time.  Raw CPU seconds and
    page-read counts are reported alongside.
    """
    queries = generate_range_queries(n_queries, seed=seed + 1)
    rows: Rows = []
    for n in tuple_counts:
        readings = generate_readings(n, seed=seed)
        row: List[float] = [n]
        for representation, size in _REPRESENTATIONS:
            db = _build_database(readings, representation, size, buffer_pages)
            elapsed, reads, _ = _run_range_workload(db, queries)
            cost = elapsed + reads * io_ms / 1000.0
            row.extend([cost, elapsed, reads])
        rows.append(row)
    headers = [
        "tuples",
        "symbolic_cost",
        "symbolic_cpu_s",
        "symbolic_io",
        "hist5_cost",
        "hist5_cpu_s",
        "hist5_io",
        "disc25_cost",
        "disc25_cpu_s",
        "disc25_io",
    ]
    return headers, rows


# ---------------------------------------------------------------------------
# Figure 6 — Overhead of histories
# ---------------------------------------------------------------------------


def _history_workload(n: int, use_history: bool, seed: int) -> Tuple[float, float]:
    """(join seconds, project seconds) for one configuration.

    The paper's queries: joins over range queries (floors and products of
    historically dependent pdfs) and projections of the resulting
    correlated data (collapsing the 2-D pdfs).  Both selections read the
    same base table, so every rid-matched pair of the join shares a common
    ancestor and the ``value``-comparison must repair that shared ancestry
    — precisely the work that is skipped (incorrectly) when histories are
    off.
    """
    from ..engine.executor import Filter, HashJoin, RelationScan

    config = ModelConfig(use_history=use_history)
    readings = generate_readings(n, seed=seed)
    base = load_readings_relation(readings, representation="discrete", size=4)
    store = base.store

    # The timed join phase includes the two range selections feeding it:
    # the paper's "joins over range queries" are end-to-end query times.
    start = time.perf_counter()
    r1 = select(base, And([Comparison("value", ">", 20.0), Comparison("value", "<", 70.0)]), config)
    r2 = select(base, And([Comparison("value", ">", 40.0), Comparison("value", "<", 90.0)]), config)
    a = prefix_attrs(r1, "a")
    b = prefix_attrs(r2, "b")
    join_plan = HashJoin(
        RelationScan(a),
        RelationScan(b),
        "a.rid",
        "b.rid",
        Comparison("a.rid", "=", col("b.rid")),
        store,
        config,
    )
    value_plan = Filter(
        join_plan, Comparison("a.value", "<=", col("b.value")), store, config
    )
    joined = a.derived(value_plan.output_schema)
    for t in value_plan:
        joined.add_tuple(t, acquire=False)
    join_time = time.perf_counter() - start

    # Projection of the correlated result: collapse the 2-D value pdfs down
    # to a.value (the paper's "triggering a collapse of the 2D pdfs").
    start = time.perf_counter()
    project(joined, ["a.rid", "a.value"], config, aggressive=True)
    project_time = time.perf_counter() - start
    return join_time, project_time


def fig6_history_overhead(
    tuple_counts: Sequence[int] = (100, 200, 300, 400, 500),
    seed: int = 23,
    repeats: int = 3,
) -> Tuple[Headers, Rows]:
    """Join and projection runtimes with and without history maintenance.

    The paper reports a 5-20% overhead for correctness; ignoring histories
    is faster but yields wrong answers (Figure 3).  Each configuration runs
    ``repeats`` times and the minimum is reported (timing-noise control).
    """

    def best(n: int, use_history: bool) -> Tuple[float, float]:
        samples = [
            _history_workload(n, use_history=use_history, seed=seed)
            for _ in range(repeats)
        ]
        return min(s[0] for s in samples), min(s[1] for s in samples)

    rows: Rows = []
    for n in tuple_counts:
        join_with, project_with = best(n, True)
        join_without, project_without = best(n, False)
        overhead = (
            (join_with + project_with) / (join_without + project_without) - 1.0
            if (join_without + project_without) > 0
            else 0.0
        )
        rows.append(
            [n, join_with, join_without, project_with, project_without, overhead * 100.0]
        )
    headers = [
        "tuples",
        "join_hist_s",
        "join_nohist_s",
        "proj_hist_s",
        "proj_nohist_s",
        "overhead_pct",
    ]
    return headers, rows
