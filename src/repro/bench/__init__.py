"""Benchmark harness: the paper's figures as runnable experiments."""

from .figures import fig4_accuracy, fig5_discretized_performance, fig6_history_overhead
from .reporting import format_table, print_figure

__all__ = [
    "fig4_accuracy",
    "fig5_discretized_performance",
    "fig6_history_overhead",
    "format_table",
    "print_figure",
]
