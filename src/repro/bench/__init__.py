"""Benchmark harness: the paper's figures as runnable experiments."""

from .figures import fig4_accuracy, fig5_discretized_performance, fig6_history_overhead
from .protocol import cold_start, pdf_cache_stats, warm_start
from .reporting import format_table, print_cache_stats, print_figure

__all__ = [
    "fig4_accuracy",
    "fig5_discretized_performance",
    "fig6_history_overhead",
    "format_table",
    "print_figure",
    "print_cache_stats",
    "cold_start",
    "warm_start",
    "pdf_cache_stats",
]
