"""Cold/warm measurement protocol shared by every benchmark.

A *cold* run measures the steady disk-bound regime the paper reports:
nothing survives from previous queries, so every page is fetched through
the buffer pool and every pdf operation is recomputed.  A *warm* run keeps
cached pages and memoised pdf-op results but zeroes the counters, so hit
rates and page reads reflect only the measured work.

All benchmarks (``benchmarks/bench_*.py``) and the figure experiments in
:mod:`repro.bench.figures` go through these two helpers so the reset
sequence — ``BufferPool.clear()`` + ``BufferPool.reset_stats()`` +
``PDF_OP_CACHE.reset()`` — stays uniform.
"""

from __future__ import annotations

from typing import Dict

from ..core.operations import PDF_OP_CACHE

__all__ = ["cold_start", "warm_start", "pdf_cache_stats"]


def cold_start(db) -> None:
    """Reset ``db`` to a cold state: empty buffer pool, zeroed counters,
    empty pdf-op cache.  Dirty pages are flushed first, never lost."""
    db.catalog.pool.clear()
    db.catalog.pool.reset_stats()
    PDF_OP_CACHE.reset()


def warm_start(db) -> None:
    """Zero the I/O and cache counters but keep cached pages and memoised
    pdf-op results, so the measured run reports warm-cache hit rates."""
    db.catalog.pool.reset_stats()
    PDF_OP_CACHE.hits = 0
    PDF_OP_CACHE.misses = 0


def pdf_cache_stats() -> Dict[str, float]:
    """Snapshot of the process-wide pdf-op cache counters."""
    return PDF_OP_CACHE.stats()
