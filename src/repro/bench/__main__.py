"""CLI: regenerate the paper's figures.

::

    python -m repro.bench fig4          # accuracy vs sample size
    python -m repro.bench fig5          # performance of discretized pdfs
    python -m repro.bench fig6          # overhead of histories
    python -m repro.bench all --quick   # everything, smaller parameters
"""

from __future__ import annotations

import argparse

from .figures import fig4_accuracy, fig5_discretized_performance, fig6_history_overhead
from .protocol import pdf_cache_stats
from .reporting import print_cache_stats, print_figure


def main() -> None:
    parser = argparse.ArgumentParser(description="Regenerate the paper's figures")
    parser.add_argument("figure", choices=["fig4", "fig5", "fig6", "all"])
    parser.add_argument(
        "--quick", action="store_true", help="smaller parameters for a fast run"
    )
    args = parser.parse_args()

    if args.figure in ("fig4", "all"):
        if args.quick:
            headers, rows = fig4_accuracy(
                sample_sizes=(2, 5, 10, 25), n_pdfs=40, n_queries=40
            )
        else:
            headers, rows = fig4_accuracy()
        print_figure("Figure 4: Accuracy vs Sample Size", headers, rows)

    if args.figure in ("fig5", "all"):
        if args.quick:
            headers, rows = fig5_discretized_performance(
                tuple_counts=(200, 400, 800), n_queries=4
            )
        else:
            headers, rows = fig5_discretized_performance()
        print_figure("Figure 5: Performance of Discretized PDFs", headers, rows)
        print_cache_stats(pdf_cache_stats())

    if args.figure in ("fig6", "all"):
        if args.quick:
            headers, rows = fig6_history_overhead(tuple_counts=(50, 100, 150))
        else:
            headers, rows = fig6_history_overhead()
        print_figure("Figure 6: Overhead of Histories", headers, rows)
        print_cache_stats(pdf_cache_stats())


if __name__ == "__main__":
    main()
