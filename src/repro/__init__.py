"""repro — Database Support for Probabilistic Attributes and Tuples.

A from-scratch reproduction of Singh, Mayfield, Shah, Prabhakar, Hambrusch,
Neville, Cheng (ICDE 2008): a probabilistic database model that handles both
continuous and discrete uncertainty natively, at attribute and tuple level,
closed under possible worlds semantics.

Layers (bottom-up):

* :mod:`repro.pdf` — distributions: symbolic continuous/discrete families,
  histograms, discrete sampling, symbolic floors, joint pdfs.
* :mod:`repro.core` — the paper's model: probabilistic schemas with
  dependency sets, partial pdfs, histories, and the relational operators;
  plus a brute-force possible-worlds reference engine.
* :mod:`repro.engine` — the DBMS substrate standing in for PostgreSQL:
  page-based storage with buffer management and I/O accounting, an
  iterator-model executor, B-tree and probability-threshold indexes, and a
  SQL dialect with uncertainty extensions.
* :mod:`repro.workloads` — the paper's synthetic workload generators.
* :mod:`repro.bench` — harness utilities that regenerate the paper's
  figures.

Quickstart::

    from repro import Database

    db = Database()
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    db.execute("INSERT INTO readings VALUES (1, GAUSSIAN(20, 5))")
    rows = db.execute("SELECT rid FROM readings WHERE value > 18").rows
"""

from . import core, pdf
from .core import (
    Column,
    Comparison,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    col,
    join,
    project,
    select,
    threshold_select,
)
from .engine.database import Database
from .errors import ReproError
from .pdf import (
    CategoricalPdf,
    DiscretePdf,
    GaussianPdf,
    HistogramPdf,
    JointDiscretePdf,
    JointGaussianPdf,
    UniformPdf,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "pdf",
    "core",
    "Database",
    "ReproError",
    # convenience re-exports
    "Column",
    "DataType",
    "ProbabilisticSchema",
    "ProbabilisticRelation",
    "ModelConfig",
    "Comparison",
    "col",
    "select",
    "project",
    "join",
    "threshold_select",
    "GaussianPdf",
    "UniformPdf",
    "DiscretePdf",
    "CategoricalPdf",
    "HistogramPdf",
    "JointDiscretePdf",
    "JointGaussianPdf",
]
