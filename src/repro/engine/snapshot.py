"""Database snapshots: save a whole database to one file and reopen it.

The snapshot is self-contained: the catalog (schemas, heap-file page lists,
index definitions), every page image, the history store (base pdfs with
reference counts and phantom flags), and the categorical label-interning
table all serialize into a single binary file.

Restoring rebuilds the database over an in-memory disk; secondary indexes
are rebuilt from the data (they are derived state).

Categorical labels are interned process-globally; a snapshot records its
label table and, on load, re-interns each label and verifies it receives
the same code.  Loading a snapshot into a process whose interning table
already conflicts (same code position, different label) raises — load
snapshots before creating new categorical data when mixing sources.
"""

from __future__ import annotations

import io
import os
import struct
from typing import BinaryIO, Dict

from ..core.history import AncestorRef
from ..core.model import Column, DataType, ProbabilisticSchema
from ..errors import SerializationError
from ..pdf.discrete import _LABELS, label_code
from . import faults
from .storage.serialize import decode_pdf, encode_pdf

__all__ = [
    "save_database",
    "load_database",
    "write_snapshot",
    "read_snapshot",
    "encode_schema",
    "decode_schema",
]

_MAGIC = b"RPDB"
_VERSION = 5


def _w_str(f: BinaryIO, s: str) -> None:
    raw = s.encode("utf-8")
    f.write(struct.pack("<I", len(raw)))
    f.write(raw)


def _r_str(f: BinaryIO) -> str:
    (n,) = struct.unpack("<I", f.read(4))
    return f.read(n).decode("utf-8")


def _w_bytes(f: BinaryIO, data: bytes) -> None:
    f.write(struct.pack("<Q", len(data)))
    f.write(data)


def _r_bytes(f: BinaryIO) -> bytes:
    (n,) = struct.unpack("<Q", f.read(8))
    return f.read(n)


def _w_schema(f: BinaryIO, schema: ProbabilisticSchema) -> None:
    f.write(struct.pack("<H", len(schema.columns)))
    for column in schema.columns:
        _w_str(f, column.name)
        _w_str(f, column.dtype.value)
    f.write(struct.pack("<H", len(schema.dependency)))
    for dep in schema.dependency:
        attrs = sorted(dep)
        f.write(struct.pack("<H", len(attrs)))
        for a in attrs:
            _w_str(f, a)


def _r_schema(f: BinaryIO) -> ProbabilisticSchema:
    (n_cols,) = struct.unpack("<H", f.read(2))
    columns = []
    for _ in range(n_cols):
        name = _r_str(f)
        dtype = DataType(_r_str(f))
        columns.append(Column(name, dtype))
    (n_deps,) = struct.unpack("<H", f.read(2))
    dependency = []
    for _ in range(n_deps):
        (k,) = struct.unpack("<H", f.read(2))
        dependency.append({_r_str(f) for _ in range(k)})
    return ProbabilisticSchema(columns, dependency)


def encode_schema(schema: ProbabilisticSchema) -> bytes:
    """A probabilistic schema as self-contained bytes (WAL record payload)."""
    buf = io.BytesIO()
    _w_schema(buf, schema)
    return buf.getvalue()


def decode_schema(data: bytes) -> ProbabilisticSchema:
    return _r_schema(io.BytesIO(data))


def save_database(db, path: str) -> None:
    """Serialize a database to ``path`` via write-temp-then-atomic-rename.

    The snapshot is first written (and fsynced) to ``path + ".tmp"`` and
    only then moved over ``path`` with :func:`os.replace`, so a crash at
    any point leaves either the old snapshot or the new one — never a
    torn in-between.
    """
    buf = io.BytesIO()
    write_snapshot(db, buf)
    tmp = path + ".tmp"
    with open(tmp, "wb") as f:
        faults.torn_write("snapshot.write.torn", f, buf.getvalue())
        f.flush()
        os.fsync(f.fileno())
    faults.reach("snapshot.rename.before")
    os.replace(tmp, path)
    faults.reach("snapshot.rename.after")


def write_snapshot(db, f: BinaryIO) -> None:
    """Serialize a :class:`~repro.engine.database.Database` to a stream."""
    catalog = db.catalog
    catalog.pool.flush_all()
    f.write(_MAGIC)
    f.write(struct.pack("<I", _VERSION))

    # Label interning table (order defines the codes).
    f.write(struct.pack("<I", len(_LABELS)))
    for label in _LABELS:
        _w_str(f, label)

    # History store.
    store = catalog.store
    entries = store._entries  # snapshotting is a friend of the store
    f.write(struct.pack("<q", store._next_tuple_id))
    f.write(struct.pack("<I", len(entries)))
    for ref, entry in entries.items():
        f.write(struct.pack("<q", ref.tuple_id))
        attrs = sorted(ref.attrs)
        f.write(struct.pack("<H", len(attrs)))
        for a in attrs:
            _w_str(f, a)
        f.write(struct.pack("<qB", entry.refcount, 1 if entry.alive else 0))
        _w_bytes(f, encode_pdf(entry.pdf))

    # Pages (from the flushed disk).
    disk = catalog.pool.disk
    page_images: Dict[int, bytes] = {}
    for table in catalog.tables.values():
        for page_id in table.heap.page_ids:
            page_images[page_id] = bytes(disk.read_page(page_id))
    f.write(struct.pack("<I", len(page_images)))
    for page_id in sorted(page_images):
        f.write(struct.pack("<q", page_id))
        _w_bytes(f, page_images[page_id])

    # Tables.
    f.write(struct.pack("<I", len(catalog.tables)))
    for table in catalog.tables.values():
        _w_str(f, table.name)
        _w_schema(f, table.schema)
        f.write(struct.pack("<I", len(table.heap.page_ids)))
        for page_id in table.heap.page_ids:
            jumbo = page_id in table.heap._jumbo_pages
            f.write(struct.pack("<qB", page_id, 1 if jumbo else 0))
        f.write(struct.pack("<q", len(table.heap)))
        # Index definitions (rebuilt from data on load).
        f.write(struct.pack("<H", len(table.btrees)))
        for attr in table.btrees:
            _w_str(f, attr)
        f.write(struct.pack("<H", len(table.ptis)))
        for attr in table.ptis:
            _w_str(f, attr)
        f.write(struct.pack("<H", len(table.spatials)))
        for attrs, index in table.spatials.items():
            f.write(struct.pack("<H", len(attrs)))
            for attr in attrs:
                _w_str(f, attr)
            f.write(struct.pack("<d", index.cell_size))


def load_database(path: str, buffer_capacity: int = 256, config=None):
    """Rebuild a database from a snapshot file."""
    with open(path, "rb") as f:
        return read_snapshot(f, buffer_capacity=buffer_capacity, config=config)


def read_snapshot(f: BinaryIO, buffer_capacity: int = 256, config=None):
    """Rebuild a database from an open snapshot stream."""
    from ..core.model import DEFAULT_CONFIG
    from .database import Database
    from .storage.disk import MemoryDisk

    if f.read(4) != _MAGIC:
        raise SerializationError("stream is not a repro database snapshot")
    (version,) = struct.unpack("<I", f.read(4))
    if version != _VERSION:
        raise SerializationError(
            f"snapshot version {version} != supported {_VERSION}"
        )

    # Re-intern labels and verify code stability.
    (n_labels,) = struct.unpack("<I", f.read(4))
    for expected_code in range(n_labels):
        label = _r_str(f)
        code = int(label_code(label))
        if code != expected_code:
            raise SerializationError(
                f"label {label!r} interned at code {code}, snapshot expects "
                f"{expected_code}; load snapshots before creating new "
                "categorical data"
            )

    db = Database(
        disk=MemoryDisk(),
        buffer_capacity=buffer_capacity,
        config=config or DEFAULT_CONFIG,
    )
    catalog = db.catalog
    store = catalog.store

    # History store.
    (next_tuple_id,) = struct.unpack("<q", f.read(8))
    store._next_tuple_id = next_tuple_id
    (n_entries,) = struct.unpack("<I", f.read(4))
    for _ in range(n_entries):
        (tuple_id,) = struct.unpack("<q", f.read(8))
        (k,) = struct.unpack("<H", f.read(2))
        attrs = frozenset(_r_str(f) for _ in range(k))
        refcount, alive = struct.unpack("<qB", f.read(9))
        pdf, _ = decode_pdf(_r_bytes(f))
        ref = AncestorRef(tuple_id, attrs)
        from ..core.history import _Entry

        store._entries[ref] = _Entry(pdf=pdf, refcount=refcount, alive=bool(alive))
    store._rebuild_by_tuple()

    # Pages, written straight onto the fresh disk with matching ids.
    disk = catalog.pool.disk
    (n_pages,) = struct.unpack("<I", f.read(4))
    page_map: Dict[int, bytes] = {}
    max_page_id = -1
    for _ in range(n_pages):
        (page_id,) = struct.unpack("<q", f.read(8))
        page_map[page_id] = _r_bytes(f)
        max_page_id = max(max_page_id, page_id)
    if max_page_id >= 0:
        while disk.allocate() < max_page_id:
            pass
        for page_id, image in page_map.items():
            disk.write_page(page_id, image)

    # Tables.
    (n_tables,) = struct.unpack("<I", f.read(4))
    for _ in range(n_tables):
        name = _r_str(f)
        schema = _r_schema(f)
        table = catalog.create_table(name, schema)
        (n_table_pages,) = struct.unpack("<I", f.read(4))
        for _ in range(n_table_pages):
            page_id, jumbo = struct.unpack("<qB", f.read(9))
            table.heap.page_ids.append(page_id)
            table.heap._page_set.add(page_id)
            if jumbo:
                table.heap._jumbo_pages.add(page_id)
                catalog.pool._jumbo[page_id] = True
        (record_count,) = struct.unpack("<q", f.read(8))
        table.heap._record_count = record_count
        (n_btrees,) = struct.unpack("<H", f.read(2))
        btree_attrs = [_r_str(f) for _ in range(n_btrees)]
        (n_ptis,) = struct.unpack("<H", f.read(2))
        pti_attrs = [_r_str(f) for _ in range(n_ptis)]
        (n_spatials,) = struct.unpack("<H", f.read(2))
        spatial_defs = []
        for _ in range(n_spatials):
            (k,) = struct.unpack("<H", f.read(2))
            attrs = tuple(_r_str(f) for _ in range(k))
            (cell_size,) = struct.unpack("<d", f.read(8))
            spatial_defs.append((attrs, cell_size))
        for attr in btree_attrs:
            table.create_btree_index(attr)
        for attr in pti_attrs:
            table.create_pti_index(attr)
        for attrs, cell_size in spatial_defs:
            table.create_spatial_index(attrs, cell_size=cell_size)
        # Page synopses are derived state, rebuilt like the indexes.
        table.rebuild_synopses()
    return db
