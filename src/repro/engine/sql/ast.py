"""AST node definitions for the SQL dialect.

The dialect is classic SQL plus the uncertainty extensions the paper's
Orion prototype added to PostgreSQL:

* ``UNCERTAIN`` column modifier and table-level ``DEPENDENCY (a, b)``
  clauses declaring joint dependency sets,
* distribution literals in ``INSERT`` (``GAUSSIAN(20, 5)``,
  ``DISCRETE(0:0.1, 1:0.9)``, ``HISTOGRAM(0,10,20 ; 0.3,0.7)``, ...),
* ``PROB(<predicate>) >= p`` threshold conditions in ``WHERE``,
* distribution-valued aggregates (``SUM``, ``MIN``, ``MAX``, ``COUNT``)
  and ``EXPECTED(col)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple, Union

from ...pdf.base import Pdf

__all__ = [
    "Statement",
    "ColumnDef",
    "CreateTable",
    "CreateTableAs",
    "DropTable",
    "CreateIndex",
    "Insert",
    "Delete",
    "Update",
    "Select",
    "Explain",
    "Begin",
    "Commit",
    "Rollback",
    "TableRef",
    "ColumnExpr",
    "LiteralExpr",
    "PdfLiteral",
    "CompareExpr",
    "IsNullExpr",
    "ProbExpr",
    "AndExpr",
    "OrExpr",
    "NotExpr",
    "SelectItem",
    "AggregateCall",
    "ScalarCall",
    "BoolExpr",
    "ValueExpr",
]


class Statement:
    """Base class of parsed statements."""


# -- DDL -------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    dtype: str  # "int" | "real" | "bool" | "text"
    uncertain: bool = False


@dataclass
class CreateTable(Statement):
    name: str
    columns: List[ColumnDef]
    dependencies: List[List[str]] = field(default_factory=list)


@dataclass
class DropTable(Statement):
    name: str


@dataclass
class CreateIndex(Statement):
    table: str
    columns: List[str]
    kind: str = "btree"  # btree | pti | spatial

    @property
    def column(self) -> str:
        return self.columns[0]

    @property
    def probabilistic(self) -> bool:
        return self.kind == "pti"


# -- expressions -----------------------------------------------------------------


class ValueExpr:
    """Base of scalar expressions (column refs and literals)."""


@dataclass
class ColumnExpr(ValueExpr):
    name: str
    qualifier: Optional[str] = None

    @property
    def display(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass
class LiteralExpr(ValueExpr):
    value: Union[int, float, str, bool, None]


@dataclass
class PdfLiteral(ValueExpr):
    """A distribution literal, already constructed as a Pdf."""

    pdf: Optional[Pdf]  # None encodes the NULL pdf
    source: str = ""


class BoolExpr:
    """Base of boolean (WHERE) expressions."""


@dataclass
class CompareExpr(BoolExpr):
    left: ValueExpr
    op: str
    right: ValueExpr


@dataclass
class IsNullExpr(BoolExpr):
    column: ColumnExpr
    negated: bool = False


@dataclass
class ProbExpr(BoolExpr):
    """``PROB(<inner predicate>) op threshold``.

    ``inner=None`` encodes ``PROB(*)`` — the tuple existence probability.
    """

    inner: Optional[BoolExpr]
    op: str
    threshold: float


@dataclass
class AndExpr(BoolExpr):
    parts: List[BoolExpr]


@dataclass
class OrExpr(BoolExpr):
    parts: List[BoolExpr]


@dataclass
class NotExpr(BoolExpr):
    inner: BoolExpr


# -- queries -----------------------------------------------------------------------


@dataclass
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass
class AggregateCall:
    func: str  # count | sum | expected | min | max
    column: Optional[ColumnExpr]  # None for COUNT(*)
    method: Optional[str] = None  # SUM(col, 'exact') etc.
    alias: Optional[str] = None


@dataclass
class ScalarCall:
    """A per-row scalarisation of a pdf column: MEAN / VARIANCE / MASS."""

    func: str  # mean | variance | mass
    column: ColumnExpr
    alias: Optional[str] = None


@dataclass
class SelectItem:
    """A column, ``*``, an aggregate call, or a per-row scalar call."""

    star: bool = False
    column: Optional[ColumnExpr] = None
    aggregate: Optional[AggregateCall] = None
    scalar: Optional[ScalarCall] = None
    alias: Optional[str] = None


@dataclass
class Select(Statement):
    items: List[SelectItem]
    tables: List[TableRef]
    where: Optional[BoolExpr] = None
    group_by: List[ColumnExpr] = field(default_factory=list)
    order_by: List[ColumnExpr] = field(default_factory=list)
    order_desc: bool = False
    #: ORDER BY PROB(*): rank tuples by existence probability (top-k).
    order_by_prob: bool = False
    limit: Optional[int] = None
    offset: int = 0
    distinct: bool = False


@dataclass
class Explain(Statement):
    query: Select
    #: EXPLAIN ANALYZE: run the query and annotate actual row counts
    analyze: bool = False


@dataclass
class Analyze(Statement):
    """ANALYZE [table]: collect planner statistics (all tables if omitted)."""

    table: Optional[str] = None


# -- DML -----------------------------------------------------------------------------


@dataclass
class Insert(Statement):
    table: str
    columns: Optional[List[str]]  # None = positional
    rows: List[List[ValueExpr]] = field(default_factory=list)


@dataclass
class Delete(Statement):
    table: str
    where: Optional[BoolExpr] = None


@dataclass
class Update(Statement):
    table: str
    assignments: List[Tuple[str, ValueExpr]]
    where: Optional[BoolExpr] = None


@dataclass
class CreateTableAs(Statement):
    name: str
    query: "Select"


# -- transactions ---------------------------------------------------------------------


@dataclass
class Begin(Statement):
    """BEGIN [TRANSACTION]: suspend autocommit until COMMIT/ROLLBACK."""


@dataclass
class Commit(Statement):
    """COMMIT: make the open transaction durable."""


@dataclass
class Rollback(Statement):
    """ROLLBACK: undo the open transaction."""
