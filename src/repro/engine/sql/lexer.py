"""Tokenizer for the SQL dialect.

Regex-driven, case-insensitive keywords, with positions preserved for error
messages.  Strings use single quotes with ``''`` escaping, comments run
from ``--`` to end of line.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List

from ...errors import SqlLexError

__all__ = ["Token", "tokenize", "KEYWORDS"]

KEYWORDS = {
    "CREATE", "TABLE", "DROP", "INDEX", "PROB", "SPATIAL", "ON",
    "INSERT", "INTO", "VALUES", "DELETE", "FROM",
    "UPDATE", "SET", "GROUP", "DISTINCT", "BETWEEN", "IN",
    "BEGIN", "COMMIT", "ROLLBACK", "TRANSACTION",
    "SELECT", "WHERE", "AND", "OR", "NOT", "AS",
    "ORDER", "BY", "ASC", "DESC", "LIMIT", "OFFSET", "EXPLAIN", "ANALYZE", "IS",
    "INT", "INTEGER", "REAL", "FLOAT", "DOUBLE", "BOOL", "BOOLEAN", "TEXT", "VARCHAR",
    "UNCERTAIN", "DEPENDENCY",
    "NULL", "TRUE", "FALSE",
    "COUNT", "SUM", "EXPECTED", "MIN", "MAX",
    "MEAN", "VARIANCE", "MASS",
}

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d*(?:[eE][+-]?\d+)?|\.\d+(?:[eE][+-]?\d+)?|\d+(?:[eE][+-]?\d+)?)
  | (?P<string>'(?:[^']|'')*')
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><=|>=|!=|<>|=|<|>)
  | (?P<punct>[(),;:.*\[\]+-])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str  # KEYWORD | NAME | NUMBER | STRING | OP | PUNCT | EOF
    value: str
    position: int

    def matches(self, kind: str, value: str = "") -> bool:
        if self.kind != kind:
            return False
        return not value or self.value.upper() == value.upper()


def tokenize(sql: str) -> List[Token]:
    """Tokenize a statement; raises :class:`SqlLexError` on junk."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlLexError(
                f"unexpected character {sql[pos]!r} at position {pos}", pos
            )
        kind = match.lastgroup
        text = match.group()
        if kind == "ws" or kind == "comment":
            pos = match.end()
            continue
        if kind == "name":
            upper = text.upper()
            token_kind = "KEYWORD" if upper in KEYWORDS else "NAME"
            tokens.append(Token(token_kind, text, pos))
        elif kind == "number":
            tokens.append(Token("NUMBER", text, pos))
        elif kind == "string":
            tokens.append(Token("STRING", text[1:-1].replace("''", "'"), pos))
        elif kind == "op":
            value = "!=" if text == "<>" else text
            tokens.append(Token("OP", value, pos))
        else:  # punct
            tokens.append(Token("PUNCT", text, pos))
        pos = match.end()
    tokens.append(Token("EOF", "", len(sql)))
    return tokens
