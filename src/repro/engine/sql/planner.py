"""Binder and planner: SQL ASTs to executor operator trees.

A deliberately small rule-based planner:

* single-table queries try a B+tree scan (certain range/equality conjunct
  on an indexed column) or a probability-threshold index scan (range
  conjuncts on a PTI-indexed uncertain column), falling back to a
  sequential scan; the full predicate is always re-applied by a Filter, so
  index choices affect only cost, never answers;
* two-table queries with a certain equi-join conjunct use a hash join;
  everything else builds left-deep nested-loop joins;
* ``PROB(...)`` terms must be top-level conjuncts and plan into
  ProbFilter / ThresholdFilter above the value-level plan.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ...core.model import (
    Column,
    DataType,
    ProbabilisticSchema,
)
from ...core.predicates import (
    And,
    Comparison,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
    col,
)
from ...errors import QueryError, SqlBindError
from ..catalog import Catalog
from ..executor import (
    AggSpec,
    Aggregate,
    BTreeScan,
    Distinct,
    Filter,
    GroupAggregate,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Operator,
    ProbFilter,
    Project,
    PtiScan,
    RenameOp,
    Scalarize,
    SeqScan,
    Sort,
    SortByProbability,
    SpatialScan,
    ThresholdFilter,
)
from ..executor import parallelize_plan, reset_run_stats
from ..storage.synopsis import ScanPruner
from . import ast

__all__ = ["plan_select", "execute_plan", "Binder"]


def execute_plan(plan: Operator, config) -> List:
    """Materialise a plan's rows, choosing the parallel, batch or scalar
    pipeline.

    ``batch_size <= 1`` deliberately bypasses ``plan.batches`` and runs the
    scalar Volcano protocol (``iter(plan)``): wrapping single tuples in
    :class:`TupleBatch` costs more than the kernels amortize (the 0.63x
    regression of BENCH_engine.json at batch size 1), and the scalar
    iterators are the reference implementation anyway.

    ``config.workers > 1`` (with the batch pipeline active) rewrites the
    plan for morsel-driven parallel execution first; ``workers=1`` leaves
    the plan untouched, so serial results are bitwise identical to the
    pre-parallel pipeline.
    """
    size = getattr(config, "batch_size", 1) or 1
    if size <= 1:
        return list(plan)
    workers = getattr(config, "workers", 1) or 1
    if workers > 1:
        reset_run_stats()
        plan = parallelize_plan(plan, config)
    return [t for batch in plan.batches(size) for t in batch.tuples]


_DTYPES = {
    "int": DataType.INT,
    "real": DataType.REAL,
    "bool": DataType.BOOL,
    "text": DataType.TEXT,
}


class Binder:
    """Resolves column references against the FROM clause bindings."""

    def __init__(self, catalog: Catalog, tables: Sequence[ast.TableRef]):
        if not tables:
            raise SqlBindError("FROM clause is empty")
        self.catalog = catalog
        self.tables = list(tables)
        bindings = [t.binding for t in self.tables]
        if len(set(b.lower() for b in bindings)) != len(bindings):
            raise SqlBindError(f"duplicate table bindings in FROM: {bindings}")
        self.qualify = len(self.tables) > 1
        # binding -> list of visible column names
        self._columns: Dict[str, List[str]] = {}
        for ref in self.tables:
            table = catalog.get_table(ref.name)
            self._columns[ref.binding.lower()] = list(table.schema.visible_attrs)

    def attr_name(self, binding: str, column: str) -> str:
        """The executor-visible attribute name for a bound column."""
        return f"{binding}.{column}" if self.qualify else column

    def resolve(self, expr: ast.ColumnExpr) -> str:
        if expr.qualifier is not None:
            key = expr.qualifier.lower()
            if key not in self._columns:
                raise SqlBindError(f"unknown table or alias {expr.qualifier!r}")
            if expr.name not in self._columns[key]:
                raise SqlBindError(
                    f"table {expr.qualifier!r} has no column {expr.name!r}"
                )
            binding = next(t.binding for t in self.tables if t.binding.lower() == key)
            return self.attr_name(binding, expr.name)
        owners = [
            t.binding
            for t in self.tables
            if expr.name in self._columns[t.binding.lower()]
        ]
        if not owners:
            raise SqlBindError(f"unknown column {expr.name!r}")
        if len(owners) > 1:
            raise SqlBindError(
                f"ambiguous column {expr.name!r}; qualify it with one of {owners}"
            )
        return self.attr_name(owners[0], expr.name)

    def all_columns(self) -> List[str]:
        out = []
        for ref in self.tables:
            for name in self._columns[ref.binding.lower()]:
                out.append(self.attr_name(ref.binding, name))
        return out


def build_schema(stmt: ast.CreateTable) -> ProbabilisticSchema:
    """Translate a CREATE TABLE AST into a probabilistic schema."""
    columns = [Column(c.name, _DTYPES[c.dtype]) for c in stmt.columns]
    names = {c.name for c in stmt.columns}
    dependency: List[set] = []
    grouped: set = set()
    for group in stmt.dependencies:
        unknown = [a for a in group if a not in names]
        if unknown:
            raise QueryError(f"DEPENDENCY references unknown columns {unknown}")
        dependency.append(set(group))
        grouped |= set(group)
    for c in stmt.columns:
        if c.uncertain and c.name not in grouped:
            dependency.append({c.name})
    return ProbabilisticSchema(columns, dependency)


# ---------------------------------------------------------------------------
# Predicate conversion
# ---------------------------------------------------------------------------


def _convert_operand(binder: Binder, expr: ast.ValueExpr):
    if isinstance(expr, ast.ColumnExpr):
        return ("column", binder.resolve(expr))
    if isinstance(expr, ast.LiteralExpr):
        return ("literal", expr.value)
    raise QueryError(f"unsupported operand {expr!r}")


_FLIP = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _finite(value: float) -> bool:
    return value not in (float("inf"), float("-inf"))


def convert_predicate(binder: Binder, expr: ast.BoolExpr) -> Predicate:
    """Translate a boolean AST (without PROB terms) into a core predicate."""
    if isinstance(expr, ast.CompareExpr):
        left = _convert_operand(binder, expr.left)
        right = _convert_operand(binder, expr.right)
        if left[0] == "column" and right[0] == "column":
            return Comparison(left[1], expr.op, col(right[1]))
        if left[0] == "column":
            return Comparison(left[1], expr.op, right[1])
        if right[0] == "column":
            return Comparison(right[1], _FLIP[expr.op], left[1])
        raise QueryError("comparison between two literals is not supported")
    if isinstance(expr, ast.IsNullExpr):
        attr = binder.resolve(expr.column)
        return IsNull(attr, negated=expr.negated)
    if isinstance(expr, ast.AndExpr):
        return And([convert_predicate(binder, p) for p in expr.parts])
    if isinstance(expr, ast.OrExpr):
        return Or([convert_predicate(binder, p) for p in expr.parts])
    if isinstance(expr, ast.NotExpr):
        return Not(convert_predicate(binder, expr.inner))
    if isinstance(expr, ast.ProbExpr):
        raise QueryError(
            "PROB(...) may only appear as a top-level AND-connected condition"
        )
    raise QueryError(f"unsupported boolean expression {expr!r}")


def _flatten_conjuncts(expr: ast.BoolExpr) -> List[ast.BoolExpr]:
    """Recursively flatten nested ANDs (BETWEEN desugars into one)."""
    if isinstance(expr, ast.AndExpr):
        out: List[ast.BoolExpr] = []
        for part in expr.parts:
            out.extend(_flatten_conjuncts(part))
        return out
    return [expr]


def split_where(
    where: Optional[ast.BoolExpr],
) -> Tuple[List[ast.BoolExpr], List[ast.ProbExpr]]:
    """Split WHERE into value-level conjuncts and PROB conjuncts."""
    if where is None:
        return [], []
    value_terms: List[ast.BoolExpr] = []
    prob_terms: List[ast.ProbExpr] = []
    for term in _flatten_conjuncts(where):
        if isinstance(term, ast.ProbExpr):
            prob_terms.append(term)
        else:
            value_terms.append(term)
    return value_terms, prob_terms


# ---------------------------------------------------------------------------
# Access path selection
# ---------------------------------------------------------------------------


def _comparison_bound(term: ast.BoolExpr, binder: Binder):
    """(attr, op, literal) for a column-vs-literal comparison, else None."""
    if not isinstance(term, ast.CompareExpr):
        return None
    left, right = term.left, term.right
    if isinstance(left, ast.ColumnExpr) and isinstance(right, ast.LiteralExpr):
        if isinstance(right.value, (int, float)) and not isinstance(right.value, bool):
            return binder.resolve(left), term.op, float(right.value)
    if isinstance(right, ast.ColumnExpr) and isinstance(left, ast.LiteralExpr):
        if isinstance(left.value, (int, float)) and not isinstance(left.value, bool):
            return binder.resolve(right), _FLIP[term.op], float(left.value)
    return None


def _range_of(terms: List[ast.BoolExpr], binder: Binder, attr: str):
    """The [lo, hi] interval implied by the conjuncts for one attribute."""
    lo, hi = float("-inf"), float("inf")
    found = False
    for term in terms:
        bound = _comparison_bound(term, binder)
        if bound is None or bound[0] != attr:
            continue
        _, op, value = bound
        if op in (">", ">="):
            lo = max(lo, value)
            found = True
        elif op in ("<", "<="):
            hi = min(hi, value)
            found = True
        elif op == "=":
            lo, hi = max(lo, value), min(hi, value)
            found = True
    return (lo, hi) if found else None


# Cost-model constants, in units of one sequential page read.
_COST_TUPLE = 0.05  # decode + predicate work per tuple in a sequential scan
_COST_PROBE = 2.0  # index descent / grid lookup
_COST_FETCH = 1.05  # per-candidate random record fetch through an index
#: Per-attribute range selectivity guess when the table has no statistics.
_DEFAULT_RANGE_SEL = 1.0 / 3.0


def _range_selectivity(table, attr: str, bounds: Tuple[float, float]) -> float:
    """Estimated fraction of rows with ``attr`` in ``bounds``."""
    stats = table.statistics
    if stats is not None:
        sel = stats.selectivity(attr, bounds[0], bounds[1])
        if sel is not None:
            return sel
    return _DEFAULT_RANGE_SEL


def _build_pruner(
    table,
    ref: ast.TableRef,
    binder: Binder,
    value_terms: List[ast.BoolExpr],
    prob_terms: List[ast.ProbExpr],
    config,
) -> Optional[ScanPruner]:
    """The :class:`ScanPruner` the WHERE conjuncts imply for one table.

    Range keys are the table's *bare* attribute names (page synopses and
    record prefixes know nothing about FROM-clause bindings), so range
    pruning also applies to the inputs of a join.  PROB-derived tests are
    single-table only.  Returns None when both pruning config flags are
    off.
    """
    if not (config.scan_pruning or config.lazy_decode):
        return None
    schema = table.schema
    certain_ranges: Dict[str, Tuple[float, float]] = {}
    uncertain_ranges: Dict[str, Tuple[float, float]] = {}

    def merge(attr: str, bounds: Tuple[float, float]) -> None:
        target = uncertain_ranges if schema.is_uncertain(attr) else certain_ranges
        old = target.get(attr)
        target[attr] = (
            bounds if old is None else (max(old[0], bounds[0]), min(old[1], bounds[1]))
        )

    for attr in schema.visible_attrs:
        bounds = _range_of(value_terms, binder, binder.attr_name(ref.binding, attr))
        if bounds is not None:
            merge(attr, bounds)

    attr_thresholds: Dict[str, List[Tuple[str, float]]] = {}
    exist_thresholds: List[Tuple[str, float]] = []
    if not binder.qualify:
        for prob in prob_terms:
            if prob.op not in (">", ">="):
                continue  # an upper mass bound cannot refute <, <=, =
            if prob.op == ">=" and prob.threshold <= 0.0:
                continue  # vacuously true; nothing to prune
            if prob.inner is None:
                exist_thresholds.append((prob.op, prob.threshold))
                continue
            # The dependency-set mass upper-bounds P(pred AND exists) for
            # every uncertain attribute the inner predicate touches.
            try:
                inner_attrs = convert_predicate(binder, prob.inner).attrs()
            except QueryError:
                inner_attrs = frozenset()
            for attr in inner_attrs:
                if schema.has_column(attr) and schema.is_uncertain(attr):
                    attr_thresholds.setdefault(attr, []).append(
                        (prob.op, prob.threshold)
                    )
            # Each comparison conjunct of the inner predicate is individually
            # necessary for P(inner) > 0, so its range prunes like a value
            # conjunct (same support-hull caveat as the PTI).
            inner_terms = _flatten_conjuncts(prob.inner)
            for attr in {
                b[0]
                for t in inner_terms
                if (b := _comparison_bound(t, binder)) is not None
            }:
                bounds = _range_of(inner_terms, binder, attr)
                if bounds is not None and schema.has_column(attr):
                    merge(attr, bounds)
    return ScanPruner(
        certain_ranges,
        uncertain_ranges,
        attr_thresholds,
        exist_thresholds,
        prune_pages=config.scan_pruning,
        lazy=config.lazy_decode,
    )


def _seq_estimate(table, rows: int, pruner: Optional[ScanPruner]) -> float:
    """Estimated output rows of a (possibly lazily pruned) sequential scan."""
    if pruner is None or not pruner.lazy:
        return float(rows)
    est = float(rows)
    for ranges in (pruner.certain_ranges, pruner.uncertain_ranges):
        for attr, bounds in ranges.items():
            est *= _range_selectivity(table, attr, bounds)
    return est


def choose_scan(
    catalog: Catalog,
    ref: ast.TableRef,
    binder: Binder,
    value_terms: List[ast.BoolExpr],
    prob_terms: List[ast.ProbExpr],
) -> Operator:
    """Pick the cheapest available access path for one table.

    Without statistics the choice is rule-based, in the historical priority
    spatial > B+tree > PTI > sequential.  After ``ANALYZE`` the planner
    costs every applicable path and takes the minimum.  All candidates
    re-apply the full predicate above the scan, so the choice affects cost,
    never answers.
    """
    table = catalog.get_table(ref.name)
    config = catalog.config
    pruner = _build_pruner(table, ref, binder, value_terms, prob_terms, config)
    rows = len(table.heap)
    pages = table.heap.num_pages

    # Applicable index paths, as (cost, scan), in rule-based priority order.
    candidates: List[Tuple[float, Operator]] = []
    if not binder.qualify:
        # Spatial index over a joint dependency set: needs a finite range on
        # every indexed dimension.
        for attrs in table.spatials:
            windows = []
            for attr in attrs:
                bounds = _range_of(value_terms, binder, attr)
                if bounds is None or not all(map(_finite, bounds)):
                    break
                windows.append(bounds)
            else:
                est = float(rows)
                for attr, window in zip(attrs, windows):
                    est *= _range_selectivity(table, attr, window)
                spatial = SpatialScan(table, attrs, windows, columnar=config.columnar)
                spatial.est_rows = est
                candidates.append((_COST_PROBE + est * _COST_FETCH, spatial))
        # B+tree on a certain column
        for attr in table.btrees:
            bounds = _range_of(value_terms, binder, attr)
            if bounds is None:
                continue
            lo, hi = bounds
            est = rows * _range_selectivity(table, attr, bounds)
            btree = BTreeScan(
                table,
                attr,
                lo=None if lo == float("-inf") else lo,
                hi=None if hi == float("inf") else hi,
                columnar=config.columnar,
            )
            btree.est_rows = est
            candidates.append((_COST_PROBE + est * _COST_FETCH, btree))
        # PTI on an uncertain column: value-range conjuncts prune at
        # threshold 0; a PROB term over the same attribute tightens it.
        for attr in table.ptis:
            bounds = _range_of(value_terms, binder, attr)
            threshold = 0.0
            if bounds is None:
                for prob in prob_terms:
                    if prob.inner is None or prob.op not in (">", ">="):
                        continue
                    inner_terms = (
                        prob.inner.parts
                        if isinstance(prob.inner, ast.AndExpr)
                        else [prob.inner]
                    )
                    inner_bounds = _range_of(list(inner_terms), binder, attr)
                    if inner_bounds is not None and all(
                        (b := _comparison_bound(term, binder)) is not None
                        and b[0] == attr
                        for term in inner_terms
                    ):
                        bounds = inner_bounds
                        threshold = prob.threshold
                        break
            if bounds is not None:
                lo, hi = bounds
                if lo != float("-inf") or hi != float("inf"):
                    # The index can count its own candidates exactly, but
                    # that walk is O(entries) — only pay it when the
                    # cost-based path will actually use the number.
                    frac = (
                        table.ptis[attr].selectivity(lo, hi, threshold)
                        if table.statistics is not None
                        else _DEFAULT_RANGE_SEL
                    )
                    est = rows * frac
                    pti = PtiScan(table, attr, lo, hi, threshold, columnar=config.columnar)
                    pti.est_rows = est
                    candidates.append((_COST_PROBE + est * _COST_FETCH, pti))

    seq = SeqScan(table, pruner, columnar=config.columnar)
    seq.est_rows = _seq_estimate(table, rows, pruner)
    seq_cost = pages + rows * _COST_TUPLE

    if table.statistics is None:
        # Rule-based: first applicable index path, else sequential.
        scan = candidates[0][1] if candidates else seq
    else:
        candidates.append((seq_cost, seq))
        _, scan = min(candidates, key=lambda c: c[0])

    if binder.qualify:
        prefix = ref.binding
        mapping = {
            name: f"{prefix}.{name}"
            for name in list(table.schema.visible_attrs) + sorted(table.schema.phantom_attrs)
        }
        scan = RenameOp(scan, mapping)
    return scan


# ---------------------------------------------------------------------------
# SELECT planning
# ---------------------------------------------------------------------------


def plan_select(catalog: Catalog, stmt: ast.Select) -> Operator:
    """Build the operator tree for a SELECT statement."""
    binder = Binder(catalog, stmt.tables)
    value_terms, prob_terms = split_where(stmt.where)
    config = catalog.config
    store = catalog.store

    scans = [
        choose_scan(catalog, ref, binder, value_terms, prob_terms)
        for ref in stmt.tables
    ]

    # Conjuncts touching only certain attributes run first (cheap Case 1
    # filtering); uncertain conjuncts run last so certain join keys are not
    # needlessly absorbed into merged dependency sets.
    uncertain_attrs = set()
    for scan in scans:
        uncertain_attrs |= set(scan.output_schema.uncertain_attrs)
    certain_preds: List[Predicate] = []
    uncertain_preds: List[Predicate] = []
    for term in value_terms:
        pred = convert_predicate(binder, term)
        if pred.attrs() & uncertain_attrs:
            uncertain_preds.append(pred)
        else:
            certain_preds.append(pred)

    def _conjoin(preds: List[Predicate]) -> Predicate:
        if not preds:
            return TruePredicate()
        return preds[0] if len(preds) == 1 else And(preds)

    certain_pred = _conjoin(certain_preds)
    uncertain_pred = _conjoin(uncertain_preds)

    if len(scans) == 1:
        plan = scans[0]
        if certain_preds:
            if isinstance(plan, SeqScan) and plan.pruner is not None:
                # Lazy decoding evaluates the exact certain predicate on the
                # record prefix; the Filter above stays (it also serves the
                # unpruned code paths), but tuples it would reject never
                # decode their pdf payloads.
                plan.pruner.set_certain_predicate(certain_pred)
            plan = Filter(plan, certain_pred, store, config)
    elif (
        len(scans) == 2
        and (keys := _equi_join_keys(binder, value_terms, scans)) is not None
        and _prefer_hash_join(catalog, stmt.tables)
    ):
        plan = HashJoin(
            scans[0], scans[1], keys[0], keys[1], certain_pred, store, config
        )
    else:
        plan = scans[0]
        for scan in scans[1:-1]:
            plan = NestedLoopJoin(plan, scan, TruePredicate(), store, config)
        plan = NestedLoopJoin(plan, scans[-1], certain_pred, store, config)
    if uncertain_preds:
        plan = Filter(plan, uncertain_pred, store, config)

    for prob in prob_terms:
        if prob.inner is None:
            plan = ThresholdFilter(plan, None, prob.op, prob.threshold, store, config)
        else:
            inner_pred = convert_predicate(binder, prob.inner)
            plan = ProbFilter(plan, inner_pred, prob.op, prob.threshold, store, config)

    plan = _plan_select_list(plan, binder, stmt, store, config)

    if stmt.distinct:
        if any(item.aggregate is not None for item in stmt.items) or stmt.group_by:
            raise QueryError("SELECT DISTINCT cannot be combined with aggregates")
        plan = Distinct(plan, store, config)

    if stmt.order_by_prob:
        plan = SortByProbability(plan, store, descending=stmt.order_desc, config=config)
    elif stmt.order_by:
        plan = Sort(
            plan,
            [binder.resolve(c) for c in stmt.order_by],
            stmt.order_desc,
            config=config,
        )
    if stmt.limit is not None:
        plan = Limit(plan, stmt.limit, offset=stmt.offset)
    _fill_estimates(plan)
    return plan


def _prefer_hash_join(catalog: Catalog, refs: Sequence[ast.TableRef]) -> bool:
    """Hash vs. nested-loop for a certain equi-join, by ANALYZE row counts.

    Without statistics on both sides the hash join is kept (the historical
    rule).  With them, a nested loop wins only when the inputs are so small
    that the per-pair predicate work undercuts the hash build + probe.
    """
    stats = [catalog.get_table(ref.name).statistics for ref in refs]
    if any(s is None for s in stats):
        return True
    left, right = (s.row_count for s in stats)
    hash_cost = left + right + 0.1 * max(left, right)
    nested_loop_cost = 0.25 * left * right
    return hash_cost <= nested_loop_cost


#: Operators whose output cardinality equals their (first) child's.  Filters
#: pass through too: range selectivity is already folded into the pruned scan
#: below them, and their remaining predicates are not estimated.
_PASS_THROUGH_EST = (
    Project,
    RenameOp,
    Scalarize,
    Sort,
    SortByProbability,
    Filter,
    ProbFilter,
    ThresholdFilter,
)


def _fill_estimates(op: Operator) -> None:
    """Propagate scan row estimates up the plan for EXPLAIN's ``est=``."""
    for child in op.children():
        _fill_estimates(child)
    if op.est_rows is not None:
        return
    kids = op.children()
    child_est = kids[0].est_rows if kids else None
    if isinstance(op, _PASS_THROUGH_EST) and child_est is not None:
        op.est_rows = child_est
    elif isinstance(op, Limit) and child_est is not None:
        op.est_rows = min(child_est, float(op.count))
    elif isinstance(op, HashJoin) and len(kids) == 2:
        left, right = kids[0].est_rows, kids[1].est_rows
        if left is not None and right is not None:
            # Equi-join estimate under a foreign-key-style assumption.
            op.est_rows = max(left, right)


def _equi_join_keys(
    binder: Binder, value_terms: List[ast.BoolExpr], scans: List[Operator]
) -> Optional[Tuple[str, str]]:
    """Certain equi-join keys (left_attr, right_attr) for a 2-table query."""
    left_schema, right_schema = scans[0].output_schema, scans[1].output_schema
    for term in value_terms:
        if not isinstance(term, ast.CompareExpr) or term.op != "=":
            continue
        if not (
            isinstance(term.left, ast.ColumnExpr)
            and isinstance(term.right, ast.ColumnExpr)
        ):
            continue
        a = binder.resolve(term.left)
        b = binder.resolve(term.right)
        for left_attr, right_attr in ((a, b), (b, a)):
            if (
                left_schema.has_column(left_attr)
                and not left_schema.is_uncertain(left_attr)
                and right_schema.has_column(right_attr)
                and not right_schema.is_uncertain(right_attr)
            ):
                return left_attr, right_attr
    return None


def _agg_specs(binder: Binder, items) -> List[AggSpec]:
    specs = []
    for item in items:
        call = item.aggregate
        attr = binder.resolve(call.column) if call.column is not None else None
        specs.append(
            AggSpec(call.func, attr, alias=call.alias, method=call.method or "auto")
        )
    return specs


def _plan_select_list(
    plan: Operator, binder: Binder, stmt: ast.Select, store, config
) -> Operator:
    aggregates = [item for item in stmt.items if item.aggregate is not None]
    plain = [item for item in stmt.items if item.aggregate is None]

    if stmt.group_by:
        group_attrs = [binder.resolve(c) for c in stmt.group_by]
        for item in plain:
            if item.star:
                raise QueryError("SELECT * cannot be combined with GROUP BY")
            resolved = binder.resolve(item.column)
            if resolved not in group_attrs:
                raise QueryError(
                    f"column {resolved!r} must appear in GROUP BY or an aggregate"
                )
        if not aggregates:
            raise QueryError("GROUP BY without aggregates; use SELECT DISTINCT")
        grouped = GroupAggregate(
            plan, group_attrs, _agg_specs(binder, aggregates), store, config
        )
        # Project to the SELECT-list order (group cols may be a subset).
        wanted = []
        for item in stmt.items:
            if item.aggregate is not None:
                spec_attr = (
                    binder.resolve(item.aggregate.column)
                    if item.aggregate.column is not None
                    else None
                )
                wanted.append(
                    AggSpec(
                        item.aggregate.func,
                        spec_attr,
                        alias=item.aggregate.alias,
                    ).output_name
                )
            else:
                wanted.append(binder.resolve(item.column))
        if list(grouped.output_schema.visible_attrs) != wanted:
            return Project(grouped, wanted, config)
        return grouped

    scalars = [item for item in stmt.items if item.scalar is not None]
    plain = [item for item in plain if item.scalar is None]
    if aggregates and scalars:
        raise QueryError(
            "cannot mix aggregates with per-row MEAN/VARIANCE/MASS calls"
        )
    if aggregates and any(not item.star for item in plain):
        raise QueryError("cannot mix aggregates with plain columns (no GROUP BY)")
    if aggregates and any(item.star for item in plain):
        raise QueryError("cannot mix aggregates with *")

    if aggregates:
        return Aggregate(plan, _agg_specs(binder, aggregates), store, config)

    scalar_names = {}
    if scalars:
        specs = []
        for item in scalars:
            call = item.scalar
            resolved = binder.resolve(call.column)
            name = call.alias or f"{call.func}_{resolved}".replace(".", "_")
            specs.append((call.func, resolved, name))
            scalar_names[id(item)] = name
        plan = Scalarize(plan, specs)

    if not scalars and all(item.star for item in stmt.items):
        return plan

    attrs = []
    renames = {}
    for item in stmt.items:
        if item.star:
            attrs.extend(a for a in binder.all_columns() if a not in attrs)
            continue
        if item.scalar is not None:
            attrs.append(scalar_names[id(item)])
            continue
        resolved = binder.resolve(item.column)
        if resolved in attrs:
            raise QueryError(f"column {resolved!r} selected twice")
        attrs.append(resolved)
        if item.alias:
            renames[resolved] = item.alias
    projected = Project(plan, attrs, config)
    if renames:
        return RenameOp(projected, renames)
    return projected
