"""Recursive-descent parser for the SQL dialect.

Grammar sketch (case-insensitive keywords)::

    statement   := create_table | drop_table | create_index
                 | insert | delete | select | EXPLAIN select
    create_table:= CREATE TABLE name '(' column_def (',' column_def)*
                   (',' DEPENDENCY '(' name (',' name)* ')')* ')'
    column_def  := name type [UNCERTAIN]
    create_index:= CREATE [PROB] INDEX ON name '(' name ')'
    insert      := INSERT INTO name ['(' names ')'] VALUES row (',' row)*
    row         := '(' value (',' value)* ')'
    value       := literal | pdf_literal | NULL
    select      := SELECT items FROM table_ref (',' table_ref)*
                   [WHERE bool] [ORDER BY cols [ASC|DESC]] [LIMIT n]
    bool        := and_expr (OR and_expr)*
    and_expr    := not_expr (AND not_expr)*
    not_expr    := NOT not_expr | primary
    primary     := '(' bool ')' | comparison
                 | PROB '(' bool | '*' ')' cmp number
    comparison  := operand cmp operand

Distribution literals::

    GAUSSIAN(20, 5)   UNIFORM(0, 10)   EXPONENTIAL(2)   TRIANGULAR(0,1,2)
    GAMMA(2, 1)       LOGNORMAL(0, 1)  BERNOULLI(0.5)   BINOMIAL(10, 0.3)
    POISSON(4)        GEOMETRIC(0.2)
    DISCRETE(0: 0.1, 1: 0.9)           CATEGORICAL('cat': 0.7, 'dog': 0.3)
    HISTOGRAM(0, 10, 20 ; 0.4, 0.6)
    JOINT_GAUSSIAN([0, 0], [[1, 0.5], [0.5, 1]])
    JOINT_DISCRETE((4, 5): 0.9, (2, 3): 0.1)
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ...errors import SqlParseError
from ...pdf import (
    BernoulliPdf,
    BetaPdf,
    BinomialPdf,
    CategoricalPdf,
    DiscretePdf,
    ExponentialPdf,
    GammaPdf,
    GaussianPdf,
    GeometricPdf,
    HistogramPdf,
    JointDiscretePdf,
    JointGaussianPdf,
    LognormalPdf,
    PoissonPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)
from . import ast
from .lexer import Token, tokenize

__all__ = ["parse"]

_TYPE_MAP = {
    "INT": "int",
    "INTEGER": "int",
    "REAL": "real",
    "FLOAT": "real",
    "DOUBLE": "real",
    "BOOL": "bool",
    "BOOLEAN": "bool",
    "TEXT": "text",
    "VARCHAR": "text",
}

_SIMPLE_PDFS: Dict[str, Tuple[type, int]] = {
    "GAUSSIAN": (GaussianPdf, 2),
    "GAUS": (GaussianPdf, 2),
    "UNIFORM": (UniformPdf, 2),
    "EXPONENTIAL": (ExponentialPdf, 1),
    "TRIANGULAR": (TriangularPdf, 3),
    "GAMMA": (GammaPdf, 2),
    "LOGNORMAL": (LognormalPdf, 2),
    "BETA": (BetaPdf, 2),
    "WEIBULL": (WeibullPdf, 2),
    "BERNOULLI": (BernoulliPdf, 1),
    "BINOMIAL": (BinomialPdf, 2),
    "POISSON": (PoissonPdf, 1),
    "GEOMETRIC": (GeometricPdf, 1),
}

_AGG_FUNCS = {"COUNT", "SUM", "EXPECTED", "MIN", "MAX"}
_SCALAR_FUNCS = {"MEAN", "VARIANCE", "MASS"}


class _Parser:
    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = tokenize(sql)
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self, ahead: int = 0) -> Token:
        return self.tokens[min(self.index + ahead, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.peek()
        if token.kind != "EOF":
            self.index += 1
        return token

    def error(self, message: str) -> SqlParseError:
        token = self.peek()
        return SqlParseError(f"{message} (near {token.value!r})", token.position)

    def accept(self, kind: str, value: str = "") -> Optional[Token]:
        if self.peek().matches(kind, value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str = "") -> Token:
        token = self.accept(kind, value)
        if token is None:
            expected = value or kind
            raise self.error(f"expected {expected}")
        return token

    def accept_keyword(self, *words: str) -> Optional[Token]:
        for word in words:
            if self.peek().matches("KEYWORD", word):
                return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        token = self.accept_keyword(word)
        if token is None:
            raise self.error(f"expected {word}")
        return token

    def expect_name(self) -> str:
        token = self.peek()
        if token.kind == "NAME":
            return self.advance().value
        raise self.error("expected identifier")

    def parse_number(self) -> float:
        sign = 1.0
        if self.accept("PUNCT", "-"):
            sign = -1.0
        elif self.accept("PUNCT", "+"):
            pass
        token = self.expect("NUMBER")
        return sign * float(token.value)

    def parse_int(self, what: str) -> int:
        """A number coerced to int; rejects non-finite lexemes like 1e999."""
        value = self.parse_number()
        if not math.isfinite(value):
            raise self.error(f"{what} must be a finite integer")
        return int(value)

    # -- entry ------------------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        if self.accept_keyword("BEGIN"):
            self.accept_keyword("TRANSACTION")
            return ast.Begin()
        if self.accept_keyword("COMMIT"):
            return ast.Commit()
        if self.accept_keyword("ROLLBACK"):
            return ast.Rollback()
        if self.accept_keyword("EXPLAIN"):
            analyze = self.accept_keyword("ANALYZE") is not None
            return ast.Explain(self.parse_select(), analyze=analyze)
        if self.accept_keyword("ANALYZE"):
            name = self.advance().value if self.peek().kind == "NAME" else None
            return ast.Analyze(name)
        if self.peek().matches("KEYWORD", "CREATE"):
            return self.parse_create()
        if self.peek().matches("KEYWORD", "DROP"):
            self.advance()
            self.expect_keyword("TABLE")
            return ast.DropTable(self.expect_name())
        if self.peek().matches("KEYWORD", "INSERT"):
            return self.parse_insert()
        if self.peek().matches("KEYWORD", "DELETE"):
            return self.parse_delete()
        if self.peek().matches("KEYWORD", "UPDATE"):
            return self.parse_update()
        if self.peek().matches("KEYWORD", "SELECT"):
            return self.parse_select()
        raise self.error("expected a statement")

    def parse(self) -> ast.Statement:
        statement = self.parse_statement()
        self.accept("PUNCT", ";")
        if self.peek().kind != "EOF":
            raise self.error("trailing input after statement")
        return statement

    # -- DDL ---------------------------------------------------------------------

    def parse_create(self) -> ast.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            # CREATE TABLE name AS SELECT ... | CREATE TABLE name (...)
            name = self.expect_name()
            if self.accept_keyword("AS"):
                return ast.CreateTableAs(name, self.parse_select())
            return self.parse_create_table_body(name)
        if self.accept_keyword("PROB"):
            kind = "pti"
        elif self.accept_keyword("SPATIAL"):
            kind = "spatial"
        else:
            kind = "btree"
        self.expect_keyword("INDEX")
        self.expect_keyword("ON")
        table = self.expect_name()
        self.expect("PUNCT", "(")
        columns = [self.expect_name()]
        while self.accept("PUNCT", ","):
            columns.append(self.expect_name())
        self.expect("PUNCT", ")")
        if kind != "spatial" and len(columns) != 1:
            raise self.error("only SPATIAL indexes take multiple columns")
        if kind == "spatial" and len(columns) < 2:
            raise self.error("SPATIAL indexes need at least two columns")
        return ast.CreateIndex(table, columns, kind)

    def parse_create_table_body(self, name: str) -> ast.CreateTable:
        self.expect("PUNCT", "(")
        columns: List[ast.ColumnDef] = []
        dependencies: List[List[str]] = []
        while True:
            if self.accept_keyword("DEPENDENCY"):
                self.expect("PUNCT", "(")
                group = [self.expect_name()]
                while self.accept("PUNCT", ","):
                    group.append(self.expect_name())
                self.expect("PUNCT", ")")
                dependencies.append(group)
            else:
                col_name = self.expect_name()
                type_token = self.peek()
                if type_token.kind != "KEYWORD" or type_token.value.upper() not in _TYPE_MAP:
                    raise self.error("expected a column type")
                self.advance()
                dtype = _TYPE_MAP[type_token.value.upper()]
                uncertain = bool(self.accept_keyword("UNCERTAIN"))
                columns.append(ast.ColumnDef(col_name, dtype, uncertain))
            if not self.accept("PUNCT", ","):
                break
        self.expect("PUNCT", ")")
        return ast.CreateTable(name, columns, dependencies)

    # -- DML -----------------------------------------------------------------------

    def parse_insert(self) -> ast.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.expect_name()
        columns: Optional[List[str]] = None
        if self.accept("PUNCT", "("):
            columns = [self.expect_name()]
            while self.accept("PUNCT", ","):
                columns.append(self.expect_name())
            self.expect("PUNCT", ")")
        self.expect_keyword("VALUES")
        rows = [self.parse_value_row()]
        while self.accept("PUNCT", ","):
            rows.append(self.parse_value_row())
        return ast.Insert(table, columns, rows)

    def parse_value_row(self) -> List[ast.ValueExpr]:
        self.expect("PUNCT", "(")
        values = [self.parse_insert_value()]
        while self.accept("PUNCT", ","):
            values.append(self.parse_insert_value())
        self.expect("PUNCT", ")")
        return values

    def parse_insert_value(self) -> ast.ValueExpr:
        token = self.peek()
        if token.kind == "KEYWORD" and token.value.upper() == "NULL":
            self.advance()
            return ast.LiteralExpr(None)
        if token.kind == "KEYWORD" and token.value.upper() in ("TRUE", "FALSE"):
            self.advance()
            return ast.LiteralExpr(token.value.upper() == "TRUE")
        if token.kind == "STRING":
            self.advance()
            return ast.LiteralExpr(token.value)
        if token.kind == "NAME" and token.value.upper() in _SIMPLE_PDFS or (
            token.kind == "NAME"
            and token.value.upper()
            in ("DISCRETE", "CATEGORICAL", "HISTOGRAM", "JOINT_GAUSSIAN", "JOINT_DISCRETE")
        ):
            return self.parse_pdf_literal()
        value = self.parse_number()
        # Check the lexeme before int(value): ``1e999`` parses to inf, and
        # int(inf) raises OverflowError.
        if "." not in token.value and "e" not in token.value.lower() and value == int(value):
            return ast.LiteralExpr(int(value))
        return ast.LiteralExpr(value)

    def parse_pdf_literal(self) -> ast.PdfLiteral:
        start = self.peek().position
        name = self.expect_name().upper()
        self.expect("PUNCT", "(")
        if name in _SIMPLE_PDFS:
            cls, arity = _SIMPLE_PDFS[name]
            args = [self.parse_number()]
            while self.accept("PUNCT", ","):
                args.append(self.parse_number())
            if len(args) != arity:
                raise self.error(f"{name} takes {arity} parameters, got {len(args)}")
            if cls is BinomialPdf:
                if not math.isfinite(args[0]):
                    raise self.error(f"{name} count must be a finite integer")
                args[0] = int(args[0])
            pdf = cls(*args)
        elif name == "DISCRETE":
            pairs = {}
            while True:
                value = self.parse_number()
                self.expect("PUNCT", ":")
                pairs[value] = self.parse_number()
                if not self.accept("PUNCT", ","):
                    break
            pdf = DiscretePdf(pairs)
        elif name == "CATEGORICAL":
            label_pairs = {}
            while True:
                label = self.expect("STRING").value
                self.expect("PUNCT", ":")
                label_pairs[label] = self.parse_number()
                if not self.accept("PUNCT", ","):
                    break
            pdf = CategoricalPdf(label_pairs)
        elif name == "HISTOGRAM":
            edges = [self.parse_number()]
            while self.accept("PUNCT", ","):
                edges.append(self.parse_number())
            self.expect("PUNCT", ";")
            masses = [self.parse_number()]
            while self.accept("PUNCT", ","):
                masses.append(self.parse_number())
            pdf = HistogramPdf(edges, masses)
        elif name == "JOINT_GAUSSIAN":
            mean = self.parse_bracket_list()
            self.expect("PUNCT", ",")
            self.expect("PUNCT", "[")
            rows = [self.parse_bracket_list()]
            while self.accept("PUNCT", ","):
                rows.append(self.parse_bracket_list())
            self.expect("PUNCT", "]")
            # scipy's multivariate_normal raises a bare ValueError on
            # non-finite parameters (e.g. a 1e999 literal); reject here so
            # any malformed SQL still surfaces as a parse error.
            if not all(math.isfinite(v) for v in mean) or not all(
                math.isfinite(v) for row in rows for v in row
            ):
                raise self.error(f"{name} parameters must be finite")
            attrs = [f"x{i}" for i in range(len(mean))]
            pdf = JointGaussianPdf(attrs, mean, rows)
        elif name == "JOINT_DISCRETE":
            table = {}
            width = None
            while True:
                self.expect("PUNCT", "(")
                key = [self.parse_number()]
                while self.accept("PUNCT", ","):
                    key.append(self.parse_number())
                self.expect("PUNCT", ")")
                self.expect("PUNCT", ":")
                prob = self.parse_number()
                if width is None:
                    width = len(key)
                elif len(key) != width:
                    raise self.error("JOINT_DISCRETE keys must have equal arity")
                table[tuple(key)] = prob
                if not self.accept("PUNCT", ","):
                    break
            attrs = [f"x{i}" for i in range(width or 1)]
            pdf = JointDiscretePdf(attrs, table)
        else:  # pragma: no cover - guarded by caller
            raise self.error(f"unknown distribution {name}")
        self.expect("PUNCT", ")")
        return ast.PdfLiteral(pdf, source=self.sql[start : self.peek().position])

    def parse_bracket_list(self) -> List[float]:
        self.expect("PUNCT", "[")
        values = [self.parse_number()]
        while self.accept("PUNCT", ","):
            values.append(self.parse_number())
        self.expect("PUNCT", "]")
        return values

    def parse_delete(self) -> ast.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.expect_name()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_bool()
        return ast.Delete(table, where)

    def parse_update(self) -> ast.Update:
        self.expect_keyword("UPDATE")
        table = self.expect_name()
        self.expect_keyword("SET")
        assignments = [self.parse_assignment()]
        while self.accept("PUNCT", ","):
            assignments.append(self.parse_assignment())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_bool()
        return ast.Update(table, assignments, where)

    def parse_assignment(self):
        column = self.expect_name()
        self.expect("OP", "=")
        return (column, self.parse_insert_value())

    # -- SELECT ------------------------------------------------------------------------

    def parse_select(self) -> ast.Select:
        self.expect_keyword("SELECT")
        distinct = bool(self.accept_keyword("DISTINCT"))
        items = [self.parse_select_item()]
        while self.accept("PUNCT", ","):
            items.append(self.parse_select_item())
        self.expect_keyword("FROM")
        tables = [self.parse_table_ref()]
        while self.accept("PUNCT", ","):
            tables.append(self.parse_table_ref())
        where = None
        if self.accept_keyword("WHERE"):
            where = self.parse_bool()
        group_by: List[ast.ColumnExpr] = []
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            group_by.append(self.parse_column_ref())
            while self.accept("PUNCT", ","):
                group_by.append(self.parse_column_ref())
        order_by: List[ast.ColumnExpr] = []
        order_desc = False
        order_by_prob = False
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            if self.accept_keyword("PROB"):
                self.expect("PUNCT", "(")
                self.expect("PUNCT", "*")
                self.expect("PUNCT", ")")
                order_by_prob = True
            else:
                order_by.append(self.parse_column_ref())
                while self.accept("PUNCT", ","):
                    order_by.append(self.parse_column_ref())
            if self.accept_keyword("DESC"):
                order_desc = True
            else:
                self.accept_keyword("ASC")
        limit = None
        offset = 0
        if self.accept_keyword("LIMIT"):
            limit = self.parse_int("LIMIT")
            if self.accept_keyword("OFFSET"):
                offset = self.parse_int("OFFSET")
        return ast.Select(
            items,
            tables,
            where=where,
            group_by=group_by,
            order_by=order_by,
            order_desc=order_desc,
            order_by_prob=order_by_prob,
            limit=limit,
            offset=offset,
            distinct=distinct,
        )

    def parse_select_item(self) -> ast.SelectItem:
        if self.accept("PUNCT", "*"):
            return ast.SelectItem(star=True)
        token = self.peek()
        if token.kind == "KEYWORD" and token.value.upper() in _AGG_FUNCS:
            call = self.parse_aggregate()
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_name()
            call.alias = alias
            return ast.SelectItem(aggregate=call, alias=alias)
        if token.kind == "KEYWORD" and token.value.upper() in _SCALAR_FUNCS:
            func = self.advance().value.lower()
            self.expect("PUNCT", "(")
            column = self.parse_column_ref()
            self.expect("PUNCT", ")")
            alias = None
            if self.accept_keyword("AS"):
                alias = self.expect_name()
            return ast.SelectItem(
                scalar=ast.ScalarCall(func, column, alias), alias=alias
            )
        column = self.parse_column_ref()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        return ast.SelectItem(column=column, alias=alias)

    def parse_aggregate(self) -> ast.AggregateCall:
        func = self.advance().value.lower()
        self.expect("PUNCT", "(")
        if func == "count":
            self.expect("PUNCT", "*")
            self.expect("PUNCT", ")")
            return ast.AggregateCall("count", None)
        column = self.parse_column_ref()
        method = None
        if self.accept("PUNCT", ","):
            method = self.expect("STRING").value
        self.expect("PUNCT", ")")
        return ast.AggregateCall(func, column, method)

    def parse_table_ref(self) -> ast.TableRef:
        name = self.expect_name()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.expect_name()
        elif self.peek().kind == "NAME":
            alias = self.advance().value
        return ast.TableRef(name, alias)

    def parse_column_ref(self) -> ast.ColumnExpr:
        first = self.expect_name()
        if self.accept("PUNCT", "."):
            return ast.ColumnExpr(self.expect_name(), qualifier=first)
        return ast.ColumnExpr(first)

    # -- boolean expressions ----------------------------------------------------------------

    def parse_bool(self) -> ast.BoolExpr:
        parts = [self.parse_and()]
        while self.accept_keyword("OR"):
            parts.append(self.parse_and())
        return parts[0] if len(parts) == 1 else ast.OrExpr(parts)

    def parse_and(self) -> ast.BoolExpr:
        parts = [self.parse_not()]
        while self.accept_keyword("AND"):
            parts.append(self.parse_not())
        return parts[0] if len(parts) == 1 else ast.AndExpr(parts)

    def parse_not(self) -> ast.BoolExpr:
        if self.accept_keyword("NOT"):
            return ast.NotExpr(self.parse_not())
        return self.parse_primary_bool()

    def parse_primary_bool(self) -> ast.BoolExpr:
        if self.accept_keyword("PROB"):
            self.expect("PUNCT", "(")
            if self.accept("PUNCT", "*"):
                inner: Optional[ast.BoolExpr] = None
            else:
                inner = self.parse_bool()
            self.expect("PUNCT", ")")
            op = self.expect("OP").value
            threshold = self.parse_number()
            return ast.ProbExpr(inner, op, threshold)
        if self.accept("PUNCT", "("):
            expr = self.parse_bool()
            self.expect("PUNCT", ")")
            return expr
        return self.parse_comparison()

    def parse_comparison(self) -> ast.BoolExpr:
        left = self.parse_operand()
        if self.accept_keyword("IS"):
            negated = bool(self.accept_keyword("NOT"))
            self.expect_keyword("NULL")
            if not isinstance(left, ast.ColumnExpr):
                raise self.error("IS NULL applies to a column")
            return ast.IsNullExpr(left, negated)
        if self.accept_keyword("BETWEEN"):
            lo = self.parse_operand()
            self.expect_keyword("AND")
            hi = self.parse_operand()
            return ast.AndExpr(
                [ast.CompareExpr(left, ">=", lo), ast.CompareExpr(left, "<=", hi)]
            )
        if self.accept_keyword("IN"):
            self.expect("PUNCT", "(")
            options = [self.parse_operand()]
            while self.accept("PUNCT", ","):
                options.append(self.parse_operand())
            self.expect("PUNCT", ")")
            parts = [ast.CompareExpr(left, "=", opt) for opt in options]
            return parts[0] if len(parts) == 1 else ast.OrExpr(parts)
        op = self.expect("OP").value
        right = self.parse_operand()
        return ast.CompareExpr(left, op, right)

    def parse_operand(self) -> ast.ValueExpr:
        token = self.peek()
        if token.kind == "NAME":
            return self.parse_column_ref()
        if token.kind == "STRING":
            self.advance()
            return ast.LiteralExpr(token.value)
        if token.kind == "KEYWORD" and token.value.upper() in ("TRUE", "FALSE"):
            self.advance()
            return ast.LiteralExpr(token.value.upper() == "TRUE")
        return ast.LiteralExpr(self.parse_number())


def parse(sql: str) -> ast.Statement:
    """Parse one SQL statement into its AST."""
    return _Parser(sql).parse()
