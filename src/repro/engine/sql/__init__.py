"""SQL front end: lexer, parser, and planner for the uncertainty dialect."""

from . import ast
from .lexer import Token, tokenize
from .parser import parse
from .planner import Binder, build_schema, convert_predicate, plan_select

__all__ = [
    "ast",
    "Token",
    "tokenize",
    "parse",
    "Binder",
    "build_schema",
    "convert_predicate",
    "plan_select",
]
