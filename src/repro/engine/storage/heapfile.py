"""Heap files: unordered collections of records across many pages.

A heap file owns a list of page ids in its buffer pool.  Inserts fill the
last non-full ordinary page, falling back to a new page; records larger
than a page's capacity get a dedicated jumbo page.  Records are addressed
by :class:`RID` (page id, slot) — the handles stored inside indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ...errors import StorageError
from .buffer import BufferPool
from .page import page_capacity

__all__ = ["RID", "HeapFile"]


@dataclass(frozen=True, order=True)
class RID:
    """Record identifier: (page id, slot number)."""

    page_id: int
    slot: int

    def __repr__(self) -> str:
        return f"RID({self.page_id}:{self.slot})"


class HeapFile:
    """An append-mostly record store over a buffer pool."""

    def __init__(self, pool: BufferPool, name: str = ""):
        self.pool = pool
        self.name = name
        self.page_ids: List[int] = []
        self._page_set: Set[int] = set()
        self._jumbo_pages: Set[int] = set()
        self._record_count = 0

    def __len__(self) -> int:
        return self._record_count

    @property
    def num_pages(self) -> int:
        return len(self.page_ids)

    # -- mutation -----------------------------------------------------------

    def insert(self, record: bytes) -> RID:
        """Store a record and return its RID."""
        capacity = page_capacity(self.pool.disk.page_size)
        if len(record) > capacity:
            page_id = self.pool.new_page(jumbo_record=record)
            self.page_ids.append(page_id)
            self._page_set.add(page_id)
            self._jumbo_pages.add(page_id)
            self._record_count += 1
            return RID(page_id, 0)

        # Try the most recently used ordinary page first.
        for page_id in reversed(self.page_ids[-2:]):
            if page_id in self._jumbo_pages:
                continue
            page = self.pool.get_page(page_id)
            if page.free_space() >= len(record):
                slot = page.insert(record)
                self._record_count += 1
                return RID(page_id, slot)
        page_id = self.pool.new_page()
        self.page_ids.append(page_id)
        self._page_set.add(page_id)
        page = self.pool.get_page(page_id)
        slot = page.insert(record)
        self._record_count += 1
        return RID(page_id, slot)

    def read(self, rid: RID) -> bytes:
        """Fetch a record by RID."""
        if rid.page_id not in self._page_set:
            raise StorageError(f"{rid!r} does not belong to heap file {self.name!r}")
        return self.pool.get_page(rid.page_id).read(rid.slot)

    def delete(self, rid: RID) -> None:
        """Delete a record; its page space is not reclaimed."""
        if rid.page_id not in self._page_set:
            raise StorageError(f"{rid!r} does not belong to heap file {self.name!r}")
        page = self.pool.get_page(rid.page_id)
        page.delete(rid.slot)
        self._record_count -= 1

    def read_run(self, page_id: int, slots: Sequence[int]) -> List[bytes]:
        """Fetch several records of one page with a single buffer-pool hit.

        The batch executor groups consecutive same-page RIDs into runs so
        that a page is pinned once per run instead of once per record.
        """
        if page_id not in self._page_set:
            raise StorageError(
                f"page {page_id} does not belong to heap file {self.name!r}"
            )
        page = self.pool.get_page(page_id)
        return [page.read(slot) for slot in slots]

    # -- scans ------------------------------------------------------------------

    def scan(self) -> Iterator[Tuple[RID, bytes]]:
        """Yield every live record in page order (the sequential scan)."""
        for page_id in self.page_ids:
            page = self.pool.get_page(page_id)
            for slot, record in page.records():
                yield RID(page_id, slot), record

    def scan_pages(
        self, page_ids: Optional[Sequence[int]] = None
    ) -> Iterator[List[Tuple[RID, bytes]]]:
        """Yield the live records one whole page at a time.

        Each yielded list is decoded from a single pinned page, so the page
        is fetched from the buffer pool exactly once per visit regardless of
        how many records it holds.  ``page_ids`` restricts the scan to a
        subset of the file's pages (in the order given) — the morsel-driven
        parallel executor hands each worker a page-range slice of
        ``self.page_ids`` so that the concatenation over workers equals the
        full scan.
        """
        if page_ids is None:
            page_ids = self.page_ids
        else:
            unknown = [p for p in page_ids if p not in self._page_set]
            if unknown:
                raise StorageError(
                    f"pages {unknown} do not belong to heap file {self.name!r}"
                )
        for page_id in page_ids:
            page = self.pool.get_page(page_id)
            yield [(RID(page_id, slot), record) for slot, record in page.records()]

    def scan_records(
        self, page_ids: Optional[Sequence[int]] = None
    ) -> Iterator[List[bytes]]:
        """Yield the live record payloads one whole page at a time.

        Like :meth:`scan_pages` but without materializing an :class:`RID`
        per record — the direct page-to-segment decode path only needs the
        bytes, and skipping the handle allocation keeps the per-record cost
        down to the decode itself.
        """
        if page_ids is None:
            page_ids = self.page_ids
        else:
            unknown = [p for p in page_ids if p not in self._page_set]
            if unknown:
                raise StorageError(
                    f"pages {unknown} do not belong to heap file {self.name!r}"
                )
        for page_id in page_ids:
            page = self.pool.get_page(page_id)
            yield [record for _slot, record in page.records()]
