"""Page synopses and the scan pruner: page-grain threshold pruning.

The paper's probability-threshold index keeps a ``[lo, hi]`` support hull
and mass bound per *tuple*; this module lifts the same idea to heap-file
*pages*.  Each page of a table carries a :class:`PageSynopsis`:

* per certain numeric attribute, the min/max of the stored values,
* per uncertain attribute, the union of the pdf support bounds and the
  page-max total mass (an upper bound on any tuple's existence
  probability through that attribute's dependency set),
* the number of live records and a page-max existence-probability bound.

Synopses are maintained incrementally on insert (bounds only widen) and
delete (only the live count shrinks — deletes never tighten bounds, which
keeps maintenance O(1) and strictly conservative), and rebuilt from record
prefixes after a snapshot load.

A :class:`ScanPruner` is the query-side counterpart: the ranges and
probability thresholds a plan's predicates imply for one table.  A page is
skipped only when its synopsis *proves* no stored tuple can contribute to
the answer; a tuple prefix is skipped only when the same tests fail on its
exact per-tuple summary.  Pruning therefore never changes answers — up to
the probability mass the support hull already clips, the identical caveat
the probability-threshold index documents (pdf ``support()`` bounds carry
"almost all" mass; the grid tail and ``mass_epsilon`` are matched so a
tuple whose support misses the query range is dropped by the selection
anyway).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...core.predicates import Predicate
from .serialize import DepSummary, TuplePrefix

__all__ = ["PageSynopsis", "ScanPruner"]

_INF = float("inf")

#: Sentinel bounds marking an attribute as unprunable on a page (a
#: non-numeric value was stored, so range tests cannot be trusted).
_UNBOUNDED = (-_INF, _INF)


class PageSynopsis:
    """Min/max + mass bounds for the live records of one heap-file page."""

    __slots__ = ("live", "certain", "uncertain", "max_exist_mass")

    def __init__(self) -> None:
        self.live = 0
        #: certain attr -> (lo, hi) over stored numeric values; the
        #: _UNBOUNDED sentinel disables pruning for that attribute.
        self.certain: Dict[str, Tuple[float, float]] = {}
        #: uncertain attr -> [lo, hi, max_mass] over non-NULL pdfs.
        self.uncertain: Dict[str, List[float]] = {}
        #: max over tuples of min-over-dependency-sets pdf mass — an upper
        #: bound for every tuple's existence probability on this page.
        self.max_exist_mass = 0.0

    # -- maintenance --------------------------------------------------------

    def add(self, certain: Dict[str, object], deps: List[DepSummary]) -> None:
        """Fold one inserted tuple (certain values + dep summaries) in."""
        self.live += 1
        for name, value in certain.items():
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                self.certain[name] = _UNBOUNDED
                continue
            v = float(value)
            entry = self.certain.get(name)
            if entry is None:
                self.certain[name] = (v, v)
            elif entry is not _UNBOUNDED:
                self.certain[name] = (min(entry[0], v), max(entry[1], v))
        exist = 1.0
        for summary in deps:
            if not summary.has_pdf:
                continue  # NULL pdf: tuple exists with certainty, no bounds
            exist = min(exist, summary.mass)
            for attr in summary.attrs:
                lo, hi = summary.support.get(attr, _UNBOUNDED)
                entry = self.uncertain.get(attr)
                if entry is None:
                    self.uncertain[attr] = [lo, hi, summary.mass]
                else:
                    entry[0] = min(entry[0], lo)
                    entry[1] = max(entry[1], hi)
                    entry[2] = max(entry[2], summary.mass)
        self.max_exist_mass = max(self.max_exist_mass, exist)

    def remove(self) -> None:
        """Account for one deleted record (bounds stay — conservative)."""
        if self.live > 0:
            self.live -= 1


def _threshold_excluded(op: str, threshold: float, bound: float) -> bool:
    """True when ``P op threshold`` is unsatisfiable given ``P <= bound``."""
    if op == ">=":
        return threshold > bound
    if op == ">":
        return threshold >= bound
    return False  # <, <=, = thresholds are not prunable by an upper bound


class ScanPruner:
    """The page- and tuple-level admission tests implied by a predicate set.

    Built by the planner for one table; consulted by ``SeqScan`` /
    ``Table.scan_batches``.  All tests are *necessary* conditions for a
    tuple to survive the plan's own filters, so skipping failures is sound:

    * ``certain_ranges`` — a conjunct pins attr into [lo, hi]; tuples with
      the value outside (or NULL, or missing) fail the Filter above.
    * ``uncertain_ranges`` — a value conjunct (or an eligible PROB-inner
      range) restricts attr to [lo, hi]; a pdf whose support misses the
      range retains at most the clipped tail mass and is dropped by the
      selection's ``mass_epsilon`` cut, and a NULL pdf is excluded by the
      selection outright.
    * ``attr_thresholds`` — ``PROB(pred on attr) >(=) p`` cannot hold when
      p exceeds the dependency set's total mass.
    * ``exist_thresholds`` — ``PROB(*) >(=) p`` cannot hold when p exceeds
      the min dependency-set mass (NULL pdfs count as mass 1).
    """

    __slots__ = (
        "certain_ranges",
        "uncertain_ranges",
        "attr_thresholds",
        "exist_thresholds",
        "certain_predicate",
        "prune_pages",
        "lazy",
        "_lazy_requested",
    )

    def __init__(
        self,
        certain_ranges: Optional[Dict[str, Tuple[float, float]]] = None,
        uncertain_ranges: Optional[Dict[str, Tuple[float, float]]] = None,
        attr_thresholds: Optional[Dict[str, List[Tuple[str, float]]]] = None,
        exist_thresholds: Optional[List[Tuple[str, float]]] = None,
        certain_predicate: Optional[Predicate] = None,
        prune_pages: bool = True,
        lazy: bool = True,
    ):
        self.certain_ranges = certain_ranges or {}
        self.uncertain_ranges = uncertain_ranges or {}
        self.attr_thresholds = attr_thresholds or {}
        self.exist_thresholds = exist_thresholds or []
        self.certain_predicate = certain_predicate
        self.prune_pages = prune_pages
        self._lazy_requested = lazy
        self._refresh_lazy()

    def _refresh_lazy(self) -> None:
        # Prefix-level tests only pay off when there is something to test.
        self.lazy = self._lazy_requested and (
            bool(self.certain_ranges)
            or bool(self.uncertain_ranges)
            or bool(self.attr_thresholds)
            or bool(self.exist_thresholds)
            or self.certain_predicate is not None
        )

    def set_certain_predicate(self, pred: Optional[Predicate]) -> None:
        """Install the exact residual predicate (planner, single-table)."""
        self.certain_predicate = pred
        self._refresh_lazy()

    def is_trivial(self) -> bool:
        """True when the pruner can never skip anything but empty pages."""
        return not (
            self.certain_ranges
            or self.uncertain_ranges
            or self.attr_thresholds
            or self.exist_thresholds
        )

    # -- page-level test ----------------------------------------------------

    def admits_page(self, syn: PageSynopsis) -> bool:
        """False only when no live record of the page can qualify."""
        if syn.live == 0:
            return False
        for attr, (lo, hi) in self.certain_ranges.items():
            entry = syn.certain.get(attr)
            if entry is None:
                return False  # every stored value was NULL (or none stored)
            if entry[0] > hi or entry[1] < lo:
                return False
        for attr, (lo, hi) in self.uncertain_ranges.items():
            entry = syn.uncertain.get(attr)
            if entry is None:
                return False  # every pdf touching attr was NULL
            if entry[0] > hi or entry[1] < lo:
                return False
        for attr, comps in self.attr_thresholds.items():
            entry = syn.uncertain.get(attr)
            if entry is None:
                return False
            for op, p in comps:
                if _threshold_excluded(op, p, entry[2]):
                    return False
        for op, p in self.exist_thresholds:
            if _threshold_excluded(op, p, syn.max_exist_mass):
                return False
        return True

    # -- tuple-level test (lazy decoding) -----------------------------------

    def admits_prefix(self, prefix: TuplePrefix) -> bool:
        """False only when the plan's own filters would drop the tuple."""
        pred = self.certain_predicate
        if pred is not None and pred.evaluate(prefix.certain) is not True:
            return False
        for attr, (lo, hi) in self.certain_ranges.items():
            value = prefix.certain.get(attr)
            if value is None or isinstance(value, bool):
                if value is None:
                    return False  # NULL never satisfies a comparison
                continue
            if isinstance(value, (int, float)) and (value < lo or value > hi):
                return False
        if not (
            self.uncertain_ranges or self.attr_thresholds or self.exist_thresholds
        ):
            return True
        by_attr: Dict[str, DepSummary] = {}
        exist = 1.0
        for summary in prefix.deps:
            for attr in summary.attrs:
                by_attr[attr] = summary
            if summary.has_pdf:
                exist = min(exist, summary.mass)
        for attr, (lo, hi) in self.uncertain_ranges.items():
            summary = by_attr.get(attr)
            if summary is None or not summary.has_pdf:
                return False  # NULL pdf: the selection excludes the tuple
            sup = summary.support.get(attr)
            if sup is not None and (sup[0] > hi or sup[1] < lo):
                return False
        for attr, comps in self.attr_thresholds.items():
            summary = by_attr.get(attr)
            if summary is None or not summary.has_pdf:
                return False
            for op, p in comps:
                if _threshold_excluded(op, p, summary.mass):
                    return False
        for op, p in self.exist_thresholds:
            if _threshold_excluded(op, p, exist):
                return False
        return True

    def __repr__(self) -> str:
        parts = []
        if self.certain_ranges:
            parts.append(f"certain={sorted(self.certain_ranges)}")
        if self.uncertain_ranges:
            parts.append(f"uncertain={sorted(self.uncertain_ranges)}")
        if self.attr_thresholds:
            parts.append(f"prob={sorted(self.attr_thresholds)}")
        if self.exist_thresholds:
            parts.append("prob(*)")
        return f"ScanPruner({', '.join(parts) or 'empty'})"
