"""Binary serialization of certain values, pdfs, and probabilistic tuples.

The paper's storage argument (Figures 4/5) hinges on representation size:
a symbolic Gaussian costs two floats, a 5-bucket histogram six floats plus
bucket masses, a 25-point discrete sampling fifty floats — and bigger
records mean fewer tuples per page and more I/O.  This module defines the
on-page format that realises those trade-offs:

* values: 1-byte tag + fixed/variable payload,
* pdfs: 1-byte type tag + the symbolic parameters (or the explicit
  buckets/points for generic representations), recursively for composites
  (floored, product, joint),
* tuples: certain section + per-dependency-set pdf and lineage sections.

Everything round-trips exactly (floats are stored as IEEE 754 doubles).
"""

from __future__ import annotations

import struct
from typing import Dict, FrozenSet, List, Optional, Tuple

import numpy as np

from ...errors import SerializationError
from ...pdf.base import Pdf
from ...pdf.continuous import (
    BetaPdf,
    ExponentialPdf,
    GammaPdf,
    GaussianPdf,
    LognormalPdf,
    TriangularPdf,
    UniformPdf,
    WeibullPdf,
)
from ...pdf.discrete import (
    BernoulliPdf,
    BinomialPdf,
    CategoricalPdf,
    DiscretePdf,
    GeometricPdf,
    PoissonPdf,
)
from ...pdf.floors import FlooredPdf
from ...pdf.histogram import HistogramPdf
from ...pdf.joint import (
    ContinuousAxis,
    DiscreteAxis,
    JointDiscretePdf,
    JointGaussianPdf,
    JointGridPdf,
    ProductPdf,
)
from ...pdf.regions import Interval, IntervalSet
from ...core.history import AncestorLink, AncestorRef, Lineage
from ...core.model import ProbabilisticTuple

__all__ = [
    "encode_value",
    "decode_value",
    "encode_pdf",
    "decode_pdf",
    "encode_tuple",
    "decode_tuple",
    "decode_prefix",
    "dep_summary",
    "CertainColumnBuilder",
    "DepSummary",
    "TuplePrefix",
    "pdf_size",
]

# -- value tags ----------------------------------------------------------------

_V_NULL, _V_INT, _V_REAL, _V_BOOL, _V_TEXT = 0, 1, 2, 3, 4

# -- pdf tags -------------------------------------------------------------------

_P_NULL = 0
_P_GAUSSIAN = 10
_P_UNIFORM = 11
_P_EXPONENTIAL = 12
_P_TRIANGULAR = 13
_P_GAMMA = 14
_P_LOGNORMAL = 15
_P_BETA = 16
_P_WEIBULL = 17
_P_DISCRETE = 20
_P_CATEGORICAL = 21
_P_BERNOULLI = 22
_P_BINOMIAL = 23
_P_POISSON = 24
_P_GEOMETRIC = 25
_P_HISTOGRAM = 30
_P_FLOORED = 40
_P_JOINT_DISCRETE = 50
_P_JOINT_GAUSSIAN = 51
_P_JOINT_GRID = 52
_P_PRODUCT = 53


def _pack_str(s: str) -> bytes:
    raw = s.encode("utf-8")
    if len(raw) > 0xFFFF:
        raise SerializationError(f"string too long to serialize ({len(raw)} bytes)")
    return struct.pack("<H", len(raw)) + raw


def _unpack_str(buf: bytes, off: int) -> Tuple[str, int]:
    (n,) = struct.unpack_from("<H", buf, off)
    off += 2
    return buf[off : off + n].decode("utf-8"), off + n


def _pack_floats(values) -> bytes:
    arr = np.asarray(values, dtype="<f8")
    return struct.pack("<I", arr.size) + arr.tobytes()


def _unpack_floats(buf: bytes, off: int) -> Tuple[np.ndarray, int]:
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    arr = np.frombuffer(buf, dtype="<f8", count=n, offset=off).copy()
    return arr, off + 8 * n


# ---------------------------------------------------------------------------
# Certain values
# ---------------------------------------------------------------------------


def encode_value(value: object) -> bytes:
    """Encode one certain value (int / float / bool / str / None)."""
    if value is None:
        return bytes([_V_NULL])
    if isinstance(value, bool):
        return bytes([_V_BOOL, 1 if value else 0])
    if isinstance(value, int):
        return bytes([_V_INT]) + struct.pack("<q", value)
    if isinstance(value, float):
        return bytes([_V_REAL]) + struct.pack("<d", value)
    if isinstance(value, str):
        return bytes([_V_TEXT]) + _pack_str(value)
    raise SerializationError(f"cannot serialize value of type {type(value).__name__}")


def decode_value(buf: bytes, off: int = 0) -> Tuple[object, int]:
    """Decode one value, returning (value, next offset)."""
    tag = buf[off]
    off += 1
    if tag == _V_NULL:
        return None, off
    if tag == _V_BOOL:
        return bool(buf[off]), off + 1
    if tag == _V_INT:
        (v,) = struct.unpack_from("<q", buf, off)
        return v, off + 8
    if tag == _V_REAL:
        (v,) = struct.unpack_from("<d", buf, off)
        return v, off + 8
    if tag == _V_TEXT:
        return _unpack_str(buf, off)
    raise SerializationError(f"unknown value tag {tag}")


# ---------------------------------------------------------------------------
# Pdfs
# ---------------------------------------------------------------------------

_SYMBOLIC_CONTINUOUS = {
    GaussianPdf: (_P_GAUSSIAN, ("mean", "variance")),
    UniformPdf: (_P_UNIFORM, ("lo", "hi")),
    ExponentialPdf: (_P_EXPONENTIAL, ("rate",)),
    TriangularPdf: (_P_TRIANGULAR, ("lo", "mode", "hi")),
    GammaPdf: (_P_GAMMA, ("shape", "rate")),
    LognormalPdf: (_P_LOGNORMAL, ("mu", "sigma")),
    BetaPdf: (_P_BETA, ("alpha", "beta")),
    WeibullPdf: (_P_WEIBULL, ("shape", "scale")),
}

_SYMBOLIC_DISCRETE = {
    BernoulliPdf: (_P_BERNOULLI, ("p",)),
    BinomialPdf: (_P_BINOMIAL, ("n", "p")),
    PoissonPdf: (_P_POISSON, ("rate",)),
    GeometricPdf: (_P_GEOMETRIC, ("p",)),
}

_TAG_TO_SYMBOLIC = {
    tag: (cls, fields)
    for cls, (tag, fields) in {**_SYMBOLIC_CONTINUOUS, **_SYMBOLIC_DISCRETE}.items()
}


def _encode_interval_set(allowed: IntervalSet) -> bytes:
    parts = [struct.pack("<I", len(allowed.intervals))]
    for iv in allowed.intervals:
        flags = (1 if iv.closed_lo else 0) | (2 if iv.closed_hi else 0)
        parts.append(struct.pack("<ddB", iv.lo, iv.hi, flags))
    return b"".join(parts)


def _decode_interval_set(buf: bytes, off: int) -> Tuple[IntervalSet, int]:
    (n,) = struct.unpack_from("<I", buf, off)
    off += 4
    intervals = []
    for _ in range(n):
        lo, hi, flags = struct.unpack_from("<ddB", buf, off)
        off += 17
        intervals.append(Interval(lo, hi, bool(flags & 1), bool(flags & 2)))
    return IntervalSet(intervals), off


def encode_pdf(pdf: Optional[Pdf]) -> bytes:
    """Encode a pdf (or a NULL pdf) to bytes."""
    if pdf is None:
        return bytes([_P_NULL])

    cls = type(pdf)
    if cls in _SYMBOLIC_CONTINUOUS or cls in _SYMBOLIC_DISCRETE:
        tag, fields = (_SYMBOLIC_CONTINUOUS.get(cls) or _SYMBOLIC_DISCRETE[cls])
        params = pdf.params  # type: ignore[attr-defined]
        body = _pack_str(pdf.attrs[0]) + struct.pack(
            f"<{len(fields)}d", *(params[f] for f in fields)
        )
        return bytes([tag]) + body

    if isinstance(pdf, CategoricalPdf):
        parts = [bytes([_P_CATEGORICAL]), _pack_str(pdf.attrs[0])]
        items = list(pdf.label_items())
        parts.append(struct.pack("<I", len(items)))
        for label, p in items:
            parts.append(_pack_str(label) + struct.pack("<d", p))
        return b"".join(parts)

    if isinstance(pdf, DiscretePdf):
        values, probs = pdf.values, pdf.probs
        return (
            bytes([_P_DISCRETE])
            + _pack_str(pdf.attrs[0])
            + _pack_floats(values)
            + _pack_floats(probs)
        )

    if isinstance(pdf, HistogramPdf):
        return (
            bytes([_P_HISTOGRAM])
            + _pack_str(pdf.attrs[0])
            + _pack_floats(pdf.edges)
            + _pack_floats(pdf.masses)
        )

    if isinstance(pdf, FlooredPdf):
        return bytes([_P_FLOORED]) + _encode_interval_set(pdf.allowed) + encode_pdf(pdf.base)

    if isinstance(pdf, JointDiscretePdf):
        parts = [bytes([_P_JOINT_DISCRETE]), struct.pack("<H", len(pdf.attrs))]
        parts.extend(_pack_str(a) for a in pdf.attrs)
        items = list(pdf.items())
        parts.append(struct.pack("<I", len(items)))
        for key, p in items:
            parts.append(struct.pack(f"<{len(key)}d", *key) + struct.pack("<d", p))
        return b"".join(parts)

    if isinstance(pdf, JointGaussianPdf):
        parts = [bytes([_P_JOINT_GAUSSIAN]), struct.pack("<H", len(pdf.attrs))]
        parts.extend(_pack_str(a) for a in pdf.attrs)
        parts.append(_pack_floats(pdf.mean_vec))
        parts.append(_pack_floats(pdf.cov.reshape(-1)))
        return b"".join(parts)

    if isinstance(pdf, JointGridPdf):
        parts = [bytes([_P_JOINT_GRID]), struct.pack("<H", len(pdf.axes))]
        for axis in pdf.axes:
            if isinstance(axis, ContinuousAxis):
                parts.append(bytes([0]) + _pack_str(axis.attr) + _pack_floats(axis.edges))
            elif isinstance(axis, DiscreteAxis):
                parts.append(bytes([1]) + _pack_str(axis.attr) + _pack_floats(axis.values))
            else:  # pragma: no cover - defensive
                raise SerializationError(f"unknown axis type {type(axis).__name__}")
        parts.append(_pack_floats(pdf.masses.reshape(-1)))
        return b"".join(parts)

    if isinstance(pdf, ProductPdf):
        parts = [
            bytes([_P_PRODUCT]),
            struct.pack("<d", pdf.weight),
            struct.pack("<H", len(pdf.factors)),
        ]
        parts.extend(encode_pdf(f) for f in pdf.factors)
        return b"".join(parts)

    raise SerializationError(f"cannot serialize pdf of type {cls.__name__}")


def decode_pdf(buf: bytes, off: int = 0) -> Tuple[Optional[Pdf], int]:
    """Decode a pdf, returning (pdf_or_None, next offset)."""
    tag = buf[off]
    off += 1
    if tag == _P_NULL:
        return None, off

    if tag in _TAG_TO_SYMBOLIC:
        cls, fields = _TAG_TO_SYMBOLIC[tag]
        attr, off = _unpack_str(buf, off)
        values = struct.unpack_from(f"<{len(fields)}d", buf, off)
        off += 8 * len(fields)
        kwargs = dict(zip(fields, values))
        if cls is BinomialPdf:
            kwargs["n"] = int(kwargs["n"])
        return cls(attr=attr, **kwargs), off  # type: ignore[arg-type]

    if tag == _P_CATEGORICAL:
        attr, off = _unpack_str(buf, off)
        (n,) = struct.unpack_from("<I", buf, off)
        off += 4
        pairs: Dict[str, float] = {}
        for _ in range(n):
            label, off = _unpack_str(buf, off)
            (p,) = struct.unpack_from("<d", buf, off)
            off += 8
            pairs[label] = p
        return CategoricalPdf(pairs, attr=attr), off

    if tag == _P_DISCRETE:
        attr, off = _unpack_str(buf, off)
        values, off = _unpack_floats(buf, off)
        probs, off = _unpack_floats(buf, off)
        # Encoded values are already sorted/validated: take the fast path.
        return DiscretePdf._from_arrays(values, probs, attr), off

    if tag == _P_HISTOGRAM:
        attr, off = _unpack_str(buf, off)
        edges, off = _unpack_floats(buf, off)
        masses, off = _unpack_floats(buf, off)
        return HistogramPdf._from_arrays(edges, masses, attr), off

    if tag == _P_FLOORED:
        allowed, off = _decode_interval_set(buf, off)
        base, off = decode_pdf(buf, off)
        if base is None:
            raise SerializationError("floored pdf with NULL base")
        return FlooredPdf(base, allowed), off  # type: ignore[arg-type]

    if tag == _P_JOINT_DISCRETE:
        (k,) = struct.unpack_from("<H", buf, off)
        off += 2
        attrs = []
        for _ in range(k):
            a, off = _unpack_str(buf, off)
            attrs.append(a)
        (n,) = struct.unpack_from("<I", buf, off)
        off += 4
        table: Dict[Tuple[float, ...], float] = {}
        for _ in range(n):
            key = struct.unpack_from(f"<{k}d", buf, off)
            off += 8 * k
            (p,) = struct.unpack_from("<d", buf, off)
            off += 8
            table[key] = p
        return JointDiscretePdf(attrs, table), off

    if tag == _P_JOINT_GAUSSIAN:
        (k,) = struct.unpack_from("<H", buf, off)
        off += 2
        attrs = []
        for _ in range(k):
            a, off = _unpack_str(buf, off)
            attrs.append(a)
        mean, off = _unpack_floats(buf, off)
        cov_flat, off = _unpack_floats(buf, off)
        return JointGaussianPdf(attrs, mean, cov_flat.reshape(k, k)), off

    if tag == _P_JOINT_GRID:
        (k,) = struct.unpack_from("<H", buf, off)
        off += 2
        axes = []
        for _ in range(k):
            kind = buf[off]
            off += 1
            attr, off = _unpack_str(buf, off)
            data, off = _unpack_floats(buf, off)
            axes.append(
                ContinuousAxis(attr, data) if kind == 0 else DiscreteAxis(attr, data)
            )
        flat, off = _unpack_floats(buf, off)
        shape = tuple(a.size for a in axes)
        return JointGridPdf(tuple(axes), flat.reshape(shape)), off

    if tag == _P_PRODUCT:
        (weight,) = struct.unpack_from("<d", buf, off)
        off += 8
        (n,) = struct.unpack_from("<H", buf, off)
        off += 2
        factors = []
        for _ in range(n):
            f, off = decode_pdf(buf, off)
            if f is None:
                raise SerializationError("product pdf with NULL factor")
            factors.append(f)
        return ProductPdf(factors, weight=weight), off

    raise SerializationError(f"unknown pdf tag {tag}")


def pdf_size(pdf: Optional[Pdf]) -> int:
    """Serialized size in bytes (the storage-cost metric of Figure 5)."""
    return len(encode_pdf(pdf))


# ---------------------------------------------------------------------------
# Tuples
# ---------------------------------------------------------------------------


def _encode_lineage(lineage: Lineage) -> bytes:
    parts = [struct.pack("<H", len(lineage))]
    for link in sorted(lineage, key=lambda l: (l.ref.tuple_id, tuple(sorted(l.ref.attrs)))):
        parts.append(struct.pack("<q", link.ref.tuple_id))
        attrs = sorted(link.ref.attrs)
        parts.append(struct.pack("<H", len(attrs)))
        parts.extend(_pack_str(a) for a in attrs)
        parts.append(struct.pack("<H", len(link.mapping)))
        for base, current in link.mapping:
            parts.append(_pack_str(base) + _pack_str(current))
    return b"".join(parts)


def _decode_lineage(buf: bytes, off: int) -> Tuple[Lineage, int]:
    (n,) = struct.unpack_from("<H", buf, off)
    off += 2
    links = []
    for _ in range(n):
        (tuple_id,) = struct.unpack_from("<q", buf, off)
        off += 8
        (k,) = struct.unpack_from("<H", buf, off)
        off += 2
        attrs = []
        for _ in range(k):
            a, off = _unpack_str(buf, off)
            attrs.append(a)
        (m,) = struct.unpack_from("<H", buf, off)
        off += 2
        mapping = []
        for _ in range(m):
            base, off = _unpack_str(buf, off)
            current, off = _unpack_str(buf, off)
            mapping.append((base, current))
        links.append(AncestorLink(AncestorRef(tuple_id, frozenset(attrs)), tuple(mapping)))
    return frozenset(links), off


class DepSummary:
    """The cheap per-dependency-set summary stored ahead of the pdf payload.

    ``mass`` is the pdf's total probability mass (the tuple's existence
    probability through this set; 1.0 for complete pdfs) and ``support``
    maps each attribute of the set to the pdf's support bounds — the same
    ``[lo, hi]`` hull the probability-threshold index keys on.  ``has_pdf``
    is False for the NULL pdf (values unknown, tuple certainly exists), in
    which case mass/support are meaningless.
    """

    __slots__ = ("attrs", "has_pdf", "mass", "support")

    def __init__(
        self,
        attrs: FrozenSet[str],
        has_pdf: bool,
        mass: float,
        support: Dict[str, Tuple[float, float]],
    ):
        self.attrs = attrs
        self.has_pdf = has_pdf
        self.mass = mass
        self.support = support


def dep_summary(dep: FrozenSet[str], pdf: Optional[Pdf]) -> DepSummary:
    """Compute the prefix summary of one dependency set's pdf."""
    if pdf is None:
        return DepSummary(dep, False, 0.0, {})
    return DepSummary(dep, True, float(pdf.mass()), dict(pdf.support()))


class TuplePrefix:
    """The decoded fixed prefix of a stored tuple: everything but the pdfs.

    Holds the certain values and per-dependency-set summaries, plus the
    offsets of the undecoded pdf/lineage payloads so that :meth:`complete`
    can finish the decode for tuples that survive pruning.
    """

    __slots__ = ("buf", "tuple_id", "certain", "deps", "_payloads", "end")

    def __init__(self, buf, tuple_id, certain, deps, payloads, end):
        self.buf = buf
        self.tuple_id = tuple_id
        self.certain = certain
        self.deps = deps  # List[DepSummary]
        self._payloads = payloads  # List[(offset, length)] parallel to deps
        self.end = end

    def complete(self) -> ProbabilisticTuple:
        """Decode the pdf/lineage payloads and build the full tuple."""
        pdfs: Dict[FrozenSet[str], Optional[Pdf]] = {}
        lineage: Dict[FrozenSet[str], Lineage] = {}
        for summary, (off, _length) in zip(self.deps, self._payloads):
            pdf, off = decode_pdf(self.buf, off)
            lin, _ = _decode_lineage(self.buf, off)
            pdfs[summary.attrs] = pdf
            lineage[summary.attrs] = lin
        return ProbabilisticTuple(self.tuple_id, self.certain, pdfs, lineage)


def encode_tuple(t: ProbabilisticTuple, store_lineage: bool = True) -> bytes:
    """Encode a probabilistic tuple (certain values + pdfs + histories).

    The record is laid out as a cheap fixed prefix — tuple id, certain
    values, and a per-dependency-set (mass, support-bounds) summary —
    followed by the pdf/lineage payloads, each preceded by its byte length
    so :func:`decode_prefix` can skip payloads it does not need.

    ``store_lineage=False`` omits the history section — the storage half of
    the Figure 6 "without histories" baseline.
    """
    parts = [struct.pack("<q", t.tuple_id)]
    certain = sorted(t.certain.items())
    parts.append(struct.pack("<H", len(certain)))
    for name, value in certain:
        parts.append(_pack_str(name) + encode_value(value))
    deps = sorted(t.pdfs.items(), key=lambda kv: tuple(sorted(kv[0])))
    parts.append(struct.pack("<H", len(deps)))
    for dep, pdf in deps:
        attrs = sorted(dep)
        parts.append(struct.pack("<H", len(attrs)))
        parts.extend(_pack_str(a) for a in attrs)
        if pdf is None:
            parts.append(bytes([0]))
        else:
            summary = dep_summary(dep, pdf)
            sup = sorted(summary.support.items())
            parts.append(bytes([1]) + struct.pack("<dH", summary.mass, len(sup)))
            for name, (lo, hi) in sup:
                parts.append(_pack_str(name) + struct.pack("<dd", lo, hi))
        payload = encode_pdf(pdf)
        if store_lineage:
            payload += _encode_lineage(t.lineage.get(dep, frozenset()))
        else:
            payload += struct.pack("<H", 0)
        parts.append(struct.pack("<I", len(payload)))
        parts.append(payload)
    return b"".join(parts)


def _decode_common(buf: bytes, off: int):
    """Shared prefix walk: id, certain section, dep count."""
    (tuple_id,) = struct.unpack_from("<q", buf, off)
    off += 8
    (n_certain,) = struct.unpack_from("<H", buf, off)
    off += 2
    certain = {}
    for _ in range(n_certain):
        name, off = _unpack_str(buf, off)
        value, off = decode_value(buf, off)
        certain[name] = value
    (n_deps,) = struct.unpack_from("<H", buf, off)
    off += 2
    return tuple_id, certain, n_deps, off


def _decode_dep_header(buf: bytes, off: int):
    """One dep's attrs + summary + payload length; off lands on the payload."""
    (k,) = struct.unpack_from("<H", buf, off)
    off += 2
    attrs = []
    for _ in range(k):
        a, off = _unpack_str(buf, off)
        attrs.append(a)
    dep = frozenset(attrs)
    has_pdf = buf[off] != 0
    off += 1
    mass = 0.0
    support: Dict[str, Tuple[float, float]] = {}
    if has_pdf:
        mass, n_sup = struct.unpack_from("<dH", buf, off)
        off += 10
        for _ in range(n_sup):
            name, off = _unpack_str(buf, off)
            lo, hi = struct.unpack_from("<dd", buf, off)
            off += 16
            support[name] = (lo, hi)
    (payload_len,) = struct.unpack_from("<I", buf, off)
    off += 4
    return DepSummary(dep, has_pdf, mass, support), payload_len, off


def decode_tuple(buf: bytes, off: int = 0) -> Tuple[ProbabilisticTuple, int]:
    """Decode a probabilistic tuple, returning (tuple, next offset)."""
    tuple_id, certain, n_deps, off = _decode_common(buf, off)
    pdfs: Dict[FrozenSet[str], Optional[Pdf]] = {}
    lineage: Dict[FrozenSet[str], Lineage] = {}
    for _ in range(n_deps):
        summary, _payload_len, off = _decode_dep_header(buf, off)
        pdf, off = decode_pdf(buf, off)
        lin, off = _decode_lineage(buf, off)
        pdfs[summary.attrs] = pdf
        lineage[summary.attrs] = lin
    return ProbabilisticTuple(tuple_id, certain, pdfs, lineage), off


class CertainColumnBuilder:
    """Accumulates float64 certain-column vectors during a page decode walk.

    The direct page-to-segment path feeds every decoded record's certain
    dict through :meth:`add` while the bytes are hot, then :meth:`seed`
    installs the finished ``(values, null_mask)`` pairs and tuple-id vector
    into a :class:`~repro.core.columnar.ColumnarSegment`'s caches — exactly
    the arrays the segment's own lazy gather would build, so downstream
    consumers cannot tell the difference (and never pay the second walk
    over the tuple dicts).

    A non-numeric value permanently drops its attribute from the build;
    the segment's lazy ``certain_column`` then computes (and caches) the
    same ``None`` verdict on first access, keeping behavior identical.
    """

    __slots__ = ("attrs", "_vals", "_mask", "_ids")

    def __init__(self, attrs):
        self.attrs = list(attrs)
        self._vals: Dict[str, list] = {a: [] for a in self.attrs}
        self._mask: Dict[str, list] = {a: [] for a in self.attrs}
        self._ids: list = []

    def add(self, tuple_id: int, certain: Dict[str, object]) -> None:
        """Fold one decoded record's id and certain values into the columns."""
        self._ids.append(tuple_id)
        dropped = None
        for attr in self.attrs:
            v = certain.get(attr)
            if v is None:
                self._vals[attr].append(np.nan)
                self._mask[attr].append(True)
            elif isinstance(v, (int, float)):
                self._vals[attr].append(v)
                self._mask[attr].append(False)
            else:
                # non-numeric: this column stays on the tuple path
                if dropped is None:
                    dropped = []
                dropped.append(attr)
        if dropped:
            for attr in dropped:
                self.attrs.remove(attr)
                del self._vals[attr]
                del self._mask[attr]

    def rows(self) -> int:
        return len(self._ids)

    def seed(self, segment) -> None:
        """Install the accumulated vectors into a segment's column caches."""
        segment._tuple_ids = np.asarray(self._ids, dtype=np.int64)
        for attr in self.attrs:
            segment._certain[attr] = (
                np.asarray(self._vals[attr], dtype=float),
                np.asarray(self._mask[attr], dtype=bool),
            )


def decode_prefix(buf: bytes, off: int = 0) -> TuplePrefix:
    """Decode only the fixed prefix, skipping every pdf/lineage payload.

    This is the cheap half of lazy decoding: certain values and
    per-dependency-set mass/support summaries come out, the (much larger)
    pdf payloads stay undecoded until :meth:`TuplePrefix.complete`.
    """
    tuple_id, certain, n_deps, off = _decode_common(buf, off)
    deps = []
    payloads = []
    for _ in range(n_deps):
        summary, payload_len, off = _decode_dep_header(buf, off)
        deps.append(summary)
        payloads.append((off, payload_len))
        off += payload_len
    return TuplePrefix(buf, tuple_id, certain, deps, payloads, off)
