"""Buffer pool: LRU page cache between the executor and the disk.

Query cost in the paper's Figure 5 is I/O-bound: the discrete-25
representation stores ~5x more bytes per tuple than the histogram-5 one, so
scanning the same logical table touches proportionally more pages and, once
the working set exceeds the pool, proportionally more *physical* reads.
The pool exposes both logical and physical counters so benchmarks can
report each.

One coarse latch guards the frame table: the morsel-driven parallel
executor's scan workers share the pool, and the LRU bookkeeping
(``move_to_end`` racing ``popitem``) is not safe to interleave.  There are
still no pin counts — an operator holds a page only within one
``get_page`` call, and the page bytes themselves are read-only during
query execution.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Type

from ...errors import StorageError
from .disk import Disk, MemoryDisk
from .page import JumboPage, Page, PAGE_SIZE

__all__ = ["BufferPool", "BufferStats"]


@dataclass
class BufferStats:
    """Logical access counters (physical ones live on the disk)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    flushes: int = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.flushes = 0

    @property
    def logical_reads(self) -> int:
        return self.hits + self.misses


class BufferPool:
    """An LRU cache of :class:`Page` objects over a :class:`Disk`."""

    def __init__(self, disk: Optional[Disk] = None, capacity: int = 128):
        if capacity < 1:
            raise StorageError("buffer pool needs capacity >= 1")
        self.disk = disk if disk is not None else MemoryDisk()
        self.capacity = capacity
        self.stats = BufferStats()
        self._frames: "OrderedDict[int, Page]" = OrderedDict()
        self._jumbo: Dict[int, bool] = {}  # page_id -> decoded as JumboPage?
        self._latch = threading.RLock()

    def __getstate__(self):
        state = self.__dict__.copy()
        del state["_latch"]
        return state

    def __setstate__(self, state):
        self.__dict__.update(state)
        self._latch = threading.RLock()

    # -- page lifecycle ------------------------------------------------------

    def new_page(self, jumbo_record: Optional[bytes] = None) -> int:
        """Allocate a fresh page (ordinary, or jumbo for one big record)."""
        with self._latch:
            page_id = self.disk.allocate()
            if jumbo_record is None:
                page = Page(size=self.disk.page_size)
            else:
                page = JumboPage.for_record(jumbo_record, self.disk.page_size)
            page.dirty = True
            self._jumbo[page_id] = jumbo_record is not None
            self._admit(page_id, page)
            return page_id

    def get_page(self, page_id: int) -> Page:
        """Fetch a page, reading it from disk on a miss."""
        with self._latch:
            page = self._frames.get(page_id)
            if page is not None:
                self.stats.hits += 1
                self._frames.move_to_end(page_id)
                return page
            self.stats.misses += 1
            data = self.disk.read_page(page_id)
            cls: Type[Page] = JumboPage if self._jumbo.get(page_id, False) else Page
            page = cls(data=data)
            self._admit(page_id, page)
            return page

    def mark_dirty(self, page_id: int) -> None:
        with self._latch:
            page = self._frames.get(page_id)
            if page is not None:
                page.dirty = True

    def _admit(self, page_id: int, page: Page) -> None:
        while len(self._frames) >= self.capacity:
            victim_id, victim = self._frames.popitem(last=False)
            self.stats.evictions += 1
            if victim.dirty:
                self.disk.write_page(victim_id, bytes(victim.data))
                self.stats.flushes += 1
        self._frames[page_id] = page

    # -- durability -------------------------------------------------------------

    def flush_all(self) -> None:
        """Write every dirty cached page back to disk."""
        from .. import faults

        with self._latch:
            for page_id, page in self._frames.items():
                if page.dirty:
                    faults.reach("heap.page.write")
                    self.disk.write_page(page_id, bytes(page.data))
                    page.dirty = False
                    self.stats.flushes += 1

    def clear(self) -> None:
        """Flush and drop every cached frame (cold-cache benchmarks)."""
        with self._latch:
            self.flush_all()
            self._frames.clear()

    def reset_stats(self) -> None:
        self.stats.reset()
        self.disk.counters.reset()
