"""Disk managers: the physical layer beneath the buffer pool.

Two backends with the same interface:

* :class:`MemoryDisk` — pages live in a dict; "physical I/O" is counted but
  costs only a memcpy.  This is the default for tests and benchmarks — the
  paper's experiments measure *relative* I/O volume, which the counters
  capture exactly.
* :class:`FileDisk` — pages are appended to a real file (updates append a
  new version; :meth:`FileDisk.compact` rewrites).  Used by the persistence
  tests and available for workloads larger than memory.

Both count physical reads and writes in **page units**: a jumbo page of
``n`` x PAGE_SIZE bytes charges ``ceil(n)`` units, so oversized records pay
proportional I/O, as they would in a real system.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ...errors import StorageError
from .page import PAGE_SIZE

__all__ = ["IoCounters", "Disk", "MemoryDisk", "FileDisk"]


@dataclass
class IoCounters:
    """Physical I/O statistics, in PAGE_SIZE units."""

    reads: int = 0
    writes: int = 0

    def reset(self) -> None:
        self.reads = 0
        self.writes = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes


def _units(nbytes: int, page_size: int) -> int:
    return max(1, math.ceil(nbytes / page_size))


class Disk:
    """Interface of a page-addressed disk."""

    page_size: int
    counters: IoCounters

    def allocate(self) -> int:
        """Reserve a new page id (no I/O)."""
        raise NotImplementedError

    def read_page(self, page_id: int) -> bytearray:
        raise NotImplementedError

    def write_page(self, page_id: int, data: bytes) -> None:
        raise NotImplementedError

    def __contains__(self, page_id: int) -> bool:
        raise NotImplementedError


class MemoryDisk(Disk):
    """An in-memory page store with physical-I/O accounting."""

    def __init__(self, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.counters = IoCounters()
        self._pages: Dict[int, bytes] = {}
        self._next_id = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def read_page(self, page_id: int) -> bytearray:
        data = self._pages.get(page_id)
        if data is None:
            raise StorageError(f"page {page_id} was never written")
        self.counters.reads += _units(len(data), self.page_size)
        return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id >= self._next_id:
            raise StorageError(f"page {page_id} was not allocated")
        self.counters.writes += _units(len(data), self.page_size)
        self._pages[page_id] = bytes(data)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._pages

    @property
    def num_pages(self) -> int:
        return len(self._pages)

    @property
    def bytes_stored(self) -> int:
        return sum(len(p) for p in self._pages.values())


class FileDisk(Disk):
    """A file-backed page store (append-only with an in-memory page table).

    Every write appends the page image and updates the page table; the file
    grows until :meth:`compact` rewrites it with only the latest versions.
    """

    def __init__(self, path: str, page_size: int = PAGE_SIZE):
        self.page_size = page_size
        self.counters = IoCounters()
        self._path = path
        self._file = open(path, "a+b")
        self._table: Dict[int, Tuple[int, int]] = {}  # page_id -> (offset, length)
        self._next_id = 0

    def allocate(self) -> int:
        page_id = self._next_id
        self._next_id += 1
        return page_id

    def read_page(self, page_id: int) -> bytearray:
        entry = self._table.get(page_id)
        if entry is None:
            raise StorageError(f"page {page_id} was never written")
        offset, length = entry
        self._file.seek(offset)
        data = self._file.read(length)
        if len(data) != length:
            raise StorageError(f"short read for page {page_id}")
        self.counters.reads += _units(length, self.page_size)
        return bytearray(data)

    def write_page(self, page_id: int, data: bytes) -> None:
        if page_id >= self._next_id:
            raise StorageError(f"page {page_id} was not allocated")
        self._file.seek(0, os.SEEK_END)
        offset = self._file.tell()
        self._file.write(data)
        self._file.flush()
        self._table[page_id] = (offset, len(data))
        self.counters.writes += _units(len(data), self.page_size)

    def __contains__(self, page_id: int) -> bool:
        return page_id in self._table

    def compact(self) -> None:
        """Rewrite the file keeping only the latest page versions."""
        images = {pid: bytes(self.read_page(pid)) for pid in sorted(self._table)}
        self._file.close()
        self._file = open(self._path, "w+b")
        self._table.clear()
        for pid, data in images.items():
            offset = self._file.tell()
            self._file.write(data)
            self._table[pid] = (offset, len(data))
        self._file.flush()

    def close(self) -> None:
        self._file.close()

    def __enter__(self) -> "FileDisk":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
