"""Slotted pages.

A page is a fixed-size byte buffer with the classic slotted layout:

::

    +--------+----------------------+-------------+------------------+
    | header | slot directory  ->   |  free space |  <- record heap  |
    +--------+----------------------+-------------+------------------+

* header: number of slots (u16) and the offset where the record heap
  begins (u16, grows downward from the end of the page),
* slot directory: per slot, (record offset u16, record length u16);
  offset ``0xFFFF`` marks a deleted slot,
* records are appended at the end and never moved (no compaction within a
  page; :meth:`Page.free_space` accounts for the loss, and the heap file
  prefers pages with room).

Records larger than a standard page get a dedicated *jumbo* page sized to
fit; the buffer pool charges jumbo pages multiple I/O units.
"""

from __future__ import annotations

import struct
from typing import Iterator, List, Optional, Tuple

from ...errors import StorageError

__all__ = ["Page", "PAGE_SIZE", "page_capacity"]

#: Default page size in bytes; the I/O accounting unit.
PAGE_SIZE = 4096

_HEADER = struct.Struct("<HH")  # (num_slots, heap_start)
_SLOT = struct.Struct("<HH")  # (offset, length)
_DELETED = 0xFFFF


def page_capacity(page_size: int = PAGE_SIZE) -> int:
    """Largest record that fits in an empty page of ``page_size`` bytes."""
    return page_size - _HEADER.size - _SLOT.size


class Page:
    """One slotted page over a mutable byte buffer."""

    __slots__ = ("data", "dirty")

    def __init__(self, data: Optional[bytearray] = None, size: int = PAGE_SIZE):
        if data is None:
            data = bytearray(size)
            _HEADER.pack_into(data, 0, 0, size)
        self.data = data
        self.dirty = False

    @property
    def size(self) -> int:
        return len(self.data)

    # -- header helpers -----------------------------------------------------

    def _header(self) -> Tuple[int, int]:
        return _HEADER.unpack_from(self.data, 0)

    def _set_header(self, num_slots: int, heap_start: int) -> None:
        _HEADER.pack_into(self.data, 0, num_slots, heap_start)
        self.dirty = True

    @property
    def num_slots(self) -> int:
        return self._header()[0]

    def _slot(self, index: int) -> Tuple[int, int]:
        return _SLOT.unpack_from(self.data, _HEADER.size + index * _SLOT.size)

    def _set_slot(self, index: int, offset: int, length: int) -> None:
        _SLOT.pack_into(self.data, _HEADER.size + index * _SLOT.size, offset, length)
        self.dirty = True

    # -- record operations -------------------------------------------------------

    def free_space(self) -> int:
        """Bytes available for one more record (including its slot entry)."""
        num_slots, heap_start = self._header()
        directory_end = _HEADER.size + num_slots * _SLOT.size
        return max(heap_start - directory_end - _SLOT.size, 0)

    def insert(self, record: bytes) -> int:
        """Store a record, returning its slot number."""
        if len(record) > 0xFFFE:
            raise StorageError(
                f"record of {len(record)} bytes exceeds the slotted-page limit; "
                "use a jumbo page"
            )
        if len(record) > self.free_space():
            raise StorageError(
                f"record of {len(record)} bytes does not fit "
                f"({self.free_space()} bytes free)"
            )
        num_slots, heap_start = self._header()
        offset = heap_start - len(record)
        self.data[offset : offset + len(record)] = record
        self._set_slot(num_slots, offset, len(record))
        self._set_header(num_slots + 1, offset)
        return num_slots

    def read(self, slot: int) -> bytes:
        """Fetch the record stored in ``slot``."""
        if slot < 0 or slot >= self.num_slots:
            raise StorageError(f"slot {slot} out of range (page has {self.num_slots})")
        offset, length = self._slot(slot)
        if offset == _DELETED:
            raise StorageError(f"slot {slot} was deleted")
        return bytes(self.data[offset : offset + length])

    def delete(self, slot: int) -> None:
        """Mark a slot deleted (space is not reclaimed within the page)."""
        if slot < 0 or slot >= self.num_slots:
            raise StorageError(f"slot {slot} out of range (page has {self.num_slots})")
        offset, _ = self._slot(slot)
        if offset == _DELETED:
            raise StorageError(f"slot {slot} already deleted")
        self._set_slot(slot, _DELETED, 0)

    def is_live(self, slot: int) -> bool:
        offset, _ = self._slot(slot)
        return offset != _DELETED

    def records(self) -> Iterator[Tuple[int, bytes]]:
        """Yield (slot, record bytes) for every live slot."""
        for slot in range(self.num_slots):
            offset, length = self._slot(slot)
            if offset != _DELETED:
                yield slot, bytes(self.data[offset : offset + length])


# Jumbo pages need 32-bit offsets/lengths; they carry exactly one record, so
# the slot entry is stored in a wider format at the same position.
_JUMBO_SLOT = struct.Struct("<II")


class JumboPage(Page):
    """A page holding exactly one oversized record (32-bit slot entry)."""

    __slots__ = ()

    def __init__(self, data: Optional[bytearray] = None, size: int = PAGE_SIZE):
        if data is None:
            data = bytearray(size)
            # Offsets can exceed 16 bits in a jumbo page; the header only
            # carries the slot count, the wide slot entry holds the rest.
            _HEADER.pack_into(data, 0, 0, 0)
        super().__init__(data=data, size=size)

    @classmethod
    def for_record(cls, record: bytes, page_size: int = PAGE_SIZE) -> "JumboPage":
        needed = _HEADER.size + _JUMBO_SLOT.size + len(record)
        size = max(page_size, needed)
        page = cls(size=size)
        offset = size - len(record)
        page.data[offset:] = record
        _HEADER.pack_into(page.data, 0, 1, 0)
        _JUMBO_SLOT.pack_into(page.data, _HEADER.size, offset, len(record))
        page.dirty = True
        return page

    def insert(self, record: bytes) -> int:  # pragma: no cover - not used
        raise StorageError("jumbo pages hold exactly one record")

    def read(self, slot: int) -> bytes:
        if slot != 0 or self.num_slots != 1:
            raise StorageError("jumbo pages hold exactly one record at slot 0")
        offset, length = _JUMBO_SLOT.unpack_from(self.data, _HEADER.size)
        if offset == 0:
            raise StorageError("jumbo record was deleted")
        return bytes(self.data[offset : offset + length])

    def delete(self, slot: int) -> None:
        if slot != 0:
            raise StorageError("jumbo pages hold exactly one record at slot 0")
        _JUMBO_SLOT.pack_into(self.data, _HEADER.size, 0, 0)
        self.dirty = True

    def is_live(self, slot: int) -> bool:
        offset, _ = _JUMBO_SLOT.unpack_from(self.data, _HEADER.size)
        return offset != 0

    def records(self) -> Iterator[Tuple[int, bytes]]:
        if self.is_live(0):
            yield 0, self.read(0)

    def free_space(self) -> int:
        return 0
