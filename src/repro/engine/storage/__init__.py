"""Page-based storage: serialization, slotted pages, disks, buffer pool, heap files."""

from .buffer import BufferPool, BufferStats
from .disk import Disk, FileDisk, IoCounters, MemoryDisk
from .heapfile import RID, HeapFile
from .page import JumboPage, Page, PAGE_SIZE, page_capacity
from .serialize import (
    decode_pdf,
    decode_tuple,
    decode_value,
    encode_pdf,
    encode_tuple,
    encode_value,
    pdf_size,
)

__all__ = [
    "PAGE_SIZE",
    "Page",
    "JumboPage",
    "page_capacity",
    "Disk",
    "MemoryDisk",
    "FileDisk",
    "IoCounters",
    "BufferPool",
    "BufferStats",
    "HeapFile",
    "RID",
    "encode_value",
    "decode_value",
    "encode_pdf",
    "decode_pdf",
    "encode_tuple",
    "decode_tuple",
    "pdf_size",
]
