"""An interactive SQL shell for the probabilistic database.

::

    python -m repro.engine.shell [snapshot.rpdb]

Statements end with ``;``.  Dot-commands:

=============== =====================================================
``.help``        show this help
``.tables``      list tables with row/page counts
``.schema NAME`` show one table's probabilistic schema
``.stats``       buffer pool and I/O statistics
``.save PATH``   snapshot the database to a file
``.open PATH``   replace the session with a saved snapshot, or with a
                 durable (WAL) database directory — recovers on open
``.checkpoint``  fold the WAL into the checkpoint (durable sessions)
``.quit``        exit
=============== =====================================================
"""

from __future__ import annotations

import os
import sys
from typing import IO, Optional

from ..errors import ReproError
from .database import Database

__all__ = ["Shell", "main"]

_BANNER = (
    "repro probabilistic database shell — SQL statements end with ';', "
    "'.help' for commands"
)


class Shell:
    """A line-oriented REPL over a :class:`Database` (testable: pass streams)."""

    def __init__(
        self,
        db: Optional[Database] = None,
        stdin: Optional[IO[str]] = None,
        stdout: Optional[IO[str]] = None,
    ):
        self.db = db if db is not None else Database()
        self.stdin = stdin if stdin is not None else sys.stdin
        self.stdout = stdout if stdout is not None else sys.stdout
        self._buffer: list = []
        self._running = True

    def println(self, text: str = "") -> None:
        self.stdout.write(text + "\n")

    # -- command handling ----------------------------------------------------

    def handle_dot_command(self, line: str) -> None:
        parts = line.split(None, 1)
        command = parts[0].lower()
        arg = parts[1].strip() if len(parts) > 1 else ""
        if command in (".quit", ".exit"):
            self._running = False
        elif command == ".help":
            self.println(__doc__ or "")
        elif command == ".tables":
            for name, table in sorted(self.db.catalog.tables.items()):
                stats = table.stats()
                self.println(
                    f"  {table.name:<24} {stats['rows']:>8} rows "
                    f"{stats['pages']:>6} pages"
                )
            if not self.db.catalog.tables:
                self.println("  (no tables)")
        elif command == ".schema":
            if not arg:
                self.println("usage: .schema TABLE")
                return
            table = self.db.catalog.get_table(arg)
            self.println(repr(table.schema))
        elif command == ".stats":
            self.println(f"  buffer: {self.db.buffer_stats}")
            self.println(f"  disk  : {self.db.io_counters}")
        elif command == ".save":
            if not arg:
                self.println("usage: .save PATH")
                return
            self.db.save(arg)
            self.println(f"saved to {arg}")
        elif command == ".open":
            if not arg:
                self.println("usage: .open PATH")
                return
            self.db.close()
            self.db = _open_any(arg)
            self.println(f"opened {arg}")
        elif command == ".checkpoint":
            try:
                self.db.checkpoint()
            except ReproError as exc:
                self.println(f"error: {exc}")
            else:
                self.println("checkpoint written")
        else:
            self.println(f"unknown command {command}; try .help")

    def handle_statement(self, sql: str) -> None:
        result = self.db.execute(sql)
        if result.plan_text and not result.rows and result.message == "EXPLAIN":
            self.println(result.plan_text)
        elif result.schema is not None:
            self.println(result.pretty())
            self.println(f"({result.rowcount} row{'s' if result.rowcount != 1 else ''})")
        else:
            self.println(result.message)

    def feed_line(self, line: str) -> None:
        """Process one input line (buffering until a ';' completes a statement)."""
        stripped = line.strip()
        if not self._buffer and not stripped:
            return
        if not self._buffer and stripped.startswith("."):
            self.handle_dot_command(stripped)
            return
        self._buffer.append(line)
        if stripped.endswith(";"):
            sql = "\n".join(self._buffer)
            self._buffer = []
            try:
                self.handle_statement(sql)
            except ReproError as exc:
                self.println(f"error: {exc}")

    def run(self) -> None:
        self.println(_BANNER)
        while self._running:
            prompt = "...> " if self._buffer else "sql> "
            self.stdout.write(prompt)
            self.stdout.flush()
            line = self.stdin.readline()
            if not line:
                break
            self.feed_line(line)


def _open_any(path: str) -> Database:
    """Open ``path`` as a snapshot file or a durable WAL directory.

    A directory (existing or to-be-created) opens with recovery and a
    live WAL; an existing regular file loads as a snapshot.
    """
    if os.path.isfile(path):
        return Database.open(path)
    return Database(path=path)


def main(argv: Optional[list] = None) -> None:
    argv = argv if argv is not None else sys.argv[1:]
    if argv:
        db = _open_any(argv[0])
        print(f"opened {argv[0]}")
    else:
        db = Database()
    Shell(db).run()


if __name__ == "__main__":
    main()
