"""The system catalog: tables, indexes, and shared infrastructure.

One catalog owns one buffer pool (over one disk), one history store, and
the model configuration — the engine-wide counterparts of PostgreSQL's
shared memory, which is where the paper's Orion extension lived.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..errors import CatalogError
from ..core.history import HistoryStore
from ..core.model import DEFAULT_CONFIG, ModelConfig, ProbabilisticSchema
from .storage.buffer import BufferPool
from .storage.disk import Disk, MemoryDisk
from .table import Table
from .wal import TransactionManager

__all__ = ["Catalog"]


class Catalog:
    """Named tables over a shared buffer pool and history store."""

    def __init__(
        self,
        disk: Optional[Disk] = None,
        buffer_capacity: int = 256,
        config: ModelConfig = DEFAULT_CONFIG,
        store_lineage: bool = True,
    ):
        self.pool = BufferPool(disk or MemoryDisk(), capacity=buffer_capacity)
        self.store = HistoryStore()
        self.config = config
        self.store_lineage = store_lineage
        self.tables: Dict[str, Table] = {}
        #: transaction state shared by every table (WAL redo + precise undo)
        self.txn = TransactionManager(self)

    def create_table(self, name: str, schema: ProbabilisticSchema) -> Table:
        key = name.lower()
        if key in self.tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(
            name,
            schema,
            self.pool,
            self.store,
            store_lineage=self.store_lineage,
            txn=self.txn,
        )
        self.tables[key] = table
        self.txn.on_create_table(table)
        return table

    def get_table(self, name: str) -> Table:
        table = self.tables.get(name.lower())
        if table is None:
            raise CatalogError(
                f"unknown table {name!r}; known tables: {sorted(self.tables)}"
            )
        return table

    def drop_table(self, name: str) -> None:
        key = name.lower()
        if key not in self.tables:
            raise CatalogError(f"unknown table {name!r}")
        # The hook captures pre-drop history entries for undo/redo first.
        self.txn.on_drop_table(self.tables[key])
        table = self.tables.pop(key)
        # Release ancestor references so phantom bookkeeping stays accurate.
        for rid, t in list(table.scan()):
            for lin in t.lineage.values():
                if lin:
                    self.store.release(lin)
            self.store.delete_base_tuple(t.tuple_id)

    def has_table(self, name: str) -> bool:
        return name.lower() in self.tables

    def __repr__(self) -> str:
        return f"Catalog({sorted(self.tables)})"
