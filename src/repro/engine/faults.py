"""Deterministic fault injection for crash-safety testing.

Durability code is only trustworthy if every crash window is exercised.
This module defines a process-global :class:`FaultInjector` with a fixed
catalog of *named fault points* — one for each OS-visible step of the
write-ahead log, checkpoint, and snapshot protocols.  Production code calls
:func:`reach` (a near-free counter bump when nothing is armed); tests arm a
point at a chosen hit count and the injector raises :class:`InjectedCrash`
there, simulating the process dying at exactly that instant.

``InjectedCrash`` derives from :class:`BaseException` on purpose: a crash
must not be swallowed by ``except Exception`` recovery paths — nothing
survives a real power cut.

Torn writes (the half-written frame a real crash can leave behind) are
simulated by :func:`torn_write`: when the named point is armed, only a
prefix of the buffer reaches the file before the crash.  The prefix length
is derived deterministically from ``REPRO_FAULT_SEED`` (default 0) so a
failing matrix cell can be replayed bit-for-bit by exporting the same seed.
"""

from __future__ import annotations

import os
import zlib
from typing import BinaryIO, Dict

__all__ = [
    "FAULT_POINTS",
    "FaultInjector",
    "InjectedCrash",
    "INJECTOR",
    "arm",
    "disarm_all",
    "fault_seed",
    "reach",
    "torn_write",
]

#: Every registered crash site, in rough protocol order.  The crash-matrix
#: test suite iterates this catalog; adding a durability step means adding
#: its point here so the matrix automatically covers it.
FAULT_POINTS = (
    # -- write-ahead log ----------------------------------------------------
    "wal.append.before",     # commit about to be written to the log
    "wal.append.torn",       # crash mid-append: a torn (partial) frame
    "wal.append.after",      # frames written, fsync not yet issued
    "wal.fsync.before",      # about to fsync the log
    "wal.fsync.after",       # log durable, commit not yet acknowledged
    "wal.reset.before",      # new (post-checkpoint) log about to replace old
    "wal.reset.after",       # log reset done, checkpoint complete
    # -- checkpoint ---------------------------------------------------------
    "checkpoint.begin",      # checkpoint starting (nothing written yet)
    "checkpoint.write.torn", # crash mid-write of the checkpoint temp file
    "checkpoint.written",    # temp file durable, rename not yet issued
    "checkpoint.rename.after",  # checkpoint installed, old WAL not yet reset
    # -- standalone snapshots (Database.save) -------------------------------
    "snapshot.write.torn",   # crash mid-write of the snapshot temp file
    "snapshot.rename.before",  # temp durable, rename not yet issued
    "snapshot.rename.after",   # snapshot installed
    # -- heap page flushes (reached while folding pages into a snapshot) ----
    "heap.page.write",
    # -- spill files (memory-bounded operators writing run/partition files) --
    "spill.write",           # crash just after a spill frame reached disk
)


class InjectedCrash(BaseException):
    """A simulated process death at a named fault point."""

    def __init__(self, point: str, hit: int):
        super().__init__(f"injected crash at {point!r} (hit {hit})")
        self.point = point
        self.hit = hit


def fault_seed() -> int:
    """The active fault seed (``REPRO_FAULT_SEED``, default 0)."""
    return int(os.environ.get("REPRO_FAULT_SEED", "0"))


class FaultInjector:
    """Named crash sites with per-point hit counting and arming."""

    def __init__(self) -> None:
        self._armed: Dict[str, int] = {}
        self._counts: Dict[str, int] = {}

    # -- configuration (tests) ---------------------------------------------

    def arm(self, point: str, hit: int = 1) -> None:
        """Crash at the ``hit``-th (1-based) future reach of ``point``."""
        if point not in FAULT_POINTS:
            raise ValueError(f"unknown fault point {point!r}")
        if hit < 1:
            raise ValueError("hit counts are 1-based")
        self._armed[point] = hit

    def disarm_all(self) -> None:
        """Clear every armed point and reset hit counters."""
        self._armed.clear()
        self._counts.clear()

    def counts(self) -> Dict[str, int]:
        """How many times each point has been reached since the last reset."""
        return dict(self._counts)

    # -- production-code hooks ---------------------------------------------

    def reach(self, point: str) -> None:
        """Record one pass through ``point``; crash if armed for this hit."""
        count = self._counts.get(point, 0) + 1
        self._counts[point] = count
        if self._armed.get(point) == count:
            raise InjectedCrash(point, count)

    def torn_write(self, point: str, f: BinaryIO, data: bytes) -> None:
        """Write ``data``; if ``point`` fires, write only a torn prefix.

        The prefix length is a deterministic function of the fault seed,
        the point name, and the hit number, so every matrix cell sees a
        reproducible tear (including the empty and nearly-complete ones).
        """
        count = self._counts.get(point, 0) + 1
        self._counts[point] = count
        if self._armed.get(point) == count:
            mix = zlib.crc32(f"{point}:{count}:{fault_seed()}".encode())
            cut = mix % (len(data) + 1) if data else 0
            f.write(data[:cut])
            f.flush()
            raise InjectedCrash(point, count)
        f.write(data)


#: The process-global injector used by the engine's durability code.
INJECTOR = FaultInjector()


def arm(point: str, hit: int = 1) -> None:
    INJECTOR.arm(point, hit)


def disarm_all() -> None:
    INJECTOR.disarm_all()


def reach(point: str) -> None:
    INJECTOR.reach(point)


def torn_write(point: str, f: BinaryIO, data: bytes) -> None:
    INJECTOR.torn_write(point, f, data)
