"""Index structures: B+tree for certain attributes, PTI for uncertain ones."""

from .btree import BPlusTree
from .pti import DEFAULT_LADDER, ProbabilityThresholdIndex, quantile_of

__all__ = ["BPlusTree", "ProbabilityThresholdIndex", "DEFAULT_LADDER", "quantile_of"]
