"""An in-memory B+tree index over certain attribute values.

Keys are comparable Python values (numbers or strings); each key maps to the
RIDs of the records carrying it (duplicates allowed).  Leaves are chained
for range scans.  The tree is used by the planner for equality and range
predicates over *certain* columns — uncertain columns go through the
probability-threshold index instead.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from ...errors import IndexError_
from ..storage.heapfile import RID

__all__ = ["BPlusTree"]


class _Node:
    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool):
        self.is_leaf = is_leaf
        self.keys: List = []
        self.children: List["_Node"] = []  # internal nodes only
        self.values: List[List[RID]] = []  # leaves only
        self.next_leaf: Optional["_Node"] = None


class BPlusTree:
    """A B+tree with configurable fan-out (default order 64)."""

    def __init__(self, order: int = 64):
        if order < 4:
            raise IndexError_("B+tree order must be >= 4")
        self.order = order
        self._root = _Node(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        """Number of (key, rid) entries."""
        return self._size

    # -- search ---------------------------------------------------------------

    def _find_leaf(self, key) -> _Node:
        node = self._root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        return node

    def search(self, key) -> List[RID]:
        """RIDs of all records with exactly this key."""
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            return list(leaf.values[idx])
        return []

    def range_scan(
        self,
        lo=None,
        hi=None,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[Tuple[object, RID]]:
        """Yield (key, rid) pairs with lo <= key <= hi in key order."""
        if lo is None:
            node: Optional[_Node] = self._root
            while node is not None and not node.is_leaf:
                node = node.children[0]
            idx = 0
        else:
            node = self._find_leaf(lo)
            idx = bisect.bisect_left(node.keys, lo)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if lo is not None:
                    if key < lo or (key == lo and not include_lo):
                        idx += 1
                        continue
                if hi is not None:
                    if key > hi or (key == hi and not include_hi):
                        return
                for rid in node.values[idx]:
                    yield key, rid
                idx += 1
            node = node.next_leaf
            idx = 0

    # -- mutation ---------------------------------------------------------------

    def insert(self, key, rid: RID) -> None:
        """Add one (key, rid) entry."""
        split = self._insert(self._root, key, rid)
        if split is not None:
            sep, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [sep]
            new_root.children = [self._root, right]
            self._root = new_root
        self._size += 1

    def _insert(self, node: _Node, key, rid: RID) -> Optional[Tuple[object, _Node]]:
        if node.is_leaf:
            idx = bisect.bisect_left(node.keys, key)
            if idx < len(node.keys) and node.keys[idx] == key:
                node.values[idx].append(rid)
                return None
            node.keys.insert(idx, key)
            node.values.insert(idx, [rid])
            if len(node.keys) > self.order:
                return self._split_leaf(node)
            return None
        idx = bisect.bisect_right(node.keys, key)
        split = self._insert(node.children[idx], key, rid)
        if split is None:
            return None
        sep, right = split
        node.keys.insert(idx, sep)
        node.children.insert(idx + 1, right)
        if len(node.keys) > self.order:
            return self._split_internal(node)
        return None

    def _split_leaf(self, node: _Node) -> Tuple[object, _Node]:
        mid = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[mid:]
        right.values = node.values[mid:]
        node.keys = node.keys[:mid]
        node.values = node.values[:mid]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[object, _Node]:
        mid = len(node.keys) // 2
        sep = node.keys[mid]
        right = _Node(is_leaf=False)
        right.keys = node.keys[mid + 1 :]
        right.children = node.children[mid + 1 :]
        node.keys = node.keys[:mid]
        node.children = node.children[: mid + 1]
        return sep, right

    def delete(self, key, rid: RID) -> bool:
        """Remove one (key, rid) entry; returns False when absent.

        Underflowed nodes are not rebalanced (deletes are rare in the
        workloads; lookups stay correct, only occupancy degrades).
        """
        leaf = self._find_leaf(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx >= len(leaf.keys) or leaf.keys[idx] != key:
            return False
        try:
            leaf.values[idx].remove(rid)
        except ValueError:
            return False
        if not leaf.values[idx]:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
        self._size -= 1
        return True

    # -- diagnostics -------------------------------------------------------------

    def depth(self) -> int:
        node, d = self._root, 1
        while not node.is_leaf:
            node = node.children[0]
            d += 1
        return d

    def check_invariants(self) -> None:
        """Validate key ordering and leaf chaining (used in tests)."""
        self._check_node(self._root, None, None)
        prev = None
        for key, _ in self.range_scan():
            if prev is not None and key < prev:
                raise IndexError_("leaf chain out of order")
            prev = key

    def _check_node(self, node: _Node, lo, hi) -> None:
        for i in range(1, len(node.keys)):
            if node.keys[i - 1] > node.keys[i]:
                raise IndexError_("node keys out of order")
        for key in node.keys:
            if lo is not None and key < lo:
                raise IndexError_("key below subtree bound")
            if hi is not None and key > hi:
                raise IndexError_("key above subtree bound")
        if not node.is_leaf:
            if len(node.children) != len(node.keys) + 1:
                raise IndexError_("internal node arity mismatch")
            for i, child in enumerate(node.children):
                child_lo = node.keys[i - 1] if i > 0 else lo
                child_hi = node.keys[i] if i < len(node.keys) else hi
                self._check_node(child, child_lo, child_hi)
