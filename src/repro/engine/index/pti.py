"""Probability-threshold index over uncertain attributes.

A simplified in-memory take on the PTI of Cheng et al. (VLDB 2004, the
paper's reference [6]): for every record the index stores a small ladder of
**x-bounds** — quantiles of the attribute's pdf.  A probabilistic range
query ``P(x in [a, b]) >= p`` can then prune records *without touching
their pages*, using the bound

    P(x in [a, b]) <= min(P(x <= b), P(x >= a)) = min(cdf(b), 1 - cdf(a)),

so a record is prunable whenever ``b < q(p')`` or ``a > q(1 - p')`` for the
largest ladder threshold ``p' <= p``.  Survivors are verified exactly by
the executor against the full pdf.

The ladder also stores the support hull (threshold 0), which doubles as a
plain interval index for ``P(...) > 0`` queries.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ...errors import IndexError_
from ...pdf.base import UnivariatePdf
from ..storage.heapfile import RID

__all__ = ["ProbabilityThresholdIndex", "DEFAULT_LADDER", "quantile_of"]

#: Thresholds at which x-bounds are materialised.
DEFAULT_LADDER: Tuple[float, ...] = (0.0, 0.1, 0.25, 0.5, 0.75, 0.9)


def quantile_of(pdf: UnivariatePdf, q: float, tol: float = 1e-9) -> float:
    """The q-quantile of an arbitrary 1-D pdf, by bisection on its cdf.

    Uses the *unconditional* cdf, so for partial pdfs the upper quantiles
    may sit at the support's upper edge (all remaining mass is "absent").
    """
    quantile = getattr(pdf, "quantile", None)
    if quantile is not None:
        return float(quantile(q))
    lo, hi = pdf.support()[pdf.attr]
    if q <= float(pdf.cdf(lo)):
        return lo
    if q >= float(pdf.cdf(hi)):
        return hi
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if hi - lo < tol:
            return mid
        if float(pdf.cdf(mid)) < q:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


@dataclass
class _Entry:
    rid: RID
    #: per ladder threshold p: (q(p), q(1-p)) under the unconditional cdf.
    bounds: Tuple[Tuple[float, float], ...]


class ProbabilityThresholdIndex:
    """X-bound ladder index for probabilistic range queries on one attribute."""

    def __init__(self, attr: str, ladder: Sequence[float] = DEFAULT_LADDER):
        ladder = tuple(sorted(set(float(p) for p in ladder)))
        if not ladder or ladder[0] < 0.0 or ladder[-1] >= 1.0:
            raise IndexError_("ladder thresholds must lie in [0, 1)")
        self.attr = attr
        self.ladder = ladder
        self._entries: Dict[RID, _Entry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- maintenance -----------------------------------------------------------

    def insert(self, rid: RID, pdf: UnivariatePdf) -> None:
        """Index one record's pdf for this attribute."""
        lo, hi = pdf.support()[pdf.attr]
        bounds: List[Tuple[float, float]] = []
        mass = pdf.mass()
        for p in self.ladder:
            if p == 0.0:
                bounds.append((lo, hi))
            else:
                qlo = quantile_of(pdf, p) if p < mass else hi
                qhi = quantile_of(pdf, mass - p) if p < mass else lo
                bounds.append((qlo, qhi))
        self._entries[rid] = _Entry(rid, tuple(bounds))

    def delete(self, rid: RID) -> bool:
        return self._entries.pop(rid, None) is not None

    # -- queries ------------------------------------------------------------------

    def _ladder_level(self, threshold: float) -> int:
        """Index of the largest ladder threshold <= requested threshold."""
        idx = bisect.bisect_right(list(self.ladder), threshold) - 1
        return max(idx, 0)

    def candidates(self, lo: float, hi: float, threshold: float = 0.0) -> List[RID]:
        """RIDs that *may* satisfy ``P(attr in [lo, hi]) >= threshold``.

        Sound (never prunes a qualifying record), not complete — survivors
        must be verified against the exact pdf.
        """
        if hi < lo:
            return []
        level = self._ladder_level(threshold)
        out: List[RID] = []
        for entry in self._entries.values():
            support_lo, support_hi = entry.bounds[0]
            if hi < support_lo or lo > support_hi:
                continue
            if threshold > 0.0 and level > 0:
                qlo, qhi = entry.bounds[level]
                # P(x <= hi) < p when hi < q(p); P(x >= lo) < p when lo > q(1-p)
                if hi < qlo or lo > qhi:
                    continue
            out.append(entry.rid)
        return out

    def selectivity(self, lo: float, hi: float, threshold: float = 0.0) -> float:
        """Fraction of indexed records surviving pruning (for the planner)."""
        if not self._entries:
            return 1.0
        return len(self.candidates(lo, hi, threshold)) / len(self._entries)
