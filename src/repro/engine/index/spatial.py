"""A uniform-grid spatial index over joint uncertain locations.

Moving-object workloads (Section II-A's x/y example) query 2-D windows:
``x BETWEEN .. AND y BETWEEN ..``.  This index stores, per record, the
bounding box of the joint pdf's support hull, hashed into a uniform grid of
cells; window queries collect candidates from the overlapping cells only.

Like the PTI, pruning is *sound*: a record whose support box misses the
window cannot satisfy the predicate with positive probability, and
surviving candidates are verified exactly by the executor's Filter.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Set, Tuple

from ...errors import IndexError_
from ...pdf.base import Pdf
from ..storage.heapfile import RID

__all__ = ["SpatialGridIndex"]

Box = Tuple[Tuple[float, float], ...]  # ((lo, hi) per dimension)


@dataclass
class _Entry:
    rid: RID
    box: Box


class SpatialGridIndex:
    """Grid-hashed bounding boxes of joint pdf supports."""

    def __init__(self, attrs: Sequence[str], cell_size: float = 10.0):
        if len(attrs) < 2:
            raise IndexError_("a spatial index needs at least two attributes")
        if cell_size <= 0:
            raise IndexError_("cell_size must be positive")
        self.attrs: Tuple[str, ...] = tuple(attrs)
        self.cell_size = float(cell_size)
        self._entries: Dict[RID, _Entry] = {}
        self._cells: Dict[Tuple[int, ...], Set[RID]] = {}

    def __len__(self) -> int:
        return len(self._entries)

    # -- maintenance ------------------------------------------------------------

    def _cell_range(self, box: Box) -> List[Tuple[int, ...]]:
        spans = []
        for lo, hi in box:
            spans.append(
                range(
                    math.floor(lo / self.cell_size),
                    math.floor(hi / self.cell_size) + 1,
                )
            )
        cells: List[Tuple[int, ...]] = [()]
        for span in spans:
            cells = [cell + (i,) for cell in cells for i in span]
        return cells

    def insert(self, rid: RID, pdf: Pdf) -> None:
        """Index one record's joint pdf by its support bounding box."""
        support = pdf.support()
        missing = [a for a in self.attrs if a not in support]
        if missing:
            raise IndexError_(f"pdf lacks attributes {missing}")
        box: Box = tuple((float(support[a][0]), float(support[a][1])) for a in self.attrs)
        entry = _Entry(rid, box)
        self._entries[rid] = entry
        for cell in self._cell_range(box):
            self._cells.setdefault(cell, set()).add(rid)

    def delete(self, rid: RID) -> bool:
        entry = self._entries.pop(rid, None)
        if entry is None:
            return False
        for cell in self._cell_range(entry.box):
            bucket = self._cells.get(cell)
            if bucket is not None:
                bucket.discard(rid)
                if not bucket:
                    del self._cells[cell]
        return True

    # -- queries -------------------------------------------------------------------

    @staticmethod
    def _overlaps(box: Box, window: Box) -> bool:
        return all(lo <= w_hi and hi >= w_lo for (lo, hi), (w_lo, w_hi) in zip(box, window))

    def candidates(self, window: Sequence[Tuple[float, float]]) -> List[RID]:
        """RIDs whose support box intersects the query window (sound)."""
        window_box: Box = tuple((float(lo), float(hi)) for lo, hi in window)
        if len(window_box) != len(self.attrs):
            raise IndexError_(
                f"window has {len(window_box)} dimensions, index has {len(self.attrs)}"
            )
        if any(hi < lo for lo, hi in window_box):
            return []
        seen: Set[RID] = set()
        out: List[RID] = []
        for cell in self._cell_range(window_box):
            for rid in self._cells.get(cell, ()):
                if rid in seen:
                    continue
                seen.add(rid)
                if self._overlaps(self._entries[rid].box, window_box):
                    out.append(rid)
        return sorted(out)

    def candidates_within(
        self, point: Sequence[float], radius: float
    ) -> List[RID]:
        """RIDs whose support box intersects the ball around ``point``.

        Used by nearest-neighbor search to restrict the candidate set.
        """
        window = [(q - radius, q + radius) for q in point]
        out = []
        for rid in self.candidates(window):
            box = self._entries[rid].box
            # Exact box-to-point distance check (the window was the hull).
            sq = 0.0
            for (lo, hi), q in zip(box, point):
                d = max(lo - q, 0.0, q - hi)
                sq += d * d
            if sq <= radius * radius:
                out.append(rid)
        return out

    def selectivity(self, window: Sequence[Tuple[float, float]]) -> float:
        if not self._entries:
            return 1.0
        return len(self.candidates(window)) / len(self._entries)
