"""ANALYZE-style table statistics for the cost-based planner.

``analyze_table`` makes one pass over a table's *record prefixes* (the
cheap half of the lazy-decode format — no pdf payload is deserialized) and
builds, per attribute:

* certain numeric columns — min/max and an equi-depth histogram over the
  stored values,
* uncertain columns — an equi-depth histogram over the pdf *support
  midpoints* (the same ``[lo, hi]`` hull the threshold index keys on), a
  histogram over the dependency-set masses, and the mean mass.

Selectivity estimation assumes attribute-level independence across
dependency sets — the same assumption the model itself makes for
non-historically dependent pdfs, and the standard one for per-column
statistics (cf. Grohe & Lindner on independence assumptions in
probabilistic databases).  Estimates feed ``choose_scan`` and the
``EXPLAIN`` ``est=`` annotations; they never affect answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .storage.serialize import decode_prefix

__all__ = ["ColumnStats", "TableStats", "analyze_table", "DEFAULT_BUCKETS"]

#: Equi-depth histogram resolution (buckets per column).
DEFAULT_BUCKETS = 32


def _equi_depth_edges(values: List[float], buckets: int) -> List[float]:
    """Bucket boundaries such that each bucket holds ~1/k of the values."""
    n = len(values)
    if n == 0:
        return []
    values = sorted(values)
    k = max(1, min(buckets, n))
    edges = [values[(i * n) // k] for i in range(k)]
    edges.append(values[-1])
    return edges


def _histogram_fraction(edges: List[float], lo: float, hi: float) -> float:
    """Fraction of the histogrammed values falling in [lo, hi]."""
    k = len(edges) - 1
    if k < 1:
        return 0.0
    total = 0.0
    weight = 1.0 / k
    for i in range(k):
        a, b = edges[i], edges[i + 1]
        if b < lo or a > hi:
            continue
        if b <= a:  # point bucket (duplicated quantile) inside the range
            total += weight
        else:
            overlap = (min(hi, b) - max(lo, a)) / (b - a)
            total += weight * max(0.0, min(1.0, overlap))
    return min(1.0, total)


@dataclass
class ColumnStats:
    """Summary of one attribute's value (or support-midpoint) distribution."""

    attr: str
    uncertain: bool
    #: rows with a usable value: numeric non-NULL (certain) / non-NULL pdf
    count: int
    #: fraction of table rows *without* a usable value
    null_frac: float
    lo: float
    hi: float
    #: equi-depth histogram over values / support midpoints
    edges: List[float] = field(default_factory=list)
    #: uncertain only: equi-depth histogram over dependency-set masses
    mass_edges: List[float] = field(default_factory=list)
    #: uncertain only: mean dependency-set mass (existence probability)
    mean_mass: float = 1.0

    def range_fraction(self, lo: float, hi: float) -> float:
        """Estimated fraction of *table rows* with the value in [lo, hi]."""
        return _histogram_fraction(self.edges, lo, hi) * (1.0 - self.null_frac)

    def mass_fraction(self, threshold: float) -> float:
        """Estimated fraction of table rows with dep-set mass >= threshold."""
        if not self.mass_edges:
            return 1.0 - self.null_frac
        return _histogram_fraction(self.mass_edges, threshold, float("inf")) * (
            1.0 - self.null_frac
        )


@dataclass
class TableStats:
    """Per-table statistics installed by ANALYZE."""

    row_count: int
    page_count: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    def selectivity(self, attr: str, lo: float, hi: float) -> Optional[float]:
        """Estimated selectivity of ``attr in [lo, hi]``, or None if unknown."""
        col = self.columns.get(attr)
        if col is None:
            return None
        return col.range_fraction(lo, hi)

    def estimate_rows(self, attr: str, lo: float, hi: float) -> Optional[float]:
        sel = self.selectivity(attr, lo, hi)
        return None if sel is None else sel * self.row_count


def analyze_table(table, buckets: int = DEFAULT_BUCKETS) -> TableStats:
    """Build :class:`TableStats` from one prefix-only pass over the table.

    The result is also installed as ``table.statistics`` (the planner's
    hook) and returned.
    """
    schema = table.schema
    values: Dict[str, List[float]] = {}
    masses: Dict[str, List[float]] = {}
    rows = 0
    for records in table.heap.scan_pages():
        for _rid, record in records:
            prefix = decode_prefix(record)
            rows += 1
            for name, value in prefix.certain.items():
                if (
                    value is None
                    or isinstance(value, bool)
                    or not isinstance(value, (int, float))
                ):
                    continue
                values.setdefault(name, []).append(float(value))
            for summary in prefix.deps:
                if not summary.has_pdf:
                    continue
                for attr in summary.attrs:
                    sup = summary.support.get(attr)
                    if sup is not None:
                        values.setdefault(attr, []).append((sup[0] + sup[1]) / 2.0)
                    masses.setdefault(attr, []).append(summary.mass)

    stats = TableStats(row_count=rows, page_count=table.heap.num_pages)
    for attr in schema.visible_attrs:
        vals = values.get(attr, [])
        if not vals:
            continue
        uncertain = schema.is_uncertain(attr)
        mass_list = masses.get(attr, [])
        stats.columns[attr] = ColumnStats(
            attr=attr,
            uncertain=uncertain,
            count=len(vals),
            null_frac=1.0 - (len(vals) / rows) if rows else 0.0,
            lo=min(vals),
            hi=max(vals),
            edges=_equi_depth_edges(vals, buckets),
            mass_edges=_equi_depth_edges(mass_list, buckets) if uncertain else [],
            mean_mass=(sum(mass_list) / len(mass_list)) if mass_list else 1.0,
        )
    table.statistics = stats
    return stats
