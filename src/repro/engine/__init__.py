"""The DBMS substrate: storage, indexes, executor, SQL front end.

This package stands in for the PostgreSQL instance the paper's Orion
extension lived in: probabilistic tuples serialized onto slotted pages
behind an LRU buffer pool with I/O accounting, secondary indexes, a
Volcano-style executor, and a SQL dialect with uncertainty extensions.
"""

from .catalog import Catalog
from .database import Database, QueryResult
from .table import Table

__all__ = ["Database", "QueryResult", "Catalog", "Table"]
