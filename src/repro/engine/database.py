"""The user-facing Database facade: SQL in, probabilistic rows out.

This plays the role PostgreSQL+Orion played for the paper: a complete,
queryable system with uncertainty as a first-class citizen.

::

    db = Database()
    db.execute("CREATE TABLE readings (rid INT, value REAL UNCERTAIN)")
    db.execute("INSERT INTO readings VALUES (1, GAUSSIAN(20, 5))")
    result = db.execute("SELECT rid FROM readings WHERE value > 18 AND value < 22")
    for row in result.to_dicts():
        print(row)
"""

from __future__ import annotations

import os
import shutil
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Union

from ..core.model import (
    DEFAULT_CONFIG,
    ModelConfig,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from ..core.threshold import probability_of
from ..errors import QueryError, SqlBindError
from ..pdf.base import Pdf
from .catalog import Catalog
from .executor import last_run_stats
from .sql import ast
from .sql.parser import parse
from .sql.planner import (
    Binder,
    build_schema,
    convert_predicate,
    execute_plan,
    plan_select,
)
from .stats import analyze_table
from .storage.disk import Disk
from .table import Table

__all__ = ["Database", "QueryResult"]


def _enable_counting(op) -> None:
    """Switch on actual-row counting for every operator in a plan."""
    op.counting = True
    for child in op.children():
        _enable_counting(child)


@dataclass
class QueryResult:
    """The outcome of one statement.

    ``rows`` hold full probabilistic tuples; ``columns`` is the visible
    output schema.  :meth:`to_dicts` flattens to plain dictionaries with
    pdf objects for uncertain attributes.
    """

    columns: List[str] = field(default_factory=list)
    rows: List[ProbabilisticTuple] = field(default_factory=list)
    schema: Optional[ProbabilisticSchema] = None
    rowcount: int = 0
    message: str = "OK"
    plan_text: Optional[str] = None
    #: morsel/worker statistics of the parallel executor (None for serial runs)
    parallel_stats: Optional[Dict] = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> List[Dict[str, Union[object, Pdf, None]]]:
        """Rows as dicts: certain values, pdf objects, or None for NULL."""
        if self.schema is None:
            return []
        out = []
        for t in self.rows:
            row: Dict[str, Union[object, Pdf, None]] = {}
            for attr in self.schema.visible_attrs:
                if self.schema.is_uncertain(attr):
                    row[attr] = t.pdf_of_attr(attr)
                else:
                    row[attr] = t.certain.get(attr)
            out.append(row)
        return out

    def provenance(self, row: ProbabilisticTuple) -> Dict[str, List[str]]:
        """Human-readable lineage of one result row.

        Maps each dependency set (rendered as ``{a,b}``) to the base pdfs it
        derives from — ``t<id>.{attrs}`` ancestor references, with any
        renames shown as ``base->current``.  Empty lists mark point-mass or
        aggregate-produced sets with no ancestors.
        """
        out: Dict[str, List[str]] = {}
        for dep in sorted(row.pdfs, key=lambda d: tuple(sorted(d))):
            key = "{" + ",".join(sorted(dep)) + "}"
            links = sorted(
                row.lineage.get(dep, frozenset()),
                key=lambda l: (l.ref.tuple_id, tuple(sorted(l.ref.attrs))),
            )
            out[key] = [repr(link) for link in links]
        return out

    def scalar(self):
        """The single value of a 1x1 result (certain value or pdf)."""
        if len(self.rows) != 1 or self.schema is None or len(self.columns) != 1:
            raise QueryError(
                f"scalar() needs a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.to_dicts()[0][self.columns[0]]

    def pretty(self, limit: int = 20) -> str:
        """Fixed-width rendering of the result."""
        if self.schema is None:
            return self.message
        header = list(self.columns)
        cells = [header]
        for t in self.rows[:limit]:
            row = []
            for attr in header:
                if self.schema.is_uncertain(attr):
                    pdf = t.pdf_of_attr(attr)
                    row.append("NULL" if pdf is None else repr(pdf))
                else:
                    value = t.certain.get(attr)
                    row.append("NULL" if value is None else str(value))
            cells.append(row)
        widths = [max(len(r[i]) for r in cells) for i in range(len(header))]
        lines = [" | ".join(h.ljust(w) for h, w in zip(cells[0], widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for row in cells[1:]:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)


#: statements that mutate state and therefore run inside a transaction
_MUTATING_STATEMENTS = (
    ast.CreateTable,
    ast.CreateTableAs,
    ast.DropTable,
    ast.CreateIndex,
    ast.Insert,
    ast.Delete,
    ast.Update,
    ast.Analyze,
)


class Database:
    """A complete probabilistic database instance.

    With ``path`` set, the database is *durable*: the directory holds a
    checkpoint (``data.ckpt``) and a write-ahead log (``wal.log``); opening
    runs crash recovery, every committed statement is logged, and
    ``group_commit`` batches fsyncs (1 = fsync on every commit).  Without
    ``path`` the same transaction machinery runs purely in memory.
    """

    def __init__(
        self,
        disk: Optional[Disk] = None,
        buffer_capacity: int = 256,
        config: ModelConfig = DEFAULT_CONFIG,
        store_lineage: bool = True,
        path: Optional[str] = None,
        group_commit: int = 1,
        checkpoint_every: Optional[int] = None,
    ):
        self.path = path
        self.checkpoint_every = checkpoint_every
        self._wal = None
        self._commits_since_checkpoint = 0
        if path is None:
            self.catalog = Catalog(
                disk=disk,
                buffer_capacity=buffer_capacity,
                config=config,
                store_lineage=store_lineage,
            )
        else:
            from .wal import open_durable

            # Spill files are scratch state: anything a crash left behind
            # in <path>/spill is garbage by design, cleared here exactly
            # like stale checkpoint temp files.
            spill_dir = os.path.join(path, "spill")
            shutil.rmtree(spill_dir, ignore_errors=True)
            config = replace(config, spill_dir=spill_dir)
            recovered, wal = open_durable(
                path,
                buffer_capacity=buffer_capacity,
                config=config,
                store_lineage=store_lineage,
                group_commit=group_commit,
            )
            self.catalog = recovered.catalog
            self._wal = wal
            self.catalog.txn.wal = wal

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- convenience accessors -------------------------------------------------

    @property
    def config(self) -> ModelConfig:
        return self.catalog.config

    @property
    def io_counters(self):
        """Physical I/O counters of the underlying disk."""
        return self.catalog.pool.disk.counters

    @property
    def buffer_stats(self):
        return self.catalog.pool.stats

    def reset_io_stats(self) -> None:
        self.catalog.pool.reset_stats()

    def table(self, name: str) -> Table:
        return self.catalog.get_table(name)

    # -- transactions -----------------------------------------------------------

    def begin(self) -> None:
        """Start an explicit transaction (suspends per-statement autocommit)."""
        self.catalog.txn.begin()

    def commit(self) -> None:
        """Commit the explicit transaction (fsynced per the group-commit window)."""
        self.catalog.txn.commit()
        self._after_commit()

    def abort(self) -> None:
        """Roll the explicit transaction back; precise undo restores state."""
        self.catalog.txn.abort()

    rollback = abort

    @contextmanager
    def _autocommit(self):
        """Wrap one mutating statement in a transaction, unless one is open."""
        txn = self.catalog.txn
        if txn.active:
            yield  # explicit BEGIN ... COMMIT in progress
            return
        txn.begin()
        try:
            yield
        except Exception:
            # InjectedCrash is a BaseException and deliberately skips this
            # handler: a simulated power cut must not run undo.
            txn.abort()
            raise
        txn.commit()
        self._after_commit()

    def _after_commit(self) -> None:
        if self._wal is None or not self.checkpoint_every:
            return
        self._commits_since_checkpoint += 1
        if self._commits_since_checkpoint >= self.checkpoint_every:
            self.checkpoint()

    def checkpoint(self) -> None:
        """Fold the WAL into ``data.ckpt`` and reset the log (durable only)."""
        from .wal import write_checkpoint

        write_checkpoint(self)
        self._commits_since_checkpoint = 0

    def close(self) -> None:
        """Flush and close the write-ahead log (no-op for in-memory databases)."""
        if self._wal is not None:
            self._wal.close()

    # -- statement execution ------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse, plan, and run one SQL statement.

        Mutating statements autocommit unless an explicit transaction is
        open; on a durable database each commit is WAL-logged before the
        statement is acknowledged.
        """
        stmt = parse(sql)
        if isinstance(stmt, ast.Begin):
            self.begin()
            return QueryResult(message="BEGIN")
        if isinstance(stmt, ast.Commit):
            self.commit()
            return QueryResult(message="COMMIT")
        if isinstance(stmt, ast.Rollback):
            self.abort()
            return QueryResult(message="ROLLBACK")
        if isinstance(stmt, _MUTATING_STATEMENTS):
            with self._autocommit():
                return self._run_statement(stmt)
        return self._run_statement(stmt)

    def _run_statement(self, stmt: ast.Statement) -> QueryResult:
        if isinstance(stmt, ast.CreateTable):
            self.catalog.create_table(stmt.name, build_schema(stmt))
            return QueryResult(message=f"CREATE TABLE {stmt.name}")
        if isinstance(stmt, ast.DropTable):
            self.catalog.drop_table(stmt.name)
            return QueryResult(message=f"DROP TABLE {stmt.name}")
        if isinstance(stmt, ast.CreateIndex):
            table = self.catalog.get_table(stmt.table)
            if stmt.kind == "pti":
                table.create_pti_index(stmt.column)
            elif stmt.kind == "spatial":
                table.create_spatial_index(tuple(stmt.columns))
            else:
                table.create_btree_index(stmt.column)
            cols = ", ".join(stmt.columns)
            return QueryResult(message=f"CREATE INDEX ON {stmt.table}({cols})")
        if isinstance(stmt, ast.CreateTableAs):
            count = self._execute_create_as(stmt)
            return QueryResult(
                rowcount=count, message=f"CREATE TABLE {stmt.name} ({count} rows)"
            )
        if isinstance(stmt, ast.Insert):
            count = self._execute_insert(stmt)
            return QueryResult(rowcount=count, message=f"INSERT {count}")
        if isinstance(stmt, ast.Delete):
            count = self._execute_delete(stmt)
            return QueryResult(rowcount=count, message=f"DELETE {count}")
        if isinstance(stmt, ast.Update):
            count = self._execute_update(stmt)
            return QueryResult(rowcount=count, message=f"UPDATE {count}")
        if isinstance(stmt, ast.Analyze):
            names = (
                [stmt.table] if stmt.table is not None else sorted(self.catalog.tables)
            )
            prev = {
                name.lower(): self.catalog.get_table(name).statistics
                for name in names
            }
            for name in names:
                analyze_table(self.catalog.get_table(name))
            self.catalog.txn.on_analyze(stmt.table or "", prev)
            return QueryResult(message=f"ANALYZE {len(names)} table(s)")
        if isinstance(stmt, ast.Explain):
            plan = plan_select(self.catalog, stmt.query)
            if not stmt.analyze:
                return QueryResult(message="EXPLAIN", plan_text=plan.explain())
            _enable_counting(plan)
            # Run serially: parallel execution rewrites the plan into
            # fragments whose counters never reach these operators.
            execute_plan(plan, replace(self.config, workers=1))
            return QueryResult(message="EXPLAIN ANALYZE", plan_text=plan.explain())
        if isinstance(stmt, ast.Select):
            plan = plan_select(self.catalog, stmt)
            rows = execute_plan(plan, self.config)
            schema = plan.output_schema
            stats = (
                last_run_stats() if getattr(self.config, "workers", 1) > 1 else None
            )
            return QueryResult(
                columns=list(schema.visible_attrs),
                rows=rows,
                schema=schema,
                rowcount=len(rows),
                message=f"SELECT {len(rows)}",
                plan_text=plan.explain(),
                parallel_stats=stats,
            )
        raise QueryError(f"unsupported statement {type(stmt).__name__}")

    # -- INSERT -----------------------------------------------------------------------

    def _execute_insert(self, stmt: ast.Insert) -> int:
        table = self.catalog.get_table(stmt.table)
        schema = table.schema
        for row in stmt.rows:
            certain, uncertain = self._bind_insert_row(schema, stmt.columns, row)
            table.insert(certain=certain, uncertain=uncertain)
        return len(stmt.rows)

    def _bind_insert_row(
        self,
        schema: ProbabilisticSchema,
        columns: Optional[List[str]],
        row: Sequence[ast.ValueExpr],
    ):
        """Pair positional/named literals with columns and dependency sets.

        Positional rows walk the declared columns; an uncertain column that
        is the *first* member (in declaration order) of its dependency set
        consumes one pdf literal covering the whole set, and the set's other
        columns consume nothing.
        """
        certain: Dict[str, object] = {}
        uncertain: Dict[object, Optional[Pdf]] = {}

        def dep_columns(dep: frozenset) -> List[str]:
            return [c for c in schema.visible_attrs if c in dep]

        if columns is None:
            consumed: set = set()
            values = list(row)
            for name in schema.visible_attrs:
                if name in consumed:
                    continue
                dep = schema.dependency_set_of(name)
                if not values:
                    raise QueryError(f"INSERT is missing a value for column {name!r}")
                expr = values.pop(0)
                if dep is None:
                    certain[name] = self._certain_value(expr, name)
                else:
                    ordered = dep_columns(dep)
                    consumed.update(ordered)
                    uncertain[tuple(ordered)] = self._pdf_value(expr, name, len(ordered))
            if values:
                raise QueryError(f"INSERT has {len(values)} extra value(s)")
        else:
            if len(columns) != len(row):
                raise QueryError(
                    f"INSERT names {len(columns)} columns but supplies {len(row)} values"
                )
            for name, expr in zip(columns, row):
                if not schema.has_column(name):
                    raise SqlBindError(f"unknown column {name!r}")
                dep = schema.dependency_set_of(name)
                if dep is None:
                    certain[name] = self._certain_value(expr, name)
                else:
                    ordered = dep_columns(dep)
                    if ordered[0] != name:
                        raise QueryError(
                            f"supply the joint pdf for {sorted(dep)} via its first "
                            f"column {ordered[0]!r}"
                        )
                    uncertain[tuple(ordered)] = self._pdf_value(expr, name, len(ordered))
        return certain, uncertain

    def _certain_value(self, expr: ast.ValueExpr, name: str):
        if isinstance(expr, ast.PdfLiteral):
            raise QueryError(
                f"column {name!r} is certain; declare it UNCERTAIN to store a pdf"
            )
        assert isinstance(expr, ast.LiteralExpr)
        return expr.value

    def _pdf_value(self, expr: ast.ValueExpr, name: str, arity: int) -> Optional[Pdf]:
        if isinstance(expr, ast.LiteralExpr):
            if expr.value is None:
                return None
            if isinstance(expr.value, str):
                from ..pdf.discrete import CategoricalPdf

                return CategoricalPdf({expr.value: 1.0})
            if isinstance(expr.value, bool):
                from ..pdf.discrete import DiscretePdf

                return DiscretePdf({1.0 if expr.value else 0.0: 1.0})
            from ..pdf.discrete import DiscretePdf

            return DiscretePdf({float(expr.value): 1.0})
        assert isinstance(expr, ast.PdfLiteral)
        pdf = expr.pdf
        if pdf is not None and pdf.arity != arity:
            raise QueryError(
                f"pdf literal for {name!r} has arity {pdf.arity}, "
                f"but its dependency set has {arity} columns"
            )
        return pdf

    # -- DELETE -------------------------------------------------------------------------

    def _execute_delete(self, stmt: ast.Delete) -> int:
        table = self.catalog.get_table(stmt.table)
        predicate = None
        if stmt.where is not None:
            binder = Binder(self.catalog, [ast.TableRef(stmt.table)])
            predicate = convert_predicate(binder, stmt.where)
            for attr in predicate.attrs():
                if table.schema.is_uncertain(attr):
                    raise QueryError(
                        "DELETE predicates must use certain columns only "
                        f"({attr!r} is uncertain)"
                    )
        doomed = []
        for rid, t in table.scan():
            if predicate is None or predicate.evaluate(t.certain) is True:
                doomed.append(rid)
        for rid in doomed:
            table.delete(rid)
        return len(doomed)

    # -- UPDATE -------------------------------------------------------------------------

    def _execute_update(self, stmt: ast.Update) -> int:
        """UPDATE with certain-only predicates.

        Updated tuples are re-inserted as *new base tuples*: an updated pdf
        is fresh evidence, so it becomes its own top-level ancestor, and the
        old pdfs are released (turning phantom if derived data references
        them).  Indexes are maintained through the delete/insert pair.
        """
        table = self.catalog.get_table(stmt.table)
        schema = table.schema
        predicate = None
        if stmt.where is not None:
            binder = Binder(self.catalog, [ast.TableRef(stmt.table)])
            predicate = convert_predicate(binder, stmt.where)
            for attr in predicate.attrs():
                if schema.is_uncertain(attr):
                    raise QueryError(
                        "UPDATE predicates must use certain columns only "
                        f"({attr!r} is uncertain)"
                    )
        for name, _ in stmt.assignments:
            if not schema.has_column(name):
                raise SqlBindError(f"unknown column {name!r}")

        matches = []
        for rid, t in table.scan():
            if predicate is None or predicate.evaluate(t.certain) is True:
                matches.append((rid, t))

        def dep_columns(dep: frozenset) -> list:
            return [c for c in schema.visible_attrs if c in dep]

        for rid, t in matches:
            certain = {
                k: v for k, v in t.certain.items()
            }
            uncertain: Dict[object, Optional[Pdf]] = {}
            # Carry over untouched pdfs (re-registered as fresh ancestors;
            # see the docstring above for why an UPDATE severs history).
            assigned = {name for name, _ in stmt.assignments}
            for dep, pdf in t.pdfs.items():
                if dep & assigned:
                    continue
                ordered = dep_columns(dep)
                if ordered:
                    uncertain[tuple(ordered)] = pdf
            for name, expr in stmt.assignments:
                dep = schema.dependency_set_of(name)
                if dep is None:
                    certain[name] = self._certain_value(expr, name)
                else:
                    ordered = dep_columns(dep)
                    if ordered[0] != name:
                        raise QueryError(
                            f"assign the joint pdf for {sorted(dep)} via its "
                            f"first column {ordered[0]!r}"
                        )
                    uncertain[tuple(ordered)] = self._pdf_value(
                        expr, name, len(ordered)
                    )
            table.delete(rid)
            table.insert(certain=certain, uncertain=uncertain)
        return len(matches)

    # -- CREATE TABLE AS -----------------------------------------------------------------

    def _execute_create_as(self, stmt: ast.CreateTableAs) -> int:
        """Materialise a query result as a stored table.

        Result tuples keep their lineage, so the new table's rows remain
        historically linked to their base data — further queries over the
        materialised table stay PWS-consistent.
        """
        plan = plan_select(self.catalog, stmt.query)
        rows = execute_plan(plan, self.config)
        table = self.catalog.create_table(stmt.name, plan.output_schema)
        for t in rows:
            table.insert_tuple(t)
        return len(rows)

    # -- state fingerprinting ----------------------------------------------------------------

    def dump_state(self) -> Dict:
        """A canonical, comparison-stable dump of all logical state.

        Used by the crash-safety suite: a recovered database must dump
        bit-identically to a never-crashed oracle that replayed the same
        committed statements.  Covers certain values, pdf encodings,
        dependency sets, lineage, index definitions, the analyzed flag, and
        the full history store.  Deliberately excluded: page layout (dead
        slots differ after undo), planner statistics (recomputed on
        recovery), and the next-tuple-id watermark (SELECTs consume ids for
        transient tuples without logging them).
        """
        from .storage.serialize import encode_pdf

        tables: Dict[str, Dict] = {}
        for key in sorted(self.catalog.tables):
            table = self.catalog.tables[key]
            rows = []
            for _rid, t in table.scan():
                rows.append(
                    {
                        "tuple_id": t.tuple_id,
                        "certain": {k: t.certain[k] for k in sorted(t.certain)},
                        "pdfs": {
                            ",".join(sorted(dep)): (
                                None if pdf is None else encode_pdf(pdf).hex()
                            )
                            for dep, pdf in t.pdfs.items()
                        },
                        "lineage": {
                            ",".join(sorted(dep)): sorted(
                                repr(link) for link in lin
                            )
                            for dep, lin in t.lineage.items()
                        },
                    }
                )
            rows.sort(key=lambda r: r["tuple_id"])
            tables[key] = {
                "columns": [
                    (c.name, c.dtype.value) for c in table.schema.columns
                ],
                "dependencies": sorted(
                    sorted(dep) for dep in table.schema.dependency
                ),
                "rows": rows,
                "btrees": sorted(table.btrees),
                "ptis": sorted(table.ptis),
                "spatials": sorted(
                    (list(attrs), index.cell_size)
                    for attrs, index in table.spatials.items()
                ),
                "analyzed": table.statistics is not None,
            }
        store = self.catalog.store
        history = sorted(
            (
                {
                    "ref": repr(ref),
                    "refcount": entry.refcount,
                    "alive": entry.alive,
                    "pdf": encode_pdf(entry.pdf).hex(),
                }
                for ref, entry in store._entries.items()
            ),
            key=lambda e: e["ref"],
        )
        return {"tables": tables, "history": history}

    # -- persistence -----------------------------------------------------------------------

    def save(self, path: str) -> None:
        """Snapshot the whole database (catalog, pages, histories) to a file."""
        from .snapshot import save_database

        save_database(self, path)

    @classmethod
    def open(cls, path: str, buffer_capacity: int = 256, config=None) -> "Database":
        """Reopen a database saved with :meth:`save`; indexes are rebuilt."""
        from .snapshot import load_database

        return load_database(path, buffer_capacity=buffer_capacity, config=config)

    # -- probability helper ----------------------------------------------------------------

    def existence_probability(self, t: ProbabilisticTuple) -> float:
        """Pr(tuple exists) against this database's history store."""
        return probability_of(t, self.catalog.store, None, self.config)
