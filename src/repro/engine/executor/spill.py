"""Spill-to-disk machinery for memory-bounded operators.

``ModelConfig.work_mem`` caps how many bytes a blocking operator may
materialise in memory.  When an input exceeds the budget, operators fall
back to classic external algorithms:

* the hash join partitions both sides to disk Grace-style and joins the
  partitions one at a time (``relational.HashJoin``),
* ``ORDER BY`` / ``ORDER BY PROB(*)`` / ``DISTINCT`` spill sorted runs and
  merge them back (:class:`ExternalSorter`).

Spilled results must stay **bitwise identical** to the in-memory paths —
the same tuples, the same order, the same tuple ids.  The building blocks
here are designed around that invariant:

* :class:`SpillFile` frames records as ``[u64 seq][u32 len][payload]``
  where the payload is the storage layer's exact tuple encoding
  (:func:`~repro.engine.storage.serialize.encode_tuple` round-trips
  bitwise, lineage included) and ``seq`` is the record's position in the
  original stream.  Merging runs by ``(key, seq)`` therefore reproduces a
  stable in-memory sort exactly.
* :class:`SpillManager` owns the on-disk scratch space.  With
  ``ModelConfig.spill_dir`` set (durable databases point it inside the
  database directory) files land there; otherwise each manager creates a
  private temporary directory.  Cleanup runs on success and on ordinary
  exceptions — **not** on :class:`~repro.engine.faults.InjectedCrash` or
  other ``BaseException``, because nothing survives a real power cut;
  recovery on the next open clears the durable spill directory instead.

Every frame write passes the ``"spill.write"`` fault point so the crash
matrix can kill the process mid-spill.
"""

from __future__ import annotations

import heapq
import io
import os
import pickle
import shutil
import struct
import tempfile
import threading
from typing import Any, Iterator, List, Optional, Tuple

from ...core.model import ProbabilisticTuple
from ..faults import reach
from ..storage.serialize import decode_tuple, encode_tuple

__all__ = [
    "SPILL_STATS",
    "ExternalSorter",
    "SpillFile",
    "SpillManager",
    "SpillStats",
    "estimate_tuple_bytes",
]

_FRAME_HEADER = struct.Struct("<QI")  # (seq, payload length)


def estimate_tuple_bytes(t: ProbabilisticTuple) -> int:
    """A cheap, deterministic estimate of a tuple's in-memory footprint.

    Exact ``sys.getsizeof`` walks are too slow for per-tuple accounting and
    differ across interpreters; a coarse structural formula is enough to
    decide "does this input fit in work_mem" deterministically everywhere.
    """
    size = 96  # tuple object + dict headers
    for v in t.certain.values():
        size += 48 + (len(v) if isinstance(v, str) else 0)
    for dep, pdf in t.pdfs.items():
        size += 64 * len(dep)
        size += 160 if pdf is not None else 16
    if t.lineage:
        for lin in t.lineage.values():
            size += 48 + 32 * len(lin)
    return size


class SpillStats:
    """Process-global spill counters (reset per benchmark cell / test)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.join_spills = 0
        self.join_partitions = 0
        self.sort_spills = 0
        self.sort_runs = 0
        self.bytes_written = 0

    def reset(self) -> None:
        with self._lock:
            self.join_spills = 0
            self.join_partitions = 0
            self.sort_spills = 0
            self.sort_runs = 0
            self.bytes_written = 0

    def on_join_spill(self, partitions: int) -> None:
        with self._lock:
            self.join_spills += 1
            self.join_partitions += partitions

    def on_sort_spill(self, runs: int) -> None:
        with self._lock:
            self.sort_spills += 1
            self.sort_runs += runs

    def on_write(self, nbytes: int) -> None:
        with self._lock:
            self.bytes_written += nbytes

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "join_spills": self.join_spills,
                "join_partitions": self.join_partitions,
                "sort_spills": self.sort_spills,
                "sort_runs": self.sort_runs,
                "bytes_written": self.bytes_written,
            }


#: Global spill activity counters; benchmarks assert on these to prove a
#: sweep actually spilled.
SPILL_STATS = SpillStats()


class SpillManager:
    """Owns one operator invocation's scratch directory and spill files.

    Use as a context manager.  The directory is removed on clean exit and
    on ordinary exceptions; an :class:`InjectedCrash` (any ``BaseException``
    that is not an ``Exception``) leaves files behind on purpose — the
    recovery path of a durable database clears its spill directory on the
    next open, and tests assert exactly that.
    """

    _counter = 0
    _counter_lock = threading.Lock()

    def __init__(self, spill_dir: Optional[str] = None, label: str = "spill"):
        self._owns_dir = spill_dir is None
        if spill_dir is None:
            self.dir = tempfile.mkdtemp(prefix=f"repro-{label}-")
        else:
            with SpillManager._counter_lock:
                SpillManager._counter += 1
                n = SpillManager._counter
            self.dir = os.path.join(spill_dir, f"{label}-{os.getpid()}-{n}")
            os.makedirs(self.dir, exist_ok=True)
        self._files: List["SpillFile"] = []
        self._next_file = 0

    # -- context management --------------------------------------------------

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # A crash (BaseException that is not Exception) must leave the
        # scratch files on disk: nothing survives a real power cut, and
        # recovery is responsible for clearing durable spill directories.
        # GeneratorExit is ordinary control flow (a consumer abandoning a
        # spilling operator, e.g. under LIMIT), so it cleans up too.
        if exc_type is None or isinstance(exc, (Exception, GeneratorExit)):
            self.cleanup()
        return False

    def cleanup(self) -> None:
        for f in self._files:
            f.close()
        self._files.clear()
        shutil.rmtree(self.dir, ignore_errors=True)

    # -- file creation -------------------------------------------------------

    def create_file(self, label: str = "run") -> "SpillFile":
        self._next_file += 1
        path = os.path.join(self.dir, f"{label}-{self._next_file:05d}.spill")
        f = SpillFile(path)
        self._files.append(f)
        return f


class SpillFile:
    """A length-framed file of ``(seq, tuple[, extra])`` records.

    ``seq`` is the record's position in the original in-memory stream; the
    optional ``extra`` (pickled) carries operator-specific data such as a
    precomputed sort key or a join-side row index.  Frames are buffered
    and flushed in large chunks; every flush passes the ``spill.write``
    fault point *after* the data reached the file, so an armed crash
    leaves an observable file behind.
    """

    _FLUSH_BYTES = 1 << 20

    def __init__(self, path: str):
        self.path = path
        self._buf = io.BytesIO()
        self._file: Optional[Any] = open(path, "wb")
        self.frames = 0
        self.bytes = 0

    # -- writing -------------------------------------------------------------

    def append(
        self,
        seq: int,
        t: Optional[ProbabilisticTuple],
        extra: Any = None,
        store_lineage: bool = True,
    ) -> None:
        payload = encode_tuple(t, store_lineage=store_lineage) if t is not None else b""
        blob = pickle.dumps(extra, protocol=pickle.HIGHEST_PROTOCOL) if extra is not None else b""
        header = _FRAME_HEADER.pack(seq, len(payload))
        self._buf.write(header)
        self._buf.write(struct.pack("<I", len(blob)))
        if blob:
            self._buf.write(blob)
        if payload:
            self._buf.write(payload)
        self.frames += 1
        if self._buf.tell() >= self._FLUSH_BYTES:
            self._flush()

    def _flush(self) -> None:
        data = self._buf.getvalue()
        if not data:
            return
        assert self._file is not None
        self._file.write(data)
        self._file.flush()
        self.bytes += len(data)
        SPILL_STATS.on_write(len(data))
        self._buf = io.BytesIO()
        reach("spill.write")

    def finish(self) -> None:
        """Flush buffered frames and close the write handle."""
        if self._file is not None:
            self._flush()
            self._file.close()
            self._file = None

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    # -- reading -------------------------------------------------------------

    def read(self) -> Iterator[Tuple[int, Optional[ProbabilisticTuple], Any]]:
        """Yield ``(seq, tuple, extra)`` frames in file order."""
        self.finish()
        with open(self.path, "rb") as f:
            data = f.read()
        off = 0
        end = len(data)
        while off < end:
            seq, payload_len = _FRAME_HEADER.unpack_from(data, off)
            off += _FRAME_HEADER.size
            (blob_len,) = struct.unpack_from("<I", data, off)
            off += 4
            extra = None
            if blob_len:
                extra = pickle.loads(data[off : off + blob_len])
                off += blob_len
            t: Optional[ProbabilisticTuple] = None
            if payload_len:
                t, off = decode_tuple(data, off)
            yield seq, t, extra


class ExternalSorter:
    """External merge sort with in-memory fallback below ``work_mem``.

    Feed items with :meth:`add`; iterate :meth:`sorted` to drain.  Items
    are ``(key, tuple, extra)`` triples; output order is ``(key, seq)``
    with ``seq`` the 0-based :meth:`add` order — exactly the order a
    stable in-memory sort of the same stream produces.

    ``key`` must be a picklable, orderable value (the operators build
    type-ranked tuples so cross-type comparisons never happen).
    """

    def __init__(
        self,
        manager: SpillManager,
        work_mem: int,
        descending: bool = False,
        store_lineage: bool = True,
    ):
        self._manager = manager
        self._work_mem = max(1, int(work_mem))
        self._descending = descending
        self._store_lineage = store_lineage
        self._pending: List[Tuple[Any, int, Optional[ProbabilisticTuple], Any]] = []
        self._pending_bytes = 0
        self._runs: List[SpillFile] = []
        self._seq = 0

    # -- feeding -------------------------------------------------------------

    def add(self, key: Any, t: Optional[ProbabilisticTuple], extra: Any = None) -> None:
        self._pending.append((key, self._seq, t, extra))
        self._seq += 1
        self._pending_bytes += (estimate_tuple_bytes(t) if t is not None else 64) + 64
        if self._pending_bytes >= self._work_mem:
            self._spill_run()

    def _sort_pending(self) -> None:
        # Stable sort by key alone; ties keep add order — identical to the
        # in-memory operators' list.sort(key=..., reverse=...) semantics.
        self._pending.sort(key=lambda item: item[0], reverse=self._descending)

    def _spill_run(self) -> None:
        if not self._pending:
            return
        self._sort_pending()
        run = self._manager.create_file("sortrun")
        for key, seq, t, extra in self._pending:
            run.append(seq, t, extra=(key, extra), store_lineage=self._store_lineage)
        run.finish()
        self._runs.append(run)
        self._pending = []
        self._pending_bytes = 0

    # -- draining ------------------------------------------------------------

    @property
    def run_count(self) -> int:
        """Number of spilled runs (0 means the sort stayed in memory)."""
        return len(self._runs)

    def sorted(self) -> Iterator[Tuple[Any, int, Optional[ProbabilisticTuple], Any]]:
        """Yield ``(key, seq, tuple, extra)`` in stable sorted order."""
        if not self._runs:
            self._sort_pending()
            for item in self._pending:
                yield item
            return
        # Spill the tail so everything merges uniformly.
        self._spill_run()
        SPILL_STATS.on_sort_spill(len(self._runs))

        descending = self._descending

        def frames(run: SpillFile) -> Iterator[Tuple[Any, int, Optional[ProbabilisticTuple], Any]]:
            for seq, t, extra in run.read():
                key, user_extra = extra
                yield key, seq, t, user_extra

        def merge_key(item: Tuple[Any, int, Any, Any]) -> Tuple[Any, int]:
            key, seq = item[0], item[1]
            return (_Reversed(key), seq) if descending else (key, seq)

        for item in heapq.merge(*(frames(r) for r in self._runs), key=merge_key):
            yield item


class _Reversed:
    """Inverts comparison so heapq.merge can honour ``descending``.

    Ties compare equal, letting the tuple's second element (ascending
    ``seq``) break them — the stable-sort tie rule.
    """

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_Reversed") -> bool:
        return other.value < self.value

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.value == self.value
