"""ColumnarBatch: a TupleBatch that carries a struct-of-arrays view.

Scans emit these when ``ModelConfig.columnar`` is on.  The batch still owns
its tuple list — every existing operator that only reads ``.tuples`` works
unchanged — but it additionally references a
:class:`~repro.core.columnar.ColumnarSegment` (usually cached on the source
relation or built per page chunk) plus its row offset into that segment, so
columnar-aware operators (Filter, ProbFilter, ThresholdFilter) can fetch
per-family parameter arrays for their dependency set without touching the
tuples at all.

At any boundary that cannot carry columns (process-backend exchange,
operators that rebuild plain :class:`TupleBatch` es) the batch degrades to
its tuple list; correctness never depends on the columns being present.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Sequence, Tuple

import numpy as np

from ...core.columnar import AttrColumn, ColumnarSegment
from .batch import TupleBatch

__all__ = ["ColumnarBatch"]


class ColumnarBatch(TupleBatch):
    """A batch of tuples plus a (possibly shared) columnar segment view.

    ``segment`` may cover a larger span than this batch; ``offset`` locates
    the batch's rows inside it.  ``segment=None`` means "build one lazily
    from my own tuples on first column access" — scans over ad-hoc tuple
    lists use this so the gather cost is only paid if a columnar operator
    actually asks for columns.
    """

    __slots__ = ("segment", "offset")

    def __init__(
        self,
        tuples: Sequence,
        segment: Optional[ColumnarSegment] = None,
        offset: int = 0,
    ):
        self.tuples = tuples if type(tuples) is list else list(tuples)
        self.segment = segment
        self.offset = offset

    def attr_column(self, dep: FrozenSet[str]) -> Optional[AttrColumn]:
        """The per-family parameter view of ``dep`` for this batch's rows.

        ``None`` signals "columns unavailable" (the shared segment is a
        stale snapshot that no longer covers these rows); callers must then
        fall back to the tuple path.
        """
        seg = self.segment
        if seg is None:
            seg = self.segment = ColumnarSegment(self.tuples)
            self.offset = 0
        stop = self.offset + len(self.tuples)
        if stop > seg.n:
            return None
        col = seg.column(dep)
        if self.offset == 0 and stop == seg.n:
            return col
        return col.slice(self.offset, stop)

    def tuple_ids(self) -> np.ndarray:
        """Provenance vector for this batch's rows."""
        seg = self.segment
        if seg is None:
            seg = self.segment = ColumnarSegment(self.tuples)
            self.offset = 0
        return seg.tuple_ids()[self.offset : self.offset + len(self.tuples)]

    def certain_column(self, attr: str) -> Optional[Tuple[np.ndarray, np.ndarray]]:
        """``(values, null_mask)`` for a numeric certain column of this batch."""
        seg = self.segment
        if seg is None:
            seg = self.segment = ColumnarSegment(self.tuples)
            self.offset = 0
        out = seg.certain_column(attr)
        if out is None:
            return None
        lo, hi = self.offset, self.offset + len(self.tuples)
        return out[0][lo:hi], out[1][lo:hi]

    def __reduce__(self):
        # Columns never cross a pickle boundary (process-backend exchange);
        # the receiving side rebuilds them if it wants them.
        return (TupleBatch, (self.tuples,))

    def __repr__(self) -> str:
        return f"ColumnarBatch({len(self.tuples)} tuples)"
