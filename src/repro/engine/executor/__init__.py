"""Volcano-style executor operators over probabilistic tuples."""

from .aggregate import AggSpec, Aggregate, Distinct, GroupAggregate
from .base import Operator
from .batch import DEFAULT_BATCH_SIZE, TupleBatch, batched, flatten
from .compute import Compute
from .relational import (
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    ProbFilter,
    Project,
    RenameOp,
    Scalarize,
    Sort,
    SortByProbability,
    ThresholdFilter,
)
from .scan import BTreeScan, PtiScan, RelationScan, SeqScan, SpatialScan
from .parallel import (
    Exchange,
    Gather,
    ParallelHashJoin,
    ParallelNestedLoopJoin,
    last_run_stats,
    parallelize_plan,
    reset_run_stats,
)

__all__ = [
    "Operator",
    "TupleBatch",
    "DEFAULT_BATCH_SIZE",
    "batched",
    "flatten",
    "SeqScan",
    "BTreeScan",
    "PtiScan",
    "SpatialScan",
    "RelationScan",
    "Filter",
    "Project",
    "Compute",
    "NestedLoopJoin",
    "HashJoin",
    "ThresholdFilter",
    "ProbFilter",
    "RenameOp",
    "Scalarize",
    "Sort",
    "SortByProbability",
    "Limit",
    "Aggregate",
    "AggSpec",
    "GroupAggregate",
    "Distinct",
    "Exchange",
    "Gather",
    "ParallelHashJoin",
    "ParallelNestedLoopJoin",
    "parallelize_plan",
    "reset_run_stats",
    "last_run_stats",
]
