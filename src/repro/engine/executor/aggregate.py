"""Aggregate operator: COUNT / SUM / AVG(expected) / MIN / MAX over a stream.

Aggregates over uncertain attributes return *distributions*: COUNT(*) is a
Poisson-binomial over existence events, SUM(attr) is a convolution (exact
or continuous-approximated per Section I's discussion), MIN/MAX come from
cdf products.  EXPECTED(attr) returns a certain scalar.

The operator materialises its input (aggregation is inherently blocking)
into a transient :class:`ProbabilisticRelation` and delegates the math to
:mod:`repro.core.aggregates`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

import numpy as np

from ...core import aggregates as agg
from ...core.columnar import ColumnarSegment
from ...core.history import HistoryStore
from ...core.join import keys_kernelizable
from ...core.model import (
    DEFAULT_CONFIG,
    Column,
    DataType,
    ModelConfig,
    ProbabilisticRelation,
    ProbabilisticSchema,
    ProbabilisticTuple,
)
from ...core.threshold import columnar_probability_of, probability_of
from ...errors import QueryError, UnsupportedOperationError
from .base import Operator
from .batch import DEFAULT_BATCH_SIZE, TupleBatch, batched, flatten
from .columnar import ColumnarBatch
from .spill import ExternalSorter, SpillManager

__all__ = ["AggSpec", "Aggregate", "GroupAggregate", "Distinct"]

_FUNCTIONS = ("count", "sum", "expected", "min", "max")


def _total_order_key(values) -> Optional[tuple]:
    """A totally ordered, picklable encoding of a grouping-key tuple.

    Two encodings compare equal exactly when the raw tuples are equal as
    Python dict keys: numerics (bool/int/float) become exact ``Fraction``s
    so ``1 == 1.0 == True`` grouping survives, None ranks first, strings
    last.  Returns ``None`` for values with no dict-compatible total order
    (NaN, exotic types) — callers fall back to the in-memory dict.
    """
    from fractions import Fraction

    out = []
    for v in values:
        if v is None:
            out.append((0, 0))
        elif isinstance(v, str):
            out.append((2, v))
        elif isinstance(v, (bool, int, float)):
            if isinstance(v, float):
                if v != v:
                    return None  # nan: nan != nan has no total order
                if v in (float("inf"), float("-inf")):
                    out.append((1, v))
                    continue
            out.append((1, Fraction(v)))
        else:
            return None
    return tuple(out)


@dataclass(frozen=True)
class AggSpec:
    """One aggregate item: function, argument column, output name."""

    func: str
    attr: Optional[str] = None
    alias: Optional[str] = None
    method: str = "auto"  # SUM only: exact | gaussian | histogram | auto

    def __post_init__(self) -> None:
        if self.func not in _FUNCTIONS:
            raise QueryError(f"unknown aggregate {self.func!r}; use one of {_FUNCTIONS}")
        if self.func != "count" and self.attr is None:
            raise QueryError(f"{self.func.upper()} needs a column argument")

    @property
    def output_name(self) -> str:
        if self.alias:
            return self.alias
        return self.func if self.attr is None else f"{self.func}_{self.attr}"


class Aggregate(Operator):
    """Blocking aggregation producing exactly one output tuple."""

    def __init__(
        self,
        child: Operator,
        specs: Sequence[AggSpec],
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        if not specs:
            raise QueryError("aggregate needs at least one item")
        self.child = child
        self.specs = list(specs)
        self.store = store
        self.config = config
        columns: List[Column] = []
        dependency = []
        for spec in self.specs:
            name = spec.output_name
            if spec.func == "expected":
                columns.append(Column(name, DataType.REAL))
            else:
                columns.append(Column(name, DataType.REAL))
                dependency.append({name})
        self.output_schema = ProbabilisticSchema(columns, dependency)

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return self._execute(iter(self.child))

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        return batched(self._execute(flatten(self.child.batches(size))), size)

    def _execute(self, source) -> Iterator[ProbabilisticTuple]:
        rel = ProbabilisticRelation(self.child.output_schema, store=self.store)
        for t in source:
            rel.add_tuple(t, acquire=False)

        certain = {}
        pdfs = {}
        lineage = {}
        for spec in self.specs:
            name = spec.output_name
            if spec.func == "count":
                result = agg.count_distribution(rel, self.config).with_attrs([name])
            elif spec.func == "sum":
                result = agg.sum_distribution(
                    rel, spec.attr, method=spec.method, config=self.config
                ).with_attrs([name])
            elif spec.func == "expected":
                certain[name] = agg.expected_value(rel, spec.attr, self.config)
                continue
            elif spec.func == "min":
                result = agg.min_distribution(rel, spec.attr).with_attrs([name])
            else:  # max
                result = agg.max_distribution(rel, spec.attr).with_attrs([name])
            pdfs[frozenset({name})] = result
            lineage[frozenset({name})] = frozenset()
        yield ProbabilisticTuple(self.store.new_tuple_id(), certain, pdfs, lineage)

    def children(self) -> List[Operator]:
        return [self.child]

    def label(self) -> str:
        items = ", ".join(
            f"{s.func.upper()}({s.attr or '*'}) AS {s.output_name}" for s in self.specs
        )
        return f"Aggregate({items})"


class GroupAggregate(Operator):
    """GROUP BY over certain columns, with per-group aggregates.

    Emits one tuple per distinct grouping-key combination (keys with NULLs
    group together, as in SQL), carrying the group's certain key values and
    one (possibly distribution-valued) column per aggregate item.
    """

    def __init__(
        self,
        child: Operator,
        group_attrs: Sequence[str],
        specs: Sequence[AggSpec],
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        if not group_attrs:
            raise QueryError("GROUP BY needs at least one column")
        for attr in group_attrs:
            if not child.output_schema.has_column(attr):
                raise QueryError(f"GROUP BY column {attr!r} is unknown")
            if child.output_schema.is_uncertain(attr):
                raise QueryError(
                    f"GROUP BY needs certain columns; {attr!r} is uncertain "
                    "(grouping by uncertain values requires possible-worlds "
                    "semantics over group membership)"
                )
        self.child = child
        self.group_attrs = list(group_attrs)
        self.specs = list(specs)
        self.store = store
        self.config = config
        self.groupby_groups = 0
        group_columns = [child.output_schema.column(a) for a in self.group_attrs]
        agg_columns: List[Column] = []
        dependency = []
        for spec in self.specs:
            agg_columns.append(Column(spec.output_name, DataType.REAL))
            if spec.func != "expected":
                dependency.append({spec.output_name})
        self.output_schema = ProbabilisticSchema(
            group_columns + agg_columns, dependency
        )

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return self._execute(iter(self.child))

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        return batched(self._execute(flatten(self.child.batches(size))), size)

    def _execute(self, source) -> Iterator[ProbabilisticTuple]:
        if not self.config.columnar:
            yield from self._execute_reference(source)
            return
        tuples = list(source)
        emit = self._execute_columnar(tuples)
        if emit is None:
            yield from self._execute_reference(iter(tuples))
        else:
            yield from emit

    def _execute_columnar(self, tuples):
        """Vectorized grouping over certain key columns; ``None`` falls back.

        Group codes come from ``np.unique`` on the segment's certain column
        vectors (NULL keys take a sentinel code and group together, as in
        SQL and the reference dict).  Groups are emitted in first-appearance
        order with one fresh tuple id each — the identical id stream, group
        order and bitwise-identical cells of the reference path.  Any shape
        float64 keys cannot express (strings, nan, magnitudes >= 2**53), or
        any error from a vectorized aggregate, returns ``None`` so the
        reference path decides — fallbacks here are performance events,
        never semantic ones.
        """
        if not tuples:
            return iter(())
        n = len(tuples)
        seg = ColumnarSegment(tuples)
        codes = np.zeros(n, dtype=np.int64)
        max_code = 0
        for attr in self.group_attrs:
            colv = seg.certain_column(attr)
            if colv is None:
                return None  # non-numeric keys keep Python dict semantics
            vals, mask = colv
            if not keys_kernelizable(vals, mask):
                return None  # nan / huge keys diverge from float64 equality
            live = ~mask
            uniq, inv = np.unique(vals[live], return_inverse=True)
            max_code = max_code * (len(uniq) + 1) + len(uniq)
            if max_code > 2**62:
                return None  # mixed-radix code would overflow int64
            attr_codes = np.empty(n, dtype=np.int64)
            attr_codes[live] = inv
            attr_codes[mask] = len(uniq)
            codes = codes * np.int64(len(uniq) + 1) + attr_codes

        uniq_codes, inv = np.unique(codes, return_inverse=True)
        k = len(uniq_codes)
        first_pos = np.full(k, n, dtype=np.int64)
        np.minimum.at(first_pos, inv, np.arange(n, dtype=np.int64))
        seen_order = np.argsort(first_pos, kind="stable")
        rank = np.empty(k, dtype=np.int64)
        rank[seen_order] = np.arange(k, dtype=np.int64)
        gcodes = rank[inv]  # per-row group index, first-appearance order
        first_row = first_pos[seen_order]
        counts = np.bincount(gcodes, minlength=k)
        # Stable sort by group keeps rows ascending within each group — the
        # insertion order of the reference per-group relations.
        rows_sorted = np.argsort(gcodes, kind="stable")
        group_rows = np.split(rows_sorted, np.cumsum(counts)[:-1])

        probs = None
        if any(spec.func == "count" for spec in self.specs):
            seen: set = set()
            for t in tuples:
                refs = {
                    link.ref for lineage in t.lineage.values() for link in lineage
                }
                if refs & seen:
                    # A shared ancestor *within* one group must raise with
                    # the reference message; across groups it is legal.
                    # Either way the reference path decides.
                    return None
                seen |= refs
            probs = columnar_probability_of(
                ColumnarBatch(tuples, seg, 0), self.store, None, self.config
            )
        expected_totals = {}
        for spec in self.specs:
            if spec.func != "expected":
                continue
            try:
                dep = tuples[0].dependency_set_of(spec.attr)
                if dep is None:
                    return None  # certain attr: reference raises QueryError
                contribs = agg.expected_contributions(
                    tuples, spec.attr, seg.column(dep)
                )
            except (QueryError, UnsupportedOperationError, KeyError):
                return None  # re-raised by the reference path, in its order
            # bincount accumulates input-sequentially per bin, so each
            # group's total adds contributions in row order — bitwise equal
            # to the scalar expected_value loop.
            expected_totals[spec.output_name] = np.bincount(
                gcodes, weights=contribs, minlength=k
            )
        return self._emit_groups(tuples, group_rows, first_row, probs, expected_totals)

    def _emit_groups(
        self, tuples, group_rows, first_row, probs, expected_totals
    ) -> Iterator[ProbabilisticTuple]:
        for g, rows in enumerate(group_rows):
            first = tuples[int(first_row[g])]
            certain = {a: first.certain.get(a) for a in self.group_attrs}
            pdfs = {}
            lineage = {}
            rel = None
            for spec in self.specs:
                name = spec.output_name
                if spec.func == "count":
                    result = agg.count_from_probs(
                        [probs[int(i)] for i in rows]
                    ).with_attrs([name])
                elif spec.func == "expected":
                    certain[name] = float(expected_totals[name][g])
                    continue
                else:
                    if rel is None:
                        rel = ProbabilisticRelation(
                            self.child.output_schema, store=self.store
                        )
                        for i in rows:
                            rel.add_tuple(tuples[int(i)], acquire=False)
                    if spec.func == "sum":
                        result = agg.sum_distribution(
                            rel, spec.attr, method=spec.method, config=self.config
                        ).with_attrs([name])
                    elif spec.func == "min":
                        result = agg.min_distribution(rel, spec.attr).with_attrs(
                            [name]
                        )
                    else:  # max
                        result = agg.max_distribution(rel, spec.attr).with_attrs(
                            [name]
                        )
                pdfs[frozenset({name})] = result
                lineage[frozenset({name})] = frozenset()
            self.groupby_groups += 1
            yield ProbabilisticTuple(
                self.store.new_tuple_id(), certain, pdfs, lineage
            )

    def _execute_reference(self, source) -> Iterator[ProbabilisticTuple]:
        groups: dict = {}
        order: List[tuple] = []
        for t in source:
            key = tuple(t.certain.get(a) for a in self.group_attrs)
            if key not in groups:
                groups[key] = ProbabilisticRelation(
                    self.child.output_schema, store=self.store
                )
                order.append(key)
            groups[key].add_tuple(t, acquire=False)

        for key in order:
            rel = groups[key]
            certain = dict(zip(self.group_attrs, key))
            pdfs = {}
            lineage = {}
            for spec in self.specs:
                name = spec.output_name
                if spec.func == "count":
                    result = agg.count_distribution(rel, self.config).with_attrs([name])
                elif spec.func == "sum":
                    result = agg.sum_distribution(
                        rel, spec.attr, method=spec.method, config=self.config
                    ).with_attrs([name])
                elif spec.func == "expected":
                    certain[name] = agg.expected_value(rel, spec.attr, self.config)
                    continue
                elif spec.func == "min":
                    result = agg.min_distribution(rel, spec.attr).with_attrs([name])
                else:  # max
                    result = agg.max_distribution(rel, spec.attr).with_attrs([name])
                pdfs[frozenset({name})] = result
                lineage[frozenset({name})] = frozenset()
            yield ProbabilisticTuple(
                self.store.new_tuple_id(), certain, pdfs, lineage
            )

    def children(self) -> List[Operator]:
        return [self.child]

    def explain_extras(self) -> List[str]:
        if not self.groupby_groups:
            return []
        return [f"groupby_groups={self.groupby_groups}"]

    def label(self) -> str:
        items = ", ".join(
            f"{s.func.upper()}({s.attr or '*'})" for s in self.specs
        )
        return f"GroupAggregate(by {', '.join(self.group_attrs)}; {items})"


class Distinct(Operator):
    """SELECT DISTINCT over certain-valued rows (paper future work).

    Delegates to :func:`repro.core.distinct.distinct`; existence
    probabilities combine under verified historical independence, and the
    result rows carry their probability in a phantom dependency set.
    """

    def __init__(
        self,
        child: Operator,
        store: HistoryStore,
        config: ModelConfig = DEFAULT_CONFIG,
    ):
        from ...core.distinct import EXISTS_ATTR

        self.child = child
        self.store = store
        self.config = config
        self.output_schema = ProbabilisticSchema(
            child.output_schema.columns, [{EXISTS_ATTR}]
        )
        #: EXPLAIN ANALYZE: spilled runs merged by the external grouping path
        self.sort_runs = 0
        if child.output_schema.uncertain_attrs:
            raise QueryError(
                "SELECT DISTINCT needs certain output columns; project or "
                "aggregate the uncertain ones first (paper Section III-B "
                "leaves general duplicate elimination to future work)"
            )

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return self._execute(iter(self.child))

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        source = flatten(self.child.batches(size))
        work_mem = self.config.work_mem or 0
        if work_mem:
            return batched(self._execute_external(source, work_mem), size)
        return batched(self._execute(source), size)

    def _execute(self, source) -> Iterator[ProbabilisticTuple]:
        from ...core.distinct import distinct as core_distinct

        rel = ProbabilisticRelation(self.child.output_schema, store=self.store)
        for t in source:
            rel.add_tuple(t, acquire=False)
        return iter(core_distinct(rel, self.config).tuples)

    def _execute_external(self, source, work_mem: int) -> Iterator[ProbabilisticTuple]:
        """Memory-bounded duplicate elimination via external sort-group.

        The input is externally sorted by a total-order encoding of the
        grouping key (exact ``Fraction`` for numerics, so cross-type
        ``1 == 1.0 == True`` equality matches the in-memory dict), groups
        stream adjacently with members in input order, and the per-group
        output specs — one per distinct row, output-sized — are emitted in
        first-appearance order with sequentially assigned tuple ids:
        bitwise identical to :func:`repro.core.distinct.distinct`.  NaN
        keys have no dict-compatible total order, so they replay the raw
        input (spooled to disk, memory stays bounded) through the
        in-memory reference.
        """
        from ...core.distinct import EXISTS_ATTR
        from ...core.distinct import distinct as core_distinct
        from ...core.history import historically_dependent
        from ...pdf.discrete import DiscretePdf

        columns = self.child.output_schema.visible_attrs
        with SpillManager(self.config.spill_dir, label="distinct") as mgr:
            raw = mgr.create_file("input")
            sorter = ExternalSorter(mgr, work_mem)
            bad_keys = False
            for seq, t in enumerate(source):
                raw.append(seq, t)
                if not bad_keys:
                    key = _total_order_key([t.certain.get(c) for c in columns])
                    if key is None:
                        bad_keys = True
                    else:
                        sorter.add(key, t)
            raw.finish()
            if bad_keys:
                rel = ProbabilisticRelation(
                    self.child.output_schema, store=self.store
                )
                for _seq, t, _ in raw.read():
                    rel.add_tuple(t, acquire=False)
                yield from iter(core_distinct(rel, self.config).tuples)
                return

            # (first-member seq, first-member certain values, exists prob,
            #  combined lineage) per distinct row — output-sized state.
            specs: List[tuple] = []
            cur_key = _SENTINEL = object()
            members: List[ProbabilisticTuple] = []

            def close_group() -> None:
                if not members:
                    return
                lineages = [
                    frozenset().union(*t.lineage.values()) if t.lineage else frozenset()
                    for t in members
                ]
                for i in range(len(members)):
                    for j in range(i + 1, len(members)):
                        if historically_dependent(lineages[i], lineages[j]):
                            raise UnsupportedOperationError(
                                "duplicate elimination over historically "
                                "dependent tuples is not supported (paper "
                                "Section III-B); rows "
                                f"{members[i].tuple_id} and "
                                f"{members[j].tuple_id} share ancestors"
                            )
                absent = 1.0
                for t in members:
                    absent *= 1.0 - probability_of(t, self.store, None, self.config)
                specs.append(
                    (
                        first_seq,
                        {c: members[0].certain.get(c) for c in columns},
                        1.0 - absent,
                        frozenset().union(*lineages),
                    )
                )

            first_seq = 0
            for key, seq, t, _ in sorter.sorted():
                if key != cur_key:
                    close_group()
                    cur_key = key
                    members = []
                    first_seq = seq
                members.append(t)
            close_group()
            self.sort_runs += sorter.run_count

        specs.sort(key=lambda spec: spec[0])
        dep = frozenset({EXISTS_ATTR})
        for _seq, certain, exists, combined in specs:
            out_t = ProbabilisticTuple(
                self.store.new_tuple_id(),
                certain,
                {dep: DiscretePdf({1.0: exists}, attr=EXISTS_ATTR)},
                {dep: combined},
            )
            # The in-memory path adds each output row to a derived relation,
            # acquiring its ancestor references; mirror that side effect.
            if combined:
                self.store.acquire(combined)
            yield out_t

    def explain_extras(self) -> List[str]:
        if not self.sort_runs:
            return []
        return [f"sort_runs={self.sort_runs}"]

    def children(self) -> List[Operator]:
        return [self.child]

    def label(self) -> str:
        return "Distinct"
