"""Batched execution: TupleBatch and the chunking helpers.

The batch pipeline moves vectors of tuples between operators instead of one
tuple per ``next()`` call.  Each operator implements
``batches(size) -> Iterator[TupleBatch]``; the default implementation in
:class:`~repro.engine.executor.base.Operator` chunks the operator's scalar
iterator, so every operator is batch-capable and batch-native operators
(scans that decode a pinned page at a time, filters that hand whole batches
to the vectorized selection kernels) override it for speed.  The scalar
``__iter__`` protocol remains intact as a compatibility shim; both paths
produce identical tuples in identical order.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence

from ...core.model import ProbabilisticTuple

__all__ = ["DEFAULT_BATCH_SIZE", "TupleBatch", "batched", "flatten"]

#: Default number of tuples per batch; overridden by ``ModelConfig.batch_size``.
DEFAULT_BATCH_SIZE = 256


class TupleBatch:
    """An ordered vector of probabilistic tuples flowing through the pipeline.

    Deliberately thin — a named wrapper over a list — so that operators can
    slice, extend and rebuild batches without copying overhead.  Batches are
    never empty except transiently inside operators; the chunking helpers
    only emit non-empty batches.
    """

    __slots__ = ("tuples",)

    def __init__(self, tuples: Sequence[ProbabilisticTuple]):
        # No-copy fast path: every constructor call site hands over a list
        # it will not mutate afterwards (fresh slices, comprehensions, or
        # buffers it immediately rebinds), so copying again is pure waste
        # on the hot batch path.  Non-list sequences still get materialized.
        self.tuples = tuples if type(tuples) is list else list(tuples)

    def __len__(self) -> int:
        return len(self.tuples)

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return iter(self.tuples)

    def __getitem__(self, i):
        return self.tuples[i]

    def __repr__(self) -> str:
        return f"TupleBatch({len(self.tuples)} tuples)"


def batched(
    source: Iterable[ProbabilisticTuple], size: int = DEFAULT_BATCH_SIZE
) -> Iterator[TupleBatch]:
    """Chunk a tuple iterable into :class:`TupleBatch` es of at most ``size``."""
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    buf: List[ProbabilisticTuple] = []
    for t in source:
        buf.append(t)
        if len(buf) >= size:
            yield TupleBatch(buf)
            buf = []
    if buf:
        yield TupleBatch(buf)


def flatten(batches: Iterable[TupleBatch]) -> Iterator[ProbabilisticTuple]:
    """The inverse of :func:`batched`: stream the tuples of a batch iterable."""
    for batch in batches:
        yield from batch.tuples
