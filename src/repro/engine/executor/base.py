"""Iterator-model executor: the operator interface.

Operators form a tree; each yields :class:`ProbabilisticTuple` instances
and exposes its output :class:`ProbabilisticSchema`.  All probabilistic
math is delegated to the plans in :mod:`repro.core` — operators only
orchestrate streaming, storage access and index usage.
"""

from __future__ import annotations

from typing import Iterator, List

from ...core.model import ProbabilisticSchema, ProbabilisticTuple

__all__ = ["Operator"]


class Operator:
    """Base class of executor operators (Volcano-style, pull-based)."""

    output_schema: ProbabilisticSchema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        raise NotImplementedError

    def children(self) -> List["Operator"]:
        return []

    def label(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Render the plan subtree."""
        lines = ["  " * indent + "-> " + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)
