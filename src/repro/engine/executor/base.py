"""Iterator-model executor: the operator interface.

Operators form a tree; each yields :class:`ProbabilisticTuple` instances
and exposes its output :class:`ProbabilisticSchema`.  All probabilistic
math is delegated to the plans in :mod:`repro.core` — operators only
orchestrate streaming, storage access and index usage.
"""

from __future__ import annotations

from typing import Iterator, List

from ...core.model import ProbabilisticSchema, ProbabilisticTuple
from .batch import DEFAULT_BATCH_SIZE, TupleBatch, batched

__all__ = ["Operator"]


class Operator:
    """Base class of executor operators (Volcano-style, pull-based).

    Operators support two pull protocols:

    * the scalar iterator protocol (``__iter__``), one tuple per step;
    * the batch protocol (:meth:`batches`), a :class:`TupleBatch` per step.

    The default :meth:`batches` chunks the scalar iterator, so every
    operator is batch-capable; batch-native operators override it.  Both
    protocols produce identical tuples in identical order.
    """

    output_schema: ProbabilisticSchema

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        raise NotImplementedError

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        """Yield the operator's output as :class:`TupleBatch` es of ``size``."""
        return batched(iter(self), size)

    def children(self) -> List["Operator"]:
        return []

    def label(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__

    def explain(self, indent: int = 0) -> str:
        """Render the plan subtree."""
        lines = ["  " * indent + "-> " + self.label()]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)
