"""Iterator-model executor: the operator interface.

Operators form a tree; each yields :class:`ProbabilisticTuple` instances
and exposes its output :class:`ProbabilisticSchema`.  All probabilistic
math is delegated to the plans in :mod:`repro.core` — operators only
orchestrate streaming, storage access and index usage.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

from ...core.model import ProbabilisticSchema, ProbabilisticTuple
from .batch import DEFAULT_BATCH_SIZE, TupleBatch, batched

__all__ = ["Operator"]


class Operator:
    """Base class of executor operators (Volcano-style, pull-based).

    Operators support two pull protocols:

    * the scalar iterator protocol (``__iter__``), one tuple per step;
    * the batch protocol (:meth:`batches`), a :class:`TupleBatch` per step.

    The default :meth:`batches` chunks the scalar iterator, so every
    operator is batch-capable; batch-native operators override it.  Both
    protocols produce identical tuples in identical order.

    ``est_rows`` is set by the planner's cost model; ``actual_rows`` is
    filled in by instrumented operators when ``counting`` is enabled
    (EXPLAIN ANALYZE).  Both render as a ``[est=... actual=...]`` suffix in
    :meth:`explain`.
    """

    output_schema: ProbabilisticSchema

    #: planner's output-cardinality estimate (None = not estimated)
    est_rows: Optional[float] = None
    #: rows actually produced (None until a counted execution runs)
    actual_rows: Optional[int] = None
    #: when True, instrumented operators tally ``actual_rows`` as they run
    counting: bool = False

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        raise NotImplementedError

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        """Yield the operator's output as :class:`TupleBatch` es of ``size``."""
        return batched(iter(self), size)

    def children(self) -> List["Operator"]:
        return []

    def label(self) -> str:
        """One-line description used by EXPLAIN."""
        return type(self).__name__

    def explain_extras(self) -> List[str]:
        """Extra ``[...]`` annotations an operator wants in EXPLAIN output."""
        return []

    def explain(self, indent: int = 0) -> str:
        """Render the plan subtree."""
        line = "  " * indent + "-> " + self.label()
        notes = []
        if self.est_rows is not None:
            notes.append(f"est={self.est_rows:.0f}")
        if self.actual_rows is not None:
            notes.append(f"actual={self.actual_rows}")
        notes.extend(self.explain_extras())
        if notes:
            line += "  [" + " ".join(notes) + "]"
        lines = [line]
        for child in self.children():
            lines.append(child.explain(indent + 1))
        return "\n".join(lines)

    # -- instrumentation helpers (EXPLAIN ANALYZE) ---------------------------

    def _count_tuples(
        self, source: Iterator[ProbabilisticTuple]
    ) -> Iterator[ProbabilisticTuple]:
        """Tally a scalar stream into ``actual_rows`` when counting."""
        if not self.counting:
            yield from source
            return
        self.actual_rows = 0
        for t in source:
            self.actual_rows += 1
            yield t

    def _count_batches(self, source: Iterator[TupleBatch]) -> Iterator[TupleBatch]:
        """Tally a batch stream into ``actual_rows`` when counting."""
        if not self.counting:
            yield from source
            return
        self.actual_rows = 0
        for batch in source:
            self.actual_rows += len(batch)
            yield batch
