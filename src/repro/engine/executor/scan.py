"""Scan operators: sequential, B+tree, and probability-threshold index scans."""

from __future__ import annotations

from typing import Iterator, List, Optional

from ...core.model import ProbabilisticRelation, ProbabilisticTuple
from ...errors import QueryError
from ..storage.synopsis import ScanPruner
from ..table import Table
from .base import Operator
from .batch import DEFAULT_BATCH_SIZE, TupleBatch
from .columnar import ColumnarBatch

__all__ = ["SeqScan", "BTreeScan", "PtiScan", "SpatialScan", "RelationScan"]


def _rid_batches(
    table: Table, rids: Iterator, size: int, columnar: bool = True
) -> Iterator[TupleBatch]:
    """Chunk an RID stream into decoded TupleBatches via grouped page reads."""
    buf = []
    for t in table.read_grouped(rids):
        buf.append(t)
        if len(buf) >= size:
            yield ColumnarBatch(buf) if columnar else TupleBatch(buf)
            buf = []
    if buf:
        yield ColumnarBatch(buf) if columnar else TupleBatch(buf)


class _ColumnarScanMixin:
    """Shared EXPLAIN counters: batches emitted columnar vs. tuple-path."""

    columnar_batches: int = 0
    fallback_batches: int = 0

    def _columnar_extras(self) -> List[str]:
        total = self.columnar_batches + self.fallback_batches
        if not total:
            return []
        return [f"columnar_batches={self.columnar_batches}/{total}"]


class RelationScan(_ColumnarScanMixin, Operator):
    """Scan an in-memory probabilistic relation (no storage involved).

    Lets the executor operators run over :class:`ProbabilisticRelation`
    values produced by the model API — used by benchmarks and by users who
    want operator trees without a stored table.  With ``columnar`` on (the
    default) batches share the relation's cached
    :class:`~repro.core.columnar.ColumnarSegment`, so the per-family
    parameter gather is paid once per relation version, not once per scan.
    """

    def __init__(self, relation: ProbabilisticRelation, columnar: bool = True):
        self.relation = relation
        self.columnar = columnar
        self.output_schema = relation.schema
        self.columnar_batches = 0
        self.fallback_batches = 0

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return self._count_tuples(iter(self.relation.tuples))

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        def run():
            if self.columnar:
                # Slice the segment's snapshot, not the live tuple list, so
                # the row ↔ column alignment holds even if the relation
                # mutates mid-scan.
                seg = self.relation.columnar_segment()
                tuples = seg.tuples
                for start in range(0, len(tuples), size):
                    self.columnar_batches += 1
                    yield ColumnarBatch(tuples[start : start + size], seg, start)
                return
            tuples = self.relation.tuples
            for start in range(0, len(tuples), size):
                self.fallback_batches += 1
                yield TupleBatch(tuples[start : start + size])

        return self._count_batches(run())

    def explain_extras(self) -> List[str]:
        return self._columnar_extras()

    def label(self) -> str:
        name = self.relation.name or "<anonymous>"
        return f"RelationScan({name})"


class SeqScan(_ColumnarScanMixin, Operator):
    """Sequential scan of a table, in page order.

    An optional :class:`ScanPruner` turns the full scan into a *pruned*
    scan: pages whose synopsis proves zero qualifying mass are skipped
    entirely (and never become parallel morsels), and with lazy decoding
    the pdf payloads of rejected tuples are never deserialized.  The
    pruner only drops tuples the plan's own filters would drop, so the
    query answer is unchanged.

    With ``columnar`` on, each decoded page chunk is wrapped in a
    :class:`ColumnarBatch` whose struct-of-arrays view is built lazily the
    first time a columnar operator asks for it — record format v5's lazy
    pdf payloads still decode per record, then gather into parameter arrays
    once per batch.
    """

    def __init__(
        self,
        table: Table,
        pruner: Optional[ScanPruner] = None,
        columnar: bool = True,
    ):
        self.table = table
        self.pruner = pruner
        self.columnar = columnar
        self.output_schema = table.schema
        #: (pages visited, total pages) of the last candidate computation
        self.page_stats: Optional[tuple] = None
        self.columnar_batches = 0
        self.fallback_batches = 0
        #: rows whose segment arrays were filled during the page decode walk
        #: (always 0 when ``columnar`` is off)
        self.direct_decode_rows = 0

    def candidate_page_ids(self) -> List[int]:
        """The pages this scan will visit (after synopsis pruning)."""
        pages = self.table.candidate_pages(self.pruner)
        self.page_stats = (len(pages), self.table.heap.num_pages)
        return pages

    def _pruned(self) -> bool:
        return self.pruner is not None and (
            self.pruner.prune_pages or self.pruner.lazy
        )

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        def run():
            if not self._pruned():
                for _rid, t in self.table.scan():
                    yield t
                return
            for chunk in self.table.scan_batches(
                DEFAULT_BATCH_SIZE, page_ids=self.candidate_page_ids(), pruner=self.pruner
            ):
                yield from chunk

        return self._count_tuples(run())

    def _wrap(self, chunk) -> TupleBatch:
        if self.columnar:
            self.columnar_batches += 1
            return ColumnarBatch(chunk)
        self.fallback_batches += 1
        return TupleBatch(chunk)

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        def run():
            page_ids = self.candidate_page_ids() if self._pruned() else None
            pruner = self.pruner if self._pruned() else None
            if self.columnar:
                # Direct decode: pages fill the segment's id/certain arrays
                # while the record prefixes deserialize.
                for chunk, seg in self.table.scan_segments(
                    size, page_ids=page_ids, pruner=pruner
                ):
                    self.columnar_batches += 1
                    self.direct_decode_rows += len(chunk)
                    yield ColumnarBatch(chunk, seg, 0)
                return
            for chunk in self.table.scan_batches(
                size, page_ids=page_ids, pruner=pruner
            ):
                yield self._wrap(chunk)

        return self._count_batches(run())

    def label(self) -> str:
        return f"SeqScan({self.table.name})"

    def explain_extras(self) -> List[str]:
        extras = []
        if self.pruner is not None and self.pruner.prune_pages:
            if self.page_stats is not None:
                visited, total = self.page_stats
                extras.append(f"pages={visited}/{total}")
            else:
                extras.append("pruned")
        if self.pruner is not None and self.pruner.lazy:
            extras.append("lazy")
        if self.direct_decode_rows:
            extras.append(f"direct_decode_rows={self.direct_decode_rows}")
        extras.extend(self._columnar_extras())
        return extras


class BTreeScan(_ColumnarScanMixin, Operator):
    """Range scan via a B+tree on a certain column.

    ``lo``/``hi`` of ``None`` leave that side unbounded.  Emits tuples in
    key order.
    """

    def __init__(
        self,
        table: Table,
        attr: str,
        lo=None,
        hi=None,
        include_lo: bool = True,
        include_hi: bool = True,
        columnar: bool = True,
    ):
        if attr not in table.btrees:
            raise QueryError(f"no B+tree index on {table.name}.{attr}")
        self.table = table
        self.attr = attr
        self.lo, self.hi = lo, hi
        self.include_lo, self.include_hi = include_lo, include_hi
        self.columnar = columnar
        self.output_schema = table.schema
        self.columnar_batches = 0
        self.fallback_batches = 0

    def _rids(self) -> Iterator:
        tree = self.table.btrees[self.attr]
        for _key, rid in tree.range_scan(self.lo, self.hi, self.include_lo, self.include_hi):
            yield rid

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        # Grouped reads pin a page once per run of same-page RIDs.
        return self._count_tuples(self.table.read_grouped(self._rids()))

    def _counted_rid_batches(self, size: int) -> Iterator[TupleBatch]:
        for batch in _rid_batches(self.table, self._rids(), size, self.columnar):
            if self.columnar:
                self.columnar_batches += 1
            else:
                self.fallback_batches += 1
            yield batch

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        return self._count_batches(self._counted_rid_batches(size))

    def explain_extras(self) -> List[str]:
        return self._columnar_extras()

    def label(self) -> str:
        return f"BTreeScan({self.table.name}.{self.attr} in [{self.lo}, {self.hi}])"


class SpatialScan(_ColumnarScanMixin, Operator):
    """Candidate scan via a spatial grid index over a joint dependency set.

    Yields records whose support bounding box intersects the query window;
    the caller verifies exactly (the planner stacks the real Filter above).
    """

    def __init__(self, table: Table, attrs, window, columnar: bool = True):
        attrs = tuple(attrs)
        if attrs not in table.spatials:
            raise QueryError(f"no spatial index on {table.name}{list(attrs)}")
        self.table = table
        self.attrs = attrs
        self.window = [(float(lo), float(hi)) for lo, hi in window]
        self.columnar = columnar
        self.output_schema = table.schema
        self.columnar_batches = 0
        self.fallback_batches = 0

    def _rids(self) -> Iterator:
        index = self.table.spatials[self.attrs]
        return iter(index.candidates(self.window))

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return self._count_tuples(self.table.read_grouped(self._rids()))

    def _counted_rid_batches(self, size: int) -> Iterator[TupleBatch]:
        for batch in _rid_batches(self.table, self._rids(), size, self.columnar):
            if self.columnar:
                self.columnar_batches += 1
            else:
                self.fallback_batches += 1
            yield batch

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        return self._count_batches(self._counted_rid_batches(size))

    def explain_extras(self) -> List[str]:
        return self._columnar_extras()

    def label(self) -> str:
        parts = ", ".join(
            f"{a} in [{lo:g}, {hi:g}]" for a, (lo, hi) in zip(self.attrs, self.window)
        )
        return f"SpatialScan({self.table.name}: {parts})"


class PtiScan(_ColumnarScanMixin, Operator):
    """Candidate scan via a probability-threshold index on an uncertain column.

    Yields only records whose x-bounds say they *might* satisfy
    ``P(attr in [lo, hi]) >= threshold``; the caller must verify exactly
    (the planner stacks the real Filter / ThresholdFilter on top).
    """

    def __init__(
        self,
        table: Table,
        attr: str,
        lo: float,
        hi: float,
        threshold: float = 0.0,
        columnar: bool = True,
    ):
        if attr not in table.ptis:
            raise QueryError(f"no probability-threshold index on {table.name}.{attr}")
        self.table = table
        self.attr = attr
        self.lo, self.hi = float(lo), float(hi)
        self.threshold = float(threshold)
        self.columnar = columnar
        self.output_schema = table.schema
        self.columnar_batches = 0
        self.fallback_batches = 0

    def _rids(self) -> Iterator:
        index = self.table.ptis[self.attr]
        return iter(sorted(index.candidates(self.lo, self.hi, self.threshold)))

    def __iter__(self) -> Iterator[ProbabilisticTuple]:
        return self._count_tuples(self.table.read_grouped(self._rids()))

    def _counted_rid_batches(self, size: int) -> Iterator[TupleBatch]:
        for batch in _rid_batches(self.table, self._rids(), size, self.columnar):
            if self.columnar:
                self.columnar_batches += 1
            else:
                self.fallback_batches += 1
            yield batch

    def batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[TupleBatch]:
        return self._count_batches(self._counted_rid_batches(size))

    def explain_extras(self) -> List[str]:
        return self._columnar_extras()

    def label(self) -> str:
        return (
            f"PtiScan({self.table.name}.{self.attr} in [{self.lo:g}, {self.hi:g}]"
            f" @ p>={self.threshold:g})"
        )
